//! Serializability oracle for the striped commit path.
//!
//! N threads run transfer-style transactions over a shared pool of account
//! vboxes while checker threads watch the system from outside:
//!
//! * **Conserved sum** — money only moves, it is never created or destroyed.
//!   Every read-only snapshot taken *during* the run must already see the
//!   invariant (snapshots are consistent cuts), and the final state must too.
//! * **Monotone clock** — the global version clock never goes backwards and
//!   only ever advances contiguously (a sampler thread hammers `clock_now`).
//! * **No lost updates** — a shared op counter is incremented inside every
//!   transfer; its final value must equal the number of committed transfers.
//!
//! Both flat transfers and parallel-nested transfers (debit and credit in two
//! concurrent child transactions) are driven through the same oracle.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use pnstm::{child, CommitPath, ParallelismDegree, Stm, StmConfig, VBox};

const ACCOUNTS: usize = 32;
const INITIAL_BALANCE: i64 = 1_000;
const THREADS: usize = 8;
const TRANSFERS_PER_THREAD: usize = 200;

fn striped_stm() -> Stm {
    Stm::new(StmConfig {
        degree: ParallelismDegree::new(THREADS, 2),
        worker_threads: 2,
        commit_path: CommitPath::Striped,
        ..StmConfig::default()
    })
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Oracle {
    stm: Stm,
    accounts: Vec<VBox<i64>>,
    ops: VBox<u64>,
}

impl Oracle {
    fn new(stm: Stm) -> Self {
        let accounts = (0..ACCOUNTS).map(|_| stm.new_vbox(INITIAL_BALANCE)).collect();
        let ops = stm.new_vbox(0u64);
        Self { stm, accounts, ops }
    }

    /// One consistent read-only snapshot of the total balance.
    fn snapshot_sum(&self) -> i64 {
        self.stm.read_only(|tx| self.accounts.iter().map(|a| tx.read(a)).sum())
    }

    /// Drive `THREADS` transfer threads plus a conservation checker and a
    /// clock-monotonicity sampler; return the number of committed transfers.
    fn run(self: &Arc<Self>, nested: bool) -> u64 {
        let expected_sum = ACCOUNTS as i64 * INITIAL_BALANCE;
        let stop = Arc::new(AtomicBool::new(false));
        let committed = Arc::new(AtomicU64::new(0));

        let checker = {
            let oracle = Arc::clone(self);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut snapshots = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    assert_eq!(
                        oracle.snapshot_sum(),
                        expected_sum,
                        "a concurrent snapshot saw money created or destroyed"
                    );
                    snapshots += 1;
                }
                assert!(snapshots > 0);
            })
        };
        let sampler = {
            let stm = self.stm.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = stm.clock_now();
                while !stop.load(Ordering::Relaxed) {
                    let now = stm.clock_now();
                    assert!(now >= last, "clock went backwards: {last} -> {now}");
                    last = now;
                }
            })
        };

        let workers: Vec<_> = (0..THREADS)
            .map(|i| {
                let oracle = Arc::clone(self);
                let committed = Arc::clone(&committed);
                std::thread::spawn(move || {
                    let mut rng = 0x5EED_0000 + i as u64;
                    for _ in 0..TRANSFERS_PER_THREAD {
                        let src = (splitmix(&mut rng) as usize) % ACCOUNTS;
                        let mut dst = (splitmix(&mut rng) as usize) % ACCOUNTS;
                        if dst == src {
                            dst = (dst + 1) % ACCOUNTS;
                        }
                        let amount = (splitmix(&mut rng) % 50) as i64 + 1;
                        oracle.transfer(src, dst, amount, nested);
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        checker.join().unwrap();
        sampler.join().unwrap();
        committed.load(Ordering::Relaxed)
    }

    fn transfer(&self, src: usize, dst: usize, amount: i64, nested: bool) {
        let src_box = self.accounts[src].clone();
        let dst_box = self.accounts[dst].clone();
        let ops = self.ops.clone();
        self.stm
            .atomic(move |tx| {
                if nested {
                    // Debit and credit run as two parallel children; their
                    // writes fold into this root at the join and reach main
                    // memory in the root's single striped commit.
                    let s = src_box.clone();
                    let d = dst_box.clone();
                    tx.parallel::<()>(vec![
                        child(move |ctx| {
                            let v = ctx.read(&s);
                            ctx.write(&s, v - amount);
                            Ok(())
                        }),
                        child(move |ctx| {
                            let v = ctx.read(&d);
                            ctx.write(&d, v + amount);
                            Ok(())
                        }),
                    ])?;
                } else {
                    tx.modify(&src_box, |v| v - amount);
                    tx.modify(&dst_box, |v| v + amount);
                }
                tx.modify(&ops, |v| v + 1);
                Ok(())
            })
            .expect("transfer must eventually commit");
    }

    fn check_final(&self, committed: u64) {
        assert_eq!(
            self.snapshot_sum(),
            ACCOUNTS as i64 * INITIAL_BALANCE,
            "final sum violates conservation"
        );
        assert_eq!(
            self.stm.read_atomic(&self.ops),
            committed,
            "ops counter disagrees with commits: an update was lost"
        );
        // Every committed transfer installed writes, so it consumed at least
        // one clock version; aborted attempts that reached revalidation may
        // have consumed extra (no-op) versions, never fewer.
        assert!(
            self.stm.clock_now() >= committed,
            "clock {} below commit count {committed}",
            self.stm.clock_now()
        );
    }
}

#[test]
fn flat_transfers_are_serializable_under_striped_commit() {
    let oracle = Arc::new(Oracle::new(striped_stm()));
    let committed = oracle.run(false);
    assert_eq!(committed, (THREADS * TRANSFERS_PER_THREAD) as u64);
    oracle.check_final(committed);
}

#[test]
fn nested_transfers_are_serializable_under_striped_commit() {
    let oracle = Arc::new(Oracle::new(striped_stm()));
    let committed = oracle.run(true);
    assert_eq!(committed, (THREADS * TRANSFERS_PER_THREAD) as u64);
    oracle.check_final(committed);
    // The nested run actually exercised child commits.
    assert!(oracle.stm.stats().snapshot().nested_commits > 0);
}

#[test]
fn global_lock_oracle_agrees_on_invariants() {
    // The retained global-lock path must uphold the same invariants — it is
    // the differential baseline the striped path is judged against.
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(THREADS, 1),
        worker_threads: 2,
        commit_path: CommitPath::GlobalLock,
        ..StmConfig::default()
    });
    let oracle = Arc::new(Oracle::new(stm));
    let committed = oracle.run(false);
    assert_eq!(committed, (THREADS * TRANSFERS_PER_THREAD) as u64);
    oracle.check_final(committed);
    // Under the global lock every commit ticks exactly once.
    assert_eq!(oracle.stm.clock_now(), committed);
}
