//! Chaos integration: tuning sessions driven through every fault kind the
//! deterministic fault layer can inject, on the live STM and on the
//! simulator. The contract under test is the degradation ladder's bottom
//! line — a session *always completes* (possibly flagged degraded, never a
//! panic, never a hang) and every injected fault is visible in the trace.

use std::sync::Arc;
use std::time::{Duration, Instant};

use autopn::monitor::AdaptiveMonitor;
use autopn::{
    AutoPn, AutoPnConfig, Controller, FaultKind, FaultPlan, FaultRule, FaultyTunable, SearchSpace,
    TuneOptions,
};
use pnstm::trace::TraceEvent;
use pnstm::{
    stripe_of, GcMode, MemConfig, ParallelismDegree, SchedMode, Stm, StmConfig, StmError, TestSink,
    TraceBus,
};
use proptest::prelude::*;
use simtm::{MachineParams, SimWorkload};
use std::sync::atomic::{AtomicBool, Ordering};
use workloads::array::{ArrayParams, ArrayWorkload};
use workloads::{LiveStmSystem, SimSystem};

/// Run one live tuning session with `plan` armed inside the STM and return
/// (the trace, injections of `kind`, whether the session reported degraded).
fn live_tune_under(plan: FaultPlan, kind: FaultKind) -> (Vec<TraceEvent>, u64, bool) {
    live_tune_under_sched(plan, kind, SchedMode::Mutex)
}

/// [`live_tune_under`] on an explicit rung of the scheduler ladder: the
/// chaos contract (sessions complete, every injection traced, shutdown
/// bounded) must hold under both execution layers.
fn live_tune_under_sched(
    plan: FaultPlan,
    kind: FaultKind,
    sched_mode: SchedMode,
) -> (Vec<TraceEvent>, u64, bool) {
    let plan = Arc::new(plan);
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(1, 1),
        worker_threads: 2,
        fault: Some(plan.clone()),
        sched_mode,
        ..StmConfig::default()
    });
    let sink = Arc::new(TestSink::default());
    let trace = stm.trace_bus().clone();
    trace.subscribe(sink.clone());
    let wl = Arc::new(ArrayWorkload::new(
        &stm,
        "chaos-array",
        ArrayParams { size: 128, write_fraction: 0.5, chunks: 4 },
    ));
    let mut system = LiveStmSystem::start(stm.clone(), wl, 3).expect("spawn live workers");
    let mut tuner = AutoPn::new(SearchSpace::new(4), AutoPnConfig::default());
    let mut policy = AdaptiveMonitor::new(0.30, 3);
    let opts = TuneOptions { apply_backoff: Duration::from_micros(50), ..TuneOptions::default() };
    let outcome = Controller::tune_traced_with(&mut system, &mut tuner, &mut policy, &trace, &opts);
    system.shutdown();
    assert!(
        !outcome.explored.is_empty() || outcome.best_throughput == 0.0,
        "session must end with either observations or an explicit fallback"
    );
    (sink.events(), plan.injected(kind), outcome.degraded)
}

fn count_injected(events: &[TraceEvent], kind: FaultKind) -> u64 {
    events
        .iter()
        .filter(|e| matches!(e, TraceEvent::FaultInjected { kind: k, .. } if *k == kind))
        .count() as u64
}

#[test]
fn tuning_completes_under_validation_aborts() {
    let kind = FaultKind::ValidationAbort;
    let plan = FaultPlan::new(42).with_rule(kind, FaultRule::with_probability(0.3).budget(400));
    let (events, injected, _) = live_tune_under(plan, kind);
    assert!(injected > 0, "no validation aborts were injected");
    assert_eq!(count_injected(&events, kind), injected, "every injection is traced");
}

#[test]
fn tuning_completes_under_commit_stripe_holds() {
    // CommitHold now stalls a committer while it holds its write-set stripe
    // locks (not a global lock); the tuning session must still complete and
    // trace every injection.
    let kind = FaultKind::CommitHold;
    let plan = FaultPlan::new(43)
        .with_rule(kind, FaultRule::with_probability(0.3).delay_ns(500_000).budget(300));
    let (events, injected, _) = live_tune_under(plan, kind);
    assert!(injected > 0, "no commit holds were injected");
    assert_eq!(count_injected(&events, kind), injected);
}

#[test]
fn stalled_stripe_does_not_block_disjoint_commits() {
    // Exactly one seeded stall (p = 1, budget 1): the first committer to
    // reach the fault site sleeps 1.5 s while holding only its own stripe
    // locks. Commits whose write sets live on other stripes must keep
    // flowing while it sleeps — under the old global commit lock they would
    // all queue behind the stall.
    let plan = Arc::new(FaultPlan::new(50).with_rule(
        FaultKind::CommitHold,
        FaultRule::with_probability(1.0).delay_ns(1_500_000_000).budget(1),
    ));
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(4, 1),
        worker_threads: 2,
        fault: Some(plan.clone()),
        ..StmConfig::default()
    });
    let victim_box = stm.new_vbox(0i64);
    let victim_stripe = stripe_of(victim_box.id());
    // Boxes on provably different stripes from the victim's.
    let mut disjoint = Vec::new();
    while disjoint.len() < 4 {
        let b = stm.new_vbox(0i64);
        if stripe_of(b.id()) != victim_stripe {
            disjoint.push(b);
        }
    }
    let victim_done = Arc::new(AtomicBool::new(false));
    let victim = {
        let stm = stm.clone();
        let b = victim_box.clone();
        let done = Arc::clone(&victim_done);
        std::thread::spawn(move || {
            stm.atomic({
                let b = b.clone();
                move |tx| {
                    tx.write(&b, 1);
                    Ok(())
                }
            })
            .expect("stalled commit still completes");
            done.store(true, Ordering::Release);
        })
    };
    // The injection is recorded before the sleep starts, so once it is
    // visible the victim is holding its stripe locks.
    let start = Instant::now();
    while plan.injected(FaultKind::CommitHold) == 0 {
        assert!(start.elapsed() < Duration::from_secs(5), "victim never reached the fault site");
        std::thread::yield_now();
    }
    for i in 0..100 {
        let b = disjoint[i % disjoint.len()].clone();
        stm.atomic(move |tx| {
            let v = tx.read(&b);
            tx.write(&b, v + 1);
            Ok(())
        })
        .expect("disjoint-stripe commit");
    }
    assert!(
        !victim_done.load(Ordering::Acquire),
        "100 disjoint-stripe commits outlasted a 1.5s single-stripe stall: \
         commits are serializing behind the stalled stripe"
    );
    victim.join().unwrap();
    assert_eq!(stm.read_atomic(&victim_box), 1, "the stalled commit itself lands");
    let sum: i64 = disjoint.iter().map(|b| stm.read_atomic(b)).sum();
    assert_eq!(sum, 100);
}

#[test]
fn shutdown_is_bounded_under_stripe_holds() {
    // Every commit attempt stalls 2 ms on its stripe locks, up to a 400-
    // injection budget: the system crawls but must not wedge — shutdown
    // completes promptly and in-flight stalled commits drain. The budget
    // keeps this focused on the shutdown property: under the default
    // Immediate CM, unbounded holds inflate the conflict window enough to
    // livelock retrying writers against each other. That livelock is a
    // contention-management property with its own regression coverage —
    // `tests/contention.rs` pins it with a dedicated two-writer
    // disjoint-stripe storm (seed 97, unbudgeted p = 1.0 holds of 1 ms,
    // overlapping read sets) and shows it draining under the ExpBackoff
    // and Greedy rungs, where this test keeps its budget and the default
    // Immediate CM to stay a pure shutdown check.
    let plan = Arc::new(FaultPlan::new(51).with_rule(
        FaultKind::CommitHold,
        FaultRule::with_probability(1.0).delay_ns(2_000_000).budget(400),
    ));
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(2, 1),
        worker_threads: 2,
        fault: Some(plan),
        ..StmConfig::default()
    });
    let wl = Arc::new(ArrayWorkload::new(
        &stm,
        "chaos-stripe-shutdown",
        ArrayParams { size: 64, write_fraction: 0.5, chunks: 2 },
    ));
    let mut system = LiveStmSystem::start(stm.clone(), wl, 4).expect("spawn live workers");
    std::thread::sleep(Duration::from_millis(100));
    let start = Instant::now();
    system.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown took {:?} with commits stalling on stripe holds",
        start.elapsed()
    );
    // No stripe lock was leaked by the shutdown race: fresh commits flow.
    let cell = stm.new_vbox(0i32);
    stm.atomic({
        let cell = cell.clone();
        move |tx| {
            tx.write(&cell, 1);
            Ok(())
        }
    })
    .expect("STM usable after shutdown");
    assert_eq!(stm.read_atomic(&cell), 1);
}

#[test]
fn tuning_completes_under_child_stalls() {
    let kind = FaultKind::ChildStall;
    let plan = FaultPlan::new(44)
        .with_rule(kind, FaultRule::with_probability(0.3).delay_ns(200_000).budget(400));
    let (events, injected, _) = live_tune_under(plan, kind);
    assert!(injected > 0, "no child stalls were injected");
    assert_eq!(count_injected(&events, kind), injected);
}

#[test]
fn tuning_completes_under_admission_stalls() {
    let kind = FaultKind::AdmissionStall;
    let plan = FaultPlan::new(45)
        .with_rule(kind, FaultRule::with_probability(0.4).delay_ns(500_000).budget(300));
    let (events, injected, _) = live_tune_under(plan, kind);
    assert!(injected > 0, "no admission stalls were injected");
    assert_eq!(count_injected(&events, kind), injected);
}

#[test]
fn tuning_completes_under_child_stalls_work_stealing() {
    // Same plan as the mutex-pool variant, but the stall now lands *after*
    // the lock-free claim in `ws_run_task` instead of inside the queue
    // critical section. The chaos contract is unchanged: the session
    // completes and every injection is traced.
    let kind = FaultKind::ChildStall;
    let plan = FaultPlan::new(44)
        .with_rule(kind, FaultRule::with_probability(0.3).delay_ns(200_000).budget(400));
    let (events, injected, _) = live_tune_under_sched(plan, kind, SchedMode::WorkStealing);
    assert!(injected > 0, "no child stalls were injected");
    assert_eq!(count_injected(&events, kind), injected);
}

#[test]
fn tuning_completes_under_admission_stalls_work_stealing() {
    // Admission here is the packed-gate CAS path rather than the semaphore
    // mutex; the stall site in `Stm::atomic` is scheduler-independent.
    let kind = FaultKind::AdmissionStall;
    let plan = FaultPlan::new(45)
        .with_rule(kind, FaultRule::with_probability(0.4).delay_ns(500_000).budget(300));
    let (events, injected, _) = live_tune_under_sched(plan, kind, SchedMode::WorkStealing);
    assert!(injected > 0, "no admission stalls were injected");
    assert_eq!(count_injected(&events, kind), injected);
}

#[test]
fn tuning_completes_under_worker_panics() {
    let kind = FaultKind::WorkerPanic;
    // Low probability + the default restart budget: workers keep being
    // restarted, commits keep flowing, the session completes.
    let plan = FaultPlan::new(46).with_rule(kind, FaultRule::with_probability(0.05).budget(40));
    let (events, injected, _) = live_tune_under(plan, kind);
    assert!(injected > 0, "no worker panics were injected");
    // Every injected panic was absorbed by supervision and traced.
    let absorbed =
        events.iter().filter(|e| matches!(e, TraceEvent::WorkerPanicked { .. })).count() as u64;
    assert_eq!(absorbed, injected, "each injected panic is absorbed and traced");
}

#[test]
fn tuning_completes_under_clock_jitter() {
    let kind = FaultKind::ClockJitter;
    let plan = FaultPlan::new(47)
        .with_rule(kind, FaultRule::with_probability(0.5).delay_ns(2_000_000).budget(500));
    let (events, injected, _) = live_tune_under(plan, kind);
    assert!(injected > 0, "no clock jitter was injected");
    assert_eq!(count_injected(&events, kind), injected);
}

#[test]
fn tuning_completes_under_reconfig_failures() {
    let kind = FaultKind::ReconfigFail;
    let plan = FaultPlan::new(48).with_rule(kind, FaultRule::with_probability(0.5).budget(10));
    let (events, injected, degraded) = live_tune_under(plan, kind);
    assert!(injected > 0, "no reconfiguration failures were injected");
    // Either every failed apply recovered on retry, or the ladder reached the
    // fallback rung and the session says so.
    let fell_back = events.iter().any(|e| matches!(e, TraceEvent::ApplyDegraded { .. }));
    assert!(!fell_back || degraded, "a fallback must flag the session degraded");
    // The session closed its trace (later runtime events — in-flight commits
    // racing shutdown — may legitimately follow on the shared bus).
    assert!(
        events.iter().any(|e| matches!(e, TraceEvent::SessionEnd { .. })),
        "session must close its trace"
    );
}

#[test]
fn shutdown_is_bounded_while_admission_is_starved() {
    // t = 1 with 4 workers: three workers are permanently parked on the
    // admission semaphore, and an aggressive stall plan slows the fourth.
    // Shutdown must still complete promptly (closed admission wakes parked
    // workers with StmError::Shutdown; the stop flag alone could not).
    let plan = Arc::new(FaultPlan::new(49).with_rule(
        FaultKind::AdmissionStall,
        FaultRule::with_probability(1.0).delay_ns(2_000_000),
    ));
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(1, 1),
        worker_threads: 2,
        fault: Some(plan),
        ..StmConfig::default()
    });
    let wl = Arc::new(ArrayWorkload::new(
        &stm,
        "chaos-shutdown",
        ArrayParams { size: 64, write_fraction: 0.5, chunks: 2 },
    ));
    let mut system = LiveStmSystem::start(stm.clone(), wl, 4).expect("spawn live workers");
    std::thread::sleep(Duration::from_millis(100));
    let start = Instant::now();
    system.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown took {:?} with workers parked on admission",
        start.elapsed()
    );
    // The STM stays usable after shutdown (admission reopened).
    let cell = stm.new_vbox(0i32);
    stm.atomic({
        let cell = cell.clone();
        move |tx| {
            tx.write(&cell, 1);
            Ok(())
        }
    })
    .expect("STM usable after shutdown");
}

#[test]
fn shutdown_is_bounded_while_admission_is_starved_work_stealing() {
    // The packed admission gate's shutdown contract: `close()` must wake
    // workers parked on the gate's sharded parker lists with
    // `StmError::Shutdown`, exactly as the semaphore's condvar broadcast
    // does — a lost wakeup would wedge this shutdown.
    let plan = Arc::new(FaultPlan::new(49).with_rule(
        FaultKind::AdmissionStall,
        FaultRule::with_probability(1.0).delay_ns(2_000_000),
    ));
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(1, 1),
        worker_threads: 2,
        fault: Some(plan),
        sched_mode: SchedMode::WorkStealing,
        ..StmConfig::default()
    });
    let wl = Arc::new(ArrayWorkload::new(
        &stm,
        "chaos-shutdown-ws",
        ArrayParams { size: 64, write_fraction: 0.5, chunks: 2 },
    ));
    let mut system = LiveStmSystem::start(stm.clone(), wl, 4).expect("spawn live workers");
    std::thread::sleep(Duration::from_millis(100));
    let start = Instant::now();
    system.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown took {:?} with workers parked on the packed gate",
        start.elapsed()
    );
    // The STM stays usable after shutdown (gate reopened).
    let cell = stm.new_vbox(0i32);
    stm.atomic({
        let cell = cell.clone();
        move |tx| {
            tx.write(&cell, 1);
            Ok(())
        }
    })
    .expect("STM usable after shutdown");
}

#[test]
fn stalled_collector_never_blocks_commits_and_eviction_resumes() {
    // Exactly one seeded stall (p = 1, budget 1): the collector's first
    // slice sleeps 1.5 s holding no lock. The memory contract under a
    // wedged collector is "degrade memory, not throughput" — commits must
    // keep flowing mid-stall, and once the stall passes, lease expiry of a
    // parked reader must still be detected and pruned past.
    let plan = Arc::new(FaultPlan::new(52).with_rule(
        FaultKind::GcStall,
        FaultRule::with_probability(1.0).delay_ns(1_500_000_000).budget(1),
    ));
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(2, 1),
        worker_threads: 2,
        fault: Some(plan.clone()),
        gc_interval: 1,
        mem: MemConfig {
            gc_mode: GcMode::Background,
            snapshot_lease: Some(Duration::from_millis(20)),
            ..MemConfig::default()
        },
        ..StmConfig::default()
    });
    let b = stm.new_vbox(0i64);
    let commit = || {
        stm.atomic(|tx| {
            let v = tx.read(&b);
            tx.write(&b, v + 1);
            Ok(())
        })
        .unwrap()
    };
    stm.read_only(|snap| {
        // Every commit nudges the collector; its first slice then stalls.
        let start = Instant::now();
        while plan.injected(FaultKind::GcStall) == 0 {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "collector never reached the stall site"
            );
            commit();
            std::thread::yield_now();
        }
        // Mid-stall: commits flow freely. The stalled cycle completing
        // before these finish would mean they waited behind it.
        let c0 = stm.stats().snapshot().gc_cycles;
        for _ in 0..200 {
            commit();
        }
        assert_eq!(
            stm.stats().snapshot().gc_cycles,
            c0,
            "200 commits outlasted a 1.5s collector stall — commits are \
             queueing behind the GC"
        );
        // Post-stall: the collector resumes, the reader's expired lease is
        // evicted and its pinned versions pruned past.
        let start = Instant::now();
        loop {
            commit();
            stm.request_gc();
            if snap.is_evicted() && snap.try_read(&b) == Err(StmError::SnapshotEvicted) {
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "lease eviction never resumed after the collector stall"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    });
    // Eviction and pruning are observable mid-cycle (the watermark is
    // recomputed per slice), so the cycle counter may lag the break above.
    let start = Instant::now();
    while stm.stats().snapshot().gc_cycles == 0 {
        assert!(start.elapsed() < Duration::from_secs(5), "the stalled cycle never completed");
        std::thread::sleep(Duration::from_millis(1));
    }
    let s = stm.stats().snapshot();
    assert_eq!(plan.injected(FaultKind::GcStall), 1);
    assert!(s.snapshot_evictions >= 1, "the parked reader was evicted: {s:?}");
    assert_eq!(s.read_below_floor, 0);
}

/// A value whose drop panics the first time it happens on the collector
/// thread — a poisoned version chain for exercising the GC supervisor.
#[derive(Clone)]
struct GcGrenade(Arc<AtomicBool>);

impl Drop for GcGrenade {
    fn drop(&mut self) {
        if std::thread::current().name() == Some("pnstm-gc") && self.0.swap(false, Ordering::SeqCst)
        {
            panic!("injected: version drop failed on the collector thread");
        }
    }
}

#[test]
fn collector_panic_is_absorbed_and_the_loop_restarts() {
    // Prune a version whose Drop panics on the collector thread: the
    // supervisor must absorb the panic (counted, not fatal) and keep the
    // collector loop alive — later cycles still sweep and prune.
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(2, 1),
        worker_threads: 1,
        gc_interval: 0,
        mem: MemConfig { gc_mode: GcMode::Background, ..MemConfig::default() },
        ..StmConfig::default()
    });
    let armed = Arc::new(AtomicBool::new(true));
    let grenade = stm.new_vbox(GcGrenade(Arc::clone(&armed)));
    // Two installs leave two prunable (poisoned) versions behind.
    for _ in 0..2 {
        let disarmed = GcGrenade(Arc::new(AtomicBool::new(false)));
        let g = grenade.clone();
        stm.atomic(move |tx| {
            tx.write(&g, disarmed.clone());
            Ok(())
        })
        .unwrap();
    }
    let start = Instant::now();
    while stm.stats().snapshot().gc_thread_panics == 0 {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "collector never hit the poisoned version"
        );
        stm.request_gc();
        std::thread::sleep(Duration::from_millis(5));
    }
    // The loop survived: commits still work and a later cycle still prunes.
    let after = stm.stats().snapshot();
    let counter = stm.new_vbox(0i64);
    for _ in 0..3 {
        stm.atomic(|tx| {
            let v = tx.read(&counter);
            tx.write(&counter, v + 1);
            Ok(())
        })
        .unwrap();
    }
    let start = Instant::now();
    while stm.stats().snapshot().gc_pruned_versions <= after.gc_pruned_versions {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "no cycle pruned after the collector panic — the loop died"
        );
        stm.request_gc();
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(stm.read_atomic(&counter), 3);
    assert!(stm.stats().snapshot().gc_thread_panics >= 1);
}

#[test]
fn ledger_block_completes_under_faults_with_oracle_state() {
    // Ledger mode under the fault layer: `ChildStall` lands inside the block
    // executor's worker pool (wired to the host STM's fault context) and
    // `CommitHold` stalls the final index-order install's stripe locks. The
    // blocks must still terminate, and the final balances must be identical
    // to an unfaulted sequential replay — faults may slow a block down but
    // never change what it commits.
    let plan = Arc::new(
        FaultPlan::new(53)
            .with_rule(
                FaultKind::ChildStall,
                FaultRule::with_probability(0.5).delay_ns(200_000).budget(200),
            )
            .with_rule(
                FaultKind::CommitHold,
                FaultRule::with_probability(0.5).delay_ns(500_000).budget(100),
            ),
    );
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(4, 4),
        worker_threads: 2,
        fault: Some(plan.clone()),
        ..StmConfig::default()
    });
    let clean = Stm::new(StmConfig {
        degree: ParallelismDegree::new(1, 1),
        worker_threads: 2,
        ..StmConfig::default()
    });
    let block = ledger::skewed_block(11, 96, 8, 50);
    let initial = vec![100u64; 8];
    let oracle = ledger::BlockExecutor::new(
        &clean,
        &initial,
        ledger::LedgerConfig {
            exec_mode: ledger::ExecMode::Sequential,
            workers: 1,
            ..ledger::LedgerConfig::default()
        },
    );
    oracle.execute_all(&block).expect("unfaulted oracle replay");
    let faulted = ledger::BlockExecutor::new(
        &stm,
        &initial,
        ledger::LedgerConfig {
            exec_mode: ledger::ExecMode::Parallel,
            workers: 4,
            block_size: 32,
            ..ledger::LedgerConfig::default()
        },
    );
    let outcomes = faulted.execute_all(&block).expect("faulted blocks still terminate");
    assert_eq!(outcomes.len(), 3, "96 txns / 32 per block");
    assert_eq!(faulted.balances(), oracle.balances(), "faults changed what a block committed");
    assert!(
        plan.injected(FaultKind::ChildStall) + plan.injected(FaultKind::CommitHold) > 0,
        "the plan never fired — the scenario tested nothing"
    );
}

#[test]
fn ledger_mid_block_close_is_bounded_and_installs_nothing() {
    // `close()` mid-block: workers poll the admission gate between tasks, so
    // a block that still has hundreds of work-laden transactions queued must
    // abandon promptly with `StmError::Shutdown` and leave the committed
    // balances untouched (the multi-version scratch is never installed).
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(4, 4),
        worker_threads: 2,
        ..StmConfig::default()
    });
    let initial = vec![1_000u64; 16];
    let ex = ledger::BlockExecutor::new(
        &stm,
        &initial,
        ledger::LedgerConfig {
            exec_mode: ledger::ExecMode::Parallel,
            workers: 4,
            work: Duration::from_millis(2),
            ..ledger::LedgerConfig::default()
        },
    );
    // >= 512 * 2 ms / 4 workers = ~256 ms of mandatory work: the close below
    // lands well inside the block.
    let block = ledger::skewed_block(13, 512, 16, 50);
    let worker = std::thread::spawn(move || {
        let result = ex.execute_block(&block);
        (ex, result)
    });
    std::thread::sleep(Duration::from_millis(30));
    let start = Instant::now();
    stm.close_admission();
    let (ex, result) = worker.join().expect("block worker must not panic");
    assert!(
        matches!(result, Err(StmError::Shutdown)),
        "a mid-block close must abandon the block with Shutdown, got {result:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "mid-block shutdown took {:?}",
        start.elapsed()
    );
    stm.reopen_admission();
    assert_eq!(ex.balances(), initial, "an abandoned block must install nothing");
}

/// Drive one full simulated tuning session through `FaultyTunable` and
/// return the `fault_injected` trace lines as JSONL.
fn sim_fault_jsonl(seed: u64, p_stall: f64, p_jitter: f64, p_reconfig: f64) -> String {
    let machine = MachineParams::new(8);
    let wl = SimWorkload::builder("chaos-sim")
        .top_work_us(20.0)
        .child_count(4)
        .child_work_us(60.0)
        .top_footprint(4, 1)
        .child_footprint(8, 2)
        .data_items(4_000)
        .build();
    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_rule(FaultKind::AdmissionStall, FaultRule::with_probability(p_stall))
            .with_rule(
                FaultKind::ClockJitter,
                FaultRule::with_probability(p_jitter).delay_ns(50_000),
            )
            .with_rule(FaultKind::ReconfigFail, FaultRule::with_probability(p_reconfig).budget(5)),
    );
    let sink = Arc::new(TestSink::default());
    let trace = TraceBus::new();
    trace.subscribe(sink.clone());
    let mut sys = FaultyTunable::new(SimSystem::new(&wl, &machine, 7), plan, trace.clone());
    let mut tuner = AutoPn::new(SearchSpace::new(8), AutoPnConfig::default());
    let mut policy = AdaptiveMonitor::new(0.20, 4);
    let opts = TuneOptions { apply_backoff: Duration::ZERO, ..TuneOptions::default() };
    Controller::tune_traced_with(&mut sys, &mut tuner, &mut policy, &trace, &opts);
    let mut out = String::new();
    for ev in sink.events() {
        if matches!(ev, TraceEvent::FaultInjected { .. }) {
            ev.write_json(&mut out);
            out.push('\n');
        }
    }
    out
}

#[test]
fn sim_fault_stream_is_reproducible_and_nonempty() {
    let a = sim_fault_jsonl(1234, 0.8, 0.8, 1.0);
    let b = sim_fault_jsonl(1234, 0.8, 0.8, 1.0);
    assert!(!a.is_empty(), "an aggressive plan must inject");
    assert_eq!(a, b, "same seed + plan must replay byte-identically");
    let c = sim_fault_jsonl(1235, 0.8, 0.8, 1.0);
    assert_ne!(a, c, "a different seed must draw a different schedule");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The tentpole determinism property: on a virtual-time system, the
    /// injected fault stream is a pure function of (seed, plan) — two runs
    /// produce byte-identical `fault_injected` JSONL, event for event,
    /// timestamp for timestamp.
    #[test]
    fn same_seed_and_plan_replay_identical_fault_streams(
        seed in 0u64..10_000,
        p_stall in 0.0f64..0.9,
        p_jitter in 0.0f64..0.9,
        p_reconfig in 0.0f64..0.9,
    ) {
        let a = sim_fault_jsonl(seed, p_stall, p_jitter, p_reconfig);
        let b = sim_fault_jsonl(seed, p_stall, p_jitter, p_reconfig);
        prop_assert_eq!(a, b);
    }
}
