//! Integration test of the §V "dynamic workloads" extension: CUSUM change
//! detection triggering a fresh tuning session when the application's
//! workload shifts mid-run.

use std::time::Duration;

use autopn::monitor::AdaptiveMonitor;
use autopn::{AutoPn, AutoPnConfig, Config, Controller, CusumDetector, SearchSpace, TunableSystem};
use simtm::{MachineParams, SimWorkload};
use workloads::SimSystem;

/// Scales cleanly: optimum at wide t.
fn scalable_workload() -> SimWorkload {
    SimWorkload::builder("dyn-scalable")
        .top_work_us(80.0)
        .top_footprint(10, 1)
        .data_items(100_000)
        .build()
}

/// Array-high-like: long nested scans over a fully conflicting footprint —
/// inter-transaction parallelism is useless (every pair of trees conflicts),
/// so the optimum is minimal t with wide intra-tree parallelism.
fn contended_workload() -> SimWorkload {
    SimWorkload::builder("dyn-contended")
        .top_work_us(30.0)
        .child_count(8)
        .child_work_us(400.0)
        .child_footprint(512, 460)
        .data_items(4_096)
        .restart_backoff_us(300.0)
        .build()
}

/// Delegating system that swaps the workload at a preset virtual time.
struct ShiftingSystem {
    inner: SimSystem,
    shift_at_ns: u64,
    next: Option<SimWorkload>,
}

impl ShiftingSystem {
    fn maybe_shift(&mut self) {
        if self.next.is_some() && TunableSystem::now_ns(&self.inner) >= self.shift_at_ns {
            let wl = self.next.take().expect("checked");
            self.inner.switch_workload(&wl);
        }
    }
}

impl TunableSystem for ShiftingSystem {
    fn apply(&mut self, cfg: Config) {
        self.inner.apply(cfg);
    }
    fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
        self.maybe_shift();
        self.inner.wait_commit(max_wait_ns)
    }
    fn now_ns(&self) -> u64 {
        TunableSystem::now_ns(&self.inner)
    }
    fn quiesce(&mut self) {
        self.inner.quiesce();
    }
}

#[test]
fn workload_shift_triggers_retuning() {
    let machine = MachineParams::new(12);
    let mut system = ShiftingSystem {
        inner: SimSystem::new(&scalable_workload(), &machine, 7),
        // Shift after the first tuning session has converged but while
        // supervision is still running (sessions and windows are short in
        // virtual time: a session is ~10 ms, supervision windows ~0.2 ms).
        shift_at_ns: 20_000_000,
        next: Some(contended_workload()),
    };
    let space = SearchSpace::new(machine.n_cores);
    let mut make_tuner = || -> Box<dyn autopn::Tuner> {
        Box::new(AutoPn::new(space.clone(), AutoPnConfig::default()))
    };
    let mut policy = AdaptiveMonitor::default();
    let mut detector = CusumDetector::default();

    let outcome = Controller::tune_with_retuning(
        &mut system,
        &mut make_tuner,
        &mut policy,
        &mut detector,
        400,
    );

    assert!(outcome.changes_detected >= 1, "the workload shift must be detected");
    assert!(outcome.sessions.len() >= 2, "a new tuning session must have run");
    let first = outcome.sessions.first().expect("first session").best;
    let last = outcome.sessions.last().expect("last session").best;
    assert!(first.t >= 6, "the scalable phase should pick wide top-level parallelism, got {first}");
    assert!(
        last.c >= 4,
        "the nested-contended phase should move to intra-tree parallelism: {first} -> {last}"
    );
}

#[test]
fn stable_workload_never_retunes() {
    let machine = MachineParams::new(12);
    let mut system = ShiftingSystem {
        inner: SimSystem::new(&scalable_workload(), &machine, 9),
        shift_at_ns: u64::MAX,
        next: None,
    };
    let space = SearchSpace::new(machine.n_cores);
    let mut make_tuner = || -> Box<dyn autopn::Tuner> {
        Box::new(AutoPn::new(space.clone(), AutoPnConfig::default()))
    };
    let mut policy = AdaptiveMonitor::default();
    let mut detector = CusumDetector::default();

    let outcome = Controller::tune_with_retuning(
        &mut system,
        &mut make_tuner,
        &mut policy,
        &mut detector,
        60,
    );
    assert_eq!(outcome.sessions.len(), 1, "no change, no re-tuning");
    assert_eq!(outcome.changes_detected, 0);
    assert_eq!(outcome.supervision_windows, 60);
}

#[test]
fn simulator_workload_switch_changes_behavior() {
    let machine = MachineParams::new(12);
    let mut sys = SimSystem::new(&scalable_workload(), &machine, 3);
    sys.apply(Config::new(10, 1));
    sys.advance(Duration::from_millis(50));
    let before = sys.advance(Duration::from_millis(300)).throughput();
    sys.switch_workload(&contended_workload());
    sys.advance(Duration::from_millis(100)); // drain the transition
    let after = sys.advance(Duration::from_millis(300)).throughput();
    assert!(
        after < before * 0.1,
        "the long-transaction workload must slow (10,1) down: {before:.0} -> {after:.0}"
    );
    assert_eq!(sys.simulation().workload_name(), "dyn-contended");
}
