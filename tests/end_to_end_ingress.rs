//! End-to-end integration of the open-loop ingress front door: real
//! generator/worker threads over a live PN-STM, the AutoPN controller
//! tuning `(t, c)` against the SLO KPI, typed backpressure at the queue
//! ceiling, and the chaos scenarios (`ClockJitter`, `WorkerPanic`) the
//! front door must absorb.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use autopn::monitor::AdaptiveMonitor;
use autopn::{AutoPn, AutoPnConfig, Controller, SearchSpace, SloTunableSystem};
use ingress::{ArrivalProcess, Ingress, IngressConfig, IngressService, TransferService};
use pnstm::throttle::Permit;
use pnstm::{
    FaultKind, FaultPlan, FaultRule, ParallelismDegree, Stm, StmConfig, StmError, TestSink,
    TraceEvent,
};

fn live_stm(fault: Option<Arc<FaultPlan>>) -> Stm {
    Stm::new(StmConfig {
        degree: ParallelismDegree::new(2, 2),
        worker_threads: 2,
        fault,
        ..StmConfig::default()
    })
}

/// Transfer service holding its permit for `work` of modelled service time,
/// so capacity is set by the parallelism degree (sleep-based: stable on a
/// 1-core CI runner).
struct TimedService {
    inner: TransferService,
    work: Duration,
}

impl IngressService for TimedService {
    fn run(&self, stm: &Stm, permit: Permit, request: u64) -> Result<(), StmError> {
        thread::sleep(self.work);
        self.inner.run(stm, permit, request)
    }
}

fn start_front_door(stm: &Stm, rate_hz: f64, work_us: u64, queue_cap: usize) -> Ingress {
    let service = Arc::new(TimedService {
        inner: TransferService::new(stm, 128, 50_000, 3, 128, 2, 100),
        work: Duration::from_micros(work_us),
    });
    let config = IngressConfig {
        process: ArrivalProcess::Poisson { rate_hz },
        seed: 11,
        queue_cap,
        batch: 4,
        workers: 4,
        ..IngressConfig::default()
    };
    Ingress::start(stm.clone(), service, config).expect("spawn ingress")
}

fn wait_completed(ing: &Ingress, n: u64, cap: Duration) {
    let deadline = Instant::now() + cap;
    while ing.snapshot().completed < n && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn slo_tuning_on_the_live_front_door_applies_the_chosen_degree() {
    let stm = live_stm(None);
    let sink = Arc::new(TestSink::new());
    stm.trace_bus().subscribe(sink.clone());
    let mut ing = start_front_door(&stm, 800.0, 1_000, 4_096);
    wait_completed(&ing, 20, Duration::from_secs(10));

    let mut tuner = AutoPn::new(SearchSpace::new(4), AutoPnConfig::default());
    let mut policy = AdaptiveMonitor::new(0.3, 4); // loose: CI machines are tiny
    let outcome = Controller::tune_slo(&mut ing, &mut tuner, &mut policy, 100_000_000);
    ing.shutdown();

    assert!(!outcome.explored.is_empty(), "the session must explore configurations");
    assert!(SearchSpace::new(4).contains(outcome.best));
    assert_eq!(outcome.p99_target_ns, 100_000_000);
    assert_eq!(
        stm.degree(),
        ParallelismDegree::new(outcome.best.t, outcome.best.c),
        "the controller must leave the chosen configuration applied"
    );
    // Every explored configuration carried a full SLO KPI window, and each
    // window was published on the trace bus as an `ingress_window` event.
    for (_, _, kpi) in &outcome.explored {
        assert!(kpi.window_ns > 0);
        assert!(kpi.p50_ns <= kpi.p99_ns && kpi.p99_ns <= kpi.p999_ns);
    }
    let windows =
        sink.events().iter().filter(|e| matches!(e, TraceEvent::IngressWindow { .. })).count();
    assert!(
        windows >= outcome.explored.len(),
        "each SLO window must publish an ingress_window event ({} windows, {} explored)",
        windows,
        outcome.explored.len()
    );
}

#[test]
fn queue_ceiling_backpressure_poisons_the_window_p99() {
    // 1 permit, 3 ms per request => ~330/s capacity; 5000/s offered into a
    // 4-slot queue must shed nearly everything.
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(1, 1),
        worker_threads: 2,
        ..StmConfig::default()
    });
    let mut ing = start_front_door(&stm, 5_000.0, 3_000, 4);
    ing.begin_slo_window();
    thread::sleep(Duration::from_millis(400));
    let kpi = ing.end_slo_window();
    ing.shutdown();
    let snap = ing.snapshot();
    assert!(snap.rejected > 0, "the ceiling must reject: {snap:?}");
    assert_eq!(snap.offered, snap.accepted + snap.rejected);
    assert!(kpi.rejected > 0);
    assert_eq!(
        kpi.effective_p99(),
        u64::MAX,
        "a shedding window must violate every finite p99 target"
    );
    assert!(!kpi.meets(u64::MAX - 1));
}

#[test]
fn chaos_clock_jitter_cannot_break_latency_accounting() {
    let plan =
        Arc::new(FaultPlan::new(0x11).with_rule(
            FaultKind::ClockJitter,
            FaultRule::with_probability(0.5).delay_ns(5_000_000),
        ));
    let stm = live_stm(Some(plan.clone()));
    let mut ing = start_front_door(&stm, 1_500.0, 200, 4_096);
    wait_completed(&ing, 100, Duration::from_secs(10));
    ing.shutdown();
    let snap = ing.snapshot();
    assert!(snap.completed >= 100, "progress under jitter: {snap:?}");
    assert!(plan.injected(FaultKind::ClockJitter) > 0, "the jitter plan must actually fire");
    // Jitter perturbs individual samples but can never produce inverted
    // quantiles (the histogram is monotone by construction) or lose counts.
    assert_eq!(snap.intended.count, snap.completed);
    assert_eq!(snap.dequeue.count, snap.completed);
    let mut last = 0;
    for p in [1.0, 50.0, 99.0, 99.9, 100.0] {
        let q = snap.intended.quantile(p);
        assert!(q >= last);
        last = q;
    }
}

#[test]
fn chaos_worker_panics_are_absorbed_and_the_stream_continues() {
    let plan = Arc::new(
        FaultPlan::new(0x22)
            .with_rule(FaultKind::WorkerPanic, FaultRule::with_probability(0.05).budget(6)),
    );
    let stm = live_stm(Some(plan.clone()));
    let sink = Arc::new(TestSink::new());
    stm.trace_bus().subscribe(sink.clone());
    let mut ing = start_front_door(&stm, 2_000.0, 100, 4_096);
    // Wait for the full panic budget to be spent, then demand further
    // progress: the survivors must keep draining the queue.
    let deadline = Instant::now() + Duration::from_secs(10);
    while ing.worker_panics() < 6 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    let completed_at_budget = ing.snapshot().completed;
    wait_completed(&ing, completed_at_budget + 50, Duration::from_secs(10));
    ing.shutdown();
    let snap = ing.snapshot();
    assert_eq!(ing.worker_panics(), 6, "every budgeted panic absorbed");
    assert!(
        snap.completed >= completed_at_budget + 50,
        "the stream must continue after the panic budget is spent: {snap:?}"
    );
    assert!(snap.failed >= 6, "panicked requests count as failures");
    let panicked =
        sink.events().iter().filter(|e| matches!(e, TraceEvent::WorkerPanicked { .. })).count();
    assert_eq!(panicked, 6, "every absorbed panic is published on the trace bus");
}

#[test]
fn shutdown_under_load_is_bounded_and_reopens_admission() {
    let stm = live_stm(None);
    // Offered load far above capacity: the queue is full and workers are
    // parked in admission when shutdown hits.
    let mut ing = start_front_door(&stm, 10_000.0, 2_000, 64);
    thread::sleep(Duration::from_millis(200));
    let start = Instant::now();
    ing.shutdown();
    assert!(start.elapsed() < Duration::from_secs(5), "shutdown must not hang on parked workers");
    // The STM is reusable afterwards: admission reopened, hook detached.
    let b = stm.new_vbox(0u64);
    stm.atomic(|tx| {
        let v = tx.read(&b);
        tx.write(&b, v + 1);
        Ok(())
    })
    .expect("admission must be reopened after ingress shutdown");
    assert_eq!(stm.read_atomic(&b), 1);
}
