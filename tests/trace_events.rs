//! Integration tests for the observability layer: a full tuning session on
//! the simulated and the live system must emit a well-ordered, parseable
//! event stream covering the whole Fig.-2 loop.

use std::sync::Arc;

use autopn::monitor::AdaptiveMonitor;
use autopn::{
    AutoPn, AutoPnConfig, Controller, JsonlSink, SearchSpace, TestSink, TraceBus, TraceEvent,
};
use pnstm::{ParallelismDegree, Stm, StmConfig};
use simtm::{MachineParams, SimWorkload};
use workloads::array::{ArrayParams, ArrayWorkload};
use workloads::{LiveStmSystem, SimSystem};

fn sim_workload() -> SimWorkload {
    SimWorkload::builder("trace-sim")
        .top_work_us(30.0)
        .child_count(4)
        .child_work_us(80.0)
        .top_footprint(6, 2)
        .child_footprint(8, 2)
        .data_items(10_000)
        .build()
}

#[test]
fn sim_session_emits_ordered_event_stream() {
    let machine = MachineParams::new(8);
    let mut sys = SimSystem::new(&sim_workload(), &machine, 7);
    let mut tuner = AutoPn::new(SearchSpace::new(machine.n_cores), AutoPnConfig::default());
    let mut policy = AdaptiveMonitor::default();

    let sink = Arc::new(TestSink::default());
    let trace = TraceBus::new();
    trace.subscribe(sink.clone());

    let outcome = Controller::tune_traced(&mut sys, &mut tuner, &mut policy, &trace);
    let events = sink.events();

    // Bracketing: the session events delimit the stream.
    assert!(
        matches!(events.first(), Some(TraceEvent::SessionStart { .. })),
        "first event must be session_start, got {:?}",
        events.first()
    );
    match events.last() {
        Some(TraceEvent::SessionEnd { best_t, best_c, explored, fallback, .. }) => {
            assert_eq!((*best_t as usize, *best_c as usize), (outcome.best.t, outcome.best.c));
            assert_eq!(*explored as usize, outcome.explored.len());
            assert!(!fallback);
        }
        other => panic!("last event must be session_end, got {other:?}"),
    }

    // Window bracketing and per-window ordering.
    let mut open = false;
    let mut proposals = 0usize;
    let mut windows = 0usize;
    let mut phase_transitions = Vec::new();
    for ev in events.iter() {
        match ev {
            TraceEvent::WindowOpen { .. } => {
                assert!(!open, "window_open while a window is open");
                open = true;
            }
            TraceEvent::WindowClose { .. } => {
                assert!(open, "window_close without window_open");
                open = false;
                windows += 1;
            }
            TraceEvent::WindowSample { .. } => assert!(open, "sample outside window"),
            TraceEvent::Proposal { t, c, .. } => {
                proposals += 1;
                assert!(
                    (*t as usize) * (*c as usize) <= machine.n_cores,
                    "proposal ({t},{c}) outside admissible space"
                );
            }
            TraceEvent::OptimizerPhase { from, to } => phase_transitions.push((*from, *to)),
            _ => {}
        }
    }
    assert!(!open, "window left open at session end");
    assert_eq!(windows, outcome.explored.len(), "one window per explored config");
    assert_eq!(proposals, outcome.explored.len(), "one proposal per explored config");
    // The optimizer must have reported leaving initial sampling.
    assert!(
        phase_transitions.iter().any(|(from, _)| *from == "initial-sampling"),
        "no phase transition out of initial sampling: {phase_transitions:?}"
    );
}

#[test]
fn live_session_emits_parseable_jsonl_trace() {
    let path = std::env::temp_dir().join(format!("autopn-trace-{}.jsonl", std::process::id()));

    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(1, 1),
        worker_threads: 2,
        ..StmConfig::default()
    });
    let wl = Arc::new(ArrayWorkload::new(
        &stm,
        "trace-live",
        ArrayParams { size: 128, write_fraction: 0.5, chunks: 2 },
    ));
    let mut system = LiveStmSystem::start(stm.clone(), wl, 4).expect("spawn live workers");

    // Subscribe the JSONL sink on the STM's own bus so runtime events
    // (reconfigure, tx commits, semaphore waits) and controller events
    // (session/window) interleave in one stream.
    let trace = system.trace_bus().clone();
    trace.subscribe(Arc::new(JsonlSink::create(&path).expect("create trace file")));

    let mut tuner = AutoPn::new(SearchSpace::new(4), AutoPnConfig::default());
    let mut policy = AdaptiveMonitor::new(0.25, 4);
    let outcome = Controller::tune_traced(&mut system, &mut tuner, &mut policy, &trace);
    system.shutdown();
    trace.flush();

    let text = std::fs::read_to_string(&path).expect("read trace file");
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "trace file is empty");

    let known = [
        "tx_begin",
        "tx_commit",
        "tx_abort",
        "sem_wait",
        "commit_stripe_contention",
        "read_path",
        "reconfigure",
        "window_open",
        "window_sample",
        "window_close",
        "proposal",
        "optimizer_phase",
        "session_start",
        "session_end",
        "change_detected",
        "cm_decision",
        "mem_pressure",
        "mem_degraded",
        "sched_batch",
    ];
    let mut seen = std::collections::HashSet::new();
    let mut saw_session_end = false;
    for (i, line) in text.lines().enumerate() {
        let v = serde_json::parse_value_str(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON ({e}): {line}", i + 1));
        let ev = v.get("ev").and_then(|x| x.as_str()).expect("every event has an \"ev\" tag");
        assert!(known.contains(&ev), "unknown event tag {ev:?}");
        seen.insert(ev.to_string());
        // Application threads run until `shutdown()`, so runtime events may
        // trail the session close — but no *controller* event may.
        let controller_ev = matches!(
            ev,
            "session_start"
                | "window_open"
                | "window_sample"
                | "window_close"
                | "proposal"
                | "optimizer_phase"
        );
        assert!(!(saw_session_end && controller_ev), "controller event {ev:?} after session_end");
        // Spot-check per-event schema invariants.
        match ev {
            "reconfigure" => {
                let to = v.get("to").and_then(|x| x.as_arr()).expect("reconfigure.to");
                let t = to[0].as_u64().unwrap();
                let c = to[1].as_u64().unwrap();
                assert!(t * c <= 4, "reconfigure to ({t},{c}) exceeds core budget");
            }
            "window_close" => {
                assert!(v.get("commits").and_then(|x| x.as_u64()).is_some());
                assert!(v.get("throughput").is_some());
            }
            "session_end" => {
                let t = v.get("best_t").and_then(|x| x.as_u64()).unwrap();
                let c = v.get("best_c").and_then(|x| x.as_u64()).unwrap();
                assert_eq!((t as usize, c as usize), (outcome.best.t, outcome.best.c));
                saw_session_end = true;
            }
            _ => {}
        }
    }
    assert!(saw_session_end, "no session_end in the live trace");
    for must in [
        "session_start",
        "session_end",
        "window_open",
        "window_close",
        "proposal",
        "reconfigure",
        "tx_begin",
        "tx_commit",
    ] {
        assert!(seen.contains(must), "no {must:?} event in the live trace; saw {seen:?}");
    }
}
