//! End-to-end integration on the *live* PN-STM: real threads, wall-clock
//! monitoring, semaphore actuation — the full Fig. 2 architecture.

use std::sync::Arc;

use autopn::monitor::AdaptiveMonitor;
use autopn::{Actuator, AutoPn, AutoPnConfig, Config, Controller, PnstmActuator, SearchSpace};
use pnstm::{ParallelismDegree, Stm, StmConfig};
use workloads::array::{ArrayParams, ArrayWorkload};
use workloads::vacation::{VacationParams, VacationWorkload};
use workloads::LiveStmSystem;

fn live_stm() -> Stm {
    Stm::new(StmConfig {
        degree: ParallelismDegree::new(1, 1),
        worker_threads: 2,
        ..StmConfig::default()
    })
}

#[test]
fn live_array_tuning_completes_and_preserves_consistency() {
    let stm = live_stm();
    let wl = Arc::new(ArrayWorkload::new(
        &stm,
        "it-array",
        ArrayParams { size: 256, write_fraction: 1.0, chunks: 4 },
    ));
    let checksum_before = wl.checksum(&stm);

    let mut system = LiveStmSystem::start(stm.clone(), wl.clone(), 4).expect("spawn live workers");
    let mut tuner = AutoPn::new(SearchSpace::new(4), AutoPnConfig::default());
    // Loose CV so the test stays fast on tiny CI machines.
    let mut policy = AdaptiveMonitor::new(0.25, 4);
    let outcome = Controller::tune(&mut system, &mut tuner, &mut policy);
    system.shutdown();

    assert!(!outcome.explored.is_empty());
    assert!(SearchSpace::new(4).contains(outcome.best));
    assert_eq!(
        stm.degree(),
        ParallelismDegree::new(outcome.best.t, outcome.best.c),
        "the actuator must leave the chosen configuration applied"
    );
    // write_fraction 1.0: every commit adds exactly `size` to the checksum.
    let commits = stm.stats().snapshot().top_commits as i64;
    assert_eq!(
        wl.checksum(&stm),
        checksum_before + 256 * commits,
        "serializability violated under live tuning"
    );
}

#[test]
fn live_vacation_under_reconfiguration_keeps_invariants() {
    let stm = live_stm();
    let wl = Arc::new(VacationWorkload::new(
        &stm,
        "it-vacation",
        VacationParams { relations: 32, customers: 8, ..VacationParams::default() },
    ));
    let mut system = LiveStmSystem::start(stm.clone(), wl.clone(), 3).expect("spawn live workers");

    // Hammer reconfigurations while transactions fly.
    let mut actuator = PnstmActuator::new(stm.clone());
    for i in 0..20 {
        actuator.apply(Config::new(1 + i % 4, 1 + (i / 2) % 3));
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    system.shutdown();

    wl.manager().check_invariants(&stm).expect("vacation invariants");
    assert!(stm.stats().snapshot().top_commits > 0);
}

#[test]
fn live_commit_stream_feeds_monitor_windows() {
    let stm = live_stm();
    let wl = Arc::new(ArrayWorkload::new(
        &stm,
        "it-stream",
        ArrayParams { size: 64, write_fraction: 0.0, chunks: 2 },
    ));
    let mut system = LiveStmSystem::start(stm.clone(), wl, 2).expect("spawn live workers");
    let mut policy = AdaptiveMonitor::new(0.30, 3);
    let m = Controller::measure(&mut system, &mut policy);
    system.shutdown();
    assert!(m.commits >= 3);
    assert!(m.throughput > 0.0);
    assert!(!m.timed_out);
}
