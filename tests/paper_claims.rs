//! Miniature, fast versions of the paper's qualitative claims — the same
//! comparisons the `bench` binaries run at full scale, asserted here so
//! regressions fail CI.

use std::time::Duration;

use autopn::{AutoPn, AutoPnConfig, InitialSampling, SearchSpace, StopCondition, Tuner};
use baselines::{GaParams, GeneticAlgorithm, HillClimbing, RandomSearch};
use simtm::{MachineParams, Surface, SurfaceBuilder};
use workloads::replay;

/// A small but structured trace: interior optimum, contention cliff at high
/// t, nesting overhead at high c — built once per test binary.
fn reference_surface() -> Surface {
    let wl = simtm::SimWorkload::builder("claims")
        .top_work_us(40.0)
        .child_count(6)
        .child_work_us(100.0)
        .top_footprint(20, 6)
        .child_footprint(10, 3)
        .data_items(4_000)
        .tree_private_fraction(0.6)
        .build();
    SurfaceBuilder::new(wl, MachineParams::new(16))
        .reps(4)
        .warmup(Duration::from_millis(10))
        .measure(Duration::from_millis(150))
        .build()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn final_dfo_over_reps(
    surface: &Surface,
    mut make: impl FnMut(u64) -> Box<dyn Tuner>,
    reps: usize,
) -> f64 {
    let dfos: Vec<f64> = (0..reps)
        .map(|r| {
            let mut tuner = make(100 + r as u64 * 31);
            replay(tuner.as_mut(), surface, r).final_dfo
        })
        .collect();
    mean(&dfos)
}

#[test]
fn autopn_beats_random_and_hill_climbing() {
    let surface = reference_surface();
    let space = SearchSpace::new(16);
    let autopn = final_dfo_over_reps(
        &surface,
        |s| {
            Box::new(AutoPn::new(
                space.clone(),
                AutoPnConfig { seed: s, ..AutoPnConfig::default() },
            ))
        },
        6,
    );
    let random =
        final_dfo_over_reps(&surface, |s| Box::new(RandomSearch::new(space.clone(), s)), 6);
    let hc = final_dfo_over_reps(&surface, |s| Box::new(HillClimbing::new(space.clone(), s)), 6);
    // On this small 16-core space random search can get lucky; require
    // non-inferiority to random and strict superiority to hill climbing
    // (the full-scale ordering is asserted by the fig5 experiment binary).
    assert!(autopn <= random + 0.5, "AutoPN {autopn:.1}% must not lose to random {random:.1}%");
    assert!(autopn < hc, "AutoPN {autopn:.1}% must beat hill climbing {hc:.1}%");
    assert!(autopn < 10.0, "AutoPN should be close to optimum, got {autopn:.1}%");
}

#[test]
fn autopn_explores_fewer_configs_than_ga_at_similar_accuracy() {
    let surface = reference_surface();
    let space = SearchSpace::new(16);
    let mut autopn_expl = Vec::new();
    let mut ga_expl = Vec::new();
    for r in 0..5u64 {
        let mut a = AutoPn::new(space.clone(), AutoPnConfig { seed: r, ..AutoPnConfig::default() });
        autopn_expl.push(replay(&mut a, &surface, r as usize).explorations() as f64);
        let mut g = GeneticAlgorithm::new(space.clone(), GaParams::default(), r);
        ga_expl.push(replay(&mut g, &surface, r as usize).explorations() as f64);
    }
    assert!(
        mean(&autopn_expl) < mean(&ga_expl),
        "AutoPN ({:.1}) must explore less than GA ({:.1})",
        mean(&autopn_expl),
        mean(&ga_expl)
    );
}

#[test]
fn hill_climb_refinement_does_not_hurt_and_usually_helps() {
    let surface = reference_surface();
    let space = SearchSpace::new(16);
    let with_hc = final_dfo_over_reps(
        &surface,
        |s| {
            Box::new(AutoPn::new(
                space.clone(),
                AutoPnConfig { seed: s, ..AutoPnConfig::default() },
            ))
        },
        8,
    );
    let without_hc = final_dfo_over_reps(
        &surface,
        |s| {
            Box::new(AutoPn::new(
                space.clone(),
                AutoPnConfig { seed: s, hill_climb: false, ..AutoPnConfig::default() },
            ))
        },
        8,
    );
    assert!(
        with_hc <= without_hc + 0.5,
        "refinement must not degrade accuracy: {with_hc:.2}% vs {without_hc:.2}%"
    );
}

#[test]
fn biased_9_matches_or_beats_smaller_biased_samples() {
    let surface = reference_surface();
    let space = SearchSpace::new(16);
    let run = |k: usize| {
        final_dfo_over_reps(
            &surface,
            |s| {
                Box::new(AutoPn::new(
                    space.clone(),
                    AutoPnConfig {
                        seed: s,
                        init: InitialSampling::Biased(k),
                        stop: StopCondition::EiBelow(0.10),
                        hill_climb: false,
                        ..AutoPnConfig::default()
                    },
                ))
            },
            8,
        )
    };
    let (b3, b9) = (run(3), run(9));
    assert!(
        b9 <= b3 + 1.0,
        "the full 9-point boundary sample ({b9:.1}%) must not lose to 3 pivots ({b3:.1}%)"
    );
}

#[test]
fn search_space_matches_paper_cardinality() {
    assert_eq!(SearchSpace::new(48).len(), 198);
}

#[test]
fn stubborn_stopping_wastes_explorations() {
    let surface = reference_surface();
    let space = SearchSpace::new(16);
    let (opt_cfg, _) = surface.optimum();
    let target = surface.mean(opt_cfg);
    let mut expl_ei = Vec::new();
    let mut expl_stubborn = Vec::new();
    for r in 0..5u64 {
        let mut ei = AutoPn::new(
            space.clone(),
            AutoPnConfig { seed: r, hill_climb: false, ..AutoPnConfig::default() },
        );
        expl_ei.push(replay(&mut ei, &surface, r as usize).explorations() as f64);
        let mut stubborn = AutoPn::new(
            space.clone(),
            AutoPnConfig {
                seed: r,
                hill_climb: false,
                stop: StopCondition::Stubborn { target, tolerance: 0.02 },
                ..AutoPnConfig::default()
            },
        );
        expl_stubborn.push(replay(&mut stubborn, &surface, r as usize).explorations() as f64);
    }
    assert!(
        mean(&expl_stubborn) > mean(&expl_ei),
        "stubborn ({:.1}) must explore more than EI<10% ({:.1})",
        mean(&expl_stubborn),
        mean(&expl_ei)
    );
}
