//! Contention-management integration: the livelock regression the CM ladder
//! exists to fix, and the `{policy} × (t, c)` co-tuning path end to end.
//!
//! The regression scenario is the flip side of what `tests/chaos.rs` fences
//! off with an injection budget: its stripe-hold shutdown test runs seed 51
//! with 2 ms holds capped at 400 injections against a 4-worker
//! `ArrayWorkload`, and keeps that budget so it stays a pure shutdown
//! check. Here an *unbudgeted* p = 1.0 `CommitHold` plan (seed 97, 1 ms
//! holds) inflates every commit's stripe-held window so far that two
//! dedicated writers retrying immediately keep aborting each other. The mutual
//! abort needs writers whose write stripes are disjoint but whose read sets
//! overlap the other's writes: stripe acquisition itself is blocking (and
//! sorted, so it alternates), but `read_valid` rejects any read whose stripe
//! another committer currently holds — with every hold inflated to 1 ms,
//! each writer's validation lands inside the other's hold, indefinitely.
//! (Measured here before the CM landed: >13 000 aborts and neither writer
//! finishing 10 commits in 8 s.) Under a waiting rung (ExpBackoff, Greedy)
//! the losers desynchronize and the pair drains in tens of milliseconds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use autopn::monitor::AdaptiveMonitor;
use autopn::{
    sweep_policies, AutoPn, AutoPnConfig, CmPolicy, FaultKind, FaultPlan, FaultRule, SearchSpace,
    TuneOptions,
};
use pnstm::{stripe_of, CmMode, ParallelismDegree, Stm, StmConfig, TraceEvent};
use workloads::array::{ArrayParams, ArrayWorkload};
use workloads::LiveStmSystem;

/// Two writers, each read-modify-writing its own box while also reading the
/// other's, while every commit stalls `hold` on its held stripe locks
/// (p = 1.0, no budget). The boxes live on distinct stripes so commits never
/// queue on a common lock — each writer instead cross-validates against the
/// other's held stripe. Returns once both writers have landed `quota`
/// commits each, or panics if `deadline` passes first.
fn run_two_writer_storm(mode: CmMode, hold: Duration, quota: u64, deadline: Duration) -> Stm {
    let plan = Arc::new(FaultPlan::new(97).with_rule(
        FaultKind::CommitHold,
        FaultRule::with_probability(1.0).delay_ns(hold.as_nanos() as u64),
    ));
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(2, 1),
        worker_threads: 2,
        cm_mode: mode,
        fault: Some(plan),
        ..StmConfig::default()
    });
    let a = stm.new_vbox(0u64);
    let mut b = stm.new_vbox(0u64);
    while stripe_of(b.id()) == stripe_of(a.id()) {
        b = stm.new_vbox(0u64);
    }
    let done = Arc::new(AtomicUsize::new(0));
    let mut writers = Vec::new();
    for me in 0..2usize {
        let stm = stm.clone();
        let (mine, other) = if me == 0 { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
        let done = Arc::clone(&done);
        writers.push(std::thread::spawn(move || {
            for _ in 0..quota {
                stm.atomic({
                    let mine = mine.clone();
                    let other = other.clone();
                    move |tx| {
                        // The read of `other` is what the opposing commit's
                        // held stripe invalidates.
                        let _peer = tx.read(&other);
                        let v = tx.read(&mine);
                        tx.write(&mine, v + 1);
                        Ok(())
                    }
                })
                .expect("writer commit");
            }
            done.fetch_add(1, Ordering::AcqRel);
        }));
    }
    let start = Instant::now();
    while done.load(Ordering::Acquire) < 2 {
        assert!(
            start.elapsed() < deadline,
            "two writers livelocked under unbudgeted commit holds ({mode}): \
             {}/{} commits after {:?}",
            stm.stats().snapshot().top_commits,
            2 * quota,
            start.elapsed()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(stm.read_atomic(&a) + stm.read_atomic(&b), 2 * quota);
    stm
}

#[test]
fn unbudgeted_commit_holds_drain_under_exp_backoff() {
    let stm = run_two_writer_storm(
        CmMode::ExpBackoff,
        Duration::from_millis(1),
        10,
        Duration::from_secs(20),
    );
    let snap = stm.stats().snapshot();
    assert!(
        snap.cm_policy_waits[CmMode::ExpBackoff.index()] > 0 || snap.top_aborts == 0,
        "conflicting writers must have waited under ExpBackoff: {snap:?}"
    );
}

#[test]
fn unbudgeted_commit_holds_drain_under_greedy() {
    run_two_writer_storm(CmMode::Greedy, Duration::from_millis(1), 10, Duration::from_secs(20));
}

#[test]
fn policy_sweep_co_tunes_cm_with_parallelism_degree() {
    // End-to-end `{policy} × (t, c)`: a live STM under a real workload, one
    // full AutoPN session per CM policy, winner re-enacted on the system.
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(1, 1),
        worker_threads: 2,
        ..StmConfig::default()
    });
    let sink = Arc::new(pnstm::TestSink::default());
    let trace = stm.trace_bus().clone();
    trace.subscribe(sink.clone());
    let wl = Arc::new(ArrayWorkload::new(
        &stm,
        "contention-array",
        ArrayParams { size: 64, write_fraction: 0.8, chunks: 2 },
    ));
    let mut system = LiveStmSystem::start(stm.clone(), wl, 3).expect("spawn live workers");
    let policies = [CmPolicy::Immediate, CmPolicy::ExpBackoff, CmPolicy::Karma, CmPolicy::Greedy];
    let outcome = sweep_policies(
        &mut system,
        &policies,
        &mut |p| stm.set_cm_mode(p.into()),
        &mut |_| Box::new(AutoPn::new(SearchSpace::new(4), AutoPnConfig::default())),
        &mut |_| Box::new(AdaptiveMonitor::new(0.30, 3)),
        &trace,
        &TuneOptions { apply_backoff: Duration::from_micros(50), ..TuneOptions::default() },
    );
    system.shutdown();

    assert_eq!(outcome.sessions.len(), policies.len(), "one full session per policy");
    for (p, session) in &outcome.sessions {
        assert!(!session.explored.is_empty(), "the {p} session must have measured configurations");
    }
    assert!(outcome.best_throughput > 0.0, "the winning triple was actually measured");
    // The winning policy was left in force on the live STM.
    assert_eq!(CmPolicy::from(stm.cm_mode()), outcome.best_policy);
    // The trace carries one bracketed session per policy.
    let events = sink.events();
    let starts = events.iter().filter(|e| matches!(e, TraceEvent::SessionStart { .. })).count();
    let ends = events.iter().filter(|e| matches!(e, TraceEvent::SessionEnd { .. })).count();
    assert_eq!(starts, policies.len());
    assert_eq!(ends, policies.len());
}
