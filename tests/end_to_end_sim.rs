//! End-to-end integration: AutoPN tuning complete simulated systems, across
//! crates (autopn + simtm + workloads).

use std::time::Duration;

use autopn::monitor::{AdaptiveMonitor, CommitCountMonitor};
use autopn::{AutoPn, AutoPnConfig, Config, Controller, SearchSpace, TunableSystem};
use simtm::{MachineParams, SimWorkload, SurfaceBuilder};
use workloads::SimSystem;

fn small_machine() -> MachineParams {
    MachineParams::new(12)
}

fn nested_workload() -> SimWorkload {
    SimWorkload::builder("e2e-nested")
        .top_work_us(30.0)
        .child_count(6)
        .child_work_us(120.0)
        .top_footprint(8, 2)
        .child_footprint(12, 2)
        .data_items(15_000)
        .build()
}

/// Ground truth for the workload via exhaustive evaluation.
fn exhaustive_best(wl: &SimWorkload, machine: &MachineParams) -> (Config, f64) {
    let surface = SurfaceBuilder::new(wl.clone(), *machine)
        .reps(3)
        .warmup(Duration::from_millis(10))
        .measure(Duration::from_millis(120))
        .build();
    let ((t, c), tp) = surface.optimum();
    (Config::new(t, c), tp)
}

#[test]
fn autopn_tunes_simulated_system_close_to_optimum() {
    let machine = small_machine();
    let wl = nested_workload();
    let (best_cfg, best_tp) = exhaustive_best(&wl, &machine);

    let mut sys = SimSystem::new(&wl, &machine, 11);
    let mut tuner = AutoPn::new(SearchSpace::new(machine.n_cores), AutoPnConfig::default());
    let mut policy = AdaptiveMonitor::default();
    let outcome = Controller::tune(&mut sys, &mut tuner, &mut policy);

    // Verify the tuner's pick against ground truth (generous tolerance: the
    // monitor samples are noisier than the exhaustive trace).
    let mut verify = SimSystem::new(&wl, &machine, 99);
    verify.apply(outcome.best);
    verify.advance(Duration::from_millis(20));
    let tuned_tp = verify.advance(Duration::from_millis(200)).throughput();
    assert!(
        tuned_tp > 0.7 * best_tp,
        "tuned {cfg} -> {tuned_tp:.0} txn/s, exhaustive best {best_cfg} -> {best_tp:.0}",
        cfg = outcome.best
    );
    assert!(
        outcome.explored.len() < SearchSpace::new(machine.n_cores).len(),
        "tuning must not degenerate into exhaustive search"
    );
}

#[test]
fn tuning_is_deterministic_given_seeds() {
    let machine = small_machine();
    let wl = nested_workload();
    let run = || {
        let mut sys = SimSystem::new(&wl, &machine, 5);
        let mut tuner = AutoPn::new(
            SearchSpace::new(machine.n_cores),
            AutoPnConfig { seed: 1234, ..AutoPnConfig::default() },
        );
        let mut policy = AdaptiveMonitor::default();
        let outcome = Controller::tune(&mut sys, &mut tuner, &mut policy);
        (outcome.best, outcome.explored.len(), outcome.elapsed_ns)
    };
    assert_eq!(run(), run(), "same seeds must reproduce the session exactly");
}

#[test]
fn adaptive_timeout_bounds_windows_on_slow_configs() {
    // A slow workload (50 ms per sequential transaction): WPNOC-30 without a
    // timeout burns 30 commits per window whatever the configuration's
    // speed; the adaptive policy's 1/T(1,1) timeout cuts windows on slow
    // configurations after a couple of commits, so the whole session takes
    // far less virtual time per window (§VI's robustness argument).
    let machine = small_machine();
    let wl = SimWorkload::builder("e2e-slow")
        .top_work_us(50_000.0) // 50 ms per transaction
        .top_footprint(10, 3)
        .data_items(2_000)
        .build();

    let session = |policy: &mut dyn autopn::monitor::MonitorPolicy| {
        let mut sys = SimSystem::new(&wl, &machine, 3);
        let mut tuner = AutoPn::new(
            SearchSpace::new(machine.n_cores),
            AutoPnConfig { seed: 77, ..AutoPnConfig::default() },
        );
        let outcome = Controller::tune(&mut sys, &mut tuner, policy);
        (outcome.elapsed_ns, outcome.explored.len())
    };

    let (adaptive_ns, adaptive_expl) = session(&mut AdaptiveMonitor::default());
    let (wpnoc_ns, wpnoc_expl) = session(&mut CommitCountMonitor::new(30)); // no timeout
    let adaptive_per_window = adaptive_ns as f64 / adaptive_expl as f64;
    let wpnoc_per_window = wpnoc_ns as f64 / wpnoc_expl as f64;
    assert!(
        adaptive_per_window < 0.5 * wpnoc_per_window,
        "adaptive {:.0} ms/window should be well under WPNOC-30-no-timeout {:.0} ms/window",
        adaptive_per_window / 1e6,
        wpnoc_per_window / 1e6
    );
}

#[test]
fn commit_count_policy_with_timeout_completes() {
    let machine = small_machine();
    let wl = nested_workload();
    let mut sys = SimSystem::new(&wl, &machine, 17);
    let mut tuner = AutoPn::new(SearchSpace::new(machine.n_cores), AutoPnConfig::default());
    let mut policy = CommitCountMonitor::new(10).with_adaptive_timeout();
    let outcome = Controller::tune(&mut sys, &mut tuner, &mut policy);
    assert!(outcome.best_throughput > 0.0);
    // Every non-timed-out window saw exactly 10 commits.
    for (_, m) in &outcome.explored {
        if !m.timed_out {
            assert_eq!(m.commits, 10);
        }
    }
}

#[test]
fn reconfiguration_during_tuning_is_visible_in_the_simulator() {
    let machine = small_machine();
    let wl = nested_workload();
    let mut sys = SimSystem::new(&wl, &machine, 23);
    sys.apply(Config::new(4, 3));
    assert_eq!(sys.simulation().degree(), (4, 3));
    sys.apply(Config::new(1, 1));
    assert_eq!(sys.simulation().degree(), (1, 1));
    let t11 = sys.advance(Duration::from_millis(150)).throughput();
    sys.apply(Config::new(4, 3));
    sys.advance(Duration::from_millis(30));
    let tuned = sys.advance(Duration::from_millis(150)).throughput();
    assert!(tuned > 1.5 * t11, "(4,3) {tuned:.0} should clearly beat (1,1) {t11:.0}");
}
