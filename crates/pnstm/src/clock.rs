//! Global version clock and the active-snapshot registry used for garbage
//! collection of old box versions.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Monotonically increasing global version clock.
///
/// Version `0` is reserved for the initial value of every box, so every
/// snapshot (including one taken before any commit) can read every box.
///
/// The clock is split into two counters so the striped commit path can
/// overlap installation across committers while keeping the multi-version
/// publication invariant — *once `now()` returns `V`, the writes of every
/// commit `<= V` are installed*:
///
/// - `reserve` hands out commit versions ([`GlobalClock::reserve`]); the
///   reservation order is the serialization order of top-level commits.
/// - `visible` trails `reserve` and only advances contiguously
///   ([`GlobalClock::publish`]): version `V` becomes visible after `V`'s
///   writes are installed **and** `V-1` is visible. A committer that aborts
///   after reserving publishes its version as a no-op to keep the sequence
///   gap-free.
#[derive(Debug, Default)]
pub struct GlobalClock {
    reserve: AtomicU64,
    visible: AtomicU64,
}

impl GlobalClock {
    /// Create a clock at version 0.
    pub fn new() -> Self {
        Self { reserve: AtomicU64::new(0), visible: AtomicU64::new(0) }
    }

    /// Current global version; new transactions snapshot at this version.
    #[inline]
    pub fn now(&self) -> u64 {
        self.visible.load(Ordering::Acquire)
    }

    /// Advance the clock by one and return the new version.
    ///
    /// Legacy single-committer advance used by the global-lock commit path:
    /// only called while holding the commit lock, so bumping both counters
    /// is not racy with other committers; `AcqRel` publishes the new version
    /// to transaction-begin loads.
    #[inline]
    pub fn tick(&self) -> u64 {
        let v = self.reserve.fetch_add(1, Ordering::AcqRel) + 1;
        self.visible.store(v, Ordering::Release);
        v
    }

    /// Reserve the next commit version (striped path). The `AcqRel`
    /// read-modify-write chains all reservations into a single modification
    /// order: a committer reserving `V` observes every write that committers
    /// of versions `< V` performed before their own reservations.
    #[inline]
    pub fn reserve(&self) -> u64 {
        self.reserve.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Make reserved version `v` visible. Blocks (spinning) until `v - 1` is
    /// visible so the visible clock only ever advances contiguously. Safe
    /// against deadlock because the striped path acquires all stripe locks
    /// *before* reserving: an earlier reserver can never be waiting on a
    /// later reserver's locks.
    #[inline]
    pub fn publish(&self, v: u64) {
        while self.visible.load(Ordering::Acquire) != v - 1 {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        self.visible.store(v, Ordering::Release);
    }
}

/// Lease-disabled sentinel for [`SnapshotRegistry::set_lease`] (nanoseconds).
const NO_LEASE: u64 = u64::MAX;

/// One registered snapshot: its lease deadline (if leased) and the eviction
/// flag shared with the owning [`SnapshotGuard`].
#[derive(Debug)]
struct SnapEntry {
    /// Lease deadline. `None` means the registration never expires (the
    /// pre-lease behaviour, still used by raw [`SnapshotRegistry::register`]).
    deadline: Option<Instant>,
    /// Set (by the watermark computation) once the lease expired and the
    /// registry stopped counting this snapshot as pinning. The owning
    /// transaction polls this through its guard and must abort.
    evicted: Arc<AtomicBool>,
}

impl SnapEntry {
    /// Whether this entry still pins the watermark at time `now`. Expired
    /// entries are marked evicted as a side effect (idempotent).
    fn pins(&self, now: Instant, newly_evicted: &mut usize) -> bool {
        if self.evicted.load(Ordering::Relaxed) {
            return false;
        }
        match self.deadline {
            Some(d) if d <= now => {
                self.evicted.store(true, Ordering::Release);
                *newly_evicted += 1;
                false
            }
            _ => true,
        }
    }
}

/// Registry of snapshot versions currently in use by live transactions.
///
/// Multi-version STMs must retain any box version that a live snapshot may
/// still read. The registry is a refcounted multiset of active snapshot
/// versions; its minimum is the GC watermark: every box can drop versions
/// strictly older than the newest version `<=` watermark.
///
/// **Leases.** Each registration taken through
/// [`SnapshotRegistry::register_current`] carries a lease deadline (from
/// [`SnapshotRegistry::set_lease`]; disabled by default). A lease-expired
/// snapshot no longer pins the watermark: the next watermark computation
/// marks it *evicted* and skips it, so one stalled reader cannot hold the
/// version heap hostage. The owning transaction observes the eviction through
/// [`SnapshotGuard::is_evicted`] and must abort (`StmError::SnapshotEvicted`)
/// rather than trust any further reads.
#[derive(Debug)]
pub struct SnapshotRegistry {
    active: Mutex<BTreeMap<u64, Vec<SnapEntry>>>,
    /// Current lease duration in nanoseconds for new leased registrations;
    /// [`NO_LEASE`] disables leasing. Runtime-adjustable: the memory ladder
    /// shortens it under pressure.
    lease_ns: AtomicU64,
    /// Total snapshots ever evicted (monotonic; mirrored into stats by the
    /// GC driver via the watermark return value).
    evictions: AtomicU64,
}

impl Default for SnapshotRegistry {
    fn default() -> Self {
        Self {
            active: Mutex::new(BTreeMap::new()),
            lease_ns: AtomicU64::new(NO_LEASE),
            evictions: AtomicU64::new(0),
        }
    }
}

impl SnapshotRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the lease duration applied to *subsequent* leased registrations;
    /// `None` disables leasing. Existing registrations keep their deadlines
    /// (see [`SnapshotRegistry::clamp_deadlines`] for the urgent path).
    pub fn set_lease(&self, lease: Option<Duration>) {
        let ns = lease.map(|d| u64::try_from(d.as_nanos()).unwrap_or(NO_LEASE)).unwrap_or(NO_LEASE);
        self.lease_ns.store(ns, Ordering::Relaxed);
    }

    /// The lease currently applied to new leased registrations.
    pub fn lease(&self) -> Option<Duration> {
        match self.lease_ns.load(Ordering::Relaxed) {
            NO_LEASE => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Clamp every *leased* registration's deadline to at most
    /// `max_remaining` from now. The urgent rung of the memory ladder uses
    /// this so already-running stragglers feel a shortened lease too;
    /// unleased registrations (deadline `None`) are left alone.
    pub fn clamp_deadlines(&self, max_remaining: Duration) {
        let cap = Instant::now() + max_remaining;
        let mut map = self.active.lock();
        for entries in map.values_mut() {
            for e in entries.iter_mut() {
                if let Some(d) = e.deadline {
                    e.deadline = Some(d.min(cap));
                }
            }
        }
    }

    fn current_deadline(&self) -> Option<Instant> {
        match self.lease_ns.load(Ordering::Relaxed) {
            NO_LEASE => None,
            ns => Some(Instant::now() + Duration::from_nanos(ns)),
        }
    }

    /// Register a transaction reading at `version`; returns a guard that
    /// deregisters on drop. Raw registrations are unleased (they never
    /// expire) — runtime snapshots go through
    /// [`SnapshotRegistry::register_current`], which leases.
    pub fn register(self: &Arc<Self>, version: u64) -> SnapshotGuard {
        let evicted = Arc::new(AtomicBool::new(false));
        let entry = SnapEntry { deadline: None, evicted: Arc::clone(&evicted) };
        self.active.lock().entry(version).or_default().push(entry);
        SnapshotGuard { registry: Arc::clone(self), version, evicted }
    }

    /// Register a transaction at `clock`'s *current* version, reading the
    /// clock while holding the registry lock, with the registry's current
    /// lease applied.
    ///
    /// This closes a race that [`SnapshotRegistry::register`] leaves open
    /// when the caller reads the clock itself: between the clock read and the
    /// registration, a GC can compute its watermark — not seeing the
    /// about-to-register snapshot — and prune the very versions that snapshot
    /// needs. Pairing this with [`SnapshotRegistry::gc_watermark`] (which
    /// reads the clock under the same lock) makes the two atomic with respect
    /// to each other: a watermark computed before our registration used a
    /// clock value `<=` the version we register (clock loads are coherent
    /// across the lock's release/acquire edge), and one computed after sees
    /// the registration.
    pub fn register_current(self: &Arc<Self>, clock: &GlobalClock) -> SnapshotGuard {
        let deadline = self.current_deadline();
        let evicted = Arc::new(AtomicBool::new(false));
        let mut map = self.active.lock();
        let version = clock.now();
        map.entry(version).or_default().push(SnapEntry { deadline, evicted: Arc::clone(&evicted) });
        drop(map);
        SnapshotGuard { registry: Arc::clone(self), version, evicted }
    }

    /// The GC watermark: the oldest version any live *or future* snapshot can
    /// read — `min(oldest unexpired registered, clock now)`, with the clock
    /// read under the registry lock (see
    /// [`SnapshotRegistry::register_current`]). Every box may drop versions
    /// strictly older than the newest entry `<=` this. Registrations whose
    /// lease has expired are marked evicted here and stop pinning.
    pub fn gc_watermark(&self, clock: &GlobalClock) -> u64 {
        self.gc_watermark_evicting(clock).0
    }

    /// [`SnapshotRegistry::gc_watermark`], also returning how many snapshots
    /// were newly marked evicted by this computation (for stats/tracing).
    pub fn gc_watermark_evicting(&self, clock: &GlobalClock) -> (u64, usize) {
        let mut newly_evicted = 0usize;
        let wall = Instant::now();
        let map = self.active.lock();
        let now = clock.now();
        let mut watermark = now;
        for (&version, entries) in map.iter() {
            if version >= watermark {
                break;
            }
            let mut pinning = false;
            for e in entries {
                // No early break: every expired entry of the version must be
                // marked so its owner observes the eviction.
                pinning |= e.pins(wall, &mut newly_evicted);
            }
            if pinning {
                watermark = version;
                break;
            }
        }
        drop(map);
        if newly_evicted > 0 {
            self.evictions.fetch_add(newly_evicted as u64, Ordering::Relaxed);
        }
        (watermark, newly_evicted)
    }

    /// Total snapshots evicted over the registry's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Oldest snapshot version still registered (evicted-but-undropped
    /// registrations included), if any transaction is live.
    pub fn min_active(&self) -> Option<u64> {
        self.active.lock().keys().next().copied()
    }

    /// Number of live registered snapshots (including evicted ones whose
    /// owners have not yet noticed and dropped their guards).
    pub fn live_count(&self) -> usize {
        self.active.lock().values().map(Vec::len).sum()
    }

    fn deregister(&self, version: u64, evicted: &Arc<AtomicBool>) {
        let mut map = self.active.lock();
        match map.get_mut(&version) {
            Some(entries) => {
                match entries.iter().position(|e| Arc::ptr_eq(&e.evicted, evicted)) {
                    Some(i) => {
                        entries.swap_remove(i);
                    }
                    None => debug_assert!(false, "deregistering unknown snapshot {version}"),
                }
                if entries.is_empty() {
                    map.remove(&version);
                }
            }
            None => debug_assert!(false, "deregistering unknown snapshot {version}"),
        }
    }
}

/// RAII guard keeping a snapshot version alive in the [`SnapshotRegistry`].
#[derive(Debug)]
pub struct SnapshotGuard {
    registry: Arc<SnapshotRegistry>,
    version: u64,
    evicted: Arc<AtomicBool>,
}

impl SnapshotGuard {
    /// The snapshot version this guard pins.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether the lease expired and the GC stopped honouring this snapshot.
    /// Once true, versions this snapshot needs may be pruned at any moment;
    /// the owning transaction must abort with `StmError::SnapshotEvicted`.
    pub fn is_evicted(&self) -> bool {
        self.evicted.load(Ordering::Acquire)
    }

    /// Shared eviction flag, for embedding in transaction state so the hot
    /// read path can poll it without holding the guard itself.
    pub fn evicted_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.evicted)
    }
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        self.registry.deregister(self.version, &self.evicted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_ticks() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn reserve_publish_is_contiguous_across_threads() {
        let c = Arc::new(GlobalClock::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    let v = c.reserve();
                    c.publish(v);
                    assert!(c.now() >= v, "publish({v}) must make v visible");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), 1000);
    }

    #[test]
    fn tick_interleaves_with_reserve_publish() {
        let c = GlobalClock::new();
        assert_eq!(c.tick(), 1);
        let v = c.reserve();
        assert_eq!(v, 2);
        assert_eq!(c.now(), 1, "reserved but unpublished version is invisible");
        c.publish(v);
        assert_eq!(c.now(), 2);
        assert_eq!(c.tick(), 3);
    }

    #[test]
    fn registry_tracks_min_active() {
        let r = Arc::new(SnapshotRegistry::new());
        assert_eq!(r.min_active(), None);
        let g5 = r.register(5);
        let g3 = r.register(3);
        let g3b = r.register(3);
        assert_eq!(r.min_active(), Some(3));
        assert_eq!(r.live_count(), 3);
        drop(g3);
        assert_eq!(r.min_active(), Some(3), "second refcount still pins 3");
        drop(g3b);
        assert_eq!(r.min_active(), Some(5));
        drop(g5);
        assert_eq!(r.min_active(), None);
        assert_eq!(r.live_count(), 0);
    }

    #[test]
    fn register_current_pins_the_clock_version_against_gc() {
        let r = Arc::new(SnapshotRegistry::new());
        let c = GlobalClock::new();
        c.tick();
        c.tick();
        let g = r.register_current(&c);
        assert_eq!(g.version(), 2);
        assert_eq!(r.min_active(), Some(2));
        c.tick();
        // The watermark can never exceed a live registered snapshot...
        assert_eq!(r.gc_watermark(&c), 2);
        drop(g);
        // ...and with none live it is the clock itself.
        assert_eq!(r.gc_watermark(&c), 3);
    }

    #[test]
    fn registry_guard_reports_version() {
        let r = Arc::new(SnapshotRegistry::new());
        let g = r.register(42);
        assert_eq!(g.version(), 42);
    }

    #[test]
    fn expired_lease_stops_pinning_and_marks_eviction() {
        let r = Arc::new(SnapshotRegistry::new());
        let c = GlobalClock::new();
        c.tick();
        r.set_lease(Some(Duration::from_millis(1)));
        assert_eq!(r.lease(), Some(Duration::from_millis(1)));
        let g = r.register_current(&c);
        assert_eq!(g.version(), 1);
        c.tick();
        assert_eq!(r.gc_watermark(&c), 1, "unexpired lease pins the watermark");
        std::thread::sleep(Duration::from_millis(10));
        let (wm, newly) = r.gc_watermark_evicting(&c);
        assert_eq!(wm, 2, "expired lease no longer pins");
        assert_eq!(newly, 1);
        assert!(g.is_evicted());
        assert_eq!(r.evictions(), 1);
        assert_eq!(r.gc_watermark_evicting(&c).1, 0, "eviction is marked once");
        // The registration itself lives until the guard drops.
        assert_eq!(r.live_count(), 1);
        drop(g);
        assert_eq!(r.live_count(), 0);
    }

    #[test]
    fn unleased_registrations_never_expire() {
        let r = Arc::new(SnapshotRegistry::new());
        let c = GlobalClock::new();
        c.tick();
        let g = r.register(1);
        c.tick();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(r.gc_watermark(&c), 1, "raw registrations pin forever");
        assert!(!g.is_evicted());
        drop(g);
        assert_eq!(r.gc_watermark(&c), 2);
    }

    #[test]
    fn clamp_deadlines_shortens_existing_leases() {
        let r = Arc::new(SnapshotRegistry::new());
        let c = GlobalClock::new();
        c.tick();
        r.set_lease(Some(Duration::from_secs(3600)));
        let g = r.register_current(&c);
        c.tick();
        assert_eq!(r.gc_watermark(&c), 1);
        r.clamp_deadlines(Duration::ZERO);
        assert_eq!(r.gc_watermark(&c), 2, "clamped lease expires immediately");
        assert!(g.is_evicted());
    }

    #[test]
    fn concurrent_register_deregister() {
        let r = Arc::new(SnapshotRegistry::new());
        let mut handles = vec![];
        for i in 0..8u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for j in 0..100 {
                    let g = r.register(i * 100 + j);
                    assert!(r.live_count() >= 1);
                    drop(g);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.live_count(), 0);
        assert_eq!(r.min_active(), None);
    }
}
