//! Global version clock and the active-snapshot registry used for garbage
//! collection of old box versions.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing global version clock.
///
/// Version `0` is reserved for the initial value of every box, so every
/// snapshot (including one taken before any commit) can read every box.
///
/// The clock is split into two counters so the striped commit path can
/// overlap installation across committers while keeping the multi-version
/// publication invariant — *once `now()` returns `V`, the writes of every
/// commit `<= V` are installed*:
///
/// - `reserve` hands out commit versions ([`GlobalClock::reserve`]); the
///   reservation order is the serialization order of top-level commits.
/// - `visible` trails `reserve` and only advances contiguously
///   ([`GlobalClock::publish`]): version `V` becomes visible after `V`'s
///   writes are installed **and** `V-1` is visible. A committer that aborts
///   after reserving publishes its version as a no-op to keep the sequence
///   gap-free.
#[derive(Debug, Default)]
pub struct GlobalClock {
    reserve: AtomicU64,
    visible: AtomicU64,
}

impl GlobalClock {
    /// Create a clock at version 0.
    pub fn new() -> Self {
        Self { reserve: AtomicU64::new(0), visible: AtomicU64::new(0) }
    }

    /// Current global version; new transactions snapshot at this version.
    #[inline]
    pub fn now(&self) -> u64 {
        self.visible.load(Ordering::Acquire)
    }

    /// Advance the clock by one and return the new version.
    ///
    /// Legacy single-committer advance used by the global-lock commit path:
    /// only called while holding the commit lock, so bumping both counters
    /// is not racy with other committers; `AcqRel` publishes the new version
    /// to transaction-begin loads.
    #[inline]
    pub fn tick(&self) -> u64 {
        let v = self.reserve.fetch_add(1, Ordering::AcqRel) + 1;
        self.visible.store(v, Ordering::Release);
        v
    }

    /// Reserve the next commit version (striped path). The `AcqRel`
    /// read-modify-write chains all reservations into a single modification
    /// order: a committer reserving `V` observes every write that committers
    /// of versions `< V` performed before their own reservations.
    #[inline]
    pub fn reserve(&self) -> u64 {
        self.reserve.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Make reserved version `v` visible. Blocks (spinning) until `v - 1` is
    /// visible so the visible clock only ever advances contiguously. Safe
    /// against deadlock because the striped path acquires all stripe locks
    /// *before* reserving: an earlier reserver can never be waiting on a
    /// later reserver's locks.
    #[inline]
    pub fn publish(&self, v: u64) {
        while self.visible.load(Ordering::Acquire) != v - 1 {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        self.visible.store(v, Ordering::Release);
    }
}

/// Registry of snapshot versions currently in use by live transactions.
///
/// Multi-version STMs must retain any box version that a live snapshot may
/// still read. The registry is a refcounted multiset of active snapshot
/// versions; its minimum is the GC watermark: every box can drop versions
/// strictly older than the newest version `<=` watermark.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    active: Mutex<BTreeMap<u64, usize>>,
}

impl SnapshotRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a transaction reading at `version`; returns a guard that
    /// deregisters on drop.
    pub fn register(self: &Arc<Self>, version: u64) -> SnapshotGuard {
        *self.active.lock().entry(version).or_insert(0) += 1;
        SnapshotGuard { registry: Arc::clone(self), version }
    }

    /// Register a transaction at `clock`'s *current* version, reading the
    /// clock while holding the registry lock.
    ///
    /// This closes a race that [`SnapshotRegistry::register`] leaves open
    /// when the caller reads the clock itself: between the clock read and the
    /// registration, a GC can compute its watermark — not seeing the
    /// about-to-register snapshot — and prune the very versions that snapshot
    /// needs. Pairing this with [`SnapshotRegistry::gc_watermark`] (which
    /// reads the clock under the same lock) makes the two atomic with respect
    /// to each other: a watermark computed before our registration used a
    /// clock value `<=` the version we register (clock loads are coherent
    /// across the lock's release/acquire edge), and one computed after sees
    /// the registration.
    pub fn register_current(self: &Arc<Self>, clock: &GlobalClock) -> SnapshotGuard {
        let mut map = self.active.lock();
        let version = clock.now();
        *map.entry(version).or_insert(0) += 1;
        drop(map);
        SnapshotGuard { registry: Arc::clone(self), version }
    }

    /// The GC watermark: the oldest version any live *or future* snapshot can
    /// read — `min(oldest registered, clock now)`, with the clock read under
    /// the registry lock (see [`SnapshotRegistry::register_current`]). Every
    /// box may drop versions strictly older than the newest entry `<=` this.
    pub fn gc_watermark(&self, clock: &GlobalClock) -> u64 {
        let map = self.active.lock();
        let now = clock.now();
        map.keys().next().map(|&m| m.min(now)).unwrap_or(now)
    }

    /// Oldest snapshot version still in use, if any transaction is live.
    pub fn min_active(&self) -> Option<u64> {
        self.active.lock().keys().next().copied()
    }

    /// Number of live registered snapshots.
    pub fn live_count(&self) -> usize {
        self.active.lock().values().sum()
    }

    fn deregister(&self, version: u64) {
        let mut map = self.active.lock();
        match map.get_mut(&version) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                map.remove(&version);
            }
            None => debug_assert!(false, "deregistering unknown snapshot {version}"),
        }
    }
}

/// RAII guard keeping a snapshot version alive in the [`SnapshotRegistry`].
#[derive(Debug)]
pub struct SnapshotGuard {
    registry: Arc<SnapshotRegistry>,
    version: u64,
}

impl SnapshotGuard {
    /// The snapshot version this guard pins.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        self.registry.deregister(self.version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_ticks() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn reserve_publish_is_contiguous_across_threads() {
        let c = Arc::new(GlobalClock::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    let v = c.reserve();
                    c.publish(v);
                    assert!(c.now() >= v, "publish({v}) must make v visible");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), 1000);
    }

    #[test]
    fn tick_interleaves_with_reserve_publish() {
        let c = GlobalClock::new();
        assert_eq!(c.tick(), 1);
        let v = c.reserve();
        assert_eq!(v, 2);
        assert_eq!(c.now(), 1, "reserved but unpublished version is invisible");
        c.publish(v);
        assert_eq!(c.now(), 2);
        assert_eq!(c.tick(), 3);
    }

    #[test]
    fn registry_tracks_min_active() {
        let r = Arc::new(SnapshotRegistry::new());
        assert_eq!(r.min_active(), None);
        let g5 = r.register(5);
        let g3 = r.register(3);
        let g3b = r.register(3);
        assert_eq!(r.min_active(), Some(3));
        assert_eq!(r.live_count(), 3);
        drop(g3);
        assert_eq!(r.min_active(), Some(3), "second refcount still pins 3");
        drop(g3b);
        assert_eq!(r.min_active(), Some(5));
        drop(g5);
        assert_eq!(r.min_active(), None);
        assert_eq!(r.live_count(), 0);
    }

    #[test]
    fn register_current_pins_the_clock_version_against_gc() {
        let r = Arc::new(SnapshotRegistry::new());
        let c = GlobalClock::new();
        c.tick();
        c.tick();
        let g = r.register_current(&c);
        assert_eq!(g.version(), 2);
        assert_eq!(r.min_active(), Some(2));
        c.tick();
        // The watermark can never exceed a live registered snapshot...
        assert_eq!(r.gc_watermark(&c), 2);
        drop(g);
        // ...and with none live it is the clock itself.
        assert_eq!(r.gc_watermark(&c), 3);
    }

    #[test]
    fn registry_guard_reports_version() {
        let r = Arc::new(SnapshotRegistry::new());
        let g = r.register(42);
        assert_eq!(g.version(), 42);
    }

    #[test]
    fn concurrent_register_deregister() {
        let r = Arc::new(SnapshotRegistry::new());
        let mut handles = vec![];
        for i in 0..8u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for j in 0..100 {
                    let g = r.register(i * 100 + j);
                    assert!(r.live_count() >= 1);
                    drop(g);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.live_count(), 0);
        assert_eq!(r.min_active(), None);
    }
}
