//! The memory-robustness layer: version-heap accounting, incremental
//! background GC configuration, snapshot-lease policy, and the
//! pressure-driven degradation ladder.
//!
//! Multi-version boxes retain old versions for live snapshots, so under
//! sustained write-heavy load the version heap is the system's dominant
//! memory consumer — and one stalled reader pinning the GC watermark is
//! enough to make it grow without bound. This module bounds it in four
//! steps, each with the ladder discipline of the hot-path PRs (a retained
//! baseline rung and a differential oracle):
//!
//! 1. **Accounting** — every box reports retained-version/byte deltas into a
//!    shared lock-free [`VersionHeapGauge`] on install and prune, so "how
//!    big is the version heap" is two relaxed loads, surfaced in
//!    [`crate::StatsSnapshot`] and the `mem_pressure` trace event.
//! 2. **Incremental background GC** — [`GcMode::Background`] (the default)
//!    moves the whole-heap sweep off the commit path onto a dedicated,
//!    panic-supervised collector thread that prunes in bounded slices
//!    ([`MemConfig::gc_slice_boxes`] boxes at a time, yielding between
//!    slices); a committer that trips the GC interval only *nudges* the
//!    collector. [`GcMode::Inline`] retains the old synchronous sweep as the
//!    differential oracle and bench baseline.
//! 3. **Snapshot leases** — runtime snapshots expire
//!    ([`MemConfig::snapshot_lease`]); an expired snapshot stops pinning the
//!    watermark and its owner aborts with
//!    [`crate::StmError::SnapshotEvicted`] (see
//!    [`crate::clock::SnapshotRegistry`]).
//! 4. **Degradation ladder** — the gauge drives [`MemLevel`]: crossing the
//!    soft ceiling triggers an urgent GC cycle and shortens leases; the hard
//!    ceiling additionally throttles admission to one in-flight top-level
//!    transaction (new arrivals wait, in-flight ones drain). Graceful
//!    slowdown instead of an OOM kill, reported as `mem_degraded` trace
//!    events.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Duration;

/// Which garbage-collection driver an [`crate::Stm`] instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcMode {
    /// A dedicated background collector thread sweeps the box registry in
    /// bounded slices; committers that trip the GC interval nudge it and
    /// return immediately (commit-path pause is O(1)). The default.
    #[default]
    Background,
    /// The original inline whole-heap sweep: the committer that trips
    /// [`crate::StmConfig::gc_interval`] walks every box before returning.
    /// Retained as the differential oracle (background and inline GC must
    /// yield identical reachable state) and the `mem_ceiling` bench baseline.
    Inline,
}

impl GcMode {
    /// Stable lower-case tag (trace schema / bench CLI).
    pub fn tag(&self) -> &'static str {
        match self {
            GcMode::Background => "background",
            GcMode::Inline => "inline",
        }
    }
}

/// Memory-robustness configuration ([`crate::StmConfig::mem`]).
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// GC driver (see [`GcMode`]).
    pub gc_mode: GcMode,
    /// Boxes pruned per background-GC slice before the collector yields the
    /// CPU (and re-checks shutdown). Smaller slices mean finer-grained
    /// interleaving with mutators at more per-slice overhead; a
    /// runtime-adaptable knob for AutoPN ([`crate::Stm::set_gc_slice_boxes`]).
    pub gc_slice_boxes: usize,
    /// Lease on runtime snapshots: a transaction older than this stops
    /// pinning the GC watermark and is evicted (aborting with
    /// [`crate::StmError::SnapshotEvicted`] at its next read/commit).
    /// `None` disables leasing — the pre-lease behaviour, where one parked
    /// reader pins the version heap forever.
    pub snapshot_lease: Option<Duration>,
    /// The shortened lease applied (to new *and* in-flight snapshots) while
    /// the ladder is at [`MemLevel::Soft`] or above.
    pub urgent_lease: Duration,
    /// Retained-version count at which the ladder enters [`MemLevel::Soft`]
    /// (urgent GC + shortened leases). `u64::MAX` disables the ladder.
    /// Runtime-adaptable ([`crate::Stm::set_mem_soft_ceiling`]).
    pub soft_ceiling_versions: u64,
    /// Retained-version count at which the ladder enters [`MemLevel::Hard`]
    /// (admission backpressure: one top-level transaction at a time until
    /// the gauge recedes). `u64::MAX` disables the hard rung.
    pub hard_ceiling_versions: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            gc_mode: GcMode::default(),
            gc_slice_boxes: 128,
            snapshot_lease: Some(Duration::from_secs(30)),
            urgent_lease: Duration::from_millis(50),
            soft_ceiling_versions: 1 << 20,
            hard_ceiling_versions: 1 << 22,
        }
    }
}

/// Live aggregate size of the version heap: total retained `(version, value)`
/// entries and their (shallow) bytes across every box of an STM instance.
///
/// Boxes update the gauge on install, prune, and drop with relaxed
/// read-modify-writes — no locks, no contention point beyond the cache line.
/// The gauge is therefore eventually consistent with any individual chain,
/// which is all the ladder needs: ceilings are thresholds, not invariants.
#[derive(Debug, Default)]
pub struct VersionHeapGauge {
    retained_versions: AtomicU64,
    retained_bytes: AtomicU64,
}

impl VersionHeapGauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `versions` new retained entries totalling `bytes`.
    pub(crate) fn add(&self, versions: u64, bytes: u64) {
        self.retained_versions.fetch_add(versions, Ordering::Relaxed);
        self.retained_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `versions` pruned entries totalling `bytes`.
    pub(crate) fn sub(&self, versions: u64, bytes: u64) {
        let prev = self.retained_versions.fetch_sub(versions, Ordering::Relaxed);
        debug_assert!(prev >= versions, "gauge underflow: {prev} - {versions}");
        let prev = self.retained_bytes.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "gauge byte underflow: {prev} - {bytes}");
    }

    /// Total retained `(version, value)` entries across all live boxes.
    pub fn retained_versions(&self) -> u64 {
        self.retained_versions.load(Ordering::Relaxed)
    }

    /// Shallow bytes of those entries (`size_of::<(u64, T)>()` per entry;
    /// heap payloads behind the value — `String` data, `Vec` buffers — are
    /// not traversed).
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes.load(Ordering::Relaxed)
    }
}

/// Rung of the memory degradation ladder (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum MemLevel {
    /// Gauge below the soft ceiling: no intervention.
    #[default]
    Normal,
    /// Soft ceiling crossed: urgent GC cycle requested, leases shortened to
    /// [`MemConfig::urgent_lease`] (in-flight deadlines clamped too).
    Soft,
    /// Hard ceiling crossed: everything Soft does, plus admission throttled
    /// to one in-flight top-level transaction until the gauge recedes.
    Hard,
}

impl MemLevel {
    /// Stable lower-case tag (the `"level"` field of the trace schema).
    pub fn tag(&self) -> &'static str {
        match self {
            MemLevel::Normal => "normal",
            MemLevel::Soft => "soft",
            MemLevel::Hard => "hard",
        }
    }

    fn from_u8(v: u8) -> MemLevel {
        match v {
            2 => MemLevel::Hard,
            1 => MemLevel::Soft,
            _ => MemLevel::Normal,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            MemLevel::Normal => 0,
            MemLevel::Soft => 1,
            MemLevel::Hard => 2,
        }
    }
}

/// Hysteresis divisor for leaving a ladder rung: the gauge must fall below
/// `ceiling - ceiling / LADDER_HYSTERESIS_DIV` before the level drops, so a
/// gauge oscillating at a ceiling doesn't flap the ladder (each entry
/// transition re-runs the urgent side effects).
const LADDER_HYSTERESIS_DIV: u64 = 4;

/// Runtime-adjustable state of the memory ladder: the current level and the
/// live ceilings/slice budget (initialised from [`MemConfig`], then owned by
/// the tuner — ceilings and slice budget are actuation points).
#[derive(Debug)]
pub(crate) struct MemState {
    level: AtomicU8,
    soft_ceiling: AtomicU64,
    hard_ceiling: AtomicU64,
    gc_slice_boxes: AtomicUsize,
}

impl MemState {
    pub(crate) fn new(cfg: &MemConfig) -> Self {
        Self {
            level: AtomicU8::new(MemLevel::Normal.as_u8()),
            soft_ceiling: AtomicU64::new(cfg.soft_ceiling_versions),
            hard_ceiling: AtomicU64::new(cfg.hard_ceiling_versions),
            gc_slice_boxes: AtomicUsize::new(cfg.gc_slice_boxes.max(1)),
        }
    }

    pub(crate) fn level(&self) -> MemLevel {
        MemLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    pub(crate) fn soft_ceiling(&self) -> u64 {
        self.soft_ceiling.load(Ordering::Relaxed)
    }

    pub(crate) fn hard_ceiling(&self) -> u64 {
        self.hard_ceiling.load(Ordering::Relaxed)
    }

    pub(crate) fn set_soft_ceiling(&self, versions: u64) {
        self.soft_ceiling.store(versions, Ordering::Relaxed);
    }

    pub(crate) fn set_hard_ceiling(&self, versions: u64) {
        self.hard_ceiling.store(versions, Ordering::Relaxed);
    }

    pub(crate) fn gc_slice_boxes(&self) -> usize {
        self.gc_slice_boxes.load(Ordering::Relaxed)
    }

    pub(crate) fn set_gc_slice_boxes(&self, boxes: usize) {
        self.gc_slice_boxes.store(boxes.max(1), Ordering::Relaxed);
    }

    /// The level `retained` versions map to, with hysteresis against the
    /// current level (dropping a rung requires receding a quarter below its
    /// ceiling).
    fn target_level(&self, retained: u64, current: MemLevel) -> MemLevel {
        let soft = self.soft_ceiling();
        let hard = self.hard_ceiling();
        let eased = |ceiling: u64| ceiling.saturating_sub(ceiling / LADDER_HYSTERESIS_DIV);
        if retained >= hard || (current >= MemLevel::Hard && retained >= eased(hard)) {
            MemLevel::Hard
        } else if retained >= soft || (current >= MemLevel::Soft && retained >= eased(soft)) {
            MemLevel::Soft
        } else {
            MemLevel::Normal
        }
    }

    /// Evaluate the ladder against `retained` versions. Returns
    /// `Some((from, to))` iff this caller won the transition (level CAS), in
    /// which case it must enact the side effects for `to`.
    pub(crate) fn transition(&self, retained: u64) -> Option<(MemLevel, MemLevel)> {
        let current = self.level();
        let target = self.target_level(retained, current);
        if target == current {
            return None;
        }
        self.level
            .compare_exchange(current.as_u8(), target.as_u8(), Ordering::AcqRel, Ordering::Relaxed)
            .ok()
            .map(|_| (current, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_adds_and_subs() {
        let g = VersionHeapGauge::new();
        assert_eq!(g.retained_versions(), 0);
        g.add(3, 48);
        g.add(1, 16);
        assert_eq!(g.retained_versions(), 4);
        assert_eq!(g.retained_bytes(), 64);
        g.sub(2, 32);
        assert_eq!(g.retained_versions(), 2);
        assert_eq!(g.retained_bytes(), 32);
    }

    #[test]
    fn gc_mode_tags() {
        assert_eq!(GcMode::Background.tag(), "background");
        assert_eq!(GcMode::Inline.tag(), "inline");
        assert_eq!(GcMode::default(), GcMode::Background);
    }

    #[test]
    fn mem_level_tags_and_order() {
        assert_eq!(MemLevel::Normal.tag(), "normal");
        assert_eq!(MemLevel::Soft.tag(), "soft");
        assert_eq!(MemLevel::Hard.tag(), "hard");
        assert!(MemLevel::Normal < MemLevel::Soft);
        assert!(MemLevel::Soft < MemLevel::Hard);
        for l in [MemLevel::Normal, MemLevel::Soft, MemLevel::Hard] {
            assert_eq!(MemLevel::from_u8(l.as_u8()), l);
        }
    }

    #[test]
    fn ladder_escalates_and_recovers_with_hysteresis() {
        let cfg = MemConfig {
            soft_ceiling_versions: 100,
            hard_ceiling_versions: 200,
            ..MemConfig::default()
        };
        let s = MemState::new(&cfg);
        assert_eq!(s.level(), MemLevel::Normal);
        assert_eq!(s.transition(50), None);
        assert_eq!(s.transition(100), Some((MemLevel::Normal, MemLevel::Soft)));
        // Oscillating just under the ceiling does not drop the rung...
        assert_eq!(s.transition(99), None);
        assert_eq!(s.transition(76), None);
        // ...receding a quarter below it does.
        assert_eq!(s.transition(74), Some((MemLevel::Soft, MemLevel::Normal)));
        // Straight to Hard from Normal when a burst overshoots.
        assert_eq!(s.transition(500), Some((MemLevel::Normal, MemLevel::Hard)));
        // Hard has its own hysteresis band: 160 ≥ 200 - 200/4 keeps the rung.
        assert_eq!(s.transition(160), None);
        assert_eq!(s.transition(140), Some((MemLevel::Hard, MemLevel::Soft)));
        assert_eq!(s.transition(10), Some((MemLevel::Soft, MemLevel::Normal)));
    }

    #[test]
    fn ladder_knobs_are_runtime_adjustable() {
        let s = MemState::new(&MemConfig::default());
        s.set_soft_ceiling(10);
        s.set_hard_ceiling(20);
        s.set_gc_slice_boxes(0);
        assert_eq!(s.soft_ceiling(), 10);
        assert_eq!(s.hard_ceiling(), 20);
        assert_eq!(s.gc_slice_boxes(), 1, "slice budget clamps to 1");
        assert_eq!(s.transition(15), Some((MemLevel::Normal, MemLevel::Soft)));
    }

    #[test]
    fn disabled_ceilings_never_transition() {
        let cfg = MemConfig {
            soft_ceiling_versions: u64::MAX,
            hard_ceiling_versions: u64::MAX,
            ..MemConfig::default()
        };
        let s = MemState::new(&cfg);
        assert_eq!(s.transition(u64::MAX - 1), None);
        assert_eq!(s.level(), MemLevel::Normal);
    }
}
