//! The actuator substrate: resizable admission gates for top-level and
//! nested concurrency.
//!
//! §VI of the paper: *"the actuator [...] intercept[s] the calls to begin and
//! commit/abort transactions [...] ensuring, via the use of semaphores, that
//! the number of concurrent top-level transactions/nested transactions per
//! tree is at any point in time less than allowed by the current
//! configuration."*
//!
//! [`ResizableSemaphore`] is a counting semaphore whose capacity can be
//! changed while threads hold permits: shrinking simply drives the available
//! count negative, so the semaphore naturally "absorbs" outstanding permits
//! until enough releases bring it back above zero.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// A `(t, c)` parallelism-degree configuration as defined in §III-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParallelismDegree {
    /// Maximum number of concurrent top-level transactions.
    pub top_level: usize,
    /// Maximum number of concurrent nested transactions per transaction tree.
    pub nested_per_tree: usize,
}

impl ParallelismDegree {
    /// Construct a degree; both components are clamped to at least 1.
    pub fn new(top_level: usize, nested_per_tree: usize) -> Self {
        Self { top_level: top_level.max(1), nested_per_tree: nested_per_tree.max(1) }
    }

    /// Total worker demand `t * c` of this configuration.
    pub fn cores_used(&self) -> usize {
        self.top_level * self.nested_per_tree
    }
}

impl std::fmt::Display for ParallelismDegree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.top_level, self.nested_per_tree)
    }
}

#[derive(Debug)]
struct SemState {
    /// May be negative after a capacity shrink while permits are held.
    available: i64,
    capacity: usize,
}

/// Counting semaphore with runtime-adjustable capacity.
#[derive(Debug)]
pub struct ResizableSemaphore {
    state: Mutex<SemState>,
    cv: Condvar,
}

impl ResizableSemaphore {
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(SemState { available: capacity as i64, capacity }),
            cv: Condvar::new(),
        }
    }

    /// Block until a permit is available and take it.
    pub fn acquire(&self) {
        let mut st = self.state.lock();
        while st.available <= 0 {
            self.cv.wait(&mut st);
        }
        st.available -= 1;
    }

    /// Take a permit if one is immediately available.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.lock();
        if st.available > 0 {
            st.available -= 1;
            true
        } else {
            false
        }
    }

    /// Return a permit.
    pub fn release(&self) {
        let mut st = self.state.lock();
        st.available += 1;
        if st.available > 0 {
            self.cv.notify_one();
        }
    }

    /// Change the capacity; outstanding permits are unaffected (the available
    /// count may go negative until they are released).
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        let mut st = self.state.lock();
        let delta = capacity as i64 - st.capacity as i64;
        st.capacity = capacity;
        st.available += delta;
        if st.available > 0 {
            self.cv.notify_all();
        }
    }

    /// Currently configured capacity.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Permits currently held (capacity minus available, never negative in a
    /// quiescent state).
    pub fn in_use(&self) -> usize {
        let st = self.state.lock();
        (st.capacity as i64 - st.available).max(0) as usize
    }
}

/// RAII permit for a [`ResizableSemaphore`].
#[derive(Debug)]
pub struct Permit {
    sem: Arc<ResizableSemaphore>,
}

impl Permit {
    /// Block until the semaphore grants a permit.
    pub fn acquire(sem: &Arc<ResizableSemaphore>) -> Self {
        sem.acquire();
        Self { sem: Arc::clone(sem) }
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.sem.release();
    }
}

/// The admission controller for a PN-STM instance.
///
/// Gates top-level transaction begins with a semaphore of capacity `t` and
/// publishes the per-tree nested limit `c` that each transaction tree reads
/// when spawning children.
#[derive(Debug)]
pub struct Throttle {
    top_gate: Arc<ResizableSemaphore>,
    nested_limit: Mutex<usize>,
}

impl Throttle {
    pub fn new(degree: ParallelismDegree) -> Self {
        Self {
            top_gate: Arc::new(ResizableSemaphore::new(degree.top_level)),
            nested_limit: Mutex::new(degree.nested_per_tree),
        }
    }

    /// Block until a top-level slot is free; the permit is released when the
    /// returned guard drops (i.e. when the transaction finishes).
    pub fn admit_top_level(&self) -> Permit {
        Permit::acquire(&self.top_gate)
    }

    /// The per-tree nested concurrency limit `c` in force right now.
    ///
    /// Sampled once per `parallel()` batch: a reconfiguration applies to
    /// batches started after it, mirroring the paper's semaphore actuator.
    pub fn nested_limit(&self) -> usize {
        *self.nested_limit.lock()
    }

    /// Apply a new `(t, c)` configuration. Running transactions finish under
    /// their old admission; new begins/batches observe the new limits.
    pub fn reconfigure(&self, degree: ParallelismDegree) {
        self.top_gate.set_capacity(degree.top_level);
        *self.nested_limit.lock() = degree.nested_per_tree;
    }

    /// The configuration currently in force.
    pub fn current(&self) -> ParallelismDegree {
        ParallelismDegree { top_level: self.top_gate.capacity(), nested_per_tree: self.nested_limit() }
    }

    /// Number of top-level transactions currently admitted.
    pub fn top_level_in_use(&self) -> usize {
        self.top_gate.in_use()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn degree_clamps_to_one() {
        let d = ParallelismDegree::new(0, 0);
        assert_eq!(d, ParallelismDegree { top_level: 1, nested_per_tree: 1 });
        assert_eq!(d.cores_used(), 1);
        assert_eq!(d.to_string(), "(1,1)");
    }

    #[test]
    fn semaphore_basic_acquire_release() {
        let s = ResizableSemaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        assert_eq!(s.in_use(), 2);
        s.release();
        assert!(s.try_acquire());
    }

    #[test]
    fn semaphore_grow_unblocks_waiter() {
        let s = Arc::new(ResizableSemaphore::new(1));
        s.acquire();
        let s2 = Arc::clone(&s);
        let woke = Arc::new(AtomicUsize::new(0));
        let woke2 = Arc::clone(&woke);
        let h = thread::spawn(move || {
            s2.acquire();
            woke2.store(1, Ordering::SeqCst);
            s2.release();
        });
        thread::sleep(Duration::from_millis(30));
        assert_eq!(woke.load(Ordering::SeqCst), 0, "waiter must be blocked");
        s.set_capacity(2);
        h.join().unwrap();
        assert_eq!(woke.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn semaphore_shrink_absorbs_releases() {
        let s = ResizableSemaphore::new(3);
        s.acquire();
        s.acquire();
        s.acquire();
        s.set_capacity(1); // available = -2
        s.release(); // -1
        s.release(); // 0
        assert!(!s.try_acquire(), "still over the shrunk capacity");
        s.release(); // 1
        assert!(s.try_acquire());
    }

    #[test]
    fn throttle_reconfigure_applies() {
        let t = Throttle::new(ParallelismDegree::new(4, 2));
        assert_eq!(t.current(), ParallelismDegree::new(4, 2));
        let _p = t.admit_top_level();
        assert_eq!(t.top_level_in_use(), 1);
        t.reconfigure(ParallelismDegree::new(2, 8));
        assert_eq!(t.current(), ParallelismDegree::new(2, 8));
        assert_eq!(t.nested_limit(), 8);
    }

    #[test]
    fn throttle_caps_concurrent_admissions() {
        let t = Arc::new(Throttle::new(ParallelismDegree::new(3, 1)));
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..12 {
            let (t, peak, cur) = (Arc::clone(&t), Arc::clone(&peak), Arc::clone(&cur));
            handles.push(thread::spawn(move || {
                for _ in 0..20 {
                    let _p = t.admit_top_level();
                    let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_micros(200));
                    cur.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak {} exceeded t=3", peak.load(Ordering::SeqCst));
        assert_eq!(t.top_level_in_use(), 0);
    }
}
