//! The actuator substrate: resizable admission gates for top-level and
//! nested concurrency.
//!
//! §VI of the paper: *"the actuator [...] intercept[s] the calls to begin and
//! commit/abort transactions [...] ensuring, via the use of semaphores, that
//! the number of concurrent top-level transactions/nested transactions per
//! tree is at any point in time less than allowed by the current
//! configuration."*
//!
//! [`ResizableSemaphore`] is a counting semaphore whose capacity can be
//! changed while threads hold permits: shrinking simply drives the available
//! count negative, so the semaphore naturally "absorbs" outstanding permits
//! until enough releases bring it back above zero.
//!
//! Both admission gates implement [`Admission`] (see [`crate::sched`]):
//! [`ResizableSemaphore`] is the [`crate::SchedMode::Mutex`] gate (every
//! acquire/release crosses one mutex), [`PackedGate`] the
//! [`crate::SchedMode::WorkStealing`] gate — the whole
//! closed/capacity/available state packed into one atomic word, with sharded
//! parker lists touched only by threads that actually block, so the
//! actuator's `set_capacity` during a live `(t, c)` reprovisioning no longer
//! quiesces admissions through a lock.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::fault::{FaultCtx, FaultKind};
use crate::sched::Admission;
use crate::stats::Stats;
use crate::trace::{AxesTrace, TraceBus, TraceEvent};

/// A `(t, c)` parallelism-degree configuration as defined in §III-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParallelismDegree {
    /// Maximum number of concurrent top-level transactions.
    pub top_level: usize,
    /// Maximum number of concurrent nested transactions per transaction tree.
    pub nested_per_tree: usize,
}

impl ParallelismDegree {
    /// Construct a degree; both components are clamped to at least 1.
    pub fn new(top_level: usize, nested_per_tree: usize) -> Self {
        Self { top_level: top_level.max(1), nested_per_tree: nested_per_tree.max(1) }
    }

    /// Total worker demand `t * c` of this configuration.
    pub fn cores_used(&self) -> usize {
        self.top_level * self.nested_per_tree
    }
}

impl std::fmt::Display for ParallelismDegree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.top_level, self.nested_per_tree)
    }
}

#[derive(Debug)]
struct SemState {
    /// May be negative after a capacity shrink while permits are held.
    available: i64,
    capacity: usize,
    /// A closed semaphore refuses new permits (waiters wake and give up)
    /// so shutdown never leaves a thread parked here forever.
    closed: bool,
}

/// Counting semaphore with runtime-adjustable capacity.
#[derive(Debug)]
pub struct ResizableSemaphore {
    state: Mutex<SemState>,
    cv: Condvar,
}

impl ResizableSemaphore {
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(SemState { available: capacity as i64, capacity, closed: false }),
            cv: Condvar::new(),
        }
    }

    /// Block until a permit is available and take it. Returns `false`
    /// (without a permit) if the semaphore is, or becomes, closed — a thread
    /// parked here is guaranteed to wake and observe the closure.
    pub fn acquire(&self) -> bool {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return false;
            }
            if st.available > 0 {
                st.available -= 1;
                return true;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Take a permit if one is immediately available (and the semaphore is
    /// open).
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.lock();
        if !st.closed && st.available > 0 {
            st.available -= 1;
            true
        } else {
            false
        }
    }

    /// Refuse new permits and wake every parked waiter (they return from
    /// [`ResizableSemaphore::acquire`] empty-handed). Held permits are
    /// unaffected and their releases still count.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        self.cv.notify_all();
    }

    /// Re-admit after a [`ResizableSemaphore::close`].
    pub fn reopen(&self) {
        let mut st = self.state.lock();
        st.closed = false;
        if st.available > 0 {
            self.cv.notify_all();
        }
    }

    /// Whether the semaphore currently refuses new permits.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Return a permit.
    pub fn release(&self) {
        let mut st = self.state.lock();
        st.available += 1;
        if st.available > 0 {
            self.cv.notify_one();
        }
    }

    /// Change the capacity; outstanding permits are unaffected (the available
    /// count may go negative until they are released).
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        let mut st = self.state.lock();
        let delta = capacity as i64 - st.capacity as i64;
        st.capacity = capacity;
        st.available += delta;
        if st.available > 0 {
            self.cv.notify_all();
        }
    }

    /// Currently configured capacity.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Permits currently held (capacity minus available, never negative in a
    /// quiescent state).
    pub fn in_use(&self) -> usize {
        let st = self.state.lock();
        (st.capacity as i64 - st.available).max(0) as usize
    }
}

impl Admission for ResizableSemaphore {
    fn acquire(&self) -> bool {
        ResizableSemaphore::acquire(self)
    }
    fn try_acquire(&self) -> bool {
        ResizableSemaphore::try_acquire(self)
    }
    fn release(&self) {
        ResizableSemaphore::release(self)
    }
    fn close(&self) {
        ResizableSemaphore::close(self)
    }
    fn reopen(&self) {
        ResizableSemaphore::reopen(self)
    }
    fn is_closed(&self) -> bool {
        ResizableSemaphore::is_closed(self)
    }
    fn set_capacity(&self, capacity: usize) {
        ResizableSemaphore::set_capacity(self, capacity)
    }
    fn capacity(&self) -> usize {
        ResizableSemaphore::capacity(self)
    }
    fn in_use(&self) -> usize {
        ResizableSemaphore::in_use(self)
    }
}

/// Shards of the [`PackedGate`] parker lists. Only threads that actually
/// block touch a shard; the fast path is one CAS on the packed word.
const GATE_SHARDS: usize = 4;

/// Closed flag of the [`PackedGate`] word (bit 63).
const GATE_CLOSED: u64 = 1 << 63;

/// Decoded [`PackedGate`] word: `(closed, capacity, available)`.
fn gate_unpack(w: u64) -> (bool, usize, i64) {
    let closed = w & GATE_CLOSED != 0;
    let capacity = ((w >> 32) & (u32::MAX >> 1) as u64) as usize;
    let available = (w as u32 as i32) as i64;
    (closed, capacity, available)
}

/// Pack `(closed, capacity, available)` into one [`PackedGate`] word:
/// bit 63 = closed, bits 32–62 = capacity (u31), bits 0–31 = available as a
/// two's-complement i32 (negative after a shrink while permits are held).
fn gate_pack(closed: bool, capacity: usize, available: i64) -> u64 {
    debug_assert!(capacity < (1 << 31));
    debug_assert!(i32::try_from(available).is_ok());
    (if closed { GATE_CLOSED } else { 0 })
        | ((capacity as u64) << 32)
        | (available as i32 as u32 as u64)
}

/// Lock-free admission gate ([`crate::SchedMode::WorkStealing`]).
///
/// The entire semaphore state — closed flag, capacity, available count —
/// lives in one atomic word, so acquire/release/`set_capacity` are a CAS
/// each and never contend on a mutex. The state is deliberately *not*
/// sharded into per-core token pools: after a capacity shrink a sharded
/// count can transiently admit more than the new capacity (one shard still
/// positive while another is negative), and the actuator's contract is that
/// at no point are more than `t` new top-level admissions granted. Only the
/// *parker lists* are sharded: a thread that must block registers itself in
/// one of [`GATE_SHARDS`] lists and parks (with the repo-standard 50 ms
/// timeout backstop against lost-wakeup races); releases unpark one parker,
/// close / reopen / capacity growth unpark all.
#[derive(Debug)]
pub struct PackedGate {
    word: AtomicU64,
    parkers: Box<[Mutex<Vec<thread::Thread>>]>,
    next_shard: AtomicUsize,
    /// Rotation cursor for [`PackedGate::unpark_one`]. Without it every
    /// release scanned the shards from index 0, so threads registered in
    /// higher shards were woken last on every release — a starvation bias
    /// whose park-timeout churn also inflated `park_count`.
    next_unpark: AtomicUsize,
    /// Counts parks into `park_count` when attached ([`Stats::record_park`]).
    stats: Option<Arc<Stats>>,
}

impl PackedGate {
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// A gate that records parked acquisitions into `stats`.
    pub fn with_stats(capacity: usize, stats: Arc<Stats>) -> Self {
        Self::build(capacity, Some(stats))
    }

    fn build(capacity: usize, stats: Option<Arc<Stats>>) -> Self {
        let capacity = capacity.max(1);
        Self {
            word: AtomicU64::new(gate_pack(false, capacity, capacity as i64)),
            parkers: (0..GATE_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            next_shard: AtomicUsize::new(0),
            next_unpark: AtomicUsize::new(0),
            stats,
        }
    }

    /// CAS-update the word with `f`, which returns the new decoded state (or
    /// `None` to abort). Returns the *previous* decoded state on success.
    fn update(
        &self,
        mut f: impl FnMut(bool, usize, i64) -> Option<(bool, usize, i64)>,
    ) -> Option<(bool, usize, i64)> {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            let (closed, cap, avail) = gate_unpack(cur);
            let (nc, ncap, navail) = f(closed, cap, avail)?;
            match self.word.compare_exchange_weak(
                cur,
                gate_pack(nc, ncap, navail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((closed, cap, avail)),
                Err(actual) => cur = actual,
            }
        }
    }

    fn unpark_one(&self) {
        // Rotate the starting shard so no shard's parkers are structurally
        // last in line (fairness across shards, not strict FIFO within one).
        let start = self.next_unpark.fetch_add(1, Ordering::Relaxed);
        for i in 0..self.parkers.len() {
            let shard = &self.parkers[(start + i) % self.parkers.len()];
            let popped = shard.lock().pop();
            if let Some(t) = popped {
                t.unpark();
                return;
            }
        }
    }

    fn unpark_all(&self) {
        for shard in self.parkers.iter() {
            for t in shard.lock().drain(..) {
                t.unpark();
            }
        }
    }

    /// Park protocol: register in a shard, re-check the word (a grant or
    /// close racing the registration is caught here), then park with the
    /// timeout backstop, then deregister (a release may already have popped
    /// this entry — that's the wakeup).
    fn park_for_change(&self) {
        let me = thread::current();
        let id = me.id();
        let shard =
            &self.parkers[self.next_shard.fetch_add(1, Ordering::Relaxed) % self.parkers.len()];
        shard.lock().push(me);
        let (closed, _, avail) = gate_unpack(self.word.load(Ordering::Acquire));
        if closed || avail > 0 {
            shard.lock().retain(|t| t.id() != id);
            return;
        }
        if let Some(stats) = &self.stats {
            stats.record_park();
        }
        thread::park_timeout(Duration::from_millis(50));
        shard.lock().retain(|t| t.id() != id);
    }
}

impl Admission for PackedGate {
    fn acquire(&self) -> bool {
        loop {
            let took = self.update(|closed, cap, avail| {
                if closed || avail <= 0 {
                    None
                } else {
                    Some((closed, cap, avail - 1))
                }
            });
            if took.is_some() {
                return true;
            }
            let (closed, _, avail) = gate_unpack(self.word.load(Ordering::Acquire));
            if closed {
                return false;
            }
            if avail <= 0 {
                self.park_for_change();
            }
        }
    }

    fn try_acquire(&self) -> bool {
        self.update(
            |closed, cap, avail| {
                if closed || avail <= 0 {
                    None
                } else {
                    Some((closed, cap, avail - 1))
                }
            },
        )
        .is_some()
    }

    fn release(&self) {
        let prev = self.update(|closed, cap, avail| Some((closed, cap, avail + 1)));
        // The permit we just returned is grantable: wake one parker.
        if prev.is_some_and(|(_, _, avail)| avail + 1 > 0) {
            self.unpark_one();
        }
    }

    fn close(&self) {
        self.word.fetch_or(GATE_CLOSED, Ordering::AcqRel);
        self.unpark_all();
    }

    fn reopen(&self) {
        let prev = self.word.fetch_and(!GATE_CLOSED, Ordering::AcqRel);
        if gate_unpack(prev).2 > 0 {
            self.unpark_all();
        }
    }

    fn is_closed(&self) -> bool {
        gate_unpack(self.word.load(Ordering::Acquire)).0
    }

    fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        let prev = self.update(|closed, cap, avail| {
            let delta = capacity as i64 - cap as i64;
            Some((closed, capacity, avail + delta))
        });
        if let Some((_, cap, avail)) = prev {
            if avail + (capacity as i64 - cap as i64) > 0 {
                self.unpark_all();
            }
        }
    }

    fn capacity(&self) -> usize {
        gate_unpack(self.word.load(Ordering::Acquire)).1
    }

    fn in_use(&self) -> usize {
        let (_, cap, avail) = gate_unpack(self.word.load(Ordering::Acquire));
        (cap as i64 - avail).max(0) as usize
    }

    /// One CAS grants `min(max, available)` permits — the batched-admission
    /// amortization the ingress front door relies on.
    fn try_acquire_many(&self, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut take = 0;
        let took = self.update(|closed, cap, avail| {
            if closed || avail <= 0 {
                None
            } else {
                take = (max as i64).min(avail) as usize;
                Some((closed, cap, avail - take as i64))
            }
        });
        if took.is_some() {
            take
        } else {
            0
        }
    }
}

/// RAII permit for an [`Admission`] gate.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<dyn Admission>,
}

impl Permit {
    /// Block until the gate grants a permit; `None` if it is closed.
    pub fn acquire(gate: &Arc<dyn Admission>) -> Option<Self> {
        if gate.acquire() {
            Some(Self { gate: Arc::clone(gate) })
        } else {
            None
        }
    }

    /// Wrap a permit the caller already acquired from `gate` (used by the
    /// batched admission path, where `try_acquire_many` grants several
    /// permits in one CAS).
    fn from_acquired(gate: &Arc<dyn Admission>) -> Self {
        Self { gate: Arc::clone(gate) }
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// The admission controller for a PN-STM instance.
///
/// Gates top-level transaction begins with a semaphore of capacity `t` and
/// publishes the per-tree nested limit `c` that each transaction tree reads
/// when spawning children.
#[derive(Debug)]
pub struct Throttle {
    top_gate: Arc<dyn Admission>,
    /// The published `(t, c)` configuration, packed as `t << 32 | c` so
    /// readers get a *consistent pair* from one atomic load. (Keeping the
    /// two halves behind separate locks allowed a torn read: a concurrent
    /// reconfiguration from, say, `(8, 1)` to `(1, 8)` could be observed as
    /// `(8, 8)` — an over-subscribed configuration that never existed.)
    degree: AtomicU64,
    /// Memory-pressure ceiling on the *effective* top-level capacity
    /// (`usize::MAX` = none). The ladder sets this instead of calling
    /// `set_capacity` directly so a concurrent tuner `reconfigure` cannot
    /// silently undo the backpressure: both paths apply
    /// `min(t, pressure_cap)`.
    pressure_cap: AtomicUsize,
    /// The discrete-axis half of the configuration point currently in force
    /// (`cm`, `gc_boxes`, `block`, ...), stamped by the axis actuation layer
    /// *before* it applies the degree so the resulting
    /// [`TraceEvent::Reconfigure`] carries the full point. Empty until a
    /// multi-axis tuner notes one; legacy `(t, c)`-only traces stay
    /// byte-identical.
    axes_note: Mutex<AxesTrace>,
    trace: TraceBus,
    fault: FaultCtx,
}

/// A `(t, c)` reconfiguration attempt failed (today only the fault layer
/// produces this; real actuation backends may too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigError;

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parallelism-degree reconfiguration failed")
    }
}

impl std::error::Error for ReconfigError {}

fn pack(d: ParallelismDegree) -> u64 {
    // The search space is bounded by the core count; u32 per component is
    // far beyond any real machine.
    let t = d.top_level.min(u32::MAX as usize) as u64;
    let c = d.nested_per_tree.min(u32::MAX as usize) as u64;
    (t << 32) | c
}

fn unpack(packed: u64) -> ParallelismDegree {
    ParallelismDegree {
        top_level: (packed >> 32) as usize,
        nested_per_tree: (packed & u32::MAX as u64) as usize,
    }
}

impl Throttle {
    pub fn new(degree: ParallelismDegree) -> Self {
        Self::with_trace(degree, TraceBus::default())
    }

    /// A throttle that publishes [`TraceEvent::Reconfigure`] events on `trace`.
    pub fn with_trace(degree: ParallelismDegree, trace: TraceBus) -> Self {
        Self::with_instruments(degree, trace, FaultCtx::disabled())
    }

    /// A throttle with both tracing and fault injection attached, gating
    /// admissions through the default mutex-based semaphore.
    pub fn with_instruments(degree: ParallelismDegree, trace: TraceBus, fault: FaultCtx) -> Self {
        Self::with_gate(degree, trace, fault, Arc::new(ResizableSemaphore::new(degree.top_level)))
    }

    /// A throttle over an explicit [`Admission`] gate (the runtime passes a
    /// [`PackedGate`] under [`crate::SchedMode::WorkStealing`]). The gate's
    /// capacity is forced to `degree.top_level`.
    pub fn with_gate(
        degree: ParallelismDegree,
        trace: TraceBus,
        fault: FaultCtx,
        gate: Arc<dyn Admission>,
    ) -> Self {
        gate.set_capacity(degree.top_level);
        Self {
            top_gate: gate,
            degree: AtomicU64::new(pack(degree)),
            pressure_cap: AtomicUsize::new(usize::MAX),
            axes_note: Mutex::new(AxesTrace::empty()),
            trace,
            fault,
        }
    }

    /// Record the discrete-axis half of the configuration point now in
    /// force. Subsequent [`TraceEvent::Reconfigure`] emissions carry it, so
    /// a multi-axis actuation (axes first, then degree) traces as one full
    /// point.
    pub fn note_axes(&self, axes: AxesTrace) {
        *self.axes_note.lock() = axes;
    }

    /// The last noted discrete-axis assignment (empty if none).
    pub fn noted_axes(&self) -> AxesTrace {
        *self.axes_note.lock()
    }

    /// Block until a top-level slot is free; the permit is released when the
    /// returned guard drops (i.e. when the transaction finishes). `None` if
    /// admission is closed (shutdown in progress).
    pub fn admit_top_level(&self) -> Option<Permit> {
        Permit::acquire(&self.top_gate)
    }

    /// Batched admission: block for the first permit, then take up to
    /// `max - 1` more that are immediately available — at most one blocking
    /// acquire plus one CAS per batch instead of one admission round per
    /// request. Returns an empty vector iff admission is closed; otherwise
    /// at least one permit. Each permit releases on drop as usual.
    pub fn admit_batch(&self, max: usize) -> Vec<Permit> {
        let Some(first) = Permit::acquire(&self.top_gate) else {
            return Vec::new();
        };
        let mut permits = Vec::with_capacity(max.max(1));
        permits.push(first);
        let extra = self.top_gate.try_acquire_many(max.saturating_sub(1));
        for _ in 0..extra {
            permits.push(Permit::from_acquired(&self.top_gate));
        }
        permits
    }

    /// Stop admitting top-level transactions and wake every thread parked on
    /// admission (they observe the closure and bail out). Part of shutdown:
    /// a worker blocked on a starved gate would otherwise never see a stop
    /// flag.
    pub fn close(&self) {
        self.top_gate.close();
    }

    /// Resume admission after [`Throttle::close`].
    pub fn reopen(&self) {
        self.top_gate.reopen();
    }

    /// Whether admission is currently closed.
    pub fn is_closed(&self) -> bool {
        self.top_gate.is_closed()
    }

    /// The per-tree nested concurrency limit `c` in force right now.
    ///
    /// Sampled once per `parallel()` batch: a reconfiguration applies to
    /// batches started after it, mirroring the paper's semaphore actuator.
    pub fn nested_limit(&self) -> usize {
        unpack(self.degree.load(Ordering::Acquire)).nested_per_tree
    }

    /// Apply a new `(t, c)` configuration and return the one it replaced.
    /// Running transactions finish under their old admission; new
    /// begins/batches observe the new limits.
    pub fn reconfigure(&self, degree: ParallelismDegree) -> ParallelismDegree {
        let prev = unpack(self.degree.swap(pack(degree), Ordering::AcqRel));
        self.apply_effective_capacity();
        if prev != degree {
            self.trace.emit(TraceEvent::Reconfigure {
                from: (prev.top_level as u32, prev.nested_per_tree as u32),
                to: (degree.top_level as u32, degree.nested_per_tree as u32),
                axes: self.noted_axes(),
            });
        }
        prev
    }

    /// Fallible [`Throttle::reconfigure`]: the fault layer may veto the
    /// attempt ([`FaultKind::ReconfigFail`]), in which case the previous
    /// configuration stays in force and the caller is expected to retry,
    /// back off, or fall back (see the controller's degradation ladder).
    pub fn try_reconfigure(
        &self,
        degree: ParallelismDegree,
    ) -> Result<ParallelismDegree, ReconfigError> {
        if self.fault.inject(FaultKind::ReconfigFail).is_some() {
            return Err(ReconfigError);
        }
        Ok(self.reconfigure(degree))
    }

    /// The configuration currently in force, read atomically (never a mix
    /// of an old `t` with a new `c` or vice versa).
    pub fn current(&self) -> ParallelismDegree {
        unpack(self.degree.load(Ordering::Acquire))
    }

    /// Number of top-level transactions currently admitted.
    pub fn top_level_in_use(&self) -> usize {
        self.top_gate.in_use()
    }

    /// Cap the effective top-level capacity at `cap` regardless of the
    /// configured `t` (memory-pressure backpressure). The configured degree
    /// is untouched; [`Throttle::clear_pressure_cap`] restores it.
    pub fn set_pressure_cap(&self, cap: usize) {
        self.pressure_cap.store(cap.max(1), Ordering::Release);
        self.apply_effective_capacity();
    }

    /// Remove the memory-pressure cap and restore the configured capacity.
    pub fn clear_pressure_cap(&self) {
        self.pressure_cap.store(usize::MAX, Ordering::Release);
        self.apply_effective_capacity();
    }

    /// The memory-pressure cap in force (`None` when uncapped).
    pub fn pressure_cap(&self) -> Option<usize> {
        match self.pressure_cap.load(Ordering::Acquire) {
            usize::MAX => None,
            cap => Some(cap),
        }
    }

    /// Re-derive the gate capacity from the configured degree and the
    /// pressure cap. Called after either input changes; last writer wins,
    /// and both orderings converge on `min(t, cap)` because each writer
    /// re-reads the other's input after publishing its own.
    fn apply_effective_capacity(&self) {
        let t = unpack(self.degree.load(Ordering::Acquire)).top_level;
        let cap = self.pressure_cap.load(Ordering::Acquire);
        self.top_gate.set_capacity(t.min(cap));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn degree_clamps_to_one() {
        let d = ParallelismDegree::new(0, 0);
        assert_eq!(d, ParallelismDegree { top_level: 1, nested_per_tree: 1 });
        assert_eq!(d.cores_used(), 1);
        assert_eq!(d.to_string(), "(1,1)");
    }

    #[test]
    fn pressure_cap_bounds_effective_capacity() {
        let th = Throttle::new(ParallelismDegree::new(4, 1));
        let p1 = th.admit_top_level().unwrap();
        let p2 = th.admit_top_level().unwrap();
        assert_eq!(th.top_level_in_use(), 2);

        // Cap to 1: in-flight permits are unaffected, but no new admission
        // succeeds until usage drops below the cap.
        th.set_pressure_cap(1);
        assert_eq!(th.pressure_cap(), Some(1));
        assert!(!th.top_gate.try_acquire(), "capped gate admits nothing new");
        drop(p1);
        drop(p2);
        let _p = th.admit_top_level().unwrap();
        assert!(!th.top_gate.try_acquire(), "cap of 1 holds");

        // A tuner reconfigure does not undo the cap...
        th.reconfigure(ParallelismDegree::new(8, 2));
        assert!(!th.top_gate.try_acquire(), "reconfigure respects the cap");
        assert_eq!(th.current(), ParallelismDegree::new(8, 2), "configured degree is preserved");

        // ...and clearing the cap restores the configured capacity.
        th.clear_pressure_cap();
        assert_eq!(th.pressure_cap(), None);
        assert!(th.top_gate.try_acquire());
        th.top_gate.release();
    }

    #[test]
    fn semaphore_basic_acquire_release() {
        let s = ResizableSemaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        assert_eq!(s.in_use(), 2);
        s.release();
        assert!(s.try_acquire());
    }

    #[test]
    fn semaphore_grow_unblocks_waiter() {
        let s = Arc::new(ResizableSemaphore::new(1));
        assert!(s.acquire());
        let s2 = Arc::clone(&s);
        let woke = Arc::new(AtomicUsize::new(0));
        let woke2 = Arc::clone(&woke);
        let h = thread::spawn(move || {
            assert!(s2.acquire());
            woke2.store(1, Ordering::SeqCst);
            s2.release();
        });
        thread::sleep(Duration::from_millis(30));
        assert_eq!(woke.load(Ordering::SeqCst), 0, "waiter must be blocked");
        s.set_capacity(2);
        h.join().unwrap();
        assert_eq!(woke.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn semaphore_shrink_absorbs_releases() {
        let s = ResizableSemaphore::new(3);
        assert!(s.acquire());
        assert!(s.acquire());
        assert!(s.acquire());
        s.set_capacity(1); // available = -2
        s.release(); // -1
        s.release(); // 0
        assert!(!s.try_acquire(), "still over the shrunk capacity");
        s.release(); // 1
        assert!(s.try_acquire());
    }

    #[test]
    fn throttle_reconfigure_applies() {
        let t = Throttle::new(ParallelismDegree::new(4, 2));
        assert_eq!(t.current(), ParallelismDegree::new(4, 2));
        let _p = t.admit_top_level().unwrap();
        assert_eq!(t.top_level_in_use(), 1);
        t.reconfigure(ParallelismDegree::new(2, 8));
        assert_eq!(t.current(), ParallelismDegree::new(2, 8));
        assert_eq!(t.nested_limit(), 8);
    }

    #[test]
    fn throttle_caps_concurrent_admissions() {
        let t = Arc::new(Throttle::new(ParallelismDegree::new(3, 1)));
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..12 {
            let (t, peak, cur) = (Arc::clone(&t), Arc::clone(&peak), Arc::clone(&cur));
            handles.push(thread::spawn(move || {
                for _ in 0..20 {
                    let _p = t.admit_top_level().unwrap();
                    let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_micros(200));
                    cur.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "peak {} exceeded t=3",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(t.top_level_in_use(), 0);
    }

    /// Regression test for the torn read in `Throttle::current()`: with the
    /// two degree components behind separate locks, a reader racing a
    /// reconfiguration from (8,1) to (1,8) could observe (8,8) — an
    /// over-subscribed configuration that was never applied.
    #[test]
    fn current_is_never_torn_under_reconfiguration() {
        const N: usize = 8;
        let configs = [(8, 1), (1, 8), (4, 2), (2, 4)].map(|(t, c)| ParallelismDegree::new(t, c));
        let throttle = Arc::new(Throttle::new(configs[0]));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = vec![];
        for _ in 0..4 {
            let throttle = Arc::clone(&throttle);
            let stop = Arc::clone(&stop);
            readers.push(thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let d = throttle.current();
                    assert!(
                        configs.contains(&d),
                        "torn read: observed {d}, which was never configured"
                    );
                    assert!(d.cores_used() <= N, "over-subscribed read {d}");
                }
            }));
        }
        for i in 0..2_000 {
            throttle.reconfigure(configs[i % configs.len()]);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }

    /// Reconfigure under load and validate the invariant t·c ≤ n from the
    /// emitted trace events: every `Reconfigure`'s before/after pair must be
    /// an admissible configuration, never a torn mix.
    #[test]
    fn reconfigure_stress_trace_events_respect_core_budget() {
        use crate::trace::{TestSink, TraceBus, TraceEvent};

        const N: u32 = 8;
        let bus = TraceBus::new();
        let sink = Arc::new(TestSink::new());
        bus.subscribe(sink.clone());
        let throttle = Arc::new(Throttle::with_trace(ParallelismDegree::new(8, 1), bus));

        let mut writers = vec![];
        for w in 0..4usize {
            let throttle = Arc::clone(&throttle);
            writers.push(thread::spawn(move || {
                let choices = [(8, 1), (1, 8), (4, 2), (2, 4)];
                for i in 0..500 {
                    let (t, c) = choices[(i + w) % choices.len()];
                    let _prev = throttle.reconfigure(ParallelismDegree::new(t, c));
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        let events = sink.events();
        assert!(!events.is_empty(), "reconfigurations must be traced");
        for ev in &events {
            match ev {
                TraceEvent::Reconfigure { from, to, .. } => {
                    assert!(from.0 * from.1 <= N, "torn 'from' pair {from:?}");
                    assert!(to.0 * to.1 <= N, "torn 'to' pair {to:?}");
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn close_wakes_parked_acquirer_and_reopen_restores() {
        let s = Arc::new(ResizableSemaphore::new(1));
        assert!(s.acquire()); // exhaust the only permit
        let s2 = Arc::clone(&s);
        let h = thread::spawn(move || s2.acquire());
        thread::sleep(Duration::from_millis(30)); // let it park
        s.close();
        assert!(!h.join().unwrap(), "parked acquirer must wake empty-handed");
        assert!(!s.try_acquire(), "closed semaphore grants nothing");
        s.release();
        s.reopen();
        assert!(!s.is_closed());
        assert!(s.acquire(), "reopened semaphore grants again");
    }

    #[test]
    fn throttle_close_rejects_admission() {
        let t = Throttle::new(ParallelismDegree::new(2, 1));
        t.close();
        assert!(t.is_closed());
        assert!(t.admit_top_level().is_none());
        t.reopen();
        assert!(t.admit_top_level().is_some());
    }

    #[test]
    fn try_reconfigure_honors_fault_plan() {
        use crate::fault::{FaultPlan, FaultRule};

        let plan = Arc::new(
            FaultPlan::new(11)
                .with_rule(FaultKind::ReconfigFail, FaultRule::with_probability(1.0).budget(2)),
        );
        let t = Throttle::with_instruments(
            ParallelismDegree::new(4, 1),
            TraceBus::new(),
            FaultCtx::new(Some(plan), TraceBus::new()),
        );
        assert_eq!(t.try_reconfigure(ParallelismDegree::new(2, 2)), Err(ReconfigError));
        assert_eq!(t.current(), ParallelismDegree::new(4, 1), "failed apply changes nothing");
        assert_eq!(t.try_reconfigure(ParallelismDegree::new(2, 2)), Err(ReconfigError));
        // Budget spent: the third attempt goes through.
        assert_eq!(
            t.try_reconfigure(ParallelismDegree::new(2, 2)),
            Ok(ParallelismDegree::new(4, 1))
        );
        assert_eq!(t.current(), ParallelismDegree::new(2, 2));
    }

    #[test]
    fn reconfigure_returns_previous_and_skips_noop_trace() {
        use crate::trace::{TestSink, TraceBus};

        let bus = TraceBus::new();
        let sink = Arc::new(TestSink::new());
        bus.subscribe(sink.clone());
        let t = Throttle::with_trace(ParallelismDegree::new(4, 2), bus);
        let prev = t.reconfigure(ParallelismDegree::new(4, 2));
        assert_eq!(prev, ParallelismDegree::new(4, 2));
        assert!(sink.is_empty(), "no-op reconfiguration emits nothing");
        let prev = t.reconfigure(ParallelismDegree::new(2, 3));
        assert_eq!(prev, ParallelismDegree::new(4, 2));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn packed_gate_basic_acquire_release() {
        let g = PackedGate::new(2);
        assert!(g.try_acquire());
        assert!(g.try_acquire());
        assert!(!g.try_acquire());
        assert_eq!(g.in_use(), 2);
        g.release();
        assert!(g.try_acquire());
        assert_eq!(g.capacity(), 2);
    }

    #[test]
    fn packed_gate_grow_unblocks_waiter() {
        let g: Arc<dyn Admission> = Arc::new(PackedGate::new(1));
        assert!(g.acquire());
        let g2 = Arc::clone(&g);
        let woke = Arc::new(AtomicUsize::new(0));
        let woke2 = Arc::clone(&woke);
        let h = thread::spawn(move || {
            assert!(g2.acquire());
            woke2.store(1, Ordering::SeqCst);
            g2.release();
        });
        thread::sleep(Duration::from_millis(30));
        assert_eq!(woke.load(Ordering::SeqCst), 0, "waiter must be blocked");
        g.set_capacity(2);
        h.join().unwrap();
        assert_eq!(woke.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn packed_gate_shrink_absorbs_releases() {
        let g = PackedGate::new(3);
        assert!(g.acquire());
        assert!(g.acquire());
        assert!(g.acquire());
        g.set_capacity(1); // available = -2
        g.release(); // -1
        g.release(); // 0
        assert!(!g.try_acquire(), "still over the shrunk capacity");
        g.release(); // 1
        assert!(g.try_acquire());
    }

    #[test]
    fn packed_gate_close_wakes_parked_acquirer_and_reopen_restores() {
        let g: Arc<dyn Admission> = Arc::new(PackedGate::new(1));
        assert!(g.acquire()); // exhaust the only permit
        let g2 = Arc::clone(&g);
        let h = thread::spawn(move || g2.acquire());
        thread::sleep(Duration::from_millis(30)); // let it park
        g.close();
        assert!(!h.join().unwrap(), "parked acquirer must wake empty-handed");
        assert!(!g.try_acquire(), "closed gate grants nothing");
        g.release();
        g.reopen();
        assert!(!g.is_closed());
        assert!(g.acquire(), "reopened gate grants again");
    }

    /// The strict actuator contract under concurrency: at no point more than
    /// `t` admissions — the reason the token count is one packed word
    /// instead of sharded per-core pools (see the [`PackedGate`] docs).
    #[test]
    fn packed_gate_throttle_caps_concurrent_admissions() {
        let t = Arc::new(Throttle::with_gate(
            ParallelismDegree::new(3, 1),
            TraceBus::new(),
            FaultCtx::disabled(),
            Arc::new(PackedGate::new(3)),
        ));
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..12 {
            let (t, peak, cur) = (Arc::clone(&t), Arc::clone(&peak), Arc::clone(&cur));
            handles.push(thread::spawn(move || {
                for _ in 0..20 {
                    let _p = t.admit_top_level().unwrap();
                    let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_micros(200));
                    cur.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "peak {} exceeded t=3",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(t.top_level_in_use(), 0);
    }

    /// Regression test for `unpark_one` always scanning parker shards from
    /// index 0: a release would wake shard 0's parkers first every time, so
    /// threads registered in higher shards were structurally last in line
    /// and only ever woke via the 50 ms park-timeout backstop. With the
    /// rotating cursor, consecutive releases start at consecutive shards.
    #[test]
    fn unpark_one_rotates_across_shards() {
        let g = PackedGate::new(1);
        // Plant parker entries directly: two in shard 0, one in each other
        // shard. (White-box: `park_for_change` normally registers these.)
        // Unparking `thread::current()` is a no-op beyond consuming the
        // entry, which is all this test observes.
        let me = thread::current();
        g.parkers[0].lock().push(me.clone());
        g.parkers[0].lock().push(me.clone());
        for shard in g.parkers.iter().skip(1) {
            shard.lock().push(me.clone());
        }
        // One release per shard count: a fair rotation visits every shard
        // once, so each non-zero shard drains. The old scan-from-0 code
        // would pop shard 0 twice and leave the last shard untouched.
        for _ in 0..GATE_SHARDS {
            g.unpark_one();
        }
        assert_eq!(g.parkers[0].lock().len(), 1, "shard 0 must not be drained preferentially");
        let parked_high: usize = g.parkers.iter().skip(1).map(|s| s.lock().len()).sum();
        assert_eq!(parked_high, 0, "higher shards must all have been visited");
        // The leftovers drain too once more releases come in.
        g.unpark_one();
        g.unpark_one();
        g.unpark_one();
        g.unpark_one();
        assert!(g.parkers.iter().all(|s| s.lock().is_empty()));
    }

    #[test]
    fn packed_gate_try_acquire_many_grants_in_one_cas() {
        let g = PackedGate::new(4);
        assert_eq!(g.try_acquire_many(3), 3);
        assert_eq!(g.in_use(), 3);
        // Only one permit left: a batch request is truncated, not blocked.
        assert_eq!(g.try_acquire_many(5), 1);
        assert_eq!(g.try_acquire_many(2), 0, "exhausted gate grants nothing");
        g.release();
        g.release();
        assert_eq!(g.try_acquire_many(0), 0);
        assert_eq!(g.try_acquire_many(2), 2);
        // Closed gate refuses batches entirely.
        for _ in 0..4 {
            g.release();
        }
        g.close();
        assert_eq!(g.try_acquire_many(4), 0);
        g.reopen();
        assert_eq!(g.try_acquire_many(4), 4);
    }

    #[test]
    fn admission_default_try_acquire_many_loops() {
        // The mutex semaphore uses the default trait implementation.
        let s = ResizableSemaphore::new(3);
        assert_eq!(Admission::try_acquire_many(&s, 2), 2);
        assert_eq!(Admission::try_acquire_many(&s, 2), 1);
        assert_eq!(Admission::try_acquire_many(&s, 2), 0);
    }

    #[test]
    fn throttle_admit_batch_amortizes_and_respects_capacity() {
        let t = Throttle::with_gate(
            ParallelismDegree::new(3, 1),
            TraceBus::new(),
            FaultCtx::disabled(),
            Arc::new(PackedGate::new(3)),
        );
        let batch = t.admit_batch(8);
        assert_eq!(batch.len(), 3, "batch is truncated to the available capacity");
        assert_eq!(t.top_level_in_use(), 3);
        drop(batch);
        assert_eq!(t.top_level_in_use(), 0);

        let one = t.admit_batch(1);
        assert_eq!(one.len(), 1);
        drop(one);

        t.close();
        assert!(t.admit_batch(4).is_empty(), "closed admission yields no permits");
        t.reopen();
        assert_eq!(t.admit_batch(2).len(), 2);
    }

    #[test]
    fn packed_gate_records_parks() {
        let stats = Arc::new(Stats::new());
        let g: Arc<dyn Admission> = Arc::new(PackedGate::with_stats(1, Arc::clone(&stats)));
        assert!(g.acquire());
        let g2 = Arc::clone(&g);
        let h = thread::spawn(move || assert!(g2.acquire()));
        thread::sleep(Duration::from_millis(30)); // let it park at least once
        g.release();
        h.join().unwrap();
        assert!(stats.snapshot().park_count >= 1);
    }
}
