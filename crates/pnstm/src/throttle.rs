//! The actuator substrate: resizable admission gates for top-level and
//! nested concurrency.
//!
//! §VI of the paper: *"the actuator [...] intercept[s] the calls to begin and
//! commit/abort transactions [...] ensuring, via the use of semaphores, that
//! the number of concurrent top-level transactions/nested transactions per
//! tree is at any point in time less than allowed by the current
//! configuration."*
//!
//! [`ResizableSemaphore`] is a counting semaphore whose capacity can be
//! changed while threads hold permits: shrinking simply drives the available
//! count negative, so the semaphore naturally "absorbs" outstanding permits
//! until enough releases bring it back above zero.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::fault::{FaultCtx, FaultKind};
use crate::trace::{TraceBus, TraceEvent};

/// A `(t, c)` parallelism-degree configuration as defined in §III-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParallelismDegree {
    /// Maximum number of concurrent top-level transactions.
    pub top_level: usize,
    /// Maximum number of concurrent nested transactions per transaction tree.
    pub nested_per_tree: usize,
}

impl ParallelismDegree {
    /// Construct a degree; both components are clamped to at least 1.
    pub fn new(top_level: usize, nested_per_tree: usize) -> Self {
        Self { top_level: top_level.max(1), nested_per_tree: nested_per_tree.max(1) }
    }

    /// Total worker demand `t * c` of this configuration.
    pub fn cores_used(&self) -> usize {
        self.top_level * self.nested_per_tree
    }
}

impl std::fmt::Display for ParallelismDegree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.top_level, self.nested_per_tree)
    }
}

#[derive(Debug)]
struct SemState {
    /// May be negative after a capacity shrink while permits are held.
    available: i64,
    capacity: usize,
    /// A closed semaphore refuses new permits (waiters wake and give up)
    /// so shutdown never leaves a thread parked here forever.
    closed: bool,
}

/// Counting semaphore with runtime-adjustable capacity.
#[derive(Debug)]
pub struct ResizableSemaphore {
    state: Mutex<SemState>,
    cv: Condvar,
}

impl ResizableSemaphore {
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(SemState { available: capacity as i64, capacity, closed: false }),
            cv: Condvar::new(),
        }
    }

    /// Block until a permit is available and take it. Returns `false`
    /// (without a permit) if the semaphore is, or becomes, closed — a thread
    /// parked here is guaranteed to wake and observe the closure.
    pub fn acquire(&self) -> bool {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return false;
            }
            if st.available > 0 {
                st.available -= 1;
                return true;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Take a permit if one is immediately available (and the semaphore is
    /// open).
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.lock();
        if !st.closed && st.available > 0 {
            st.available -= 1;
            true
        } else {
            false
        }
    }

    /// Refuse new permits and wake every parked waiter (they return from
    /// [`ResizableSemaphore::acquire`] empty-handed). Held permits are
    /// unaffected and their releases still count.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        self.cv.notify_all();
    }

    /// Re-admit after a [`ResizableSemaphore::close`].
    pub fn reopen(&self) {
        let mut st = self.state.lock();
        st.closed = false;
        if st.available > 0 {
            self.cv.notify_all();
        }
    }

    /// Whether the semaphore currently refuses new permits.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Return a permit.
    pub fn release(&self) {
        let mut st = self.state.lock();
        st.available += 1;
        if st.available > 0 {
            self.cv.notify_one();
        }
    }

    /// Change the capacity; outstanding permits are unaffected (the available
    /// count may go negative until they are released).
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        let mut st = self.state.lock();
        let delta = capacity as i64 - st.capacity as i64;
        st.capacity = capacity;
        st.available += delta;
        if st.available > 0 {
            self.cv.notify_all();
        }
    }

    /// Currently configured capacity.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Permits currently held (capacity minus available, never negative in a
    /// quiescent state).
    pub fn in_use(&self) -> usize {
        let st = self.state.lock();
        (st.capacity as i64 - st.available).max(0) as usize
    }
}

/// RAII permit for a [`ResizableSemaphore`].
#[derive(Debug)]
pub struct Permit {
    sem: Arc<ResizableSemaphore>,
}

impl Permit {
    /// Block until the semaphore grants a permit; `None` if it is closed.
    pub fn acquire(sem: &Arc<ResizableSemaphore>) -> Option<Self> {
        if sem.acquire() {
            Some(Self { sem: Arc::clone(sem) })
        } else {
            None
        }
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.sem.release();
    }
}

/// The admission controller for a PN-STM instance.
///
/// Gates top-level transaction begins with a semaphore of capacity `t` and
/// publishes the per-tree nested limit `c` that each transaction tree reads
/// when spawning children.
#[derive(Debug)]
pub struct Throttle {
    top_gate: Arc<ResizableSemaphore>,
    /// The published `(t, c)` configuration, packed as `t << 32 | c` so
    /// readers get a *consistent pair* from one atomic load. (Keeping the
    /// two halves behind separate locks allowed a torn read: a concurrent
    /// reconfiguration from, say, `(8, 1)` to `(1, 8)` could be observed as
    /// `(8, 8)` — an over-subscribed configuration that never existed.)
    degree: AtomicU64,
    trace: TraceBus,
    fault: FaultCtx,
}

/// A `(t, c)` reconfiguration attempt failed (today only the fault layer
/// produces this; real actuation backends may too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigError;

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parallelism-degree reconfiguration failed")
    }
}

impl std::error::Error for ReconfigError {}

fn pack(d: ParallelismDegree) -> u64 {
    // The search space is bounded by the core count; u32 per component is
    // far beyond any real machine.
    let t = d.top_level.min(u32::MAX as usize) as u64;
    let c = d.nested_per_tree.min(u32::MAX as usize) as u64;
    (t << 32) | c
}

fn unpack(packed: u64) -> ParallelismDegree {
    ParallelismDegree {
        top_level: (packed >> 32) as usize,
        nested_per_tree: (packed & u32::MAX as u64) as usize,
    }
}

impl Throttle {
    pub fn new(degree: ParallelismDegree) -> Self {
        Self::with_trace(degree, TraceBus::default())
    }

    /// A throttle that publishes [`TraceEvent::Reconfigure`] events on `trace`.
    pub fn with_trace(degree: ParallelismDegree, trace: TraceBus) -> Self {
        Self::with_instruments(degree, trace, FaultCtx::disabled())
    }

    /// A throttle with both tracing and fault injection attached.
    pub fn with_instruments(degree: ParallelismDegree, trace: TraceBus, fault: FaultCtx) -> Self {
        Self {
            top_gate: Arc::new(ResizableSemaphore::new(degree.top_level)),
            degree: AtomicU64::new(pack(degree)),
            trace,
            fault,
        }
    }

    /// Block until a top-level slot is free; the permit is released when the
    /// returned guard drops (i.e. when the transaction finishes). `None` if
    /// admission is closed (shutdown in progress).
    pub fn admit_top_level(&self) -> Option<Permit> {
        Permit::acquire(&self.top_gate)
    }

    /// Stop admitting top-level transactions and wake every thread parked on
    /// admission (they observe the closure and bail out). Part of shutdown:
    /// a worker blocked on a starved gate would otherwise never see a stop
    /// flag.
    pub fn close(&self) {
        self.top_gate.close();
    }

    /// Resume admission after [`Throttle::close`].
    pub fn reopen(&self) {
        self.top_gate.reopen();
    }

    /// Whether admission is currently closed.
    pub fn is_closed(&self) -> bool {
        self.top_gate.is_closed()
    }

    /// The per-tree nested concurrency limit `c` in force right now.
    ///
    /// Sampled once per `parallel()` batch: a reconfiguration applies to
    /// batches started after it, mirroring the paper's semaphore actuator.
    pub fn nested_limit(&self) -> usize {
        unpack(self.degree.load(Ordering::Acquire)).nested_per_tree
    }

    /// Apply a new `(t, c)` configuration and return the one it replaced.
    /// Running transactions finish under their old admission; new
    /// begins/batches observe the new limits.
    pub fn reconfigure(&self, degree: ParallelismDegree) -> ParallelismDegree {
        let prev = unpack(self.degree.swap(pack(degree), Ordering::AcqRel));
        self.top_gate.set_capacity(degree.top_level);
        if prev != degree {
            self.trace.emit(TraceEvent::Reconfigure {
                from: (prev.top_level as u32, prev.nested_per_tree as u32),
                to: (degree.top_level as u32, degree.nested_per_tree as u32),
            });
        }
        prev
    }

    /// Fallible [`Throttle::reconfigure`]: the fault layer may veto the
    /// attempt ([`FaultKind::ReconfigFail`]), in which case the previous
    /// configuration stays in force and the caller is expected to retry,
    /// back off, or fall back (see the controller's degradation ladder).
    pub fn try_reconfigure(
        &self,
        degree: ParallelismDegree,
    ) -> Result<ParallelismDegree, ReconfigError> {
        if self.fault.inject(FaultKind::ReconfigFail).is_some() {
            return Err(ReconfigError);
        }
        Ok(self.reconfigure(degree))
    }

    /// The configuration currently in force, read atomically (never a mix
    /// of an old `t` with a new `c` or vice versa).
    pub fn current(&self) -> ParallelismDegree {
        unpack(self.degree.load(Ordering::Acquire))
    }

    /// Number of top-level transactions currently admitted.
    pub fn top_level_in_use(&self) -> usize {
        self.top_gate.in_use()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn degree_clamps_to_one() {
        let d = ParallelismDegree::new(0, 0);
        assert_eq!(d, ParallelismDegree { top_level: 1, nested_per_tree: 1 });
        assert_eq!(d.cores_used(), 1);
        assert_eq!(d.to_string(), "(1,1)");
    }

    #[test]
    fn semaphore_basic_acquire_release() {
        let s = ResizableSemaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        assert_eq!(s.in_use(), 2);
        s.release();
        assert!(s.try_acquire());
    }

    #[test]
    fn semaphore_grow_unblocks_waiter() {
        let s = Arc::new(ResizableSemaphore::new(1));
        assert!(s.acquire());
        let s2 = Arc::clone(&s);
        let woke = Arc::new(AtomicUsize::new(0));
        let woke2 = Arc::clone(&woke);
        let h = thread::spawn(move || {
            assert!(s2.acquire());
            woke2.store(1, Ordering::SeqCst);
            s2.release();
        });
        thread::sleep(Duration::from_millis(30));
        assert_eq!(woke.load(Ordering::SeqCst), 0, "waiter must be blocked");
        s.set_capacity(2);
        h.join().unwrap();
        assert_eq!(woke.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn semaphore_shrink_absorbs_releases() {
        let s = ResizableSemaphore::new(3);
        assert!(s.acquire());
        assert!(s.acquire());
        assert!(s.acquire());
        s.set_capacity(1); // available = -2
        s.release(); // -1
        s.release(); // 0
        assert!(!s.try_acquire(), "still over the shrunk capacity");
        s.release(); // 1
        assert!(s.try_acquire());
    }

    #[test]
    fn throttle_reconfigure_applies() {
        let t = Throttle::new(ParallelismDegree::new(4, 2));
        assert_eq!(t.current(), ParallelismDegree::new(4, 2));
        let _p = t.admit_top_level().unwrap();
        assert_eq!(t.top_level_in_use(), 1);
        t.reconfigure(ParallelismDegree::new(2, 8));
        assert_eq!(t.current(), ParallelismDegree::new(2, 8));
        assert_eq!(t.nested_limit(), 8);
    }

    #[test]
    fn throttle_caps_concurrent_admissions() {
        let t = Arc::new(Throttle::new(ParallelismDegree::new(3, 1)));
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..12 {
            let (t, peak, cur) = (Arc::clone(&t), Arc::clone(&peak), Arc::clone(&cur));
            handles.push(thread::spawn(move || {
                for _ in 0..20 {
                    let _p = t.admit_top_level().unwrap();
                    let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_micros(200));
                    cur.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "peak {} exceeded t=3",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(t.top_level_in_use(), 0);
    }

    /// Regression test for the torn read in `Throttle::current()`: with the
    /// two degree components behind separate locks, a reader racing a
    /// reconfiguration from (8,1) to (1,8) could observe (8,8) — an
    /// over-subscribed configuration that was never applied.
    #[test]
    fn current_is_never_torn_under_reconfiguration() {
        const N: usize = 8;
        let configs = [(8, 1), (1, 8), (4, 2), (2, 4)].map(|(t, c)| ParallelismDegree::new(t, c));
        let throttle = Arc::new(Throttle::new(configs[0]));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = vec![];
        for _ in 0..4 {
            let throttle = Arc::clone(&throttle);
            let stop = Arc::clone(&stop);
            readers.push(thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let d = throttle.current();
                    assert!(
                        configs.contains(&d),
                        "torn read: observed {d}, which was never configured"
                    );
                    assert!(d.cores_used() <= N, "over-subscribed read {d}");
                }
            }));
        }
        for i in 0..2_000 {
            throttle.reconfigure(configs[i % configs.len()]);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }

    /// Reconfigure under load and validate the invariant t·c ≤ n from the
    /// emitted trace events: every `Reconfigure`'s before/after pair must be
    /// an admissible configuration, never a torn mix.
    #[test]
    fn reconfigure_stress_trace_events_respect_core_budget() {
        use crate::trace::{TestSink, TraceBus, TraceEvent};

        const N: u32 = 8;
        let bus = TraceBus::new();
        let sink = Arc::new(TestSink::new());
        bus.subscribe(sink.clone());
        let throttle = Arc::new(Throttle::with_trace(ParallelismDegree::new(8, 1), bus));

        let mut writers = vec![];
        for w in 0..4usize {
            let throttle = Arc::clone(&throttle);
            writers.push(thread::spawn(move || {
                let choices = [(8, 1), (1, 8), (4, 2), (2, 4)];
                for i in 0..500 {
                    let (t, c) = choices[(i + w) % choices.len()];
                    let _prev = throttle.reconfigure(ParallelismDegree::new(t, c));
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        let events = sink.events();
        assert!(!events.is_empty(), "reconfigurations must be traced");
        for ev in &events {
            match ev {
                TraceEvent::Reconfigure { from, to } => {
                    assert!(from.0 * from.1 <= N, "torn 'from' pair {from:?}");
                    assert!(to.0 * to.1 <= N, "torn 'to' pair {to:?}");
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn close_wakes_parked_acquirer_and_reopen_restores() {
        let s = Arc::new(ResizableSemaphore::new(1));
        assert!(s.acquire()); // exhaust the only permit
        let s2 = Arc::clone(&s);
        let h = thread::spawn(move || s2.acquire());
        thread::sleep(Duration::from_millis(30)); // let it park
        s.close();
        assert!(!h.join().unwrap(), "parked acquirer must wake empty-handed");
        assert!(!s.try_acquire(), "closed semaphore grants nothing");
        s.release();
        s.reopen();
        assert!(!s.is_closed());
        assert!(s.acquire(), "reopened semaphore grants again");
    }

    #[test]
    fn throttle_close_rejects_admission() {
        let t = Throttle::new(ParallelismDegree::new(2, 1));
        t.close();
        assert!(t.is_closed());
        assert!(t.admit_top_level().is_none());
        t.reopen();
        assert!(t.admit_top_level().is_some());
    }

    #[test]
    fn try_reconfigure_honors_fault_plan() {
        use crate::fault::{FaultPlan, FaultRule};

        let plan = Arc::new(
            FaultPlan::new(11)
                .with_rule(FaultKind::ReconfigFail, FaultRule::with_probability(1.0).budget(2)),
        );
        let t = Throttle::with_instruments(
            ParallelismDegree::new(4, 1),
            TraceBus::new(),
            FaultCtx::new(Some(plan), TraceBus::new()),
        );
        assert_eq!(t.try_reconfigure(ParallelismDegree::new(2, 2)), Err(ReconfigError));
        assert_eq!(t.current(), ParallelismDegree::new(4, 1), "failed apply changes nothing");
        assert_eq!(t.try_reconfigure(ParallelismDegree::new(2, 2)), Err(ReconfigError));
        // Budget spent: the third attempt goes through.
        assert_eq!(
            t.try_reconfigure(ParallelismDegree::new(2, 2)),
            Ok(ParallelismDegree::new(4, 1))
        );
        assert_eq!(t.current(), ParallelismDegree::new(2, 2));
    }

    #[test]
    fn reconfigure_returns_previous_and_skips_noop_trace() {
        use crate::trace::{TestSink, TraceBus};

        let bus = TraceBus::new();
        let sink = Arc::new(TestSink::new());
        bus.subscribe(sink.clone());
        let t = Throttle::with_trace(ParallelismDegree::new(4, 2), bus);
        let prev = t.reconfigure(ParallelismDegree::new(4, 2));
        assert_eq!(prev, ParallelismDegree::new(4, 2));
        assert!(sink.is_empty(), "no-op reconfiguration emits nothing");
        let prev = t.reconfigure(ParallelismDegree::new(2, 3));
        assert_eq!(prev, ParallelismDegree::new(4, 2));
        assert_eq!(sink.len(), 1);
    }
}
