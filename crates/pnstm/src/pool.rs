//! Shared worker pool executing nested-transaction tasks.
//!
//! The paper's system model (§III-A): *"child transactions are executed by a
//! shared thread pool that is under the direct control of the PN-STM
//! run-time"*. This module implements that pool with two properties the
//! tuning problem needs:
//!
//! 1. **Per-tree concurrency limits.** Each `parallel()` call forms a
//!    [`Batch`] with a helper limit of `c - 1` pool workers; the calling
//!    (parent) thread is the `c`-th executor. Having the parent participate
//!    guarantees progress even when the pool is saturated by other trees —
//!    and makes deep nesting deadlock-free, because a blocked parent always
//!    drains its own children.
//! 2. **Runtime resizability.** The pool can grow and shrink while batches
//!    are in flight, so the actuator can reprovision worker threads when the
//!    `(t, c)` configuration changes.
//!
//! This is the [`crate::sched::SchedMode::Mutex`] implementation of the
//! [`Scheduler`] trait: every dispatch crosses the per-batch tasks mutex and
//! batch discovery crosses the pool-wide batches lock. It is retained as the
//! differential-testing oracle and bench baseline for the work-stealing
//! scheduler in [`crate::sched`].

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::fault::{FaultCtx, FaultKind};
use crate::sched::{Scheduler, Task};

/// A batch of child-transaction tasks belonging to one `parallel()` call.
pub(crate) struct Batch {
    tasks: Mutex<VecDeque<Task>>,
    /// Queue length mirror, so [`Batch::wants_helpers`] — called by idle
    /// workers while holding the pool's batches lock — never touches the
    /// tasks mutex. Decremented *before* the matching pop (both under the
    /// tasks lock), so it only ever **under**-reports: a lock-free reader
    /// can see fewer queued tasks than exist (the caller drains those
    /// anyway) but never more, which is what used to wake idle workers into
    /// taking the batches lock only to pop `None` from a drained batch.
    queued: AtomicUsize,
    /// Tasks submitted but not yet finished executing.
    remaining: AtomicUsize,
    /// Pool workers currently executing tasks of this batch.
    helpers: AtomicUsize,
    /// Maximum pool workers allowed on this batch (`c - 1`).
    helper_limit: usize,
    done_mx: Mutex<()>,
    done_cv: Condvar,
}

impl Batch {
    pub(crate) fn new(tasks: Vec<Task>, helper_limit: usize) -> Arc<Self> {
        let remaining = tasks.len();
        Arc::new(Self {
            tasks: Mutex::new(tasks.into_iter().collect()),
            queued: AtomicUsize::new(remaining),
            remaining: AtomicUsize::new(remaining),
            helpers: AtomicUsize::new(0),
            helper_limit,
            done_mx: Mutex::new(()),
            done_cv: Condvar::new(),
        })
    }

    /// Take one task off the queue. This is the dispatch point, so the
    /// [`FaultKind::ChildStall`] site lives here — *inside* the critical
    /// section, because under this scheduler a dispatch stall holds the
    /// queue just like real dispatch cost does (the work-stealing scheduler
    /// takes the same stall after its lock-free claim instead; the contrast
    /// is what `sched_scaling` measures).
    fn pop_task(&self, fault: &FaultCtx) -> Option<Task> {
        let mut q = self.tasks.lock();
        if q.is_empty() {
            return None;
        }
        // Mirror before pop: under-report only (see the `queued` docs).
        self.queued.fetch_sub(1, Ordering::AcqRel);
        let task = q.pop_front();
        debug_assert!(task.is_some());
        if let Some(action) = fault.inject(FaultKind::ChildStall) {
            action.stall();
        }
        task
    }

    fn finish_task(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.done_mx.lock();
            self.done_cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    fn wants_helpers(&self) -> bool {
        self.helpers.load(Ordering::Acquire) < self.helper_limit
            && self.queued.load(Ordering::Acquire) > 0
    }

    /// Atomically claim a helper slot: CAS-increment bounded by
    /// `helper_limit`, then re-check that work is still queued — a batch
    /// drained between the scan and the increment is backed out of, so no
    /// helper ever joins a drained batch.
    fn try_claim_helper(&self) -> bool {
        let mut cur = self.helpers.load(Ordering::Acquire);
        loop {
            if cur >= self.helper_limit {
                return false;
            }
            match self.helpers.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if self.queued.load(Ordering::Acquire) > 0 {
                        return true;
                    }
                    self.helpers.fetch_sub(1, Ordering::AcqRel);
                    return false;
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

struct PoolShared {
    /// Batches with queued tasks, in arrival order.
    batches: Mutex<Vec<Arc<Batch>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    target_size: AtomicUsize,
    live_workers: AtomicUsize,
    fault: FaultCtx,
}

/// Marks the task finished on drop, so a panicking task still decrements the
/// batch's remaining count: without this, `execute` would wait forever on
/// a batch whose task unwound past its `finish_task` call.
struct FinishGuard<'a>(&'a Batch);

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.0.finish_task();
    }
}

/// Execute one task of `batch`, guaranteeing the batch accounting survives a
/// panic. (The [`FaultKind::ChildStall`] site moved to [`Batch::pop_task`],
/// the dispatch point.)
fn run_task(batch: &Batch, task: Task) {
    let _finish = FinishGuard(batch);
    task();
}

/// Resizable pool of worker threads that help execute nested-transaction
/// batches.
pub struct ChildPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl ChildPool {
    /// Create a pool with `size` worker threads (0 is allowed: all batches
    /// then run entirely on their calling threads).
    pub fn new(size: usize) -> Self {
        Self::with_instruments(size, FaultCtx::disabled())
    }

    /// A pool whose task dispatch consults the given fault context.
    pub fn with_instruments(size: usize, fault: FaultCtx) -> Self {
        let shared = Arc::new(PoolShared {
            batches: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            target_size: AtomicUsize::new(size),
            live_workers: AtomicUsize::new(0),
            fault,
        });
        let pool = Self { shared, handles: Mutex::new(Vec::new()) };
        pool.spawn_up_to(size);
        pool
    }

    fn spawn_up_to(&self, size: usize) {
        let mut handles = self.handles.lock();
        while self.shared.live_workers.load(Ordering::Acquire) < size {
            self.shared.live_workers.fetch_add(1, Ordering::AcqRel);
            let shared = Arc::clone(&self.shared);
            handles.push(
                thread::Builder::new()
                    .name("pnstm-child-worker".into())
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn pnstm worker thread"),
            );
        }
        // Opportunistically reap finished handles to keep the vector bounded.
        handles.retain(|h| !h.is_finished());
    }

    /// Execute `batch` to completion. The calling thread works on the batch
    /// alongside at most `helper_limit` pool workers and returns when every
    /// task has finished.
    pub(crate) fn execute(&self, batch: Arc<Batch>) {
        if batch.is_done() {
            return; // empty batch
        }
        // Publish the batch so idle workers can pick it up.
        if batch.helper_limit > 0 {
            let mut batches = self.shared.batches.lock();
            batches.push(Arc::clone(&batch));
            self.shared.work_cv.notify_all();
        }
        // The caller is always an executor: guarantees progress with c = 1 or
        // an exhausted pool, and makes nested `parallel()` deadlock-free.
        // A panicking caller-executed task must not abandon the rest of the
        // batch mid-flight: hold the first panic and re-raise it only after
        // the batch has fully drained (mirrors `Txn::parallel`).
        let mut caller_panic: Option<Box<dyn std::any::Any + Send>> = None;
        while let Some(task) = batch.pop_task(&self.shared.fault) {
            if let Err(payload) =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_task(&batch, task)))
            {
                caller_panic.get_or_insert(payload);
            }
        }
        // Wait for helpers to drain the tasks they already claimed.
        {
            let mut g = batch.done_mx.lock();
            while !batch.is_done() {
                batch.done_cv.wait_for(&mut g, Duration::from_millis(50));
            }
        }
        if batch.helper_limit > 0 {
            let mut batches = self.shared.batches.lock();
            batches.retain(|b| !Arc::ptr_eq(b, &batch));
        }
        if let Some(payload) = caller_panic {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Scheduler for ChildPool {
    fn run_batch(&self, tasks: Vec<Task>, helper_limit: usize) {
        self.execute(Batch::new(tasks, helper_limit));
    }

    fn resize(&self, size: usize) {
        self.shared.target_size.store(size, Ordering::Release);
        self.spawn_up_to(size);
        // Wake idle workers so surplus ones can observe the shrink and exit.
        let _g = self.shared.batches.lock();
        self.shared.work_cv.notify_all();
    }

    fn size(&self) -> usize {
        self.shared.target_size.load(Ordering::Acquire)
    }

    fn live_workers(&self) -> usize {
        self.shared.live_workers.load(Ordering::Acquire)
    }
}

impl Drop for ChildPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.batches.lock();
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire)
            || shared.live_workers.load(Ordering::Acquire)
                > shared.target_size.load(Ordering::Acquire)
        {
            shared.live_workers.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        // Claim a helper slot on some batch that still has queued tasks. The
        // claim itself is the CAS in `try_claim_helper`, not the scan — the
        // scan is only a hint.
        let claimed: Option<Arc<Batch>> = {
            let batches = shared.batches.lock();
            batches.iter().find(|b| b.wants_helpers()).map(Arc::clone)
        };
        match claimed.filter(|b| b.try_claim_helper()) {
            Some(batch) => {
                while let Some(task) = batch.pop_task(&shared.fault) {
                    // A panicking task must not kill the shared worker:
                    // absorb the unwind (the txn layer has its own panic
                    // channel; see `Txn::parallel`) and keep serving.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_task(&batch, task)
                    }));
                }
                batch.helpers.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                let mut batches = shared.batches.lock();
                if !batches.iter().any(|b| b.wants_helpers()) {
                    shared.work_cv.wait_for(&mut batches, Duration::from_millis(50));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    fn make_tasks(n: usize, counter: &Arc<AtomicI64>) -> Vec<Task> {
        (0..n)
            .map(|_| {
                let c = Arc::clone(counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Task
            })
            .collect()
    }

    #[test]
    fn caller_runs_everything_with_no_helpers() {
        let pool = ChildPool::new(0);
        let counter = Arc::new(AtomicI64::new(0));
        let batch = Batch::new(make_tasks(10, &counter), 0);
        pool.execute(batch);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn helpers_participate() {
        let pool = ChildPool::new(3);
        let counter = Arc::new(AtomicI64::new(0));
        let batch = Batch::new(make_tasks(64, &counter), 3);
        pool.execute(batch);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let pool = ChildPool::new(1);
        let batch = Batch::new(vec![], 1);
        pool.execute(batch);
    }

    #[test]
    fn per_batch_concurrency_respects_helper_limit() {
        let pool = ChildPool::new(4);
        let active = Arc::new(AtomicI64::new(0));
        let peak = Arc::new(AtomicI64::new(0));
        let tasks: Vec<Task> = (0..32)
            .map(|_| {
                let (active, peak) = (Arc::clone(&active), Arc::clone(&peak));
                Box::new(move || {
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_micros(300));
                    active.fetch_sub(1, Ordering::SeqCst);
                }) as Task
            })
            .collect();
        // helper_limit 1 + the caller = at most 2 concurrent executors.
        let batch = Batch::new(tasks, 1);
        pool.execute(batch);
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {}", peak.load(Ordering::SeqCst));
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let pool = ChildPool::new(1);
        assert_eq!(pool.size(), 1);
        pool.resize(4);
        assert_eq!(pool.size(), 4);
        // Give spawned workers a moment, then shrink.
        let counter = Arc::new(AtomicI64::new(0));
        pool.execute(Batch::new(make_tasks(16, &counter), 3));
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        pool.resize(1);
        assert_eq!(pool.size(), 1);
        // Workers retire lazily; wait for the count to converge.
        for _ in 0..100 {
            if pool.live_workers() <= 1 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert!(pool.live_workers() <= 1, "live {}", pool.live_workers());
    }

    #[test]
    fn panicking_task_neither_hangs_batch_nor_kills_worker() {
        let pool = ChildPool::new(2);
        let counter = Arc::new(AtomicI64::new(0));
        // helper_limit = 2 with an idle caller-side queue: push the panicking
        // task through pool workers by making the caller slow to reach it.
        let mut tasks = make_tasks(8, &counter);
        tasks.push(Box::new(|| panic!("injected task panic")) as Task);
        tasks.extend(make_tasks(8, &counter));
        let batch = Batch::new(tasks, 2);
        // Must return (FinishGuard settles the count even on unwind). The
        // panic either lands on a pool worker (absorbed) or the caller; run
        // inside catch_unwind so both outcomes pass.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.execute(batch);
        }));
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        // The pool still works afterwards.
        let batch = Batch::new(make_tasks(8, &counter), 2);
        pool.execute(batch);
        assert_eq!(counter.load(Ordering::SeqCst), 24);
        assert!(pool.live_workers() >= 1, "workers must survive task panics");
    }

    #[test]
    fn child_stall_fault_is_consulted_per_task() {
        use crate::fault::{FaultPlan, FaultRule};
        use crate::trace::TraceBus;

        let plan = Arc::new(
            FaultPlan::new(4).with_rule(FaultKind::ChildStall, FaultRule::with_probability(1.0)),
        );
        let pool =
            ChildPool::with_instruments(0, FaultCtx::new(Some(Arc::clone(&plan)), TraceBus::new()));
        let counter = Arc::new(AtomicI64::new(0));
        pool.execute(Batch::new(make_tasks(5, &counter), 0));
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        assert_eq!(plan.injected(FaultKind::ChildStall), 5);
    }

    #[test]
    fn concurrent_batches_all_complete() {
        let pool = Arc::new(ChildPool::new(2));
        let counter = Arc::new(AtomicI64::new(0));
        let mut joins = vec![];
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            joins.push(thread::spawn(move || {
                for _ in 0..5 {
                    let batch = Batch::new(make_tasks(8, &counter), 2);
                    pool.execute(batch);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 4 * 5 * 8);
    }

    #[test]
    fn no_helper_joins_a_drained_batch() {
        // Regression for the queued-mirror over-report: drain a batch
        // completely, then hammer the claim path from several threads. Every
        // claim must fail and the helper count must end at zero — before the
        // decrement-before-pop fix, a lagging mirror could leave
        // `wants_helpers` true after the last pop and wake workers into a
        // drained batch.
        let fault = FaultCtx::disabled();
        let counter = Arc::new(AtomicI64::new(0));
        let batch = Batch::new(make_tasks(4, &counter), 3);
        while let Some(t) = batch.pop_task(&fault) {
            run_task(&batch, t);
        }
        assert!(!batch.wants_helpers());
        let mut joins = vec![];
        for _ in 0..4 {
            let batch = Arc::clone(&batch);
            joins.push(thread::spawn(move || {
                for _ in 0..1000 {
                    assert!(!batch.try_claim_helper(), "helper joined a drained batch");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(batch.helpers.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn helper_scan_never_sees_an_in_flight_last_pop_as_wanting() {
        use crate::fault::{FaultPlan, FaultRule};
        use crate::trace::TraceBus;

        // Pin the decrement-before-pop ordering: stall a popper *inside* the
        // queue critical section (the ChildStall site sits after the mirror
        // decrement) while it takes the last task. During the stall the
        // batch must already read as drained, so no idle worker wakes for a
        // task that is being claimed. The old ordering (mirror store after
        // the pop) advertised the batch for the whole dispatch window.
        let plan = Arc::new(FaultPlan::new(9).with_rule(
            FaultKind::ChildStall,
            FaultRule::with_probability(1.0).delay_ns(50_000_000),
        ));
        let fault = FaultCtx::new(Some(plan), TraceBus::new());
        let counter = Arc::new(AtomicI64::new(0));
        let batch = Batch::new(make_tasks(1, &counter), 4);
        let popper = {
            let batch = Arc::clone(&batch);
            thread::spawn(move || {
                let task = batch.pop_task(&fault).expect("one task queued");
                run_task(&batch, task);
            })
        };
        // Let the popper reach the stall window with the task claimed.
        thread::sleep(Duration::from_millis(10));
        assert!(!batch.wants_helpers(), "in-flight last pop still advertises work");
        assert!(!batch.try_claim_helper());
        popper.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
