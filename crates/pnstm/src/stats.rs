//! Commit/abort accounting and the commit-event hook consumed by the AutoPN
//! KPI monitor.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which kind of transaction an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxKind {
    /// A top-level (root) transaction.
    TopLevel,
    /// A nested (child) transaction at any depth.
    Nested,
}

/// Event published on every successful top-level commit.
///
/// The AutoPN monitor computes per-commit throughput estimates from the
/// stream of these events (§VI of the paper).
#[derive(Debug, Clone, Copy)]
pub struct CommitEvent {
    /// Wall-clock instant of the commit.
    pub at: Instant,
    /// Running count of top-level commits including this one.
    pub seq: u64,
}

type CommitHook = Arc<dyn Fn(CommitEvent) + Send + Sync>;

/// Atomic counters describing STM activity, plus an optional commit hook.
#[derive(Default)]
pub struct Stats {
    top_commits: AtomicU64,
    top_aborts: AtomicU64,
    nested_commits: AtomicU64,
    nested_aborts: AtomicU64,
    hook: RwLock<Option<CommitHook>>,
}

impl Stats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a top-level commit, firing the hook if installed.
    pub fn record_commit_top(&self) {
        let seq = self.top_commits.fetch_add(1, Ordering::Relaxed) + 1;
        let hook = self.hook.read().clone();
        if let Some(hook) = hook {
            hook(CommitEvent { at: Instant::now(), seq });
        }
    }

    pub fn record_abort_top(&self) {
        self.top_aborts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_commit_nested(&self) {
        self.nested_commits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_abort_nested(&self) {
        self.nested_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Install (or replace) the commit hook. Pass `None` to disable.
    ///
    /// The hook runs on the committing thread after the commit lock is
    /// released; keep it cheap.
    pub fn set_commit_hook(&self, hook: Option<CommitHook>) {
        *self.hook.write() = hook;
    }

    /// Consistent-enough snapshot of all counters (individually atomic).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            top_commits: self.top_commits.load(Ordering::Relaxed),
            top_aborts: self.top_aborts.load(Ordering::Relaxed),
            nested_commits: self.nested_commits.load(Ordering::Relaxed),
            nested_aborts: self.nested_aborts.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Point-in-time copy of the [`Stats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Committed top-level transactions.
    pub top_commits: u64,
    /// Aborted top-level transaction attempts.
    pub top_aborts: u64,
    /// Committed nested transactions (all depths).
    pub nested_commits: u64,
    /// Aborted nested transaction attempts (sibling conflicts).
    pub nested_aborts: u64,
}

impl StatsSnapshot {
    /// Abort rate of top-level attempts: aborts / (commits + aborts).
    pub fn top_abort_rate(&self) -> f64 {
        let total = self.top_commits + self.top_aborts;
        if total == 0 {
            0.0
        } else {
            self.top_aborts as f64 / total as f64
        }
    }

    /// Abort rate of nested attempts.
    pub fn nested_abort_rate(&self) -> f64 {
        let total = self.nested_commits + self.nested_aborts;
        if total == 0 {
            0.0
        } else {
            self.nested_aborts as f64 / total as f64
        }
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            top_commits: self.top_commits.saturating_sub(earlier.top_commits),
            top_aborts: self.top_aborts.saturating_sub(earlier.top_aborts),
            nested_commits: self.nested_commits.saturating_sub(earlier.nested_commits),
            nested_aborts: self.nested_aborts.saturating_sub(earlier.nested_aborts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn counters_accumulate() {
        let s = Stats::new();
        s.record_commit_top();
        s.record_commit_top();
        s.record_abort_top();
        s.record_commit_nested();
        s.record_abort_nested();
        s.record_abort_nested();
        let snap = s.snapshot();
        assert_eq!(snap.top_commits, 2);
        assert_eq!(snap.top_aborts, 1);
        assert_eq!(snap.nested_commits, 1);
        assert_eq!(snap.nested_aborts, 2);
    }

    #[test]
    fn abort_rates() {
        let snap = StatsSnapshot { top_commits: 3, top_aborts: 1, nested_commits: 0, nested_aborts: 0 };
        assert!((snap.top_abort_rate() - 0.25).abs() < 1e-12);
        assert_eq!(snap.nested_abort_rate(), 0.0);
        assert_eq!(StatsSnapshot::default().top_abort_rate(), 0.0);
    }

    #[test]
    fn hook_fires_with_sequence_numbers() {
        let s = Stats::new();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        s.set_commit_hook(Some(Arc::new(move |ev: CommitEvent| {
            seen2.fetch_add(ev.seq as usize, Ordering::Relaxed);
        })));
        s.record_commit_top(); // seq 1
        s.record_commit_top(); // seq 2
        assert_eq!(seen.load(Ordering::Relaxed), 3);
        s.set_commit_hook(None);
        s.record_commit_top();
        assert_eq!(seen.load(Ordering::Relaxed), 3, "hook removed");
    }

    #[test]
    fn delta_since_subtracts() {
        let a = StatsSnapshot { top_commits: 10, top_aborts: 4, nested_commits: 7, nested_aborts: 2 };
        let b = StatsSnapshot { top_commits: 25, top_aborts: 5, nested_commits: 9, nested_aborts: 2 };
        let d = b.delta_since(&a);
        assert_eq!(d, StatsSnapshot { top_commits: 15, top_aborts: 1, nested_commits: 2, nested_aborts: 0 });
    }
}
