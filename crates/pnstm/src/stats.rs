//! Commit/abort accounting and the commit-event hook consumed by the AutoPN
//! KPI monitor.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::cm::CM_POLICIES;
use crate::mem::VersionHeapGauge;

/// Which kind of transaction an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxKind {
    /// A top-level (root) transaction.
    TopLevel,
    /// A nested (child) transaction at any depth.
    Nested,
}

/// Event published on every successful top-level commit.
///
/// The AutoPN monitor computes per-commit throughput estimates from the
/// stream of these events (§VI of the paper).
#[derive(Debug, Clone, Copy)]
pub struct CommitEvent {
    /// Wall-clock instant of the commit.
    pub at: Instant,
    /// Running count of top-level commits including this one.
    pub seq: u64,
}

type CommitHook = Arc<dyn Fn(CommitEvent) + Send + Sync>;

/// Number of log2 buckets in the semaphore wait-time histogram: bucket `k`
/// counts waits in `[2^k, 2^{k+1})` microseconds (bucket 0 also absorbs
/// sub-microsecond waits, the last bucket is open-ended — ≥ 32.8 s).
pub const SEM_WAIT_BUCKETS: usize = 16;

/// A retired commit-hook allocation, parked until [`Stats`] drops because a
/// concurrent `record_commit_top` may still be calling through it.
struct RetiredHook(*mut CommitHook);
// SAFETY: the pointer is only ever dereferenced via `Box::from_raw` in
// `Stats::drop`, with exclusive access.
unsafe impl Send for RetiredHook {}

/// Atomic counters describing STM activity, plus an optional commit hook.
pub struct Stats {
    top_commits: AtomicU64,
    top_aborts: AtomicU64,
    nested_commits: AtomicU64,
    nested_aborts: AtomicU64,
    reconfigures: AtomicU64,
    sem_wait_count: AtomicU64,
    sem_wait_total_ns: AtomicU64,
    sem_wait_hist: [AtomicU64; SEM_WAIT_BUCKETS],
    stripe_lock_acquisitions: AtomicU64,
    stripe_lock_contended: AtomicU64,
    stripe_false_conflicts: AtomicU64,
    read_filter_hits: AtomicU64,
    read_filter_misses: AtomicU64,
    read_slow_path: AtomicU64,
    steal_count: AtomicU64,
    deque_overflow: AtomicU64,
    park_count: AtomicU64,
    cm_policy_waits: [AtomicU64; CM_POLICIES],
    cm_wait_total_ns: AtomicU64,
    cm_wait_hist: [AtomicU64; SEM_WAIT_BUCKETS],
    evicted_reads: AtomicU64,
    read_below_floor: AtomicU64,
    snapshot_evictions: AtomicU64,
    evicted_aborts: AtomicU64,
    gc_cycles: AtomicU64,
    gc_slices: AtomicU64,
    gc_pruned_versions: AtomicU64,
    gc_thread_panics: AtomicU64,
    mem_soft_events: AtomicU64,
    mem_hard_events: AtomicU64,
    block_commits: AtomicU64,
    txn_reexecutions: AtomicU64,
    /// Live retained-version/byte gauge shared with every [`crate::VBox`]
    /// registered on the owning [`crate::Stm`].
    gauge: Arc<VersionHeapGauge>,
    /// The commit hook as a raw `Box<CommitHook>` pointer (null = none), so
    /// the per-commit fast path is a single `Acquire` load instead of a
    /// reader-writer lock acquisition plus an `Arc` clone.
    hook: AtomicPtr<CommitHook>,
    /// Hooks replaced by [`Stats::set_commit_hook`]; freed when `self`
    /// drops (no committer can be inside them by then).
    retired: Mutex<Vec<RetiredHook>>,
}

impl Default for Stats {
    fn default() -> Self {
        Self {
            top_commits: AtomicU64::new(0),
            top_aborts: AtomicU64::new(0),
            nested_commits: AtomicU64::new(0),
            nested_aborts: AtomicU64::new(0),
            reconfigures: AtomicU64::new(0),
            sem_wait_count: AtomicU64::new(0),
            sem_wait_total_ns: AtomicU64::new(0),
            sem_wait_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            stripe_lock_acquisitions: AtomicU64::new(0),
            stripe_lock_contended: AtomicU64::new(0),
            stripe_false_conflicts: AtomicU64::new(0),
            read_filter_hits: AtomicU64::new(0),
            read_filter_misses: AtomicU64::new(0),
            read_slow_path: AtomicU64::new(0),
            steal_count: AtomicU64::new(0),
            deque_overflow: AtomicU64::new(0),
            park_count: AtomicU64::new(0),
            cm_policy_waits: std::array::from_fn(|_| AtomicU64::new(0)),
            cm_wait_total_ns: AtomicU64::new(0),
            cm_wait_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            evicted_reads: AtomicU64::new(0),
            read_below_floor: AtomicU64::new(0),
            snapshot_evictions: AtomicU64::new(0),
            evicted_aborts: AtomicU64::new(0),
            gc_cycles: AtomicU64::new(0),
            gc_slices: AtomicU64::new(0),
            gc_pruned_versions: AtomicU64::new(0),
            gc_thread_panics: AtomicU64::new(0),
            mem_soft_events: AtomicU64::new(0),
            mem_hard_events: AtomicU64::new(0),
            block_commits: AtomicU64::new(0),
            txn_reexecutions: AtomicU64::new(0),
            gauge: Arc::new(VersionHeapGauge::default()),
            hook: AtomicPtr::new(std::ptr::null_mut()),
            retired: Mutex::new(Vec::new()),
        }
    }
}

impl Stats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a top-level commit, firing the hook if installed.
    pub fn record_commit_top(&self) {
        let seq = self.top_commits.fetch_add(1, Ordering::Relaxed) + 1;
        let hook = self.hook.load(Ordering::Acquire);
        if !hook.is_null() {
            // SAFETY: non-null pointers come from `Box::into_raw` in
            // `set_commit_hook` and are freed only in `drop`; the caller
            // holds `&self`, so the allocation outlives this call even if
            // the hook is concurrently replaced (the old box is retired,
            // not freed).
            unsafe { (*hook)(CommitEvent { at: Instant::now(), seq }) };
        }
    }

    pub fn record_abort_top(&self) {
        self.top_aborts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_commit_nested(&self) {
        self.nested_commits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_abort_nested(&self) {
        self.nested_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an applied `(t, c)` reconfiguration.
    pub fn record_reconfigure(&self) {
        self.reconfigures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a top-level admission wait of `wait_ns` nanoseconds.
    pub fn record_sem_wait(&self, wait_ns: u64) {
        self.sem_wait_count.fetch_add(1, Ordering::Relaxed);
        self.sem_wait_total_ns.fetch_add(wait_ns, Ordering::Relaxed);
        self.sem_wait_hist[Self::sem_wait_bucket(wait_ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one striped commit attempt's lock acquisition: it locked
    /// `total` stripes, `contended` of which needed at least one retry.
    pub fn record_stripe_locks(&self, total: u32, contended: u32) {
        self.stripe_lock_acquisitions.fetch_add(total as u64, Ordering::Relaxed);
        if contended > 0 {
            self.stripe_lock_contended.fetch_add(contended as u64, Ordering::Relaxed);
        }
    }

    /// Record a commit abort whose stripe-stamp validation failed even though
    /// every read box was individually unchanged (a striping false conflict).
    pub fn record_stripe_false_conflict(&self) {
        self.stripe_false_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    /// Flush one transaction attempt's read-path counters: ancestor-level
    /// filter probes that could not rule the level out (`hits`), probes the
    /// filter skipped (`misses`), and reads that performed at least one
    /// ancestor fallback lookup (`slow`). Called once per attempt, not per
    /// read — the hot path keeps plain local counters.
    pub fn record_read_path(&self, hits: u64, misses: u64, slow: u64) {
        if hits > 0 {
            self.read_filter_hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.read_filter_misses.fetch_add(misses, Ordering::Relaxed);
        }
        if slow > 0 {
            self.read_slow_path.fetch_add(slow, Ordering::Relaxed);
        }
    }

    /// Record `n` batch tasks executed by stealing helpers (work-stealing
    /// scheduler; flushed once per batch, not per steal).
    pub fn record_steals(&self, n: u64) {
        if n > 0 {
            self.steal_count.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record `n` batch tasks that overflowed the fixed steal deque into the
    /// mutex-held spill vector (batch fan-out exceeded the deque capacity).
    pub fn record_deque_overflow(&self, n: u64) {
        if n > 0 {
            self.deque_overflow.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one admission-gate park (a top-level begin that had to block
    /// on the lock-free gate).
    pub fn record_park(&self) {
        self.park_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one contention-manager backoff wait of `wait_ns` decided by
    /// the policy at [`crate::CmMode::index`] `policy`. Zero-wait decisions
    /// (the `Immediate` rung, winners under karma/greedy) are not recorded.
    pub fn record_cm_wait(&self, policy: usize, wait_ns: u64) {
        self.cm_policy_waits[policy.min(CM_POLICIES - 1)].fetch_add(1, Ordering::Relaxed);
        self.cm_wait_total_ns.fetch_add(wait_ns, Ordering::Relaxed);
        self.cm_wait_hist[Self::sem_wait_bucket(wait_ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// The live version-heap gauge. [`crate::Stm::new_vbox`] attaches every
    /// box to this gauge, so it tracks the total retained versions/bytes of
    /// the owning STM instance.
    pub fn gauge(&self) -> &Arc<VersionHeapGauge> {
        &self.gauge
    }

    /// Record a read served from the chain floor because the attempt's
    /// snapshot lease expired and was evicted (the attempt is doomed and
    /// will abort at commit).
    pub fn record_evicted_read(&self) {
        self.evicted_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a read that found no version ≤ its snapshot while the snapshot
    /// was still registered — a GC watermark invariant violation.
    pub fn record_read_below_floor(&self) {
        self.read_below_floor.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` snapshot-lease evictions performed by a watermark sweep.
    pub fn record_snapshot_evictions(&self, n: u64) {
        if n > 0 {
            self.snapshot_evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record a top-level abort caused by snapshot eviction (counted in
    /// addition to the ordinary top-abort counter).
    pub fn record_evicted_abort(&self) {
        self.evicted_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one completed GC cycle that ran `slices` bounded slices and
    /// pruned `pruned` versions in total.
    pub fn record_gc_cycle(&self, slices: u64, pruned: u64) {
        self.gc_cycles.fetch_add(1, Ordering::Relaxed);
        self.gc_slices.fetch_add(slices, Ordering::Relaxed);
        if pruned > 0 {
            self.gc_pruned_versions.fetch_add(pruned, Ordering::Relaxed);
        }
    }

    /// Record a panic absorbed by the background GC supervisor (the thread
    /// keeps running; the counter is the watchdog's restart evidence).
    pub fn record_gc_thread_panic(&self) {
        self.gc_thread_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a degradation-ladder escalation to `level`.
    pub fn record_mem_degraded(&self, level: crate::mem::MemLevel) {
        match level {
            crate::mem::MemLevel::Soft => {
                self.mem_soft_events.fetch_add(1, Ordering::Relaxed);
            }
            crate::mem::MemLevel::Hard => {
                self.mem_hard_events.fetch_add(1, Ordering::Relaxed);
            }
            crate::mem::MemLevel::Normal => {}
        }
    }

    /// Record a ledger block committed in deterministic index order.
    pub fn record_block_commit(&self) {
        self.block_commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a Block-STM validation abort: the transaction re-runs as a new
    /// incarnation.
    pub fn record_txn_reexecution(&self) {
        self.txn_reexecutions.fetch_add(1, Ordering::Relaxed);
    }

    /// Histogram bucket for a wait of `wait_ns` (see [`SEM_WAIT_BUCKETS`]).
    pub fn sem_wait_bucket(wait_ns: u64) -> usize {
        let us = wait_ns / 1_000;
        let bucket = if us == 0 { 0 } else { us.ilog2() as usize };
        bucket.min(SEM_WAIT_BUCKETS - 1)
    }

    /// Install (or replace) the commit hook. Pass `None` to disable.
    ///
    /// The hook runs on the committing thread after the commit lock is
    /// released; keep it cheap. Replaced hooks stay allocated until the
    /// `Stats` drops (a committer may still be mid-call into them).
    pub fn set_commit_hook(&self, hook: Option<CommitHook>) {
        let new = match hook {
            Some(h) => Box::into_raw(Box::new(h)),
            None => std::ptr::null_mut(),
        };
        let old = self.hook.swap(new, Ordering::AcqRel);
        if !old.is_null() {
            self.retired.lock().push(RetiredHook(old));
        }
    }

    /// Consistent-enough snapshot of all counters (individually atomic).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            top_commits: self.top_commits.load(Ordering::Relaxed),
            top_aborts: self.top_aborts.load(Ordering::Relaxed),
            nested_commits: self.nested_commits.load(Ordering::Relaxed),
            nested_aborts: self.nested_aborts.load(Ordering::Relaxed),
            reconfigures: self.reconfigures.load(Ordering::Relaxed),
            sem_wait_count: self.sem_wait_count.load(Ordering::Relaxed),
            sem_wait_total_ns: self.sem_wait_total_ns.load(Ordering::Relaxed),
            sem_wait_hist: std::array::from_fn(|i| self.sem_wait_hist[i].load(Ordering::Relaxed)),
            stripe_lock_acquisitions: self.stripe_lock_acquisitions.load(Ordering::Relaxed),
            stripe_lock_contended: self.stripe_lock_contended.load(Ordering::Relaxed),
            stripe_false_conflicts: self.stripe_false_conflicts.load(Ordering::Relaxed),
            read_filter_hits: self.read_filter_hits.load(Ordering::Relaxed),
            read_filter_misses: self.read_filter_misses.load(Ordering::Relaxed),
            read_slow_path: self.read_slow_path.load(Ordering::Relaxed),
            steal_count: self.steal_count.load(Ordering::Relaxed),
            deque_overflow: self.deque_overflow.load(Ordering::Relaxed),
            park_count: self.park_count.load(Ordering::Relaxed),
            cm_policy_waits: std::array::from_fn(|i| {
                self.cm_policy_waits[i].load(Ordering::Relaxed)
            }),
            cm_wait_total_ns: self.cm_wait_total_ns.load(Ordering::Relaxed),
            cm_wait_hist: std::array::from_fn(|i| self.cm_wait_hist[i].load(Ordering::Relaxed)),
            evicted_reads: self.evicted_reads.load(Ordering::Relaxed),
            read_below_floor: self.read_below_floor.load(Ordering::Relaxed),
            snapshot_evictions: self.snapshot_evictions.load(Ordering::Relaxed),
            evicted_aborts: self.evicted_aborts.load(Ordering::Relaxed),
            gc_cycles: self.gc_cycles.load(Ordering::Relaxed),
            gc_slices: self.gc_slices.load(Ordering::Relaxed),
            gc_pruned_versions: self.gc_pruned_versions.load(Ordering::Relaxed),
            gc_thread_panics: self.gc_thread_panics.load(Ordering::Relaxed),
            mem_soft_events: self.mem_soft_events.load(Ordering::Relaxed),
            mem_hard_events: self.mem_hard_events.load(Ordering::Relaxed),
            block_commits: self.block_commits.load(Ordering::Relaxed),
            txn_reexecutions: self.txn_reexecutions.load(Ordering::Relaxed),
            retained_versions: self.gauge.retained_versions(),
            retained_bytes: self.gauge.retained_bytes(),
        }
    }
}

impl Drop for Stats {
    fn drop(&mut self) {
        let cur = self.hook.swap(std::ptr::null_mut(), Ordering::Relaxed);
        if !cur.is_null() {
            // SAFETY: `&mut self` — no committer can hold a reference.
            unsafe { drop(Box::from_raw(cur)) };
        }
        for RetiredHook(p) in self.retired.get_mut().drain(..) {
            // SAFETY: same exclusivity; each pointer was retired exactly once.
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

impl std::fmt::Debug for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Point-in-time copy of the [`Stats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Committed top-level transactions.
    pub top_commits: u64,
    /// Aborted top-level transaction attempts.
    pub top_aborts: u64,
    /// Committed nested transactions (all depths).
    pub nested_commits: u64,
    /// Aborted nested transaction attempts (sibling conflicts).
    pub nested_aborts: u64,
    /// Applied `(t, c)` reconfigurations.
    pub reconfigures: u64,
    /// Top-level admission waits recorded.
    pub sem_wait_count: u64,
    /// Total nanoseconds spent waiting for top-level admission.
    pub sem_wait_total_ns: u64,
    /// Log2 histogram of admission waits (see [`SEM_WAIT_BUCKETS`]).
    pub sem_wait_hist: [u64; SEM_WAIT_BUCKETS],
    /// Commit stripes locked by striped commit attempts (total).
    pub stripe_lock_acquisitions: u64,
    /// Of those, stripes whose acquisition needed at least one retry —
    /// commit-time contention the global lock used to hide.
    pub stripe_lock_contended: u64,
    /// Aborts caused purely by stripe granularity: stamp validation failed
    /// but every read box was individually unchanged.
    pub stripe_false_conflicts: u64,
    /// Ancestor-level read probes the Bloom filter could not rule out.
    pub read_filter_hits: u64,
    /// Ancestor-level read probes skipped entirely by the Bloom filter.
    pub read_filter_misses: u64,
    /// Reads that performed at least one ancestor fallback lookup.
    pub read_slow_path: u64,
    /// Batch tasks executed by stealing helpers (work-stealing scheduler
    /// only; the mutex pool dispatches through its batch queue instead).
    pub steal_count: u64,
    /// Batch tasks that overflowed the fixed steal deque into the spill
    /// vector (fan-out larger than the deque capacity).
    pub deque_overflow: u64,
    /// Top-level admissions that parked on the lock-free gate (work-stealing
    /// mode only; the mutex semaphore blocks on its condvar instead).
    pub park_count: u64,
    /// Contention-manager backoff waits per policy, indexed by
    /// [`crate::CmMode::index`]. Zero-wait decisions are not counted, so
    /// the `Immediate` slot stays 0.
    pub cm_policy_waits: [u64; CM_POLICIES],
    /// Total nanoseconds spent in contention-manager backoff waits.
    pub cm_wait_total_ns: u64,
    /// Log2 histogram of contention-manager backoff waits (same bucketing
    /// as the admission-wait histogram, see [`SEM_WAIT_BUCKETS`]).
    pub cm_wait_hist: [u64; SEM_WAIT_BUCKETS],
    /// Reads served from the chain floor by a doomed attempt whose snapshot
    /// lease expired and was evicted.
    pub evicted_reads: u64,
    /// Reads that found no version ≤ a still-registered snapshot — GC
    /// watermark invariant violations (always 0 in a correct build).
    pub read_below_floor: u64,
    /// Snapshot registrations evicted because their lease expired.
    pub snapshot_evictions: u64,
    /// Top-level aborts attributed to snapshot eviction.
    pub evicted_aborts: u64,
    /// Completed version-heap GC cycles (background or inline).
    pub gc_cycles: u64,
    /// Bounded GC slices executed across all cycles.
    pub gc_slices: u64,
    /// Versions pruned from box chains by the GC.
    pub gc_pruned_versions: u64,
    /// Panics absorbed by the background GC supervisor loop.
    pub gc_thread_panics: u64,
    /// Degradation-ladder escalations into [`crate::MemLevel::Soft`].
    pub mem_soft_events: u64,
    /// Degradation-ladder escalations into [`crate::MemLevel::Hard`].
    pub mem_hard_events: u64,
    /// Ledger blocks committed in deterministic index order (both rungs).
    pub block_commits: u64,
    /// Block-STM validation aborts: transactions re-run as new incarnations.
    pub txn_reexecutions: u64,
    /// Point-in-time retained version count (gauge, not a counter — the
    /// delta of a gauge is a saturating difference, not a rate).
    pub retained_versions: u64,
    /// Point-in-time retained bytes (shallow entry sizes; same gauge caveat).
    pub retained_bytes: u64,
}

impl StatsSnapshot {
    /// Abort rate of top-level attempts: aborts / (commits + aborts).
    pub fn top_abort_rate(&self) -> f64 {
        let total = self.top_commits + self.top_aborts;
        if total == 0 {
            0.0
        } else {
            self.top_aborts as f64 / total as f64
        }
    }

    /// Abort rate of nested attempts.
    pub fn nested_abort_rate(&self) -> f64 {
        let total = self.nested_commits + self.nested_aborts;
        if total == 0 {
            0.0
        } else {
            self.nested_aborts as f64 / total as f64
        }
    }

    /// Total contention-manager backoff waits across all policies.
    pub fn cm_wait_count(&self) -> u64 {
        self.cm_policy_waits.iter().sum()
    }

    /// Mean top-level admission wait in nanoseconds (0 when none recorded).
    pub fn mean_sem_wait_ns(&self) -> f64 {
        if self.sem_wait_count == 0 {
            0.0
        } else {
            self.sem_wait_total_ns as f64 / self.sem_wait_count as f64
        }
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            top_commits: self.top_commits.saturating_sub(earlier.top_commits),
            top_aborts: self.top_aborts.saturating_sub(earlier.top_aborts),
            nested_commits: self.nested_commits.saturating_sub(earlier.nested_commits),
            nested_aborts: self.nested_aborts.saturating_sub(earlier.nested_aborts),
            reconfigures: self.reconfigures.saturating_sub(earlier.reconfigures),
            sem_wait_count: self.sem_wait_count.saturating_sub(earlier.sem_wait_count),
            sem_wait_total_ns: self.sem_wait_total_ns.saturating_sub(earlier.sem_wait_total_ns),
            sem_wait_hist: std::array::from_fn(|i| {
                self.sem_wait_hist[i].saturating_sub(earlier.sem_wait_hist[i])
            }),
            stripe_lock_acquisitions: self
                .stripe_lock_acquisitions
                .saturating_sub(earlier.stripe_lock_acquisitions),
            stripe_lock_contended: self
                .stripe_lock_contended
                .saturating_sub(earlier.stripe_lock_contended),
            stripe_false_conflicts: self
                .stripe_false_conflicts
                .saturating_sub(earlier.stripe_false_conflicts),
            read_filter_hits: self.read_filter_hits.saturating_sub(earlier.read_filter_hits),
            read_filter_misses: self.read_filter_misses.saturating_sub(earlier.read_filter_misses),
            read_slow_path: self.read_slow_path.saturating_sub(earlier.read_slow_path),
            steal_count: self.steal_count.saturating_sub(earlier.steal_count),
            deque_overflow: self.deque_overflow.saturating_sub(earlier.deque_overflow),
            park_count: self.park_count.saturating_sub(earlier.park_count),
            cm_policy_waits: std::array::from_fn(|i| {
                self.cm_policy_waits[i].saturating_sub(earlier.cm_policy_waits[i])
            }),
            cm_wait_total_ns: self.cm_wait_total_ns.saturating_sub(earlier.cm_wait_total_ns),
            cm_wait_hist: std::array::from_fn(|i| {
                self.cm_wait_hist[i].saturating_sub(earlier.cm_wait_hist[i])
            }),
            evicted_reads: self.evicted_reads.saturating_sub(earlier.evicted_reads),
            read_below_floor: self.read_below_floor.saturating_sub(earlier.read_below_floor),
            snapshot_evictions: self.snapshot_evictions.saturating_sub(earlier.snapshot_evictions),
            evicted_aborts: self.evicted_aborts.saturating_sub(earlier.evicted_aborts),
            gc_cycles: self.gc_cycles.saturating_sub(earlier.gc_cycles),
            gc_slices: self.gc_slices.saturating_sub(earlier.gc_slices),
            gc_pruned_versions: self.gc_pruned_versions.saturating_sub(earlier.gc_pruned_versions),
            gc_thread_panics: self.gc_thread_panics.saturating_sub(earlier.gc_thread_panics),
            mem_soft_events: self.mem_soft_events.saturating_sub(earlier.mem_soft_events),
            mem_hard_events: self.mem_hard_events.saturating_sub(earlier.mem_hard_events),
            block_commits: self.block_commits.saturating_sub(earlier.block_commits),
            txn_reexecutions: self.txn_reexecutions.saturating_sub(earlier.txn_reexecutions),
            retained_versions: self.retained_versions.saturating_sub(earlier.retained_versions),
            retained_bytes: self.retained_bytes.saturating_sub(earlier.retained_bytes),
        }
    }
}

/// Number of log2 buckets in a [`LatencyHistogram`]: bucket `k` counts
/// latencies in `[2^k, 2^{k+1})` nanoseconds (bucket 0 also absorbs 0 ns,
/// the last bucket is open-ended — ≥ 2^39 ns ≈ 9.2 minutes). Nanosecond
/// granularity at the bottom, because open-loop service latencies span from
/// sub-microsecond commits to multi-second overload queueing.
pub const LATENCY_BUCKETS: usize = 40;

/// Lock-free log2-bucketed latency histogram, following the
/// [`Stats`]/[`StatsSnapshot`] pattern: relaxed atomic increments on the
/// record path, point-in-time [`LatencyHistogram::snapshot`] copies, and
/// saturating [`LatencySnapshot::delta_since`] for per-window views.
///
/// A log2 histogram trades resolution for a fixed footprint: any quantile
/// estimate is exact up to the width of the bucket it lands in (the estimate
/// and the true ranked sample always share a bucket).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Histogram bucket for a latency of `ns` nanoseconds.
    pub fn bucket_of(ns: u64) -> usize {
        let bucket = if ns == 0 { 0 } else { ns.ilog2() as usize };
        bucket.min(LATENCY_BUCKETS - 1)
    }

    /// Record one latency observation.
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the counters (individually atomic).
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Per-bucket observation counts (see [`LATENCY_BUCKETS`]).
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded latencies in nanoseconds.
    pub total_ns: u64,
}

impl Default for LatencySnapshot {
    fn default() -> Self {
        Self { buckets: [0; LATENCY_BUCKETS], count: 0, total_ns: 0 }
    }
}

impl LatencySnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta_since(&self, earlier: &LatencySnapshot) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            total_ns: self.total_ns.saturating_sub(earlier.total_ns),
        }
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate in nanoseconds: the inclusive upper
    /// edge `2^{k+1} - 1` of the bucket holding the rank-`⌈p/100·n⌉` sample
    /// (so the estimate falls in the same bucket as the true ranked sample —
    /// at most one bucket width high, never a bucket low). Returns 0 when
    /// the histogram is empty. `p` is a percentage, e.g. `99.9`.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut cumulative = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return (1u64 << (k as u32 + 1)) - 1;
            }
        }
        (1u64 << LATENCY_BUCKETS as u32) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn counters_accumulate() {
        let s = Stats::new();
        s.record_commit_top();
        s.record_commit_top();
        s.record_abort_top();
        s.record_commit_nested();
        s.record_abort_nested();
        s.record_abort_nested();
        s.record_reconfigure();
        let snap = s.snapshot();
        assert_eq!(snap.top_commits, 2);
        assert_eq!(snap.top_aborts, 1);
        assert_eq!(snap.nested_commits, 1);
        assert_eq!(snap.nested_aborts, 2);
        assert_eq!(snap.reconfigures, 1);
    }

    #[test]
    fn stripe_counters_accumulate() {
        let s = Stats::new();
        s.record_stripe_locks(3, 0);
        s.record_stripe_locks(2, 1);
        s.record_stripe_false_conflict();
        let snap = s.snapshot();
        assert_eq!(snap.stripe_lock_acquisitions, 5);
        assert_eq!(snap.stripe_lock_contended, 1);
        assert_eq!(snap.stripe_false_conflicts, 1);
        let d = snap.delta_since(&StatsSnapshot::default());
        assert_eq!(d.stripe_lock_acquisitions, 5);
    }

    #[test]
    fn read_path_counters_accumulate() {
        let s = Stats::new();
        s.record_read_path(3, 10, 2);
        s.record_read_path(0, 0, 0); // all-zero flush is a no-op
        s.record_read_path(1, 0, 1);
        let snap = s.snapshot();
        assert_eq!(snap.read_filter_hits, 4);
        assert_eq!(snap.read_filter_misses, 10);
        assert_eq!(snap.read_slow_path, 3);
        let d = snap.delta_since(&StatsSnapshot::default());
        assert_eq!(d.read_filter_hits, 4);
        assert_eq!(d.read_filter_misses, 10);
        assert_eq!(d.read_slow_path, 3);
    }

    #[test]
    fn scheduler_counters_accumulate() {
        let s = Stats::new();
        s.record_steals(3);
        s.record_steals(0); // zero flush is a no-op
        s.record_deque_overflow(5);
        s.record_park();
        s.record_park();
        let snap = s.snapshot();
        assert_eq!(snap.steal_count, 3);
        assert_eq!(snap.deque_overflow, 5);
        assert_eq!(snap.park_count, 2);
        let d = snap.delta_since(&StatsSnapshot::default());
        assert_eq!(d.steal_count, 3);
        assert_eq!(d.deque_overflow, 5);
        assert_eq!(d.park_count, 2);
    }

    #[test]
    fn cm_wait_counters_accumulate() {
        let s = Stats::new();
        let backoff = crate::cm::CmMode::ExpBackoff.index();
        let karma = crate::cm::CmMode::Karma.index();
        s.record_cm_wait(backoff, 3_000);
        s.record_cm_wait(backoff, 500);
        s.record_cm_wait(karma, 2_000);
        let snap = s.snapshot();
        assert_eq!(snap.cm_policy_waits[backoff], 2);
        assert_eq!(snap.cm_policy_waits[karma], 1);
        assert_eq!(snap.cm_policy_waits[crate::cm::CmMode::Immediate.index()], 0);
        assert_eq!(snap.cm_wait_count(), 3);
        assert_eq!(snap.cm_wait_total_ns, 5_500);
        assert_eq!(snap.cm_wait_hist[0], 1); // 500 ns
        assert_eq!(snap.cm_wait_hist[1], 2); // 2 µs and 3 µs
        let d = snap.delta_since(&StatsSnapshot::default());
        assert_eq!(d.cm_wait_count(), 3);
        assert_eq!(d.cm_wait_total_ns, 5_500);
    }

    #[test]
    fn mem_counters_accumulate() {
        let s = Stats::new();
        s.record_evicted_read();
        s.record_evicted_read();
        s.record_read_below_floor();
        s.record_snapshot_evictions(3);
        s.record_snapshot_evictions(0); // zero flush is a no-op
        s.record_evicted_abort();
        s.record_gc_cycle(4, 17);
        s.record_gc_cycle(1, 0);
        s.record_gc_thread_panic();
        s.record_mem_degraded(crate::mem::MemLevel::Soft);
        s.record_mem_degraded(crate::mem::MemLevel::Hard);
        s.record_mem_degraded(crate::mem::MemLevel::Normal); // recovery: not an escalation
        s.gauge().add(5, 80);
        s.gauge().sub(2, 32);
        let snap = s.snapshot();
        assert_eq!(snap.evicted_reads, 2);
        assert_eq!(snap.read_below_floor, 1);
        assert_eq!(snap.snapshot_evictions, 3);
        assert_eq!(snap.evicted_aborts, 1);
        assert_eq!(snap.gc_cycles, 2);
        assert_eq!(snap.gc_slices, 5);
        assert_eq!(snap.gc_pruned_versions, 17);
        assert_eq!(snap.gc_thread_panics, 1);
        assert_eq!(snap.mem_soft_events, 1);
        assert_eq!(snap.mem_hard_events, 1);
        assert_eq!(snap.retained_versions, 3);
        assert_eq!(snap.retained_bytes, 48);
        let d = snap.delta_since(&StatsSnapshot::default());
        assert_eq!(d.evicted_reads, 2);
        assert_eq!(d.gc_pruned_versions, 17);
        assert_eq!(d.retained_versions, 3);
    }

    #[test]
    fn ledger_counters_accumulate() {
        let s = Stats::new();
        s.record_block_commit();
        s.record_block_commit();
        s.record_txn_reexecution();
        let snap = s.snapshot();
        assert_eq!(snap.block_commits, 2);
        assert_eq!(snap.txn_reexecutions, 1);
        let d = snap.delta_since(&StatsSnapshot { block_commits: 1, ..Default::default() });
        assert_eq!(d.block_commits, 1);
        assert_eq!(d.txn_reexecutions, 1);
    }

    #[test]
    fn abort_rates() {
        let snap = StatsSnapshot { top_commits: 3, top_aborts: 1, ..Default::default() };
        assert!((snap.top_abort_rate() - 0.25).abs() < 1e-12);
        assert_eq!(snap.nested_abort_rate(), 0.0);
        assert_eq!(StatsSnapshot::default().top_abort_rate(), 0.0);
    }

    #[test]
    fn hook_fires_with_sequence_numbers() {
        let s = Stats::new();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        s.set_commit_hook(Some(Arc::new(move |ev: CommitEvent| {
            seen2.fetch_add(ev.seq as usize, Ordering::Relaxed);
        })));
        s.record_commit_top(); // seq 1
        s.record_commit_top(); // seq 2
        assert_eq!(seen.load(Ordering::Relaxed), 3);
        s.set_commit_hook(None);
        s.record_commit_top();
        assert_eq!(seen.load(Ordering::Relaxed), 3, "hook removed");
    }

    #[test]
    fn hook_swaps_are_safe_under_concurrent_commits() {
        let s = Arc::new(Stats::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    s.record_commit_top();
                }
            }));
        }
        for i in 0..200 {
            let calls2 = Arc::clone(&calls);
            let hook: Option<CommitHook> = if i % 4 == 3 {
                None
            } else {
                Some(Arc::new(move |_| {
                    calls2.fetch_add(1, Ordering::Relaxed);
                }))
            };
            s.set_commit_hook(hook);
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert!(s.snapshot().top_commits > 0);
        // `calls` may be anything ≥ 0; the point is no crash/UB under swap.
    }

    #[test]
    fn sem_wait_histogram_buckets() {
        assert_eq!(Stats::sem_wait_bucket(0), 0);
        assert_eq!(Stats::sem_wait_bucket(999), 0); // < 1 µs
        assert_eq!(Stats::sem_wait_bucket(1_000), 0); // 1 µs
        assert_eq!(Stats::sem_wait_bucket(2_000), 1); // 2 µs
        assert_eq!(Stats::sem_wait_bucket(1_000_000), 9); // 1 ms ≈ 2^9.97 µs
        assert_eq!(Stats::sem_wait_bucket(u64::MAX), SEM_WAIT_BUCKETS - 1);

        let s = Stats::new();
        s.record_sem_wait(500);
        s.record_sem_wait(3_000);
        s.record_sem_wait(3_500);
        let snap = s.snapshot();
        assert_eq!(snap.sem_wait_count, 3);
        assert_eq!(snap.sem_wait_total_ns, 7_000);
        assert_eq!(snap.sem_wait_hist[0], 1);
        assert_eq!(snap.sem_wait_hist[1], 2);
        assert!((snap.mean_sem_wait_ns() - 7_000.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn latency_bucket_boundaries() {
        // 0 and 1 ns share bucket 0 ([0, 2) ns).
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        // Exact powers of two open their own bucket; one below stays under.
        for k in 1..40u32 {
            assert_eq!(LatencyHistogram::bucket_of(1 << k), k as usize, "2^{k}");
            assert_eq!(LatencyHistogram::bucket_of((1 << k) - 1), k as usize - 1, "2^{k}-1");
        }
        // The top bucket saturates: 2^40, 2^63, and u64::MAX all land in it.
        assert_eq!(LatencyHistogram::bucket_of(1 << 40), LATENCY_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_of(1 << 63), LATENCY_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn latency_histogram_records_and_deltas() {
        let h = LatencyHistogram::new();
        h.record(1); // bucket 0
        h.record(1_000); // bucket 9 ([512, 1024) ns... 1000 < 1024, ilog2 = 9)
        h.record(1_500); // bucket 10
        h.record(u64::MAX); // top bucket
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[9], 1);
        assert_eq!(snap.buckets[10], 1);
        assert_eq!(snap.buckets[LATENCY_BUCKETS - 1], 1);
        assert_eq!(
            snap.total_ns,
            1u64.wrapping_add(1_000).wrapping_add(1_500).wrapping_add(u64::MAX)
        );

        let d = snap.delta_since(&LatencySnapshot {
            buckets: {
                let mut b = [0; LATENCY_BUCKETS];
                b[0] = 1;
                b
            },
            count: 1,
            total_ns: 1,
        });
        assert_eq!(d.count, 3);
        assert_eq!(d.buckets[0], 0);
        assert_eq!(d.buckets[9], 1);
    }

    #[test]
    fn latency_quantile_nearest_rank_upper_edge() {
        let empty = LatencySnapshot::default();
        assert_eq!(empty.quantile(50.0), 0);
        assert_eq!(empty.mean_ns(), 0.0);

        // Single sample: every quantile is that sample's bucket edge.
        let h = LatencyHistogram::new();
        h.record(100); // bucket 6: [64, 128)
        let one = h.snapshot();
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(one.quantile(p), 127, "p={p}");
        }
        assert_eq!(
            LatencyHistogram::bucket_of(one.quantile(99.0)),
            LatencyHistogram::bucket_of(100)
        );

        // 100 samples in bucket 3 ([8, 16)) and 1 in bucket 12: p50 stays in
        // the low bucket, p99.9 must land in the tail bucket (rank 101).
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(10);
        }
        h.record(5_000);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(50.0), 15); // upper edge of bucket 3
        assert_eq!(snap.quantile(99.0), 15); // rank 100 of 101 is still bucket 3
        assert_eq!(snap.quantile(99.9), 8_191); // rank 101: bucket 12 edge
        assert_eq!(snap.quantile(100.0), 8_191);
        assert!((snap.mean_ns() - (100.0 * 10.0 + 5_000.0) / 101.0).abs() < 1e-9);
    }

    #[test]
    fn delta_since_subtracts() {
        let a = StatsSnapshot {
            top_commits: 10,
            top_aborts: 4,
            nested_commits: 7,
            nested_aborts: 2,
            ..Default::default()
        };
        let b = StatsSnapshot {
            top_commits: 25,
            top_aborts: 5,
            nested_commits: 9,
            nested_aborts: 2,
            reconfigures: 3,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(
            d,
            StatsSnapshot {
                top_commits: 15,
                top_aborts: 1,
                nested_commits: 2,
                nested_aborts: 0,
                reconfigures: 3,
                ..Default::default()
            }
        );
    }
}
