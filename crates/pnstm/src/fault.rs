//! Deterministic fault injection for chaos-testing the tuning stack.
//!
//! AutoPN's value proposition is surviving hostile operating points —
//! starving configurations, abort storms, stalled children, panicking
//! workload code — but none of those pathologies occur on demand in a
//! healthy test machine. This module creates them reproducibly:
//!
//! * A [`FaultPlan`] maps each [`FaultKind`] to a [`FaultRule`] (activation
//!   probability, delay magnitude, activation schedule, injection budget).
//! * Every decision is a pure function of `(seed, kind, consultation index)`
//!   — no wall-clock, no global RNG — so a single-threaded driver (the
//!   `simtm` adapter, a replay) produces *byte-identical* injected-fault
//!   sequences for the same seed, and a multi-threaded run draws the same
//!   multiset of decisions in whatever order its interleaving visits them.
//! * Each injection is published as [`TraceEvent::FaultInjected`] on the
//!   owning [`TraceBus`], so JSONL traces show exactly which faults fired
//!   where, interleaved with the runtime and control-plane events.
//!
//! The runtime consults the plan at **named injection sites** (see the table
//! in `DESIGN.md` §5c): top-level admission ([`FaultKind::AdmissionStall`]),
//! commit validation ([`FaultKind::ValidationAbort`]), the commit-lock
//! critical section ([`FaultKind::CommitHold`]), child-task execution in the
//! shared pool ([`FaultKind::ChildStall`]), application worker loops
//! ([`FaultKind::WorkerPanic`]), commit-timestamp reads
//! ([`FaultKind::ClockJitter`]) and throttle reconfiguration
//! ([`FaultKind::ReconfigFail`]).
//!
//! **Hot-path cost when disabled:** a site holds a [`FaultCtx`] whose plan is
//! `None`; [`FaultCtx::inject`] is then a single inlined branch (see the
//! `fault/site_check` benchmark, which budgets it like `commit/hook_dispatch`).

use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::trace::{self, TraceBus, TraceEvent};

/// The failure modes the runtime knows how to manufacture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Force a top-level commit validation to report a conflict (abort
    /// storm). Site: `Txn::commit_top`.
    ValidationAbort,
    /// Sleep while *holding* the committing transaction's write-set stripe
    /// locks (a stuck committer: back-pressures committers sharing a stripe,
    /// while disjoint-stripe commits keep flowing). Under
    /// [`crate::CommitPath::GlobalLock`] the stall holds the global commit
    /// lock instead and back-pressures every committer.
    /// Site: `Txn::commit_top`.
    CommitHold,
    /// Sleep at child-task dispatch (stalled child / slow dispatch). Site:
    /// the scheduler's task-claim path — inside the queue critical section
    /// under `SchedMode::Mutex` (a stalled dispatch holds the batch queue),
    /// after the lock-free claim under `SchedMode::WorkStealing` (stalled
    /// dispatches overlap); the contrast is what `sched_scaling` measures.
    ChildStall,
    /// Sleep before acquiring the top-level admission semaphore (admission
    /// starvation). Site: `Stm::atomic`. The sim chaos wrapper interprets
    /// this as a swallowed commit (the system looks stalled to the monitor).
    AdmissionStall,
    /// Panic in an application worker's transaction body (a crashing
    /// workload closure). Site: `LiveStmSystem` worker loop.
    WorkerPanic,
    /// Perturb a commit-event timestamp by up to `delay_ns` (pathological
    /// measurements feeding the monitor). Site: commit-hook timestamping.
    ClockJitter,
    /// Make a `(t, c)` reconfiguration attempt fail (exercises the
    /// controller's retry/backoff/fallback ladder). Site:
    /// `Throttle::try_reconfigure`.
    ReconfigFail,
    /// Sleep during an ancestor-scope read probe (a slow read walking the
    /// nesting ladder). Under [`crate::ReadPathMode::Locked`] the stall is
    /// taken while holding the ancestor-level locks and back-pressures every
    /// sibling reading through that level; under the default lock-free path
    /// sibling stalls overlap. Site: `Txn::read` ancestor-level probe.
    ReadHold,
    /// Sleep inside the background GC's slice loop (a stalled collector:
    /// retained versions accumulate, but commits must keep flowing — the GC
    /// thread never holds a lock across a slice). Site: the GC slice loop in
    /// `runtime.rs` (both the background thread and inline sweeps consult
    /// it). The chaos suite uses this to prove a wedged collector degrades
    /// memory, not throughput.
    GcStall,
}

/// Number of distinct fault kinds (array sizing).
pub const FAULT_KINDS: usize = 9;

impl FaultKind {
    /// Every kind, in stable order (index = position).
    pub const ALL: [FaultKind; FAULT_KINDS] = [
        FaultKind::ValidationAbort,
        FaultKind::CommitHold,
        FaultKind::ChildStall,
        FaultKind::AdmissionStall,
        FaultKind::WorkerPanic,
        FaultKind::ClockJitter,
        FaultKind::ReconfigFail,
        FaultKind::ReadHold,
        FaultKind::GcStall,
    ];

    /// Stable dense index of this kind.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FaultKind::ValidationAbort => 0,
            FaultKind::CommitHold => 1,
            FaultKind::ChildStall => 2,
            FaultKind::AdmissionStall => 3,
            FaultKind::WorkerPanic => 4,
            FaultKind::ClockJitter => 5,
            FaultKind::ReconfigFail => 6,
            FaultKind::ReadHold => 7,
            FaultKind::GcStall => 8,
        }
    }

    /// Stable kebab-case tag (used by the JSONL trace schema and the
    /// `--fault-plan` CLI spec).
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::ValidationAbort => "validation-abort",
            FaultKind::CommitHold => "commit-hold",
            FaultKind::ChildStall => "child-stall",
            FaultKind::AdmissionStall => "admission-stall",
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::ClockJitter => "clock-jitter",
            FaultKind::ReconfigFail => "reconfig-fail",
            FaultKind::ReadHold => "read-hold",
            FaultKind::GcStall => "gc-stall",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

impl FromStr for FaultKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultKind::ALL
            .into_iter()
            .find(|k| k.tag() == s)
            .ok_or_else(|| format!("unknown fault kind '{s}'"))
    }
}

/// Per-kind injection policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Probability that one consultation of the site fires, in `[0, 1]`.
    pub probability: f64,
    /// Delay magnitude for stall/hold kinds; jitter amplitude for
    /// [`FaultKind::ClockJitter`]. Ignored by abort/panic/fail kinds.
    pub delay_ns: u64,
    /// Skip the first `after` consultations (lets a session start healthy
    /// and degrade mid-flight).
    pub after: u64,
    /// Maximum number of injections before the rule goes quiet
    /// (`u64::MAX` = unbounded).
    pub budget: u64,
}

impl FaultRule {
    /// A rule firing with `probability`, no delay, immediately, unbounded.
    pub fn with_probability(probability: f64) -> Self {
        Self { probability: probability.clamp(0.0, 1.0), delay_ns: 0, after: 0, budget: u64::MAX }
    }

    /// Builder: set the delay/jitter magnitude.
    pub fn delay_ns(mut self, delay_ns: u64) -> Self {
        self.delay_ns = delay_ns;
        self
    }

    /// Builder: skip the first `after` consultations.
    pub fn after(mut self, after: u64) -> Self {
        self.after = after;
        self
    }

    /// Builder: cap the number of injections.
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }
}

/// One granted injection: what a site should actually do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAction {
    /// 1-based injection sequence number within this kind.
    pub seq: u64,
    /// The rule's delay magnitude (0 for non-delay kinds).
    pub delay_ns: u64,
    /// Deterministic per-injection entropy, for sites that need extra
    /// decisions (e.g. jitter sign/size) without another RNG.
    pub bits: u64,
}

impl FaultAction {
    /// Deterministic jitter in `[0, delay_ns]` derived from [`Self::bits`].
    pub fn jitter_ns(&self) -> u64 {
        if self.delay_ns == 0 {
            0
        } else {
            self.bits % (self.delay_ns + 1)
        }
    }

    /// Signed jitter in `[-delay_ns, +delay_ns]` (sign from a spare bit).
    pub fn signed_jitter_ns(&self) -> i64 {
        let j = self.jitter_ns() as i64;
        if self.bits & (1 << 63) != 0 {
            -j
        } else {
            j
        }
    }

    /// Sleep for `delay_ns` (no-op when 0). Sites that can block call this.
    pub fn stall(&self) {
        if self.delay_ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(self.delay_ns));
        }
    }
}

/// SplitMix64 finalizer over `(seed, kind, index)`: the sole entropy source
/// of the fault layer, so every decision replays exactly.
#[inline]
fn mix(seed: u64, kind: u64, index: u64) -> u64 {
    let mut z =
        seed ^ kind.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, deterministic schedule of faults to inject.
///
/// Cheap to share (`Arc` it into [`crate::StmConfig::fault`]); consultation
/// counters are atomic, so any number of threads may consult concurrently.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: [Option<FaultRule>; FAULT_KINDS],
    consults: [AtomicU64; FAULT_KINDS],
    injections: [AtomicU64; FAULT_KINDS],
}

impl FaultPlan {
    /// An empty plan (no rules, nothing ever fires) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// The seed all decisions derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builder: attach `rule` for `kind`.
    pub fn with_rule(mut self, kind: FaultKind, rule: FaultRule) -> Self {
        self.rules[kind.index()] = Some(rule);
        self
    }

    /// The rule for `kind`, if any.
    pub fn rule(&self, kind: FaultKind) -> Option<&FaultRule> {
        self.rules[kind.index()].as_ref()
    }

    /// Whether any rule is configured.
    pub fn is_empty(&self) -> bool {
        self.rules.iter().all(Option::is_none)
    }

    /// How many injections of `kind` have fired so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        let i = kind.index();
        let n = self.injections[i].load(Ordering::Relaxed);
        match self.rules[i] {
            Some(r) => n.min(r.budget),
            None => n,
        }
    }

    /// Total injections across all kinds.
    pub fn injected_total(&self) -> u64 {
        FaultKind::ALL.into_iter().map(|k| self.injected(k)).sum()
    }

    /// Consult the plan at a site of `kind`: returns the action to perform
    /// if this consultation draws an injection, `None` otherwise.
    ///
    /// Deterministic: the decision for consultation `i` of a kind depends
    /// only on `(seed, kind, i)`; the atomic counter just hands out `i`.
    pub fn check(&self, kind: FaultKind) -> Option<FaultAction> {
        let i = kind.index();
        let rule = self.rules[i].as_ref()?;
        let idx = self.consults[i].fetch_add(1, Ordering::Relaxed);
        if idx < rule.after {
            return None;
        }
        let bits = mix(self.seed, i as u64, idx);
        // 53 uniform mantissa bits in [0, 1), same construction as the rand
        // shim's gen_bool, so probability 1.0 always fires and 0.0 never.
        let draw = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if draw >= rule.probability {
            return None;
        }
        let n = self.injections[i].fetch_add(1, Ordering::Relaxed);
        if n >= rule.budget {
            return None;
        }
        Some(FaultAction { seq: n + 1, delay_ns: rule.delay_ns, bits })
    }

    /// Parse a CLI fault-plan spec.
    ///
    /// Format: comma-separated `key=value` entries. `seed=<u64>` sets the
    /// seed (default 0); every other key is a [`FaultKind`] tag with value
    /// `<probability>[:<delay>][:<budget>]`, where `<delay>` takes `ns`,
    /// `us`, `ms` or `s` suffixes (bare numbers are nanoseconds).
    ///
    /// ```
    /// use pnstm::fault::{FaultKind, FaultPlan};
    /// let p = FaultPlan::parse("seed=7,validation-abort=0.2,commit-hold=0.1:2ms:5").unwrap();
    /// assert_eq!(p.seed(), 7);
    /// let r = p.rule(FaultKind::CommitHold).unwrap();
    /// assert_eq!((r.probability, r.delay_ns, r.budget), (0.1, 2_000_000, 5));
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut rules: Vec<(FaultKind, FaultRule)> = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry '{entry}' is not key=value"))?;
            if key == "seed" {
                seed = value.parse().map_err(|_| format!("bad seed '{value}'"))?;
                continue;
            }
            let kind: FaultKind = key.parse()?;
            let mut parts = value.split(':');
            let prob: f64 = parts
                .next()
                .unwrap_or_default()
                .parse()
                .map_err(|_| format!("bad probability in '{entry}'"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("probability {prob} out of [0,1] in '{entry}'"));
            }
            let mut rule = FaultRule::with_probability(prob);
            if let Some(delay) = parts.next() {
                rule.delay_ns = parse_duration_ns(delay)?;
            }
            if let Some(budget) = parts.next() {
                rule.budget = budget.parse().map_err(|_| format!("bad budget in '{entry}'"))?;
            }
            if parts.next().is_some() {
                return Err(format!("too many ':' fields in '{entry}'"));
            }
            rules.push((kind, rule));
        }
        let mut plan = FaultPlan::new(seed);
        for (kind, rule) in rules {
            plan = plan.with_rule(kind, rule);
        }
        Ok(plan)
    }
}

fn parse_duration_ns(s: &str) -> Result<u64, String> {
    let (num, mul) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1u64)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        (s, 1)
    };
    let v: f64 = num.trim().parse().map_err(|_| format!("bad duration '{s}'"))?;
    if v < 0.0 {
        return Err(format!("negative duration '{s}'"));
    }
    Ok((v * mul as f64) as u64)
}

/// An injection context a site holds: the (optional) plan plus the trace bus
/// injections are published on.
///
/// `FaultCtx` is what actually lives in the runtime structures, so the
/// disabled configuration costs one branch per consultation (`plan.is_none()`)
/// and zero allocation.
#[derive(Clone, Default)]
pub struct FaultCtx {
    plan: Option<Arc<FaultPlan>>,
    trace: TraceBus,
}

impl FaultCtx {
    /// A context that injects per `plan` and traces on `trace`.
    pub fn new(plan: Option<Arc<FaultPlan>>, trace: TraceBus) -> Self {
        Self { plan, trace }
    }

    /// A context that never injects (the production default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// The underlying plan, if any.
    pub fn plan(&self) -> Option<&Arc<FaultPlan>> {
        self.plan.as_ref()
    }

    /// Whether a plan is attached (sites may use this to skip setup work).
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.plan.is_some()
    }

    /// Consult the plan for `kind`; on an injection, emit
    /// [`TraceEvent::FaultInjected`] (stamped with the process trace clock)
    /// and return the action.
    #[inline]
    pub fn inject(&self, kind: FaultKind) -> Option<FaultAction> {
        let plan = self.plan.as_ref()?;
        self.inject_slow(plan, kind)
    }

    #[cold]
    fn inject_slow(&self, plan: &Arc<FaultPlan>, kind: FaultKind) -> Option<FaultAction> {
        let action = plan.check(kind)?;
        self.trace.emit(TraceEvent::FaultInjected {
            kind,
            seq: action.seq,
            delay_ns: action.delay_ns,
            at_ns: trace::now_ns(),
        });
        Some(action)
    }

    /// [`FaultCtx::inject`] stamping the trace event with a caller-supplied
    /// clock (virtual-time drivers use this so traces replay byte-identically).
    pub fn inject_at(&self, kind: FaultKind, at_ns: u64) -> Option<FaultAction> {
        let plan = self.plan.as_ref()?;
        let action = plan.check(kind)?;
        self.trace.emit(TraceEvent::FaultInjected {
            kind,
            seq: action.seq,
            delay_ns: action.delay_ns,
            at_ns,
        });
        Some(action)
    }
}

impl std::fmt::Debug for FaultCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultCtx").field("armed", &self.is_armed()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TestSink;

    fn decisions(plan: &FaultPlan, kind: FaultKind, n: usize) -> Vec<Option<FaultAction>> {
        (0..n).map(|_| plan.check(kind)).collect()
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let mk = || {
            FaultPlan::new(42)
                .with_rule(FaultKind::ValidationAbort, FaultRule::with_probability(0.3))
                .with_rule(FaultKind::CommitHold, FaultRule::with_probability(0.7).delay_ns(500))
        };
        let (a, b) = (mk(), mk());
        for kind in [FaultKind::ValidationAbort, FaultKind::CommitHold] {
            assert_eq!(decisions(&a, kind, 500), decisions(&b, kind, 500));
        }
        assert_eq!(a.injected_total(), b.injected_total());
        assert!(a.injected_total() > 0, "p=0.3/0.7 over 500 draws must fire");
    }

    #[test]
    fn different_seeds_diverge() {
        let a =
            FaultPlan::new(1).with_rule(FaultKind::ChildStall, FaultRule::with_probability(0.5));
        let b =
            FaultPlan::new(2).with_rule(FaultKind::ChildStall, FaultRule::with_probability(0.5));
        assert_ne!(
            decisions(&a, FaultKind::ChildStall, 200),
            decisions(&b, FaultKind::ChildStall, 200)
        );
    }

    #[test]
    fn probability_extremes() {
        let p = FaultPlan::new(9)
            .with_rule(FaultKind::WorkerPanic, FaultRule::with_probability(0.0))
            .with_rule(FaultKind::ClockJitter, FaultRule::with_probability(1.0));
        for _ in 0..100 {
            assert_eq!(p.check(FaultKind::WorkerPanic), None);
            assert!(p.check(FaultKind::ClockJitter).is_some());
        }
        // Unruled kinds never fire and count nothing.
        assert_eq!(p.check(FaultKind::CommitHold), None);
        assert_eq!(p.injected(FaultKind::ClockJitter), 100);
    }

    #[test]
    fn after_and_budget_bound_the_schedule() {
        let p = FaultPlan::new(3).with_rule(
            FaultKind::AdmissionStall,
            FaultRule::with_probability(1.0).after(10).budget(4),
        );
        let fired: Vec<bool> =
            (0..30).map(|_| p.check(FaultKind::AdmissionStall).is_some()).collect();
        assert!(fired[..10].iter().all(|f| !f), "first 10 consultations are quiet");
        assert_eq!(fired.iter().filter(|f| **f).count(), 4, "budget caps injections");
        assert_eq!(p.injected(FaultKind::AdmissionStall), 4);
    }

    #[test]
    fn probability_is_roughly_honored() {
        let p = FaultPlan::new(0xC0FFEE)
            .with_rule(FaultKind::ValidationAbort, FaultRule::with_probability(0.25));
        let n = 10_000;
        let hits = (0..n).filter(|_| p.check(FaultKind::ValidationAbort).is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn actions_carry_deterministic_entropy() {
        let mk = || {
            FaultPlan::new(5)
                .with_rule(FaultKind::ClockJitter, FaultRule::with_probability(1.0).delay_ns(1000))
        };
        let (a, b) = (mk(), mk());
        for _ in 0..50 {
            let (x, y) = (
                a.check(FaultKind::ClockJitter).unwrap(),
                b.check(FaultKind::ClockJitter).unwrap(),
            );
            assert_eq!(x, y);
            assert!(x.jitter_ns() <= 1000);
            assert!(x.signed_jitter_ns().unsigned_abs() <= 1000);
        }
    }

    #[test]
    fn parse_round_trip_and_errors() {
        let p = FaultPlan::parse(
            "seed=99, validation-abort=0.5, commit-hold=0.25:2ms:7, child-stall=1:750us, clock-jitter=0.1:1s",
        )
        .unwrap();
        assert_eq!(p.seed(), 99);
        assert_eq!(p.rule(FaultKind::ValidationAbort).unwrap().probability, 0.5);
        let hold = p.rule(FaultKind::CommitHold).unwrap();
        assert_eq!((hold.delay_ns, hold.budget), (2_000_000, 7));
        assert_eq!(p.rule(FaultKind::ChildStall).unwrap().delay_ns, 750_000);
        assert_eq!(p.rule(FaultKind::ClockJitter).unwrap().delay_ns, 1_000_000_000);
        assert_eq!(p.rule(FaultKind::WorkerPanic), None);

        assert!(FaultPlan::parse("bogus-kind=0.5").is_err());
        assert!(FaultPlan::parse("validation-abort").is_err());
        assert!(FaultPlan::parse("validation-abort=1.5").is_err());
        assert!(FaultPlan::parse("commit-hold=0.5:1ms:3:extra").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(kind.tag().parse::<FaultKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.tag());
        }
    }

    #[test]
    fn ctx_emits_trace_events_and_disabled_is_silent() {
        let bus = TraceBus::new();
        let sink = Arc::new(TestSink::new());
        bus.subscribe(sink.clone());
        let plan = Arc::new(
            FaultPlan::new(1)
                .with_rule(FaultKind::CommitHold, FaultRule::with_probability(1.0).delay_ns(3)),
        );
        let ctx = FaultCtx::new(Some(plan), bus.clone());
        let action = ctx.inject(FaultKind::CommitHold).unwrap();
        assert_eq!(action.seq, 1);
        match sink.events().as_slice() {
            [TraceEvent::FaultInjected {
                kind: FaultKind::CommitHold, seq: 1, delay_ns: 3, ..
            }] => {}
            other => panic!("unexpected events {other:?}"),
        }

        let off = FaultCtx::disabled();
        assert!(!off.is_armed());
        assert_eq!(off.inject(FaultKind::CommitHold), None);
        assert_eq!(sink.len(), 1, "disabled ctx emits nothing");
    }

    #[test]
    fn concurrent_consultations_draw_the_same_multiset() {
        use std::collections::BTreeSet;
        let plan = Arc::new(
            FaultPlan::new(77).with_rule(FaultKind::ChildStall, FaultRule::with_probability(0.4)),
        );
        let mut handles = Vec::new();
        for _ in 0..4 {
            let plan = Arc::clone(&plan);
            handles.push(std::thread::spawn(move || {
                (0..250).filter(|_| plan.check(FaultKind::ChildStall).is_some()).count()
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Reference: the same 1000 indices drawn single-threaded.
        let reference =
            FaultPlan::new(77).with_rule(FaultKind::ChildStall, FaultRule::with_probability(0.4));
        let expect = (0..1000).filter(|_| reference.check(FaultKind::ChildStall).is_some()).count();
        assert_eq!(total, expect, "interleaving must not change the decision multiset");
        let _ = BTreeSet::from([0u8]); // keep use
    }
}
