//! The [`Stm`] runtime: global clock, commit stripe table, snapshot registry,
//! stats, throttle, child pool, box registry / GC, and the top-level retry
//! driver.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use crate::clock::{GlobalClock, SnapshotRegistry};
use crate::cm::{self, AbortSite, CmEngine, CmMode, CmTxGuard};
use crate::error::{StmError, TxError, TxResult};
use crate::fault::{FaultCtx, FaultKind, FaultPlan};
use crate::pool::ChildPool;
use crate::sched::{Admission, SchedMode, Scheduler, WorkStealingPool};
use crate::stats::{Stats, TxKind};
use crate::stripes::StripeTable;
use crate::throttle::{
    PackedGate, ParallelismDegree, Permit, ReconfigError, ResizableSemaphore, Throttle,
};
use crate::trace::{self, TraceBus, TraceEvent};
use crate::txn::Txn;
use crate::vbox::{AnyVBox, VBox};
use crate::TxValue;

/// Which top-level commit protocol an [`Stm`] instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitPath {
    /// TL2-style striped commit: write-set stripe locks acquired in canonical
    /// order, read validation against per-stripe version stamps, commit
    /// versions reserved atomically and published contiguously. Disjoint
    /// write sets commit concurrently. The default.
    #[default]
    Striped,
    /// The original single global commit lock. Retained as the differential-
    /// testing oracle (history-equivalence proptests replay seeds through
    /// both paths) and as the `commit_scaling` bench baseline.
    GlobalLock,
}

/// Which `Txn::read` implementation an [`Stm`] instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPathMode {
    /// Lock-free hot read path: copy-on-write write-set snapshots published
    /// at `parallel()` suspend points, per-ancestor-level Bloom filters, and
    /// a lock-free nest index for sibling-visible versions. The default.
    #[default]
    LockFree,
    /// The legacy locking discipline over the same data structures: the own
    /// write set behind a mutex, and per ancestor level the nest commit lock
    /// plus a write-set lock, with no filters. Retained as the differential
    /// baseline for the visibility proptests and the `read_scaling` bench.
    Locked,
}

/// Construction-time configuration of an [`Stm`] instance.
#[derive(Debug, Clone)]
pub struct StmConfig {
    /// Initial `(t, c)` parallelism degree enforced by the throttle.
    pub degree: ParallelismDegree,
    /// Size of the shared child-transaction worker pool. Defaults to the
    /// machine's available parallelism.
    pub worker_threads: usize,
    /// Retry budget for top-level transactions before
    /// [`StmError::RetriesExhausted`]. Effectively unbounded by default.
    pub max_retries: u64,
    /// Retry budget for a child transaction fighting sibling conflicts
    /// before the conflict is escalated to the whole tree.
    pub max_nested_retries: u64,
    /// Run version garbage collection every this many top-level commits
    /// (0 disables automatic GC; [`Stm::gc`] can still be called manually).
    pub gc_interval: u64,
    /// Deprecated: absorbed by the contention manager. A nonzero value is
    /// routed into the [`CmMode::ExpBackoff`] rung as its base delay (and,
    /// when `cm_mode` is still [`CmMode::Immediate`], switches the instance
    /// to `ExpBackoff` to preserve the field's old damping semantics).
    /// Prefer setting [`StmConfig::cm_mode`] directly.
    pub retry_backoff: std::time::Duration,
    /// Contention-management policy deciding the delay before an aborted
    /// transaction retries, at every abort site (see [`crate::cm`]).
    /// Switchable at runtime via [`Stm::set_cm_mode`].
    pub cm_mode: CmMode,
    /// Deterministic fault-injection plan for chaos testing
    /// ([`crate::fault`]). `None` (the default) disables the layer: every
    /// injection site then costs a single branch.
    pub fault: Option<Arc<FaultPlan>>,
    /// Top-level commit protocol (see [`CommitPath`]).
    pub commit_path: CommitPath,
    /// Read-path implementation (see [`ReadPathMode`]).
    pub read_path: ReadPathMode,
    /// Execution-layer implementation pair — child-task scheduler plus
    /// top-level admission gate (see [`SchedMode`]).
    pub sched_mode: SchedMode,
}

impl Default for StmConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self {
            degree: ParallelismDegree::new(cores, 1),
            worker_threads: cores,
            max_retries: u64::MAX,
            max_nested_retries: 10_000,
            gc_interval: 256,
            retry_backoff: std::time::Duration::ZERO,
            cm_mode: CmMode::default(),
            fault: None,
            commit_path: CommitPath::default(),
            read_path: ReadPathMode::default(),
            sched_mode: SchedMode::default(),
        }
    }
}

pub(crate) struct StmShared {
    clock: GlobalClock,
    commit_lock: Mutex<()>,
    stripes: StripeTable,
    registry: Arc<SnapshotRegistry>,
    stats: Arc<Stats>,
    throttle: Throttle,
    pool: Arc<dyn Scheduler>,
    boxes: Mutex<Vec<Weak<dyn AnyVBox>>>,
    config: StmConfig,
    commits_since_gc: AtomicU64,
    trace: TraceBus,
    fault: FaultCtx,
    cm: CmEngine,
}

impl StmShared {
    pub(crate) fn clock(&self) -> &GlobalClock {
        &self.clock
    }
    pub(crate) fn commit_lock(&self) -> &Mutex<()> {
        &self.commit_lock
    }
    pub(crate) fn stripes(&self) -> &StripeTable {
        &self.stripes
    }
    pub(crate) fn stats(&self) -> &Stats {
        &self.stats
    }
    pub(crate) fn throttle(&self) -> &Throttle {
        &self.throttle
    }
    pub(crate) fn pool(&self) -> &dyn Scheduler {
        &*self.pool
    }
    pub(crate) fn config(&self) -> &StmConfig {
        &self.config
    }
    pub(crate) fn trace(&self) -> &TraceBus {
        &self.trace
    }
    pub(crate) fn fault(&self) -> &FaultCtx {
        &self.fault
    }
    pub(crate) fn cm(&self) -> &CmEngine {
        &self.cm
    }

    pub(crate) fn register_vbox<T: TxValue>(&self, initial: T) -> VBox<T> {
        let vbox = VBox::new_raw(initial);
        let erased: Arc<dyn AnyVBox> = vbox.body.clone();
        self.boxes.lock().push(Arc::downgrade(&erased));
        vbox
    }

    fn gc(&self) -> usize {
        // Any version a live snapshot (or a snapshot taken from now on) can
        // read must survive; everything older is pruned. The watermark reads
        // the clock under the registry lock so it cannot race a transaction
        // that has read the clock but not yet registered its snapshot.
        let watermark = self.registry.gc_watermark(&self.clock);
        // Drain-and-requeue: take the registry, sweep it unlocked, put the
        // survivors back. `register_vbox` never blocks behind a sweep — new
        // registrations land in the emptied vec and are merged on requeue
        // (a box registered mid-sweep has nothing to prune yet anyway).
        let mut drained = std::mem::take(&mut *self.boxes.lock());
        let mut pruned_boxes = 0;
        drained.retain(|w| {
            let Some(b) = w.upgrade() else { return false };
            let before = b.chain_len();
            b.prune_below(watermark);
            if b.chain_len() < before {
                pruned_boxes += 1;
            }
            true
        });
        self.boxes.lock().append(&mut drained);
        pruned_boxes
    }

    fn maybe_auto_gc(&self) {
        let interval = self.config.gc_interval;
        if interval == 0 {
            return;
        }
        let n = self.commits_since_gc.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= interval
            && self
                .commits_since_gc
                .compare_exchange(n, 0, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.gc();
        }
    }
}

/// A parallel-nesting software transactional memory instance.
///
/// `Stm` is cheaply cloneable (`Arc` inside); clones share all state. See the
/// crate-level docs for a usage example.
#[derive(Clone)]
pub struct Stm {
    shared: Arc<StmShared>,
}

impl Stm {
    /// Create an STM instance with the given configuration.
    pub fn new(config: StmConfig) -> Self {
        let trace = TraceBus::new();
        let fault = FaultCtx::new(config.fault.clone(), trace.clone());
        let stats = Arc::new(Stats::new());
        // The execution-layer ladder: scheduler + admission gate are chosen
        // as a pair, mirroring the commit-path and read-path mode switches.
        let (pool, gate): (Arc<dyn Scheduler>, Arc<dyn Admission>) = match config.sched_mode {
            SchedMode::Mutex => (
                Arc::new(ChildPool::with_instruments(config.worker_threads, fault.clone())),
                Arc::new(ResizableSemaphore::new(config.degree.top_level)),
            ),
            SchedMode::WorkStealing => (
                Arc::new(WorkStealingPool::with_instruments(
                    config.worker_threads,
                    fault.clone(),
                    Arc::clone(&stats),
                    trace.clone(),
                )),
                Arc::new(PackedGate::with_stats(config.degree.top_level, Arc::clone(&stats))),
            ),
        };
        // Absorb the deprecated `retry_backoff` field into the contention
        // manager: a nonzero value becomes the backoff rung's base delay,
        // and — if no explicit policy was chosen — selects `ExpBackoff` so
        // configs written against the old field keep their damping.
        let retry_ns = config.retry_backoff.as_nanos().min(u64::MAX as u128) as u64;
        let cm_mode = if config.cm_mode == CmMode::Immediate && retry_ns > 0 {
            CmMode::ExpBackoff
        } else {
            config.cm_mode
        };
        let cm = CmEngine::new(cm_mode, retry_ns);
        Self {
            shared: Arc::new(StmShared {
                clock: GlobalClock::new(),
                commit_lock: Mutex::new(()),
                stripes: StripeTable::new(),
                registry: Arc::new(SnapshotRegistry::new()),
                stats,
                throttle: Throttle::with_gate(config.degree, trace.clone(), fault.clone(), gate),
                pool,
                boxes: Mutex::new(Vec::new()),
                config,
                commits_since_gc: AtomicU64::new(0),
                trace,
                fault,
                cm,
            }),
        }
    }

    /// Create a new transactional box holding `initial`.
    pub fn new_vbox<T: TxValue>(&self, initial: T) -> VBox<T> {
        self.shared.register_vbox(initial)
    }

    /// Run `body` as a top-level transaction, retrying on conflicts.
    ///
    /// Admission is gated by the throttle's top-level semaphore: at most `t`
    /// transactions run concurrently. The body may be re-executed; it must
    /// not have non-transactional side effects it cannot repeat.
    pub fn atomic<R>(&self, mut body: impl FnMut(&mut Txn) -> TxResult<R>) -> Result<R, StmError> {
        let trace = &self.shared.trace;
        if let Some(action) = self.shared.fault.inject(FaultKind::AdmissionStall) {
            action.stall();
        }
        let wait_start = std::time::Instant::now();
        let Some(permit) = self.shared.throttle.admit_top_level() else {
            return Err(StmError::Shutdown);
        };
        let mut permit = Some(permit);
        let wait_ns = wait_start.elapsed().as_nanos() as u64;
        self.shared.stats.record_sem_wait(wait_ns);
        if trace.is_enabled() {
            trace.emit(TraceEvent::SemWait { wait_ns });
            trace.emit(TraceEvent::TxBegin { kind: TxKind::TopLevel, at_ns: trace::now_ns() });
        }
        let mut cm_tx = self.shared.cm.begin_guard();
        let mut aborts: u64 = 0;
        loop {
            // Re-admit if a long contention-manager wait released the slot.
            if permit.is_none() {
                let wait_start = std::time::Instant::now();
                let Some(p) = self.shared.throttle.admit_top_level() else {
                    return Err(StmError::Shutdown);
                };
                let wait_ns = wait_start.elapsed().as_nanos() as u64;
                self.shared.stats.record_sem_wait(wait_ns);
                if trace.is_enabled() {
                    trace.emit(TraceEvent::SemWait { wait_ns });
                }
                permit = Some(p);
            }
            // The attempt runs in its own scope so the snapshot registration
            // and the attempt's `Txn` are dropped before any backoff wait —
            // a sleeping loser must not pin the GC watermark.
            let (site, work) = {
                let _snap = self.shared.registry.register_current(&self.shared.clock);
                let read_version = _snap.version();
                let mut tx = Txn::top(Arc::clone(&self.shared), read_version);
                match body(&mut tx) {
                    Ok(value) => match tx.commit_top() {
                        Ok(()) => {
                            self.shared.stats.record_commit_top();
                            if trace.is_enabled() {
                                trace.emit(TraceEvent::TxCommit {
                                    kind: TxKind::TopLevel,
                                    retries: aborts,
                                    at_ns: trace::now_ns(),
                                });
                            }
                            self.shared.maybe_auto_gc();
                            return Ok(value);
                        }
                        Err(TxError::Conflict) => {
                            let (r, w) = tx.footprint();
                            (AbortSite::Commit, r + w)
                        }
                        Err(_) => unreachable!("commit_top only fails with Conflict"),
                    },
                    Err(TxError::UserAbort) => {
                        self.shared.stats.record_abort_top();
                        if trace.is_enabled() {
                            trace.emit(TraceEvent::TxAbort {
                                kind: TxKind::TopLevel,
                                retries: aborts + 1,
                                at_ns: trace::now_ns(),
                            });
                        }
                        return Err(StmError::UserAborted);
                    }
                    Err(TxError::Conflict) | Err(TxError::ChildPanic) => {
                        // A child exhausted its sibling-conflict budget (or
                        // the body surfaced a conflict): abort the tree.
                        let (r, w) = tx.footprint();
                        (AbortSite::Top, r + w)
                    }
                }
            };
            self.record_top_abort_traced(&mut aborts)?;
            self.cm_pause_top(&mut cm_tx, site, aborts, work, &mut permit)?;
        }
    }

    /// Consult the contention manager after a top-level abort and execute
    /// its decision. Long waits release the admission permit first (the
    /// retry loop re-admits); admission shutdown cuts any wait short with
    /// [`StmError::Shutdown`], so backing-off transactions drain as promptly
    /// as parked ones.
    fn cm_pause_top(
        &self,
        cm_tx: &mut CmTxGuard<'_>,
        site: AbortSite,
        attempt: u64,
        work: usize,
        permit: &mut Option<Permit>,
    ) -> Result<(), StmError> {
        let (policy, wait) = cm_tx.decide(site, attempt, work);
        if wait.is_zero() {
            return Ok(());
        }
        if wait.as_nanos() as u64 >= cm::PERMIT_RELEASE_THRESHOLD_NS {
            *permit = None; // don't occupy an admission slot while asleep
        }
        let throttle = &self.shared.throttle;
        let (waited_ns, cancelled) = cm::sleep_interruptible(wait, || throttle.is_closed());
        self.shared.stats.record_cm_wait(policy.index(), waited_ns);
        let trace = &self.shared.trace;
        if trace.is_enabled() {
            trace.emit(TraceEvent::CmDecision {
                policy,
                site,
                waited_ns,
                attempt,
                at_ns: trace::now_ns(),
            });
        }
        if cancelled {
            return Err(StmError::Shutdown);
        }
        Ok(())
    }

    /// Shared conflict-abort bookkeeping of the retry loop: count the abort,
    /// trace it, and surface [`StmError::RetriesExhausted`] once the budget
    /// is spent.
    fn record_top_abort_traced(&self, aborts: &mut u64) -> Result<(), StmError> {
        self.shared.stats.record_abort_top();
        *aborts += 1;
        let trace = &self.shared.trace;
        if trace.is_enabled() {
            trace.emit(TraceEvent::TxAbort {
                kind: TxKind::TopLevel,
                retries: *aborts,
                at_ns: trace::now_ns(),
            });
        }
        if *aborts >= self.shared.config.max_retries {
            return Err(StmError::RetriesExhausted { attempts: *aborts });
        }
        Ok(())
    }

    /// Run a read-only transaction. Never aborts and takes no admission
    /// permit (multi-version reads are invisible to writers).
    pub fn read_only<R>(&self, body: impl FnOnce(&mut ReadTxn) -> R) -> R {
        let _snap = self.shared.registry.register_current(&self.shared.clock);
        let mut tx = ReadTxn { read_version: _snap.version() };
        body(&mut tx)
    }

    /// Convenience: read a single box at the current global version.
    pub fn read_atomic<T: TxValue>(&self, vbox: &VBox<T>) -> T {
        self.read_only(|tx| tx.read(vbox))
    }

    /// The current global version clock value (number of commits that
    /// installed writes).
    pub fn clock_now(&self) -> u64 {
        self.shared.clock.now()
    }

    /// STM activity counters and the commit hook.
    pub fn stats(&self) -> &Stats {
        &self.shared.stats
    }

    /// The admission controller, for the AutoPN actuator.
    pub fn throttle(&self) -> &Throttle {
        &self.shared.throttle
    }

    /// Apply a new `(t, c)` configuration (shorthand for
    /// `throttle().reconfigure(..)`, plus reconfiguration accounting).
    pub fn set_degree(&self, degree: ParallelismDegree) {
        let prev = self.shared.throttle.reconfigure(degree);
        if prev != degree {
            self.shared.stats.record_reconfigure();
        }
    }

    /// Fallible [`Stm::set_degree`]: the attempt may be vetoed by the fault
    /// layer ([`FaultKind::ReconfigFail`]); the previous configuration then
    /// stays in force. Controllers retry/back off on `Err` (see
    /// `autopn`'s degradation ladder).
    pub fn try_set_degree(&self, degree: ParallelismDegree) -> Result<(), ReconfigError> {
        let prev = self.shared.throttle.try_reconfigure(degree)?;
        if prev != degree {
            self.shared.stats.record_reconfigure();
        }
        Ok(())
    }

    /// Stop admitting top-level transactions: [`Stm::atomic`] calls — both
    /// new arrivals and threads already parked on the admission gate —
    /// return [`StmError::Shutdown`] instead of blocking. Running
    /// transactions are unaffected. Used by host systems to shut down worker
    /// loops that might be blocked on a starved gate.
    pub fn close_admission(&self) {
        self.shared.throttle.close();
    }

    /// Resume admission after [`Stm::close_admission`].
    pub fn reopen_admission(&self) {
        self.shared.throttle.reopen();
    }

    /// The fault-injection context of this instance (the configured plan, if
    /// any, bound to this STM's trace bus). Host systems use it to consult
    /// app-level injection sites (worker panics, clock jitter) against the
    /// same deterministic plan as the runtime's own sites.
    pub fn fault_ctx(&self) -> &FaultCtx {
        self.shared.fault()
    }

    /// The trace-event bus of this STM instance. Subscribe a sink
    /// ([`crate::TestSink`], [`crate::RingSink`], [`crate::JsonlSink`]) to
    /// observe transaction, admission and reconfiguration events; with no
    /// sinks the runtime pays one atomic load per emission site.
    pub fn trace_bus(&self) -> &TraceBus {
        &self.shared.trace
    }

    /// The `(t, c)` configuration currently in force.
    pub fn degree(&self) -> ParallelismDegree {
        self.shared.throttle.current()
    }

    /// The contention-management policy currently in force.
    pub fn cm_mode(&self) -> CmMode {
        self.shared.cm.mode()
    }

    /// Switch the contention-management policy live. Running transactions
    /// keep their accrued per-chain state and consult the new policy from
    /// their next abort on — this is the actuation point for tuners that
    /// treat the policy as a discrete knob.
    pub fn set_cm_mode(&self, mode: CmMode) {
        self.shared.cm.set_mode(mode);
    }

    /// Resize the shared child-transaction worker pool.
    pub fn resize_pool(&self, workers: usize) {
        self.shared.pool.resize(workers);
    }

    /// The worker-thread count the scheduler currently targets.
    pub fn pool_size(&self) -> usize {
        self.shared.pool.size()
    }

    /// Live scheduler worker threads right now (lags [`Stm::pool_size`]
    /// while a resize converges).
    pub fn pool_live_workers(&self) -> usize {
        self.shared.pool.live_workers()
    }

    /// Garbage-collect box versions no live snapshot can read. Returns the
    /// number of boxes whose chains were shortened.
    pub fn gc(&self) -> usize {
        self.shared.gc()
    }

    /// Number of live registered snapshots (running transactions).
    pub fn live_snapshots(&self) -> usize {
        self.shared.registry.live_count()
    }
}

impl std::fmt::Debug for Stm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stm")
            .field("clock", &self.clock_now())
            .field("degree", &self.degree())
            .field("stats", &self.stats().snapshot())
            .finish()
    }
}

/// A read-only transaction: a pinned snapshot with non-blocking reads.
pub struct ReadTxn {
    read_version: u64,
}

impl ReadTxn {
    /// Read `vbox` at this transaction's snapshot.
    pub fn read<T: TxValue>(&mut self, vbox: &VBox<T>) -> T {
        vbox.body.read_at(self.read_version)
    }

    /// The snapshot version being read.
    pub fn version(&self) -> u64 {
        self.read_version
    }
}
