//! The [`Stm`] runtime: global clock, commit stripe table, snapshot registry,
//! stats, throttle, child pool, box registry / GC, and the top-level retry
//! driver.

use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use crate::clock::{GlobalClock, SnapshotGuard, SnapshotRegistry};
use crate::cm::{self, AbortSite, CmEngine, CmMode, CmTxGuard};
use crate::error::{StmError, TxError, TxResult};
use crate::fault::{FaultCtx, FaultKind, FaultPlan};
use crate::mem::{GcMode, MemConfig, MemLevel, MemState, VersionHeapGauge};
use crate::pool::ChildPool;
use crate::sched::{Admission, SchedMode, Scheduler, WorkStealingPool};
use crate::stats::{Stats, TxKind};
use crate::stripes::StripeTable;
use crate::throttle::{
    PackedGate, ParallelismDegree, Permit, ReconfigError, ResizableSemaphore, Throttle,
};
use crate::trace::{self, TraceBus, TraceEvent};
use crate::txn::Txn;
use crate::vbox::{AnyVBox, VBox};
use crate::TxValue;

/// Which top-level commit protocol an [`Stm`] instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitPath {
    /// TL2-style striped commit: write-set stripe locks acquired in canonical
    /// order, read validation against per-stripe version stamps, commit
    /// versions reserved atomically and published contiguously. Disjoint
    /// write sets commit concurrently. The default.
    #[default]
    Striped,
    /// The original single global commit lock. Retained as the differential-
    /// testing oracle (history-equivalence proptests replay seeds through
    /// both paths) and as the `commit_scaling` bench baseline.
    GlobalLock,
}

/// Which `Txn::read` implementation an [`Stm`] instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPathMode {
    /// Lock-free hot read path: copy-on-write write-set snapshots published
    /// at `parallel()` suspend points, per-ancestor-level Bloom filters, and
    /// a lock-free nest index for sibling-visible versions. The default.
    #[default]
    LockFree,
    /// The legacy locking discipline over the same data structures: the own
    /// write set behind a mutex, and per ancestor level the nest commit lock
    /// plus a write-set lock, with no filters. Retained as the differential
    /// baseline for the visibility proptests and the `read_scaling` bench.
    Locked,
}

/// Construction-time configuration of an [`Stm`] instance.
#[derive(Debug, Clone)]
pub struct StmConfig {
    /// Initial `(t, c)` parallelism degree enforced by the throttle.
    pub degree: ParallelismDegree,
    /// Size of the shared child-transaction worker pool. Defaults to the
    /// machine's available parallelism.
    pub worker_threads: usize,
    /// Retry budget for top-level transactions before
    /// [`StmError::RetriesExhausted`]. Effectively unbounded by default.
    pub max_retries: u64,
    /// Retry budget for a child transaction fighting sibling conflicts
    /// before the conflict is escalated to the whole tree.
    pub max_nested_retries: u64,
    /// Run version garbage collection every this many top-level commits
    /// (0 disables automatic GC; [`Stm::gc`] can still be called manually).
    pub gc_interval: u64,
    /// Deprecated: absorbed by the contention manager. A nonzero value is
    /// routed into the [`CmMode::ExpBackoff`] rung as its base delay (and,
    /// when `cm_mode` is still [`CmMode::Immediate`], switches the instance
    /// to `ExpBackoff` to preserve the field's old damping semantics).
    /// Prefer setting [`StmConfig::cm_mode`] directly.
    pub retry_backoff: std::time::Duration,
    /// Contention-management policy deciding the delay before an aborted
    /// transaction retries, at every abort site (see [`crate::cm`]).
    /// Switchable at runtime via [`Stm::set_cm_mode`].
    pub cm_mode: CmMode,
    /// Deterministic fault-injection plan for chaos testing
    /// ([`crate::fault`]). `None` (the default) disables the layer: every
    /// injection site then costs a single branch.
    pub fault: Option<Arc<FaultPlan>>,
    /// Top-level commit protocol (see [`CommitPath`]).
    pub commit_path: CommitPath,
    /// Read-path implementation (see [`ReadPathMode`]).
    pub read_path: ReadPathMode,
    /// Execution-layer implementation pair — child-task scheduler plus
    /// top-level admission gate (see [`SchedMode`]).
    pub sched_mode: SchedMode,
    /// Memory-robustness configuration: GC driver, slice budget, snapshot
    /// leases, and the degradation-ladder ceilings (see [`MemConfig`]).
    pub mem: MemConfig,
}

impl Default for StmConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self {
            degree: ParallelismDegree::new(cores, 1),
            worker_threads: cores,
            max_retries: u64::MAX,
            max_nested_retries: 10_000,
            gc_interval: 256,
            retry_backoff: std::time::Duration::ZERO,
            cm_mode: CmMode::default(),
            fault: None,
            commit_path: CommitPath::default(),
            read_path: ReadPathMode::default(),
            sched_mode: SchedMode::default(),
            mem: MemConfig::default(),
        }
    }
}

/// Wakeup channel between committers and the background collector thread.
#[derive(Default)]
struct GcCtl {
    state: Mutex<GcCtlState>,
    cv: Condvar,
}

#[derive(Default)]
struct GcCtlState {
    /// A cycle has been requested since the collector last ran.
    pending: bool,
    /// The pending request came from the degradation ladder.
    urgent: bool,
    /// The owning [`Stm`] is dropping; the collector must exit.
    shutdown: bool,
}

/// How often the idle collector wakes up anyway, so lease expiry is noticed
/// (and evicted snapshots stop pinning the watermark) even when no commits
/// arrive to nudge it.
const GC_IDLE_WAKEUP: Duration = Duration::from_millis(50);

impl GcCtl {
    fn nudge(&self, urgent: bool) {
        let mut st = self.state.lock();
        st.pending = true;
        st.urgent |= urgent;
        drop(st);
        self.cv.notify_one();
    }

    fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.cv.notify_one();
    }
}

pub(crate) struct StmShared {
    clock: GlobalClock,
    commit_lock: Mutex<()>,
    stripes: StripeTable,
    registry: Arc<SnapshotRegistry>,
    stats: Arc<Stats>,
    throttle: Throttle,
    pool: Arc<dyn Scheduler>,
    boxes: Mutex<Vec<Weak<dyn AnyVBox>>>,
    config: StmConfig,
    commits_since_gc: AtomicU64,
    trace: TraceBus,
    fault: FaultCtx,
    cm: CmEngine,
    mem_state: MemState,
    gc_ctl: Arc<GcCtl>,
    /// Serializes GC cycles (background thread vs manual [`Stm::gc`] vs
    /// inline committers): the sweep cursor is cycle-local, so two
    /// interleaved sweeps over a mutating registry could skip boxes.
    /// Committers never take this lock.
    gc_cycle_lock: Mutex<()>,
    gc_join: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl StmShared {
    pub(crate) fn clock(&self) -> &GlobalClock {
        &self.clock
    }
    pub(crate) fn commit_lock(&self) -> &Mutex<()> {
        &self.commit_lock
    }
    pub(crate) fn stripes(&self) -> &StripeTable {
        &self.stripes
    }
    pub(crate) fn stats(&self) -> &Stats {
        &self.stats
    }
    pub(crate) fn throttle(&self) -> &Throttle {
        &self.throttle
    }
    pub(crate) fn pool(&self) -> &dyn Scheduler {
        &*self.pool
    }
    pub(crate) fn config(&self) -> &StmConfig {
        &self.config
    }
    pub(crate) fn trace(&self) -> &TraceBus {
        &self.trace
    }
    pub(crate) fn fault(&self) -> &FaultCtx {
        &self.fault
    }
    pub(crate) fn cm(&self) -> &CmEngine {
        &self.cm
    }

    pub(crate) fn register_vbox<T: TxValue>(&self, initial: T) -> VBox<T> {
        let vbox = VBox::new_raw_gauged(initial, Arc::clone(self.stats.gauge()));
        let erased: Arc<dyn AnyVBox> = vbox.body.clone();
        self.boxes.lock().push(Arc::downgrade(&erased));
        vbox
    }

    /// One full GC pass over the box registry, in bounded slices of at most
    /// [`MemState::gc_slice_boxes`] boxes. The registry lock is held only
    /// while a slice's strong references are collected (O(slice)), never
    /// while chains are pruned, and the collector yields the CPU between
    /// slices — so neither `register_vbox` nor any commit waits behind a
    /// whole-heap sweep. Returns the number of boxes whose chains shrank.
    ///
    /// Both GC drivers run this same function ([`GcMode::Inline`] calls it
    /// synchronously from the committer) — the modes can only differ in
    /// *when* versions are pruned, never in *which*.
    fn run_gc_cycle(&self, urgent: bool) -> usize {
        let _cycle = self.gc_cycle_lock.lock();
        let mut cursor = 0usize;
        let mut slices: u64 = 0;
        let mut pruned_versions: u64 = 0;
        let mut pruned_boxes = 0usize;
        loop {
            // Chaos site: a stalled collector must only delay pruning, never
            // block commits or admissions (it holds no lock while stalled).
            if let Some(action) = self.fault.inject(FaultKind::GcStall) {
                action.stall();
            }
            let slice_max = self.mem_state.gc_slice_boxes();
            let mut slice: Vec<Arc<dyn AnyVBox>> = Vec::with_capacity(slice_max);
            {
                let mut boxes = self.boxes.lock();
                while cursor < boxes.len() && slice.len() < slice_max {
                    match boxes[cursor].upgrade() {
                        Some(b) => {
                            slice.push(b);
                            cursor += 1;
                        }
                        // Dropped box: compact, then re-examine the element
                        // swapped in from the tail (the cursor stays put).
                        None => {
                            boxes.swap_remove(cursor);
                        }
                    }
                }
            }
            if slice.is_empty() {
                break;
            }
            slices += 1;
            // The watermark is recomputed per slice (it only grows, so later
            // slices may prune more — never less safely). Computing it also
            // expires overdue leases, whose snapshots stop pinning it; the
            // clock is read under the registry lock so an in-flight
            // registration cannot be overtaken.
            let (watermark, evicted) = self.registry.gc_watermark_evicting(&self.clock);
            self.stats.record_snapshot_evictions(evicted as u64);
            for b in &slice {
                let pruned = b.prune_below(watermark);
                if pruned > 0 {
                    pruned_versions += pruned as u64;
                    pruned_boxes += 1;
                }
            }
            std::thread::yield_now();
        }
        self.stats.record_gc_cycle(slices, pruned_versions);
        if self.trace.is_enabled() {
            let gauge = self.stats.gauge();
            self.trace.emit(TraceEvent::MemPressure {
                retained_versions: gauge.retained_versions(),
                retained_bytes: gauge.retained_bytes(),
                pruned: pruned_versions,
                slices,
                urgent,
                at_ns: trace::now_ns(),
            });
        }
        // A cycle is the natural recovery point: the gauge just shrank.
        // (`in_gc_cycle` — an Inline escalation here must not recurse into
        // another cycle while this one holds the cycle lock; this sweep
        // already was the urgent GC.)
        self.check_mem_pressure_at(true);
        pruned_boxes
    }

    /// Evaluate the degradation ladder against the live gauge; the winner of
    /// a level transition enacts its side effects. One relaxed load and a
    /// compare on the no-transition path.
    pub(crate) fn check_mem_pressure(&self) {
        self.check_mem_pressure_at(false);
    }

    fn check_mem_pressure_at(&self, in_gc_cycle: bool) {
        let retained = self.stats.gauge().retained_versions();
        if let Some((from, to)) = self.mem_state.transition(retained) {
            self.enact_mem_transition(from, to, retained, in_gc_cycle);
        }
    }

    fn enact_mem_transition(&self, from: MemLevel, to: MemLevel, retained: u64, in_gc_cycle: bool) {
        self.stats.record_mem_degraded(to);
        if self.trace.is_enabled() {
            self.trace.emit(TraceEvent::MemDegraded {
                from,
                to,
                retained_versions: retained,
                at_ns: trace::now_ns(),
            });
        }
        match to {
            MemLevel::Normal => {
                self.throttle.clear_pressure_cap();
                self.registry.set_lease(self.config.mem.snapshot_lease);
            }
            MemLevel::Soft | MemLevel::Hard => {
                if to == MemLevel::Hard {
                    // Backpressure: one top-level transaction at a time.
                    // In-flight transactions drain under their old admission.
                    self.throttle.set_pressure_cap(1);
                } else {
                    self.throttle.clear_pressure_cap();
                }
                if from < to {
                    // Escalation: shorten the lease for new snapshots and
                    // clamp in-flight ones, then demand an urgent cycle so
                    // the newly unpinned versions are actually reclaimed.
                    // Unleased registrations (leases disabled) are exempt —
                    // the ladder then degrades throughput but never
                    // correctness.
                    let urgent = self.config.mem.urgent_lease;
                    self.registry.set_lease(Some(urgent));
                    self.registry.clamp_deadlines(urgent);
                    match self.config.mem.gc_mode {
                        GcMode::Background => self.gc_ctl.nudge(true),
                        // Escalation detected *during* a sweep needs no new
                        // sweep — the current one reclaims under the
                        // just-shortened leases on its next slices.
                        GcMode::Inline if in_gc_cycle => {}
                        GcMode::Inline => {
                            self.run_gc_cycle(true);
                        }
                    }
                }
            }
        }
    }

    fn maybe_auto_gc(&self) {
        // Ladder check on every commit: a relaxed load and a compare unless
        // a ceiling was crossed.
        self.check_mem_pressure();
        let interval = self.config.gc_interval;
        if interval == 0 {
            return;
        }
        let n = self.commits_since_gc.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= interval
            && self
                .commits_since_gc
                .compare_exchange(n, 0, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            match self.config.mem.gc_mode {
                // O(1) commit-path pause: wake the collector and move on.
                GcMode::Background => self.gc_ctl.nudge(false),
                GcMode::Inline => {
                    self.run_gc_cycle(false);
                }
            }
        }
    }
}

impl Drop for StmShared {
    fn drop(&mut self) {
        self.gc_ctl.shutdown();
        if let Some(handle) = self.gc_join.get_mut().take() {
            // The collector holds only a `Weak` to this struct, but it
            // upgrades per cycle — if the user dropped their last handle
            // mid-cycle, *this* drop runs on the collector thread itself.
            // Detach instead of self-joining; the loop exits on the shutdown
            // flag it can no longer miss.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

/// Body of the background collector thread: wait for a nudge (or the idle
/// wakeup, so lease expiry is detected without commit traffic), run one
/// supervised cycle, repeat until shutdown. A panicking cycle is absorbed
/// and counted ([`StatsSnapshot::gc_thread_panics`]) — the supervisor
/// loop itself is the watchdog restart.
fn gc_thread_main(ctl: Arc<GcCtl>, weak: Weak<StmShared>) {
    loop {
        let urgent = {
            let mut st = ctl.state.lock();
            if !st.pending && !st.shutdown {
                ctl.cv.wait_for(&mut st, GC_IDLE_WAKEUP);
            }
            if st.shutdown {
                return;
            }
            let urgent = st.urgent;
            st.pending = false;
            st.urgent = false;
            urgent
        };
        // Upgrade per cycle: holding a strong reference across the wait
        // would turn the collector into a leak (the registry can never drop).
        let Some(shared) = weak.upgrade() else { return };
        if catch_unwind(AssertUnwindSafe(|| {
            shared.run_gc_cycle(urgent);
        }))
        .is_err()
        {
            shared.stats.record_gc_thread_panic();
        }
    }
}

/// A parallel-nesting software transactional memory instance.
///
/// `Stm` is cheaply cloneable (`Arc` inside); clones share all state. See the
/// crate-level docs for a usage example.
#[derive(Clone)]
pub struct Stm {
    shared: Arc<StmShared>,
}

impl Stm {
    /// Create an STM instance with the given configuration.
    pub fn new(config: StmConfig) -> Self {
        let trace = TraceBus::new();
        let fault = FaultCtx::new(config.fault.clone(), trace.clone());
        let stats = Arc::new(Stats::new());
        // The execution-layer ladder: scheduler + admission gate are chosen
        // as a pair, mirroring the commit-path and read-path mode switches.
        let (pool, gate): (Arc<dyn Scheduler>, Arc<dyn Admission>) = match config.sched_mode {
            SchedMode::Mutex => (
                Arc::new(ChildPool::with_instruments(config.worker_threads, fault.clone())),
                Arc::new(ResizableSemaphore::new(config.degree.top_level)),
            ),
            SchedMode::WorkStealing => (
                Arc::new(WorkStealingPool::with_instruments(
                    config.worker_threads,
                    fault.clone(),
                    Arc::clone(&stats),
                    trace.clone(),
                )),
                Arc::new(PackedGate::with_stats(config.degree.top_level, Arc::clone(&stats))),
            ),
        };
        // Absorb the deprecated `retry_backoff` field into the contention
        // manager: a nonzero value becomes the backoff rung's base delay,
        // and — if no explicit policy was chosen — selects `ExpBackoff` so
        // configs written against the old field keep their damping.
        let retry_ns = config.retry_backoff.as_nanos().min(u64::MAX as u128) as u64;
        let cm_mode = if config.cm_mode == CmMode::Immediate && retry_ns > 0 {
            CmMode::ExpBackoff
        } else {
            config.cm_mode
        };
        let cm = CmEngine::new(cm_mode, retry_ns);
        let registry = Arc::new(SnapshotRegistry::new());
        registry.set_lease(config.mem.snapshot_lease);
        let mem_state = MemState::new(&config.mem);
        let gc_mode = config.mem.gc_mode;
        let shared = Arc::new(StmShared {
            clock: GlobalClock::new(),
            commit_lock: Mutex::new(()),
            stripes: StripeTable::new(),
            registry,
            stats,
            throttle: Throttle::with_gate(config.degree, trace.clone(), fault.clone(), gate),
            pool,
            boxes: Mutex::new(Vec::new()),
            config,
            commits_since_gc: AtomicU64::new(0),
            trace,
            fault,
            cm,
            mem_state,
            gc_ctl: Arc::new(GcCtl::default()),
            gc_cycle_lock: Mutex::new(()),
            gc_join: Mutex::new(None),
        });
        if gc_mode == GcMode::Background {
            let ctl = Arc::clone(&shared.gc_ctl);
            let weak = Arc::downgrade(&shared);
            let handle = std::thread::Builder::new()
                .name("pnstm-gc".into())
                .spawn(move || gc_thread_main(ctl, weak))
                .expect("spawn GC thread");
            *shared.gc_join.lock() = Some(handle);
        }
        Self { shared }
    }

    /// Create a new transactional box holding `initial`.
    pub fn new_vbox<T: TxValue>(&self, initial: T) -> VBox<T> {
        self.shared.register_vbox(initial)
    }

    /// Run `body` as a top-level transaction, retrying on conflicts.
    ///
    /// Admission is gated by the throttle's top-level semaphore: at most `t`
    /// transactions run concurrently. The body may be re-executed; it must
    /// not have non-transactional side effects it cannot repeat.
    pub fn atomic<R>(&self, body: impl FnMut(&mut Txn) -> TxResult<R>) -> Result<R, StmError> {
        let trace = &self.shared.trace;
        if let Some(action) = self.shared.fault.inject(FaultKind::AdmissionStall) {
            action.stall();
        }
        let wait_start = std::time::Instant::now();
        let Some(permit) = self.shared.throttle.admit_top_level() else {
            return Err(StmError::Shutdown);
        };
        let wait_ns = wait_start.elapsed().as_nanos() as u64;
        self.shared.stats.record_sem_wait(wait_ns);
        if trace.is_enabled() {
            trace.emit(TraceEvent::SemWait { wait_ns });
        }
        self.atomic_admitted(permit, body)
    }

    /// Run `body` as a top-level transaction under a `permit` the caller
    /// already holds — the batched-admission entry point: the ingress front
    /// door acquires one [`crate::Throttle::admit_batch`] of permits per
    /// dequeued batch (amortizing the admission gate) and runs each request
    /// through here. The permit must come from this instance's
    /// [`Stm::throttle`]; it is consumed (released when the transaction
    /// finishes, or earlier if a long contention-manager wait gives the slot
    /// up — the retry loop re-admits as usual).
    pub fn atomic_admitted<R>(
        &self,
        permit: Permit,
        mut body: impl FnMut(&mut Txn) -> TxResult<R>,
    ) -> Result<R, StmError> {
        let trace = &self.shared.trace;
        let mut permit = Some(permit);
        if trace.is_enabled() {
            trace.emit(TraceEvent::TxBegin { kind: TxKind::TopLevel, at_ns: trace::now_ns() });
        }
        let mut cm_tx = self.shared.cm.begin_guard();
        let mut aborts: u64 = 0;
        loop {
            // Re-admit if a long contention-manager wait released the slot.
            if permit.is_none() {
                let wait_start = std::time::Instant::now();
                let Some(p) = self.shared.throttle.admit_top_level() else {
                    return Err(StmError::Shutdown);
                };
                let wait_ns = wait_start.elapsed().as_nanos() as u64;
                self.shared.stats.record_sem_wait(wait_ns);
                if trace.is_enabled() {
                    trace.emit(TraceEvent::SemWait { wait_ns });
                }
                permit = Some(p);
            }
            // The attempt runs in its own scope so the snapshot registration
            // and the attempt's `Txn` are dropped before any backoff wait —
            // a sleeping loser must not pin the GC watermark.
            let (site, work) = {
                let _snap = self.shared.registry.register_current(&self.shared.clock);
                let read_version = _snap.version();
                let mut tx =
                    Txn::top(Arc::clone(&self.shared), read_version, Some(_snap.evicted_flag()));
                match body(&mut tx) {
                    Ok(value) => match tx.commit_top() {
                        Ok(()) => {
                            self.shared.stats.record_commit_top();
                            if trace.is_enabled() {
                                trace.emit(TraceEvent::TxCommit {
                                    kind: TxKind::TopLevel,
                                    retries: aborts,
                                    at_ns: trace::now_ns(),
                                });
                            }
                            self.shared.maybe_auto_gc();
                            return Ok(value);
                        }
                        Err(TxError::Conflict) => {
                            let site = if tx.snapshot_evicted() {
                                AbortSite::Evicted
                            } else {
                                AbortSite::Commit
                            };
                            let (r, w) = tx.footprint();
                            (site, r + w)
                        }
                        Err(_) => unreachable!("commit_top only fails with Conflict"),
                    },
                    Err(TxError::UserAbort) => {
                        self.shared.stats.record_abort_top();
                        if trace.is_enabled() {
                            trace.emit(TraceEvent::TxAbort {
                                kind: TxKind::TopLevel,
                                retries: aborts + 1,
                                at_ns: trace::now_ns(),
                            });
                        }
                        return Err(StmError::UserAborted);
                    }
                    Err(TxError::Conflict) | Err(TxError::ChildPanic) => {
                        // A child exhausted its sibling-conflict budget (or
                        // the body surfaced a conflict): abort the tree. An
                        // evicted tree escalates here too — the retry below
                        // re-registers on a fresh (live) snapshot.
                        let site =
                            if tx.snapshot_evicted() { AbortSite::Evicted } else { AbortSite::Top };
                        let (r, w) = tx.footprint();
                        (site, r + w)
                    }
                }
            };
            if site == AbortSite::Evicted {
                self.shared.stats.record_evicted_abort();
            }
            self.record_top_abort_traced(&mut aborts)?;
            self.cm_pause_top(&mut cm_tx, site, aborts, work, &mut permit)?;
        }
    }

    /// Consult the contention manager after a top-level abort and execute
    /// its decision. Long waits release the admission permit first (the
    /// retry loop re-admits); admission shutdown cuts any wait short with
    /// [`StmError::Shutdown`], so backing-off transactions drain as promptly
    /// as parked ones.
    fn cm_pause_top(
        &self,
        cm_tx: &mut CmTxGuard<'_>,
        site: AbortSite,
        attempt: u64,
        work: usize,
        permit: &mut Option<Permit>,
    ) -> Result<(), StmError> {
        let (policy, wait) = cm_tx.decide(site, attempt, work);
        if wait.is_zero() {
            return Ok(());
        }
        if wait.as_nanos() as u64 >= cm::PERMIT_RELEASE_THRESHOLD_NS {
            *permit = None; // don't occupy an admission slot while asleep
        }
        let throttle = &self.shared.throttle;
        let (waited_ns, cancelled) = cm::sleep_interruptible(wait, || throttle.is_closed());
        self.shared.stats.record_cm_wait(policy.index(), waited_ns);
        let trace = &self.shared.trace;
        if trace.is_enabled() {
            trace.emit(TraceEvent::CmDecision {
                policy,
                site,
                waited_ns,
                attempt,
                at_ns: trace::now_ns(),
            });
        }
        if cancelled {
            return Err(StmError::Shutdown);
        }
        Ok(())
    }

    /// Shared conflict-abort bookkeeping of the retry loop: count the abort,
    /// trace it, and surface [`StmError::RetriesExhausted`] once the budget
    /// is spent.
    fn record_top_abort_traced(&self, aborts: &mut u64) -> Result<(), StmError> {
        self.shared.stats.record_abort_top();
        *aborts += 1;
        let trace = &self.shared.trace;
        if trace.is_enabled() {
            trace.emit(TraceEvent::TxAbort {
                kind: TxKind::TopLevel,
                retries: *aborts,
                at_ns: trace::now_ns(),
            });
        }
        if *aborts >= self.shared.config.max_retries {
            return Err(StmError::RetriesExhausted { attempts: *aborts });
        }
        Ok(())
    }

    /// Run a read-only transaction. Takes no admission permit (multi-version
    /// reads are invisible to writers) and never conflicts; under snapshot
    /// leasing a *long-running* reader can however be evicted — use
    /// [`ReadTxn::try_read`] to observe that instead of panicking.
    pub fn read_only<R>(&self, body: impl FnOnce(&mut ReadTxn) -> R) -> R {
        let snap = self.shared.registry.register_current(&self.shared.clock);
        let mut tx = ReadTxn { shared: Arc::clone(&self.shared), snap };
        body(&mut tx)
    }

    /// Convenience: read a single box at the current global version.
    pub fn read_atomic<T: TxValue>(&self, vbox: &VBox<T>) -> T {
        self.read_only(|tx| tx.read(vbox))
    }

    /// The current global version clock value (number of commits that
    /// installed writes).
    pub fn clock_now(&self) -> u64 {
        self.shared.clock.now()
    }

    /// STM activity counters and the commit hook.
    pub fn stats(&self) -> &Stats {
        &self.shared.stats
    }

    /// An owning handle to the same counters, for host systems that wire
    /// their own `pnstm::sched` pools to this instance's instruments (the
    /// ledger's block executor does this).
    pub fn stats_handle(&self) -> Arc<Stats> {
        Arc::clone(&self.shared.stats)
    }

    /// The admission controller, for the AutoPN actuator.
    pub fn throttle(&self) -> &Throttle {
        &self.shared.throttle
    }

    /// Apply a new `(t, c)` configuration (shorthand for
    /// `throttle().reconfigure(..)`, plus reconfiguration accounting).
    pub fn set_degree(&self, degree: ParallelismDegree) {
        let prev = self.shared.throttle.reconfigure(degree);
        if prev != degree {
            self.shared.stats.record_reconfigure();
        }
    }

    /// Fallible [`Stm::set_degree`]: the attempt may be vetoed by the fault
    /// layer ([`FaultKind::ReconfigFail`]); the previous configuration then
    /// stays in force. Controllers retry/back off on `Err` (see
    /// `autopn`'s degradation ladder).
    pub fn try_set_degree(&self, degree: ParallelismDegree) -> Result<(), ReconfigError> {
        let prev = self.shared.throttle.try_reconfigure(degree)?;
        if prev != degree {
            self.shared.stats.record_reconfigure();
        }
        Ok(())
    }

    /// Stop admitting top-level transactions: [`Stm::atomic`] calls — both
    /// new arrivals and threads already parked on the admission gate —
    /// return [`StmError::Shutdown`] instead of blocking. Running
    /// transactions are unaffected. Used by host systems to shut down worker
    /// loops that might be blocked on a starved gate.
    pub fn close_admission(&self) {
        self.shared.throttle.close();
    }

    /// Resume admission after [`Stm::close_admission`].
    pub fn reopen_admission(&self) {
        self.shared.throttle.reopen();
    }

    /// The fault-injection context of this instance (the configured plan, if
    /// any, bound to this STM's trace bus). Host systems use it to consult
    /// app-level injection sites (worker panics, clock jitter) against the
    /// same deterministic plan as the runtime's own sites.
    pub fn fault_ctx(&self) -> &FaultCtx {
        self.shared.fault()
    }

    /// The trace-event bus of this STM instance. Subscribe a sink
    /// ([`crate::TestSink`], [`crate::RingSink`], [`crate::JsonlSink`]) to
    /// observe transaction, admission and reconfiguration events; with no
    /// sinks the runtime pays one atomic load per emission site.
    pub fn trace_bus(&self) -> &TraceBus {
        &self.shared.trace
    }

    /// The `(t, c)` configuration currently in force.
    pub fn degree(&self) -> ParallelismDegree {
        self.shared.throttle.current()
    }

    /// The contention-management policy currently in force.
    pub fn cm_mode(&self) -> CmMode {
        self.shared.cm.mode()
    }

    /// Switch the contention-management policy live. Running transactions
    /// keep their accrued per-chain state and consult the new policy from
    /// their next abort on — this is the actuation point for tuners that
    /// treat the policy as a discrete knob.
    pub fn set_cm_mode(&self, mode: CmMode) {
        self.shared.cm.set_mode(mode);
    }

    /// Resize the shared child-transaction worker pool.
    pub fn resize_pool(&self, workers: usize) {
        self.shared.pool.resize(workers);
    }

    /// The worker-thread count the scheduler currently targets.
    pub fn pool_size(&self) -> usize {
        self.shared.pool.size()
    }

    /// Live scheduler worker threads right now (lags [`Stm::pool_size`]
    /// while a resize converges).
    pub fn pool_live_workers(&self) -> usize {
        self.shared.pool.live_workers()
    }

    /// Garbage-collect box versions no live snapshot can read, synchronously
    /// on this thread regardless of [`GcMode`] (expired leases are evicted
    /// as a side effect). Returns the number of boxes whose chains were
    /// shortened.
    pub fn gc(&self) -> usize {
        self.shared.run_gc_cycle(false)
    }

    /// Wake the background collector (no-op under [`GcMode::Inline`]).
    /// Returns immediately; use [`Stm::gc`] for a synchronous sweep.
    pub fn request_gc(&self) {
        if self.shared.config.mem.gc_mode == GcMode::Background {
            self.shared.gc_ctl.nudge(false);
        }
    }

    /// The GC driver this instance runs.
    pub fn gc_mode(&self) -> GcMode {
        self.shared.config.mem.gc_mode
    }

    /// The degradation-ladder level currently in force.
    pub fn mem_level(&self) -> MemLevel {
        self.shared.mem_state.level()
    }

    /// The live version-heap gauge (shared with [`Stats::gauge`]).
    pub fn heap_gauge(&self) -> &Arc<VersionHeapGauge> {
        self.shared.stats.gauge()
    }

    /// The background-GC slice budget currently in force.
    pub fn gc_slice_boxes(&self) -> usize {
        self.shared.mem_state.gc_slice_boxes()
    }

    /// Retune the GC slice budget live (clamped to ≥ 1). An actuation point
    /// for tuners: smaller slices interleave more finely with mutators,
    /// larger ones amortize per-slice overhead.
    pub fn set_gc_slice_boxes(&self, boxes: usize) {
        self.shared.mem_state.set_gc_slice_boxes(boxes);
    }

    /// The ladder's soft ceiling (retained versions) currently in force.
    pub fn mem_soft_ceiling(&self) -> u64 {
        self.shared.mem_state.soft_ceiling()
    }

    /// Retune the soft ceiling live (`u64::MAX` disables the rung). An
    /// actuation point for tuners trading memory headroom against GC work.
    pub fn set_mem_soft_ceiling(&self, versions: u64) {
        self.shared.mem_state.set_soft_ceiling(versions);
        self.shared.check_mem_pressure();
    }

    /// Retune the hard ceiling live (`u64::MAX` disables the rung).
    pub fn set_mem_hard_ceiling(&self, versions: u64) {
        self.shared.mem_state.set_hard_ceiling(versions);
        self.shared.check_mem_pressure();
    }

    /// The snapshot lease currently in force (`None` = leasing disabled).
    /// While the ladder is degraded this reads the urgent lease.
    pub fn snapshot_lease(&self) -> Option<Duration> {
        self.shared.registry.lease()
    }

    /// Change the lease applied to snapshots registered from now on
    /// (`None` disables leasing). In-flight registrations keep their
    /// deadlines. Note a later ladder recovery restores the *configured*
    /// lease, not this override.
    pub fn set_snapshot_lease(&self, lease: Option<Duration>) {
        self.shared.registry.set_lease(lease);
    }

    /// Number of live registered snapshots (running transactions).
    pub fn live_snapshots(&self) -> usize {
        self.shared.registry.live_count()
    }
}

impl std::fmt::Debug for Stm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stm")
            .field("clock", &self.clock_now())
            .field("degree", &self.degree())
            .field("stats", &self.stats().snapshot())
            .finish()
    }
}

/// A read-only transaction: a pinned snapshot with non-blocking reads.
///
/// Under snapshot leasing ([`MemConfig::snapshot_lease`]) the pin is not
/// unconditional: a reader that outlives its lease is evicted and subsequent
/// reads of pruned chains fail with [`StmError::SnapshotEvicted`]. Reads
/// that still find a version ≤ the snapshot keep succeeding — eviction
/// *permits* pruning, it doesn't rewind chains.
pub struct ReadTxn {
    shared: Arc<StmShared>,
    snap: SnapshotGuard,
}

impl ReadTxn {
    /// Read `vbox` at this transaction's snapshot.
    ///
    /// Panics if the snapshot was evicted *and* the GC has already pruned
    /// past it on this box; long-running readers that must survive eviction
    /// use [`ReadTxn::try_read`].
    pub fn read<T: TxValue>(&mut self, vbox: &VBox<T>) -> T {
        self.try_read(vbox).unwrap_or_else(|e| {
            panic!("ReadTxn::read at snapshot {}: {e} (use try_read)", self.snap.version())
        })
    }

    /// Read `vbox` at this transaction's snapshot, surfacing lease eviction
    /// as [`StmError::SnapshotEvicted`] instead of panicking.
    pub fn try_read<T: TxValue>(&mut self, vbox: &VBox<T>) -> Result<T, StmError> {
        match vbox.body.read_at(self.snap.version()) {
            Ok(v) => Ok(v),
            Err(floor) => {
                if self.snap.is_evicted() {
                    return Err(StmError::SnapshotEvicted);
                }
                // A registered, unexpired snapshot must always find a
                // version: the watermark is its lower bound. Anything else
                // is a GC bug — count it, then fail loudly.
                self.shared.stats.record_read_below_floor();
                panic!(
                    "vbox {}: no version <= registered snapshot {} (oldest retained: {}); \
                     GC invariant violated",
                    vbox.id(),
                    self.snap.version(),
                    floor.oldest
                );
            }
        }
    }

    /// Whether this reader's snapshot lease has expired and been evicted
    /// (reads may still succeed until the GC prunes past the snapshot).
    pub fn is_evicted(&self) -> bool {
        self.snap.is_evicted()
    }

    /// The snapshot version being read.
    pub fn version(&self) -> u64 {
        self.snap.version()
    }
}
