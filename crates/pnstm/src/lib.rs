//! # pnstm — a multi-version software transactional memory with parallel nesting
//!
//! This crate is a from-scratch Rust implementation of the PN-STM substrate
//! assumed by the AutoPN paper (*Online Tuning of Parallelism Degree in
//! Parallel Nesting Transactional Memory*, IPDPS 2018). It follows the
//! abstract system model of §III-A of the paper, which in turn mirrors
//! JVSTM:
//!
//! * **Multi-version boxes** ([`VBox`]) keep a chain of `(version, value)`
//!   pairs. Reads are served from the snapshot selected at transaction begin
//!   and therefore never block or conflict at read time.
//! * **Top-level transactions** validate their read set at commit time and
//!   install new versions atomically. The default commit path is TL2-style
//!   striped ([`stripes`], [`CommitPath::Striped`]): write sets lock a
//!   fixed table of ownership stripes in canonical order, reads validate
//!   against per-stripe version stamps, and commit versions are reserved
//!   from an atomic clock and published contiguously — commits with disjoint
//!   write sets proceed fully in parallel. Read-only transactions never
//!   abort.
//! * **Closed parallel nesting**: a transaction may spawn a batch of child
//!   transactions that execute concurrently ([`Txn::parallel`]). Children
//!   commit into their parent (sibling conflicts are detected against a
//!   per-parent nest clock) and their effects only reach main memory when the
//!   top-level ancestor commits. Nesting may be arbitrarily deep.
//! * **Runtime-adjustable parallelism degree**: the number of concurrent
//!   top-level transactions `t` and the number of concurrent child
//!   transactions per transaction tree `c` are gated by resizable admission
//!   gates ([`throttle::Throttle`]) so that an external controller (AutoPN's
//!   actuator) can reconfigure `(t, c)` while the application runs. The
//!   execution layer — child-task scheduler plus admission gate — is
//!   pluggable ([`SchedMode`]): the default mutex-based pool/semaphore pair,
//!   or a work-stealing scheduler with a lock-free packed admission gate.
//! * **Pluggable contention management** ([`cm`], [`CmMode`]): the delay
//!   before an aborted transaction retries is a policy — immediate (the
//!   default), jittered exponential backoff, karma, or greedy seniority —
//!   consulted at every abort site and switchable at runtime so the tuner
//!   can co-tune it alongside `(t, c)`.
//! * **KPI instrumentation**: commit/abort counters and a commit-event hook
//!   ([`stats::Stats`]) feed the AutoPN monitor.
//!
//! Differences from JVSTM (documented, behaviour-preserving for the tuning
//! problem): commits use striped ownership locks instead of JVSTM's
//! lock-free helping scheme (a single-global-lock path,
//! [`CommitPath::GlobalLock`], is retained as a differential-testing
//! oracle), and parent transactions are suspended while their children run
//! (fork/join style, which is how the paper's benchmarks use parallel
//! nesting).
//!
//! ## Quick example
//!
//! ```
//! use pnstm::{Stm, StmConfig, child};
//!
//! let stm = Stm::new(StmConfig::default());
//! let counter = stm.new_vbox(0i64);
//!
//! // A top-level transaction that increments the counter in two parallel
//! // child transactions.
//! let c2 = counter.clone();
//! let total = stm
//!     .atomic(move |tx| {
//!         let tasks = (0..2)
//!             .map(|_| {
//!                 let b = c2.clone();
//!                 child(move |child_tx| {
//!                     let v = child_tx.read(&b);
//!                     child_tx.write(&b, v + 1);
//!                     Ok(())
//!                 })
//!             })
//!             .collect();
//!         tx.parallel::<()>(tasks)?;
//!         Ok(tx.read(&c2))
//!     })
//!     .unwrap();
//! assert_eq!(total, 2);
//! assert_eq!(stm.read_atomic(&counter), 2);
//! ```

pub mod clock;
pub mod cm;
pub mod collections;
pub mod error;
pub mod fault;
pub mod mem;
pub mod pool;
pub mod sched;
pub mod stats;
pub mod stripes;
pub mod throttle;
pub mod trace;
pub mod txn;
pub mod vbox;

mod runtime;

pub use cm::{AbortSite, CmMode, CmTx, ContentionManager, CM_POLICIES};
pub use collections::{TArray, TCounter, TMap};
pub use error::{StmError, TxError, TxResult};
pub use fault::{FaultAction, FaultCtx, FaultKind, FaultPlan, FaultRule};
pub use mem::{GcMode, MemConfig, MemLevel, VersionHeapGauge};
pub use pool::ChildPool;
pub use runtime::{CommitPath, ReadPathMode, ReadTxn, Stm, StmConfig};
pub use sched::{Admission, SchedMode, Scheduler, Task, WorkStealingPool};
pub use stats::{
    CommitEvent, LatencyHistogram, LatencySnapshot, Stats, StatsSnapshot, TxKind, LATENCY_BUCKETS,
    SEM_WAIT_BUCKETS,
};
pub use stripes::{stripe_of, STRIPE_COUNT};
pub use throttle::{
    PackedGate, ParallelismDegree, Permit, ReconfigError, ResizableSemaphore, Throttle,
};
pub use trace::{
    AxesTrace, AxisValue, JsonlSink, RingSink, TestSink, TraceBus, TraceEvent, TraceSink,
    MAX_TRACE_AXES,
};
pub use txn::{child, ChildTask, Txn};
pub use vbox::VBox;

/// Marker bound for values storable in a [`VBox`].
///
/// Values are cloned on read (multi-version STMs hand out snapshot copies)
/// and must be shareable across the worker threads that execute nested
/// transactions.
pub trait TxValue: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> TxValue for T {}
