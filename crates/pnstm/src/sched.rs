//! The pluggable execution layer: scheduler and admission contracts, plus the
//! work-stealing child-task scheduler.
//!
//! PR 3 made the commit path swappable ([`crate::CommitPath`]) and PR 4 the
//! read path ([`crate::ReadPathMode`]); this module does the same for the two
//! remaining global serialization points — child-task dispatch and top-level
//! admission — behind a [`Scheduler`] / [`Admission`] trait pair selected by
//! [`SchedMode`]:
//!
//! * [`SchedMode::Mutex`] (the default) keeps the original structures: the
//!   single-queue [`crate::pool::ChildPool`] and the
//!   [`crate::throttle::ResizableSemaphore`]. They survive as the
//!   differential-testing oracle and the `sched_scaling` bench baseline,
//!   mirroring `CommitPath::GlobalLock` / `ReadPathMode::Locked`.
//! * [`SchedMode::WorkStealing`] selects [`WorkStealingPool`] — per-batch
//!   lock-free deques (the owning parent pops LIFO from one end, helper
//!   threads steal FIFO from the other), batch handles registered in a
//!   sharded injector so idle workers discover work without one global lock,
//!   and the per-tree `helper_limit` enforced by an atomic helper counter —
//!   plus the packed-atomic [`crate::throttle::PackedGate`] admission gate.
//!
//! Both schedulers preserve the deadlock-freedom argument of
//! [`crate::pool`]: the thread that submits a batch is always the `c`-th
//! executor, so a blocked parent drains its own children even when every
//! pool worker is busy in other trees, at any nesting depth.

use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::fault::{FaultCtx, FaultKind};
use crate::stats::Stats;
use crate::trace::{self, TraceBus, TraceEvent};

/// One child-transaction task as submitted by `Txn::parallel`.
pub type Task = Box<dyn FnOnce() + Send>;

/// Which execution-layer implementation pair an [`crate::Stm`] instance runs
/// (child-task scheduler + top-level admission gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// The original structures: the single-queue child pool (one mutex-held
    /// `VecDeque` per batch, one batches lock + condvar for dispatch) and
    /// the mutex-based resizable admission semaphore. The default; retained
    /// as the differential-testing oracle and the `sched_scaling` baseline.
    #[default]
    Mutex,
    /// Work-stealing child-task scheduler (per-batch lock-free deques,
    /// sharded injector, atomic helper counter) and the packed-atomic
    /// admission gate with parker lists.
    WorkStealing,
}

/// A child-task scheduler: executes batches of nested-transaction tasks with
/// a per-batch helper cap, on a resizable set of worker threads.
///
/// Contract (both implementations):
///
/// * `run_batch` returns only when every task has run exactly once.
/// * The *calling* thread always executes tasks alongside at most
///   `helper_limit` pool workers — this is what makes deep nesting
///   deadlock-free (a blocked parent drains its own children) and what lets
///   `helper_limit = 0` degenerate to sequential execution.
/// * A panic in a caller-executed task is re-raised on the caller only after
///   the batch has fully drained; a panic on a worker is absorbed (the txn
///   layer carries its own panic channel).
/// * `resize` may be called concurrently with in-flight batches; shrinking
///   lets surplus workers retire between tasks and never strands a batch.
pub trait Scheduler: Send + Sync {
    /// Execute `tasks` to completion with at most `helper_limit` pool
    /// workers helping the calling thread.
    fn run_batch(&self, tasks: Vec<Task>, helper_limit: usize);

    /// Retarget the worker-thread count. Growth spawns immediately; shrink
    /// retires surplus workers after their current task.
    fn resize(&self, size: usize);

    /// The worker-thread count currently targeted.
    fn size(&self) -> usize;

    /// Live worker threads right now (lags [`Scheduler::size`] during
    /// resize).
    fn live_workers(&self) -> usize;
}

/// A top-level admission gate: a counting semaphore with runtime-adjustable
/// capacity and a shutdown-aware close/reopen protocol.
///
/// Contract (both implementations):
///
/// * `acquire` blocks until a permit is granted and returns `true`, or
///   returns `false` — without a permit — if the gate is, or becomes,
///   closed. A thread parked in `acquire` is guaranteed to wake and observe
///   a close (this is what turns shutdown-under-starvation into
///   [`crate::StmError::Shutdown`] instead of a hang).
/// * `set_capacity` may shrink below the number of permits currently held;
///   the availability simply goes negative and releases are absorbed until
///   it recovers — at no point are more than `capacity` *new* admissions
///   granted.
/// * `close`/`reopen` only gate *new* permits; held permits and their
///   releases are unaffected.
pub trait Admission: Send + Sync + std::fmt::Debug {
    /// Block for a permit; `false` means the gate is closed.
    fn acquire(&self) -> bool;
    /// Take a permit only if one is immediately available and the gate is
    /// open.
    fn try_acquire(&self) -> bool;
    /// Return a permit.
    fn release(&self);
    /// Refuse new permits and wake every parked acquirer empty-handed.
    fn close(&self);
    /// Re-admit after a [`Admission::close`].
    fn reopen(&self);
    /// Whether the gate currently refuses new permits.
    fn is_closed(&self) -> bool;
    /// Change the capacity (clamped to at least 1); outstanding permits are
    /// unaffected.
    fn set_capacity(&self, capacity: usize);
    /// Currently configured capacity.
    fn capacity(&self) -> usize;
    /// Permits currently held (never negative in a quiescent state).
    fn in_use(&self) -> usize;
    /// Take up to `max` immediately available permits without blocking,
    /// returning how many were granted (0 when closed or exhausted). The
    /// default loops [`Admission::try_acquire`]; lock-free gates override it
    /// to grant the whole batch in one CAS so batched admitters (the ingress
    /// front door) don't pay one word-contention round per request.
    fn try_acquire_many(&self, max: usize) -> usize {
        let mut granted = 0;
        while granted < max && self.try_acquire() {
            granted += 1;
        }
        granted
    }
}

/// Tasks per batch held in the fixed lock-free deque; a larger batch spills
/// the excess into a mutex-held vector (counted as `deque_overflow` in
/// [`crate::StatsSnapshot`]). 256 covers any plausible `c` — the per-tree
/// fan-out the tuner explores is bounded by the core count.
const DEQUE_CAP: usize = 256;

/// Shards of the injector's batch registry. Dispatch of concurrent trees
/// spreads round-robin over the shards, so publishing a batch no longer
/// funnels every tree through one lock.
const INJECTOR_SHARDS: usize = 8;

/// One pre-filled slot of a [`StealDeque`].
///
/// SAFETY invariant: a slot's `Option<Task>` is written once at construction
/// (published by the `Arc` that shares the batch) and taken at most once, by
/// the unique thread whose claim CAS on the deque's control word returned
/// that slot's index. No two threads ever touch the same slot concurrently.
struct TaskSlot(UnsafeCell<Option<Task>>);

// SAFETY: see the invariant on [`TaskSlot`]; cross-thread access is
// serialized by the AcqRel claim CAS in `StealDeque`.
unsafe impl Sync for TaskSlot {}

/// Fixed-size lock-free deque over the tasks of one batch.
///
/// All tasks of a `parallel()` batch exist up front, so no growable ring is
/// needed: the slots are filled at construction and a single packed control
/// word tracks the two claim cursors. The high 32 bits hold `tail` — the
/// owner end, exclusive; the owner pops LIFO by claiming `tail - 1`. The low
/// 32 bits hold `head` — the thief end; helpers steal FIFO by claiming
/// `head`. Slots in `[head, tail)` are unclaimed; the deque is empty when
/// the cursors meet. A successful claim CAS hands the claimant a slot index
/// no other thread can observe as claimable again, making the subsequent
/// slot take race-free.
struct StealDeque {
    ctrl: AtomicU64,
    slots: Box<[TaskSlot]>,
}

fn deque_pack(head: u32, tail: u32) -> u64 {
    ((tail as u64) << 32) | head as u64
}

fn deque_unpack(v: u64) -> (u32, u32) {
    (v as u32, (v >> 32) as u32)
}

impl StealDeque {
    fn new(tasks: Vec<Task>) -> Self {
        let n = tasks.len();
        debug_assert!(n <= DEQUE_CAP);
        let slots: Box<[TaskSlot]> =
            tasks.into_iter().map(|t| TaskSlot(UnsafeCell::new(Some(t)))).collect();
        Self { ctrl: AtomicU64::new(deque_pack(0, n as u32)), slots }
    }

    /// Unclaimed tasks right now. Exact (derived from one atomic load of the
    /// control word), unlike the mutex pool's lagging queue mirror.
    fn len(&self) -> usize {
        let (head, tail) = deque_unpack(self.ctrl.load(Ordering::Acquire));
        tail.saturating_sub(head) as usize
    }

    /// Claim a slot index by CASing the control word with `advance`, which
    /// maps `(head, tail)` to (new pair, claimed index) or `None` if empty.
    fn claim(&self, advance: impl Fn(u32, u32) -> Option<((u32, u32), u32)>) -> Option<Task> {
        let mut cur = self.ctrl.load(Ordering::Acquire);
        loop {
            let (head, tail) = deque_unpack(cur);
            let ((nh, nt), idx) = advance(head, tail)?;
            match self.ctrl.compare_exchange_weak(
                cur,
                deque_pack(nh, nt),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                // SAFETY: the CAS granted `idx` to this thread exclusively
                // (see `TaskSlot`); the slot was filled before the batch was
                // shared.
                Ok(_) => return unsafe { (*self.slots[idx as usize].0.get()).take() },
                Err(actual) => cur = actual,
            }
        }
    }

    /// Owner pop: LIFO from the tail end.
    fn pop(&self) -> Option<Task> {
        self.claim(|head, tail| (head < tail).then(|| ((head, tail - 1), tail - 1)))
    }

    /// Thief steal: FIFO from the head end.
    fn steal(&self) -> Option<Task> {
        self.claim(|head, tail| (head < tail).then(|| ((head + 1, tail), head)))
    }
}

/// One `parallel()` batch under the work-stealing scheduler.
struct WsBatch {
    deque: StealDeque,
    /// Overflow tasks beyond [`DEQUE_CAP`], drained after the deque.
    spill: Mutex<Vec<Task>>,
    /// Length mirror of `spill`, decremented *before* the pop so it only
    /// ever under-reports (the same discipline as the mutex pool's queued
    /// mirror after its over-report fix — an under-reporting mirror can at
    /// worst make a helper skip a batch the caller will drain anyway).
    spilled: AtomicUsize,
    /// Tasks spilled at construction (immutable; for stats/trace).
    overflowed: usize,
    /// Tasks submitted but not yet finished executing.
    remaining: AtomicUsize,
    /// Pool workers currently helping on this batch. The `helper_limit` cap
    /// is enforced by the CAS claim in [`WsBatch::try_claim_helper`] alone —
    /// no batches lock is involved, unlike the mutex pool.
    helpers: AtomicUsize,
    helper_limit: usize,
    /// Tasks executed by helpers (stolen), for `steal_count` and the
    /// `sched_batch` trace event.
    stolen: AtomicUsize,
    done_mx: Mutex<()>,
    done_cv: Condvar,
}

impl WsBatch {
    fn new(mut tasks: Vec<Task>, helper_limit: usize) -> Arc<Self> {
        let n = tasks.len();
        let spill = if n > DEQUE_CAP { tasks.split_off(DEQUE_CAP) } else { Vec::new() };
        let overflowed = spill.len();
        Arc::new(Self {
            deque: StealDeque::new(tasks),
            spilled: AtomicUsize::new(overflowed),
            spill: Mutex::new(spill),
            overflowed,
            remaining: AtomicUsize::new(n),
            helpers: AtomicUsize::new(0),
            helper_limit,
            stolen: AtomicUsize::new(0),
            done_mx: Mutex::new(()),
            done_cv: Condvar::new(),
        })
    }

    fn spill_pop(&self) -> Option<Task> {
        if self.spilled.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut s = self.spill.lock();
        if s.is_empty() {
            return None;
        }
        // Decrement the mirror before removing the task: under-report only.
        self.spilled.fetch_sub(1, Ordering::AcqRel);
        s.pop()
    }

    /// Owner-side take: LIFO from the deque, then the spill.
    fn pop_owner(&self) -> Option<Task> {
        self.deque.pop().or_else(|| self.spill_pop())
    }

    /// Helper-side take: FIFO steal from the deque, then the spill.
    fn pop_thief(&self) -> Option<Task> {
        self.deque.steal().or_else(|| self.spill_pop())
    }

    fn queued(&self) -> usize {
        self.deque.len() + self.spilled.load(Ordering::Acquire)
    }

    fn finish_task(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.done_mx.lock();
            self.done_cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    fn wants_helpers(&self) -> bool {
        self.helpers.load(Ordering::Acquire) < self.helper_limit && self.queued() > 0
    }

    /// Atomically claim a helper slot: CAS-increment bounded by
    /// `helper_limit`, then re-check that work is still queued — a batch
    /// drained between the scan and the increment is backed out of, so no
    /// helper ever joins a drained batch.
    fn try_claim_helper(&self) -> bool {
        let mut cur = self.helpers.load(Ordering::Acquire);
        loop {
            if cur >= self.helper_limit {
                return false;
            }
            match self.helpers.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if self.queued() > 0 {
                        return true;
                    }
                    self.helpers.fetch_sub(1, Ordering::AcqRel);
                    return false;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn release_helper(&self) {
        self.helpers.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Marks the task finished on drop, so a panicking task still decrements the
/// batch's remaining count (mirrors `pool::FinishGuard`).
struct WsFinishGuard<'a>(&'a WsBatch);

impl Drop for WsFinishGuard<'_> {
    fn drop(&mut self) {
        self.0.finish_task();
    }
}

/// Sharded registry of in-flight batches that still want helpers. Dispatch
/// registers round-robin; idle workers scan the shards. Only batch
/// *discovery* takes these short locks — task claims are lock-free on the
/// batch itself.
struct Injector {
    shards: Box<[Mutex<Vec<Arc<WsBatch>>>]>,
    next: AtomicUsize,
}

impl Injector {
    fn new() -> Self {
        Self {
            shards: (0..INJECTOR_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Register `batch`, returning the shard index for unregistration.
    fn register(&self, batch: &Arc<WsBatch>) -> usize {
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard].lock().push(Arc::clone(batch));
        shard
    }

    fn unregister(&self, shard: usize, batch: &Arc<WsBatch>) {
        self.shards[shard].lock().retain(|b| !Arc::ptr_eq(b, batch));
    }

    /// Find some registered batch that still wants helpers.
    fn find_wanting(&self) -> Option<Arc<WsBatch>> {
        for shard in self.shards.iter() {
            let g = shard.lock();
            if let Some(b) = g.iter().find(|b| b.wants_helpers()) {
                return Some(Arc::clone(b));
            }
        }
        None
    }
}

struct WsShared {
    injector: Injector,
    /// Idle-worker parking. `sleepers` is checked by dispatch before taking
    /// the wake lock, so publishing a batch while every worker is busy costs
    /// two atomic ops and no lock. A registration racing a worker's
    /// pre-sleep re-scan is recovered by the 50 ms wait timeout at worst.
    idle_mx: Mutex<()>,
    idle_cv: Condvar,
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    target_size: AtomicUsize,
    live_workers: AtomicUsize,
    fault: FaultCtx,
    stats: Arc<Stats>,
    trace: TraceBus,
}

impl WsShared {
    fn wake_idle(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.idle_mx.lock();
            self.idle_cv.notify_all();
        }
    }
}

/// Work-stealing child-task scheduler ([`SchedMode::WorkStealing`]).
///
/// Dispatching a batch registers it in the sharded injector and wakes idle
/// workers; the dispatching (parent) thread immediately starts executing
/// from the lock-free deque's owner end while helpers steal from the other.
/// Task claims never take a lock, the helper cap is a CAS on the batch's
/// helper counter, and cross-tree dispatch spreads over injector shards —
/// the three serialization points of the mutex pool, removed in order.
pub struct WorkStealingPool {
    shared: Arc<WsShared>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl WorkStealingPool {
    /// Create a pool with `size` worker threads (0 is allowed: batches then
    /// run entirely on their calling threads).
    pub fn new(size: usize) -> Self {
        Self::with_instruments(size, FaultCtx::disabled(), Arc::new(Stats::new()), TraceBus::new())
    }

    /// A pool wired to the runtime's fault context, stats counters
    /// (`steal_count` / `deque_overflow`) and trace bus (`sched_batch`
    /// events).
    pub fn with_instruments(
        size: usize,
        fault: FaultCtx,
        stats: Arc<Stats>,
        trace: TraceBus,
    ) -> Self {
        let shared = Arc::new(WsShared {
            injector: Injector::new(),
            idle_mx: Mutex::new(()),
            idle_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            target_size: AtomicUsize::new(size),
            live_workers: AtomicUsize::new(0),
            fault,
            stats,
            trace,
        });
        let pool = Self { shared, handles: Mutex::new(Vec::new()) };
        pool.spawn_up_to(size);
        pool
    }

    fn spawn_up_to(&self, size: usize) {
        let mut handles = self.handles.lock();
        while self.shared.live_workers.load(Ordering::Acquire) < size {
            self.shared.live_workers.fetch_add(1, Ordering::AcqRel);
            let shared = Arc::clone(&self.shared);
            handles.push(
                thread::Builder::new()
                    .name("pnstm-ws-worker".into())
                    .spawn(move || ws_worker_loop(shared))
                    .expect("failed to spawn pnstm worker thread"),
            );
        }
        handles.retain(|h| !h.is_finished());
    }
}

/// Run one claimed task: consult the dispatch fault site
/// ([`FaultKind::ChildStall`]; under this scheduler the stall is taken
/// *after* the lock-free claim, so stalled dispatches overlap instead of
/// serializing), then execute under a finish guard so panics keep the batch
/// accounting intact.
fn ws_run_task(batch: &WsBatch, task: Task, fault: &FaultCtx) {
    if let Some(action) = fault.inject(FaultKind::ChildStall) {
        action.stall();
    }
    let _finish = WsFinishGuard(batch);
    task();
}

impl Scheduler for WorkStealingPool {
    fn run_batch(&self, tasks: Vec<Task>, helper_limit: usize) {
        let n = tasks.len();
        if n == 0 {
            return;
        }
        let batch = WsBatch::new(tasks, helper_limit);
        if batch.overflowed > 0 {
            self.shared.stats.record_deque_overflow(batch.overflowed as u64);
        }
        let registered = (helper_limit > 0).then(|| {
            let shard = self.shared.injector.register(&batch);
            self.shared.wake_idle();
            shard
        });
        // The caller is always an executor (deadlock freedom; see the trait
        // contract). A caller-side panic is held and re-raised after the
        // batch drains, exactly like the mutex pool.
        let mut caller_panic: Option<Box<dyn std::any::Any + Send>> = None;
        while let Some(task) = batch.pop_owner() {
            if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ws_run_task(&batch, task, &self.shared.fault)
            })) {
                caller_panic.get_or_insert(payload);
            }
        }
        {
            let mut g = batch.done_mx.lock();
            while !batch.is_done() {
                batch.done_cv.wait_for(&mut g, Duration::from_millis(50));
            }
        }
        if let Some(shard) = registered {
            self.shared.injector.unregister(shard, &batch);
        }
        let stolen = batch.stolen.load(Ordering::Relaxed);
        if stolen > 0 {
            self.shared.stats.record_steals(stolen as u64);
        }
        if self.shared.trace.is_enabled() {
            self.shared.trace.emit(TraceEvent::SchedBatch {
                tasks: n as u32,
                stolen: stolen as u32,
                overflowed: batch.overflowed as u32,
                at_ns: trace::now_ns(),
            });
        }
        if let Some(payload) = caller_panic {
            std::panic::resume_unwind(payload);
        }
    }

    fn resize(&self, size: usize) {
        self.shared.target_size.store(size, Ordering::Release);
        self.spawn_up_to(size);
        // Wake idle workers so surplus ones can observe the shrink and exit.
        let _g = self.shared.idle_mx.lock();
        self.shared.idle_cv.notify_all();
    }

    fn size(&self) -> usize {
        self.shared.target_size.load(Ordering::Acquire)
    }

    fn live_workers(&self) -> usize {
        self.shared.live_workers.load(Ordering::Acquire)
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.idle_mx.lock();
            self.shared.idle_cv.notify_all();
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

fn ws_worker_loop(shared: Arc<WsShared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire)
            || shared.live_workers.load(Ordering::Acquire)
                > shared.target_size.load(Ordering::Acquire)
        {
            shared.live_workers.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        let claimed = shared.injector.find_wanting().filter(|b| b.try_claim_helper());
        match claimed {
            Some(batch) => {
                while let Some(task) = batch.pop_thief() {
                    batch.stolen.fetch_add(1, Ordering::Relaxed);
                    // A panicking task must not kill the shared worker:
                    // absorb the unwind (the txn layer has its own panic
                    // channel) and keep serving.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        ws_run_task(&batch, task, &shared.fault)
                    }));
                }
                batch.release_helper();
            }
            None => {
                shared.sleepers.fetch_add(1, Ordering::SeqCst);
                let mut g = shared.idle_mx.lock();
                // Re-scan under the wake lock: a batch registered after the
                // first scan but before the sleeper increment would notify
                // nobody. A registration racing this re-scan is caught by
                // `wake_idle` (it sees the incremented sleeper count) or, at
                // worst, by the wait timeout.
                if shared.injector.find_wanting().is_none()
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    shared.idle_cv.wait_for(&mut g, Duration::from_millis(50));
                }
                drop(g);
                shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    fn make_tasks(n: usize, counter: &Arc<AtomicI64>) -> Vec<Task> {
        (0..n)
            .map(|_| {
                let c = Arc::clone(counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Task
            })
            .collect()
    }

    #[test]
    fn deque_owner_pops_lifo_thieves_steal_fifo() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let tasks: Vec<Task> = (0..4)
            .map(|i| {
                let order = Arc::clone(&order);
                Box::new(move || order.lock().push(i)) as Task
            })
            .collect();
        let d = StealDeque::new(tasks);
        assert_eq!(d.len(), 4);
        d.steal().unwrap()(); // FIFO end: task 0
        d.pop().unwrap()(); // LIFO end: task 3
        d.steal().unwrap()(); // task 1
        d.pop().unwrap()(); // task 2
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
        assert_eq!(*order.lock(), vec![0, 3, 1, 2]);
    }

    #[test]
    fn deque_concurrent_claims_take_every_task_exactly_once() {
        for _ in 0..50 {
            let counter = Arc::new(AtomicI64::new(0));
            let d = Arc::new(StealDeque::new(make_tasks(64, &counter)));
            let mut joins = vec![];
            for who in 0..4 {
                let d = Arc::clone(&d);
                joins.push(thread::spawn(move || {
                    let mut taken = 0;
                    loop {
                        let t = if who % 2 == 0 { d.pop() } else { d.steal() };
                        match t {
                            Some(task) => {
                                task();
                                taken += 1;
                            }
                            None => return taken,
                        }
                    }
                }));
            }
            let total: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
            assert_eq!(total, 64, "claims lost or duplicated");
            assert_eq!(counter.load(Ordering::SeqCst), 64);
        }
    }

    #[test]
    fn caller_runs_everything_with_no_helpers() {
        let pool = WorkStealingPool::new(0);
        let counter = Arc::new(AtomicI64::new(0));
        pool.run_batch(make_tasks(10, &counter), 0);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn helpers_participate_and_steals_are_counted() {
        let stats = Arc::new(Stats::new());
        let pool = WorkStealingPool::with_instruments(
            3,
            FaultCtx::disabled(),
            Arc::clone(&stats),
            TraceBus::new(),
        );
        let counter = Arc::new(AtomicI64::new(0));
        // Slow tasks so helpers reliably win some claims.
        let tasks: Vec<Task> = (0..64)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    thread::sleep(Duration::from_micros(200));
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Task
            })
            .collect();
        pool.run_batch(tasks, 3);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert!(stats.snapshot().steal_count > 0, "helpers executed nothing");
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let pool = WorkStealingPool::new(1);
        pool.run_batch(vec![], 1);
    }

    #[test]
    fn per_batch_concurrency_respects_helper_limit() {
        let pool = WorkStealingPool::new(4);
        let active = Arc::new(AtomicI64::new(0));
        let peak = Arc::new(AtomicI64::new(0));
        let tasks: Vec<Task> = (0..32)
            .map(|_| {
                let (active, peak) = (Arc::clone(&active), Arc::clone(&peak));
                Box::new(move || {
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_micros(300));
                    active.fetch_sub(1, Ordering::SeqCst);
                }) as Task
            })
            .collect();
        // helper_limit 1 + the caller = at most 2 concurrent executors.
        pool.run_batch(tasks, 1);
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {}", peak.load(Ordering::SeqCst));
    }

    #[test]
    fn oversized_batch_spills_and_still_runs_every_task() {
        let stats = Arc::new(Stats::new());
        let pool = WorkStealingPool::with_instruments(
            2,
            FaultCtx::disabled(),
            Arc::clone(&stats),
            TraceBus::new(),
        );
        let counter = Arc::new(AtomicI64::new(0));
        let n = DEQUE_CAP + 37;
        pool.run_batch(make_tasks(n, &counter), 2);
        assert_eq!(counter.load(Ordering::SeqCst), n as i64);
        assert_eq!(stats.snapshot().deque_overflow, 37);
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let pool = WorkStealingPool::new(1);
        assert_eq!(pool.size(), 1);
        pool.resize(4);
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicI64::new(0));
        pool.run_batch(make_tasks(16, &counter), 3);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        pool.resize(1);
        assert_eq!(pool.size(), 1);
        for _ in 0..100 {
            if pool.live_workers() <= 1 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert!(pool.live_workers() <= 1, "live {}", pool.live_workers());
    }

    #[test]
    fn panicking_task_neither_hangs_batch_nor_kills_worker() {
        let pool = WorkStealingPool::new(2);
        let counter = Arc::new(AtomicI64::new(0));
        let mut tasks = make_tasks(8, &counter);
        tasks.push(Box::new(|| panic!("injected task panic")) as Task);
        tasks.extend(make_tasks(8, &counter));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_batch(tasks, 2);
        }));
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        let more = make_tasks(8, &counter);
        pool.run_batch(more, 2);
        assert_eq!(counter.load(Ordering::SeqCst), 24);
        assert!(pool.live_workers() >= 1, "workers must survive task panics");
    }

    #[test]
    fn child_stall_fault_is_consulted_per_task() {
        use crate::fault::{FaultPlan, FaultRule};

        let plan = Arc::new(
            FaultPlan::new(4).with_rule(FaultKind::ChildStall, FaultRule::with_probability(1.0)),
        );
        let pool = WorkStealingPool::with_instruments(
            0,
            FaultCtx::new(Some(Arc::clone(&plan)), TraceBus::new()),
            Arc::new(Stats::new()),
            TraceBus::new(),
        );
        let counter = Arc::new(AtomicI64::new(0));
        pool.run_batch(make_tasks(5, &counter), 0);
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        assert_eq!(plan.injected(FaultKind::ChildStall), 5);
    }

    #[test]
    fn no_helper_joins_a_drained_batch() {
        // Drain a batch completely, then hammer the helper-claim path: the
        // claim must fail from every thread and the helper count must end at
        // zero. The CAS claim re-checks `queued` after publishing the
        // increment, so a drained batch can never hold a claimed helper.
        let counter = Arc::new(AtomicI64::new(0));
        let batch = WsBatch::new(make_tasks(4, &counter), 3);
        while let Some(t) = batch.pop_owner() {
            let _g = WsFinishGuard(&batch);
            t();
        }
        assert!(!batch.wants_helpers());
        let mut joins = vec![];
        for _ in 0..4 {
            let batch = Arc::clone(&batch);
            joins.push(thread::spawn(move || {
                for _ in 0..1000 {
                    assert!(!batch.try_claim_helper(), "helper joined a drained batch");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(batch.helpers.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_batches_all_complete() {
        let pool = Arc::new(WorkStealingPool::new(2));
        let counter = Arc::new(AtomicI64::new(0));
        let mut joins = vec![];
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            joins.push(thread::spawn(move || {
                for _ in 0..5 {
                    pool.run_batch(make_tasks(8, &counter), 2);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 4 * 5 * 8);
    }

    #[test]
    fn sched_batch_event_reports_dispatch_shape() {
        use crate::trace::TestSink;

        let bus = TraceBus::new();
        let sink = Arc::new(TestSink::new());
        bus.subscribe(sink.clone());
        let pool = WorkStealingPool::with_instruments(
            2,
            FaultCtx::disabled(),
            Arc::new(Stats::new()),
            bus,
        );
        let counter = Arc::new(AtomicI64::new(0));
        pool.run_batch(make_tasks(6, &counter), 2);
        let events = sink.events();
        let batch_events: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SchedBatch { tasks, stolen, overflowed, .. } => {
                    Some((*tasks, *stolen, *overflowed))
                }
                _ => None,
            })
            .collect();
        assert_eq!(batch_events.len(), 1);
        let (tasks, stolen, overflowed) = batch_events[0];
        assert_eq!(tasks, 6);
        assert!(stolen <= 6);
        assert_eq!(overflowed, 0);
    }
}
