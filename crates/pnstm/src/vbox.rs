//! Versioned transactional boxes.
//!
//! A [`VBox<T>`] is the unit of transactional state: a handle to a chain of
//! `(version, value)` pairs ordered by the global version clock. Reads select
//! the newest entry whose version is `<=` the reader's snapshot, so readers
//! never block writers and vice versa.

use parking_lot::RwLock;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::mem::VersionHeapGauge;
use crate::TxValue;

/// Unique identifier of a box, assigned at creation.
pub type BoxId = u64;

/// SplitMix64 finalizer over a box id. The avalanche source for every
/// id-derived hash on the read path ([`filter_bits`], the nest-index bucket);
/// the commit path keeps its own copy in [`crate::stripes::stripe_of`] so the
/// two stay independently documented.
#[inline]
pub(crate) fn mix_id(id: BoxId) -> u64 {
    let mut z = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The box's signature in a 64-bit Bloom filter: two bit positions drawn from
/// independent slices of the mixed id. A filter word `f` may contain the box
/// iff `f & filter_bits(id) == filter_bits(id)`; with the handful of boxes a
/// typical write set or nest store holds, the false-positive rate stays in
/// the low percent range, and a false positive only costs the fallback
/// lookup the filter would otherwise skip.
#[inline]
pub(crate) fn filter_bits(id: BoxId) -> u64 {
    let h = mix_id(id);
    (1u64 << (h & 63)) | (1u64 << ((h >> 6) & 63))
}

/// Type-erased value as stored in write sets and nest stores.
pub(crate) type ErasedValue = Arc<dyn Any + Send + Sync>;

static NEXT_BOX_ID: AtomicU64 = AtomicU64::new(1);

/// Internal type-erased interface over [`VBox`] bodies, used by write sets,
/// validation, and garbage collection.
pub(crate) trait AnyVBox: Send + Sync {
    /// The box's unique id.
    fn id(&self) -> BoxId;
    /// Version of the newest installed entry.
    fn latest_version(&self) -> u64;
    /// Install `value` (which must be a `T` for this box's `T`) at `version`.
    ///
    /// Only called by a top-level committer serializing writers of this box
    /// — via the box's commit stripe lock on the striped path, or the global
    /// commit lock on the legacy path — with a strictly increasing
    /// `version` per box.
    fn install_erased(&self, value: &ErasedValue, version: u64);
    /// Drop versions that no live snapshot can read: keep everything newer
    /// than `watermark` plus the newest entry `<= watermark`. Returns the
    /// number of versions dropped.
    fn prune_below(&self, watermark: u64) -> usize;
    /// Number of retained versions (for GC tests and introspection).
    fn chain_len(&self) -> usize;
}

/// A read could not be served: every retained version of the box is newer
/// than the requested snapshot. Legal only for an evicted snapshot (the GC
/// pruned past an expired lease); anywhere else it is a watermark bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BelowFloor {
    /// Oldest version still retained by the box.
    pub oldest: u64,
}

#[derive(Debug)]
pub(crate) struct VBoxBody<T> {
    id: BoxId,
    /// Version chain, ascending by version. Never empty.
    chain: RwLock<Vec<(u64, T)>>,
    /// Version-heap gauge this box reports retained-entry deltas to: the
    /// owning STM instance's gauge for registered boxes, a detached private
    /// one for raw test boxes.
    gauge: Arc<VersionHeapGauge>,
}

/// Shallow bytes of one retained chain entry of a `T` box (the accounting
/// unit of [`VersionHeapGauge`]; heap payloads behind `T` are not traversed).
#[inline]
fn entry_bytes<T>() -> u64 {
    std::mem::size_of::<(u64, T)>() as u64
}

impl<T: TxValue> VBoxBody<T> {
    /// Read the newest value with version `<= snapshot`, or [`BelowFloor`]
    /// if every retained version is newer — which the caller must treat as a
    /// snapshot eviction (expired lease, GC pruned past it) or, when the
    /// snapshot was never evicted, a GC watermark bug.
    pub(crate) fn read_at(&self, snapshot: u64) -> Result<T, BelowFloor> {
        let chain = self.chain.read();
        match chain.binary_search_by(|(v, _)| v.cmp(&snapshot)) {
            Ok(i) => Ok(chain[i].1.clone()),
            Err(0) => Err(BelowFloor { oldest: chain.first().expect("chain never empty").0 }),
            Err(i) => Ok(chain[i - 1].1.clone()),
        }
    }

    /// The oldest retained value (the chain floor). Only meaningful for a
    /// doomed evicted-snapshot read, which needs *a* `T` to keep the body
    /// running to its abort point.
    pub(crate) fn read_floor(&self) -> T {
        self.chain.read().first().expect("chain never empty").1.clone()
    }
}

impl<T> Drop for VBoxBody<T> {
    fn drop(&mut self) {
        let len = self.chain.read().len() as u64;
        self.gauge.sub(len, len * entry_bytes::<T>());
    }
}

impl<T: TxValue> AnyVBox for VBoxBody<T> {
    fn id(&self) -> BoxId {
        self.id
    }

    fn latest_version(&self) -> u64 {
        let chain = self.chain.read();
        chain.last().expect("chain never empty").0
    }

    fn install_erased(&self, value: &ErasedValue, version: u64) {
        let v: &T = value
            .downcast_ref::<T>()
            .expect("write-set entry type mismatch: value does not match box type");
        let mut chain = self.chain.write();
        let newest = chain.last().expect("chain never empty").0;
        assert!(
            version > newest,
            "vbox {}: install version {} not newer than {}",
            self.id,
            version,
            newest
        );
        chain.push((version, v.clone()));
        drop(chain);
        self.gauge.add(1, entry_bytes::<T>());
    }

    fn prune_below(&self, watermark: u64) -> usize {
        let mut chain = self.chain.write();
        // Index of the newest entry with version <= watermark; everything
        // strictly before it is unreadable by any live or future snapshot.
        let keep_from = match chain.binary_search_by(|(v, _)| v.cmp(&watermark)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        if keep_from > 0 {
            chain.drain(..keep_from);
        }
        drop(chain);
        if keep_from > 0 {
            self.gauge.sub(keep_from as u64, keep_from as u64 * entry_bytes::<T>());
        }
        keep_from
    }

    fn chain_len(&self) -> usize {
        self.chain.read().len()
    }
}

/// A transactional memory cell holding values of type `T`.
///
/// `VBox` is a cheap-to-clone handle (an `Arc` internally); clones refer to
/// the same cell. Boxes are created through [`crate::Stm::new_vbox`] and read
/// or written inside transactions via [`crate::Txn::read`] /
/// [`crate::Txn::write`].
pub struct VBox<T> {
    pub(crate) body: Arc<VBoxBody<T>>,
}

impl<T> Clone for VBox<T> {
    fn clone(&self) -> Self {
        Self { body: Arc::clone(&self.body) }
    }
}

impl<T: TxValue> VBox<T> {
    /// Create a detached box with `initial` installed at version 0,
    /// reporting retained-entry accounting to a private gauge.
    ///
    /// Crate-internal: users go through [`crate::Stm::new_vbox`], which also
    /// registers the box for garbage collection and attaches the instance's
    /// shared gauge.
    #[cfg(test)]
    pub(crate) fn new_raw(initial: T) -> Self {
        Self::new_raw_gauged(initial, Arc::new(VersionHeapGauge::new()))
    }

    /// [`VBox::new_raw`] with an explicit [`VersionHeapGauge`] to report
    /// retained-entry deltas to (the STM instance's gauge).
    pub(crate) fn new_raw_gauged(initial: T, gauge: Arc<VersionHeapGauge>) -> Self {
        let id = NEXT_BOX_ID.fetch_add(1, Ordering::Relaxed);
        gauge.add(1, entry_bytes::<T>());
        Self { body: Arc::new(VBoxBody { id, chain: RwLock::new(vec![(0, initial)]), gauge }) }
    }

    /// The box's unique id.
    pub fn id(&self) -> BoxId {
        self.body.id
    }

    /// Number of retained versions (introspection/testing).
    pub fn version_count(&self) -> usize {
        self.body.chain_len()
    }

    pub(crate) fn as_any(&self) -> Arc<dyn AnyVBox> {
        self.body.clone()
    }
}

impl<T: TxValue> std::fmt::Debug for VBox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let chain = self.body.chain.read();
        f.debug_struct("VBox")
            .field("id", &self.body.id)
            .field("versions", &chain.len())
            .field("latest", chain.last().map(|(v, _)| v).unwrap_or(&0))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn erase<T: TxValue>(v: T) -> ErasedValue {
        Arc::new(v)
    }

    #[test]
    fn read_at_selects_snapshot_version() {
        let b = VBox::new_raw(10i32);
        b.body.install_erased(&erase(20i32), 5);
        b.body.install_erased(&erase(30i32), 9);
        assert_eq!(b.body.read_at(0), Ok(10));
        assert_eq!(b.body.read_at(4), Ok(10));
        assert_eq!(b.body.read_at(5), Ok(20));
        assert_eq!(b.body.read_at(8), Ok(20));
        assert_eq!(b.body.read_at(9), Ok(30));
        assert_eq!(b.body.read_at(u64::MAX), Ok(30));
    }

    #[test]
    fn latest_version_tracks_installs() {
        let b = VBox::new_raw(0u8);
        assert_eq!(b.body.latest_version(), 0);
        b.body.install_erased(&erase(1u8), 3);
        assert_eq!(b.body.latest_version(), 3);
    }

    #[test]
    #[should_panic(expected = "not newer")]
    fn install_must_be_monotone() {
        let b = VBox::new_raw(0u8);
        b.body.install_erased(&erase(1u8), 2);
        b.body.install_erased(&erase(2u8), 2);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn install_wrong_type_panics() {
        let b = VBox::new_raw(0u8);
        b.body.install_erased(&erase("oops".to_string()), 1);
    }

    #[test]
    fn prune_keeps_watermark_readable() {
        let b = VBox::new_raw(0i32);
        for (i, ver) in [2u64, 4, 6, 8].iter().enumerate() {
            b.body.install_erased(&erase(i as i32 + 1), *ver);
        }
        assert_eq!(b.version_count(), 5);
        // Watermark 5: oldest live snapshot is at version 5, which reads the
        // entry installed at 4. Entries at 0 and 2 are unreachable.
        assert_eq!(b.body.prune_below(5), 2);
        assert_eq!(b.version_count(), 3);
        assert_eq!(b.body.read_at(5), Ok(2));
        assert_eq!(b.body.read_at(8), Ok(4));
    }

    #[test]
    fn prune_with_low_watermark_is_noop() {
        let b = VBox::new_raw(0i32);
        b.body.install_erased(&erase(1), 4);
        assert_eq!(b.body.prune_below(0), 0);
        assert_eq!(b.version_count(), 2);
    }

    #[test]
    fn read_below_oldest_reports_the_floor() {
        let b = VBox::new_raw(0i32);
        b.body.install_erased(&erase(1), 4);
        b.body.prune_below(10);
        // Only the version-4 entry remains; snapshot 3 cannot be served.
        assert_eq!(b.body.read_at(3), Err(BelowFloor { oldest: 4 }));
    }

    #[test]
    fn gauge_tracks_install_prune_and_drop() {
        let gauge = Arc::new(VersionHeapGauge::new());
        let per = std::mem::size_of::<(u64, i32)>() as u64;
        let b = VBox::new_raw_gauged(0i32, Arc::clone(&gauge));
        assert_eq!(gauge.retained_versions(), 1);
        assert_eq!(gauge.retained_bytes(), per);
        b.body.install_erased(&erase(1), 2);
        b.body.install_erased(&erase(2), 4);
        assert_eq!(gauge.retained_versions(), 3);
        assert_eq!(gauge.retained_bytes(), 3 * per);
        b.body.prune_below(10);
        assert_eq!(gauge.retained_versions(), 1);
        drop(b);
        assert_eq!(gauge.retained_versions(), 0);
        assert_eq!(gauge.retained_bytes(), 0);
    }

    #[test]
    fn filter_bits_are_stable_and_sparse() {
        let b = VBox::new_raw(0i32);
        let bits = filter_bits(b.id());
        assert_eq!(bits, filter_bits(b.id()), "pure function of the id");
        let set = bits.count_ones();
        assert!((1..=2).contains(&set), "two hashed positions (may collide): {set}");
        // Membership algebra: a filter containing exactly this box admits it
        // and the empty filter excludes it.
        assert_eq!(bits & filter_bits(b.id()), filter_bits(b.id()));
        let empty = 0u64;
        assert_ne!(empty & bits, bits);
    }

    #[test]
    fn ids_are_unique() {
        let a = VBox::new_raw(0);
        let b = VBox::new_raw(0);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn clone_aliases_same_cell() {
        let a = VBox::new_raw(1i32);
        let b = a.clone();
        a.body.install_erased(&erase(7), 1);
        assert_eq!(b.body.read_at(1), Ok(7));
        assert_eq!(a.id(), b.id());
    }
}
