//! Per-parent nesting context: the nest clock, the lock-free nest index of
//! child-committed tentative versions, and the merged read set.
//!
//! Closed nesting means a child's writes become visible *to its siblings*
//! when the child commits into the parent, and reach main memory only when
//! the top-level ancestor commits. Each transaction that spawns children owns
//! a [`NestCtx`]:
//!
//! * `clock` — a tree-local version counter. A child snapshots it at begin
//!   (its *cap*) and at commit validates that no sibling installed a newer
//!   version of any box it read.
//! * `index` — tentative versions `(nest_version, value)` installed by
//!   committed children, ordered per box. Readable **without any lock**; see
//!   below.
//! * `merged_rs` — the union of committed children's read sets; validated
//!   again one level up when this transaction itself commits.
//!
//! # Lock-free read protocol
//!
//! The index is a fixed array of bucket head pointers; each bucket is a
//! singly-linked list of per-box chains, and each chain is a singly-linked
//! list of version nodes in **descending** version order. All mutation is
//! single-writer: nested commits serialize on [`NestCtx::commit_mx`], and
//! every pointer a reader can follow is published with a `Release` store
//! (paired with `Acquire` loads on the reader side). Nodes are only freed
//! when the whole index drops — a `NestCtx` lives for one `parallel()` batch
//! — so readers never race reclamation. This argument is scheduler-agnostic:
//! whichever [`crate::sched::Scheduler`] executes the batch (mutex pool
//! helpers, work-stealing thieves, or the parent thread itself), the
//! batch-drain barrier in `run_batch` is what bounds every reader's lifetime
//! to the index's, and sibling commits still serialize on `commit_mx`.
//!
//! Visibility contract: a nested commit **installs its nodes first and
//! publishes the nest clock after** ([`NestCtx::publish`], `Release`). A
//! child whose cap (an `Acquire` read of the clock) is `>= v` is therefore
//! guaranteed to find every node of commit `v` — the pairing the former
//! store mutex used to provide by exclusion. A reader may transiently see
//! nodes *newer* than its cap (installed but not yet published); the
//! cap-bounded lookup skips them by version, so they are invisible, exactly
//! as required.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use super::sets::{ReadSet, WsEntry};
use crate::vbox::{filter_bits, mix_id, AnyVBox, BoxId, ErasedValue};

/// Buckets in a [`NestIndex`] (power of two). A nest index holds the boxes
/// written by one batch of children — typically a handful — so 64 buckets
/// keep chains at ~1 node while the array stays one cache line of pointers
/// per 8 buckets.
const NEST_BUCKETS: usize = 64;

#[inline]
fn bucket_of(id: BoxId) -> usize {
    // Use a different slice of the mixed id than `filter_bits` does, so
    // bucket collisions and filter collisions stay independent.
    (mix_id(id) >> 12) as usize & (NEST_BUCKETS - 1)
}

/// One tentative version of one box. `older` points at the next-lower
/// version of the same box (descending chain); owned by the index, freed in
/// [`NestIndex::drop`].
struct VersionNode {
    version: u32,
    value: ErasedValue,
    older: *const VersionNode,
}

/// Per-box chain head. `next` links chains within a bucket.
struct ChainNode {
    id: BoxId,
    vbox: Arc<dyn AnyVBox>,
    /// Newest version; readers walk `Acquire`-loaded heads downward.
    newest: AtomicPtr<VersionNode>,
    next: *const ChainNode,
}

/// Append-only, capped-lookup version index readable without locks.
///
/// Single writer (the committer holding [`NestCtx::commit_mx`]), any number
/// of concurrent readers.
pub(crate) struct NestIndex {
    buckets: [AtomicPtr<ChainNode>; NEST_BUCKETS],
    /// Bloom filter ([`filter_bits`]) over every installed box id, so readers
    /// skip the bucket walk on the common miss. Or'ed before the clock
    /// publish, hence visible to any reader whose cap covers the install.
    filter: AtomicU64,
}

// SAFETY: the raw pointers reference heap nodes that are (a) published only
// via Release stores after full initialization, (b) mutated only by the
// single writer serialized on the owning `NestCtx::commit_mx`, and (c) freed
// only in `Drop` with exclusive access. `ChainNode`/`VersionNode` payloads
// (`Arc<dyn AnyVBox>`, `ErasedValue`) are themselves `Send + Sync`.
unsafe impl Send for NestIndex {}
unsafe impl Sync for NestIndex {}

impl NestIndex {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            filter: AtomicU64::new(0),
        }
    }

    /// The Bloom filter word over every installed box id.
    #[inline]
    pub(crate) fn filter(&self) -> u64 {
        self.filter.load(Ordering::Relaxed)
    }

    fn find_chain(&self, id: BoxId) -> Option<&ChainNode> {
        let mut p = self.buckets[bucket_of(id)].load(Ordering::Acquire) as *const ChainNode;
        while !p.is_null() {
            // SAFETY: non-null chain pointers are fully initialized before
            // their Release publication and live until the index drops.
            let node = unsafe { &*p };
            if node.id == id {
                return Some(node);
            }
            p = node.next;
        }
        None
    }

    /// Newest value for `id` with nest version `<= cap`, lock-free.
    pub(crate) fn lookup(&self, id: BoxId, cap: u32) -> Option<ErasedValue> {
        let chain = self.find_chain(id)?;
        let mut p = chain.newest.load(Ordering::Acquire) as *const VersionNode;
        while !p.is_null() {
            // SAFETY: as in `find_chain`; version nodes are immutable once
            // published.
            let node = unsafe { &*p };
            if node.version <= cap {
                return Some(Arc::clone(&node.value));
            }
            p = node.older;
        }
        None
    }

    /// Newest nest version recorded for `id` with version `<= cap` (version
    /// only, for visibility assertions in tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn latest_at(&self, id: BoxId, cap: u32) -> Option<u32> {
        let chain = self.find_chain(id)?;
        let mut p = chain.newest.load(Ordering::Acquire) as *const VersionNode;
        while !p.is_null() {
            let node = unsafe { &*p };
            if node.version <= cap {
                return Some(node.version);
            }
            p = node.older;
        }
        None
    }

    /// Newest nest version recorded for `id` (0 if never written in this
    /// nest; nest versions start at 1). Callers validating against this must
    /// hold [`NestCtx::commit_mx`] — it reads unpublished installs too.
    pub(crate) fn latest_version(&self, id: BoxId) -> u32 {
        match self.find_chain(id) {
            None => 0,
            Some(chain) => {
                let p = chain.newest.load(Ordering::Acquire);
                // Null only in the publication window of a brand-new chain,
                // which the commit lock excludes for validating callers.
                if p.is_null() {
                    0
                } else {
                    // SAFETY: as in `lookup`.
                    unsafe { (*p).version }
                }
            }
        }
    }

    /// Install `entry` at `version`. Caller holds [`NestCtx::commit_mx`]
    /// (single writer); concurrent lock-free readers are fine.
    ///
    /// # Panics
    /// Panics if `version` is not strictly newer than the newest installed
    /// version of the same box. A non-monotonic install would silently make
    /// the descending chain serve wrong values to capped lookups, so this is
    /// a hard invariant, enforced in release builds too.
    pub(crate) fn install(&self, entry: WsEntry, version: u32) {
        let id = entry.vbox.id();
        self.filter.fetch_or(filter_bits(id), Ordering::Relaxed);
        match self.find_chain(id) {
            Some(chain) => {
                // Writer-exclusive: Relaxed load of our own prior stores.
                let head = chain.newest.load(Ordering::Relaxed);
                if !head.is_null() {
                    // SAFETY: as in `lookup`.
                    let newest = unsafe { (*head).version };
                    assert!(
                        version > newest,
                        "nest index: non-monotonic install for box {id}: \
                         version {version} <= newest installed {newest} \
                         (nested commits must serialize on the commit lock)"
                    );
                }
                let node = Box::into_raw(Box::new(VersionNode {
                    version,
                    value: entry.value,
                    older: head,
                }));
                chain.newest.store(node, Ordering::Release);
            }
            None => {
                let vnode = Box::into_raw(Box::new(VersionNode {
                    version,
                    value: entry.value,
                    older: std::ptr::null(),
                }));
                let bucket = &self.buckets[bucket_of(id)];
                let head = bucket.load(Ordering::Relaxed);
                let cnode = Box::into_raw(Box::new(ChainNode {
                    id,
                    vbox: entry.vbox,
                    newest: AtomicPtr::new(vnode),
                    next: head,
                }));
                bucket.store(cnode, Ordering::Release);
            }
        }
    }

    /// The newest value of every box written in this nest, for merging into
    /// the enclosing level (or main memory, at the root). Call only when the
    /// index is quiescent (the batch has drained) or under the commit lock —
    /// otherwise an in-flight unpublished commit could be folded in.
    pub(crate) fn newest_entries(&self) -> Vec<WsEntry> {
        let mut out = Vec::new();
        for bucket in &self.buckets {
            let mut p = bucket.load(Ordering::Acquire) as *const ChainNode;
            while !p.is_null() {
                // SAFETY: as in `find_chain`.
                let chain = unsafe { &*p };
                let head = chain.newest.load(Ordering::Acquire);
                if !head.is_null() {
                    // SAFETY: as in `lookup`.
                    let value = unsafe { Arc::clone(&(*head).value) };
                    out.push(WsEntry { vbox: Arc::clone(&chain.vbox), value });
                }
                p = chain.next;
            }
        }
        out
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn written_box_count(&self) -> usize {
        let mut n = 0;
        for bucket in &self.buckets {
            let mut p = bucket.load(Ordering::Acquire) as *const ChainNode;
            while !p.is_null() {
                n += 1;
                // SAFETY: as in `find_chain`.
                p = unsafe { &*p }.next;
            }
        }
        n
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.written_box_count() == 0
    }
}

impl Drop for NestIndex {
    fn drop(&mut self) {
        for bucket in &mut self.buckets {
            let mut c = *bucket.get_mut();
            while !c.is_null() {
                // SAFETY: `&mut self` — no reader or writer can be live; each
                // node was created by `Box::into_raw` and is freed once.
                let chain = unsafe { Box::from_raw(c) };
                let mut v = chain.newest.load(Ordering::Relaxed);
                while !v.is_null() {
                    let vnode = unsafe { Box::from_raw(v) };
                    v = vnode.older as *mut VersionNode;
                }
                c = chain.next as *mut ChainNode;
            }
        }
    }
}

/// Nesting context owned by a transaction that spawned children.
pub(crate) struct NestCtx {
    clock: AtomicU32,
    /// Serializes nested commits: validation, install and clock publish
    /// happen while holding it. Readers do **not** take it on the lock-free
    /// path; [`crate::ReadPathMode::Locked`] takes it per ancestor probe to
    /// reproduce the legacy locked read path as a benchmark baseline.
    pub(crate) commit_mx: Mutex<()>,
    /// Taken per ancestor write-set probe in `ReadPathMode::Locked` only —
    /// stands in for the `Arc<Mutex<WriteSet>>` the snapshot scheme removed,
    /// so the baseline keeps the old path's lock count and sharing topology.
    pub(crate) ws_mx: Mutex<()>,
    /// Sibling-visible tentative versions (see module docs).
    pub(crate) index: NestIndex,
    /// Read sets of committed children, merged for revalidation one level up.
    pub(crate) merged_rs: Mutex<ReadSet>,
}

impl NestCtx {
    pub(crate) fn new() -> Self {
        Self {
            clock: AtomicU32::new(0),
            commit_mx: Mutex::new(()),
            ws_mx: Mutex::new(()),
            index: NestIndex::new(),
            merged_rs: Mutex::new(ReadSet::new()),
        }
    }

    /// Current published nest version; children snapshot this at begin. The
    /// `Acquire` pairs with the `Release` in [`NestCtx::publish`], making
    /// every install at versions `<=` the returned cap visible.
    pub(crate) fn now(&self) -> u32 {
        self.clock.load(Ordering::Acquire)
    }

    /// The version the next nested commit installs at. Writer-exclusive:
    /// call only under [`NestCtx::commit_mx`].
    pub(crate) fn next_version(&self) -> u32 {
        self.clock.load(Ordering::Relaxed) + 1
    }

    /// Publish `version`: every install (and filter bit) stored before this
    /// call becomes visible to any reader that observes the new clock value.
    /// Writer-exclusive; the install-then-publish order is what lets readers
    /// skip the store lock entirely.
    pub(crate) fn publish(&self, version: u32) {
        debug_assert_eq!(
            version,
            self.clock.load(Ordering::Relaxed) + 1,
            "nested commits serialize on commit_mx"
        );
        self.clock.store(version, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vbox::VBox;
    use std::sync::Arc;

    fn entry(b: &VBox<i32>, v: i32) -> WsEntry {
        WsEntry { vbox: b.as_any(), value: Arc::new(v) }
    }

    fn as_i32(v: &ErasedValue) -> i32 {
        *v.downcast_ref::<i32>().unwrap()
    }

    #[test]
    fn index_lookup_respects_cap() {
        let b = VBox::new_raw(0);
        let s = NestIndex::new();
        s.install(entry(&b, 10), 1);
        s.install(entry(&b, 20), 3);
        assert!(s.lookup(b.id(), 0).is_none());
        assert_eq!(as_i32(&s.lookup(b.id(), 1).unwrap()), 10);
        assert_eq!(as_i32(&s.lookup(b.id(), 2).unwrap()), 10);
        assert_eq!(as_i32(&s.lookup(b.id(), 3).unwrap()), 20);
        assert_eq!(as_i32(&s.lookup(b.id(), u32::MAX).unwrap()), 20);
    }

    #[test]
    fn index_latest_version_zero_when_absent() {
        let s = NestIndex::new();
        assert_eq!(s.latest_version(42), 0);
        assert!(s.is_empty());
        assert_eq!(s.filter(), 0);
    }

    #[test]
    fn index_newest_entries_take_last() {
        let a = VBox::new_raw(0);
        let b = VBox::new_raw(0);
        let s = NestIndex::new();
        s.install(entry(&a, 1), 1);
        s.install(entry(&a, 2), 2);
        s.install(entry(&b, 9), 2);
        assert_eq!(s.written_box_count(), 2);
        let mut newest: Vec<i32> = s.newest_entries().iter().map(|e| as_i32(&e.value)).collect();
        newest.sort();
        assert_eq!(newest, vec![2, 9]);
    }

    #[test]
    fn index_filter_admits_installed_boxes() {
        let boxes: Vec<VBox<i32>> = (0..6).map(|_| VBox::new_raw(0)).collect();
        let s = NestIndex::new();
        for (i, b) in boxes.iter().enumerate() {
            s.install(entry(b, i as i32), i as u32 + 1);
        }
        for b in &boxes {
            let bits = filter_bits(b.id());
            assert_eq!(s.filter() & bits, bits, "no false negatives");
        }
    }

    #[test]
    fn colliding_bucket_chains_stay_separate() {
        // Force many boxes through the 64 buckets; with 200 boxes every
        // bucket holds multiple chains, exercising the chain walk.
        let boxes: Vec<VBox<i32>> = (0..200).map(|_| VBox::new_raw(0)).collect();
        let s = NestIndex::new();
        for (i, b) in boxes.iter().enumerate() {
            s.install(entry(b, i as i32), i as u32 + 1);
        }
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(as_i32(&s.lookup(b.id(), u32::MAX).unwrap()), i as i32);
            assert_eq!(s.latest_version(b.id()), i as u32 + 1);
        }
        assert_eq!(s.written_box_count(), 200);
    }

    #[test]
    #[should_panic(expected = "non-monotonic install")]
    fn non_monotonic_install_panics_in_release_too() {
        let b = VBox::new_raw(0);
        let s = NestIndex::new();
        s.install(entry(&b, 1), 3);
        s.install(entry(&b, 2), 3); // same version: protocol corruption
    }

    #[test]
    #[should_panic(expected = "non-monotonic install")]
    fn regressing_install_panics() {
        let b = VBox::new_raw(0);
        let s = NestIndex::new();
        s.install(entry(&b, 1), 5);
        s.install(entry(&b, 2), 4);
    }

    #[test]
    fn ctx_clock_publish_sequences() {
        let ctx = NestCtx::new();
        assert_eq!(ctx.now(), 0);
        assert_eq!(ctx.next_version(), 1);
        ctx.publish(1);
        assert_eq!(ctx.now(), 1);
        assert_eq!(ctx.next_version(), 2);
        ctx.publish(2);
        assert_eq!(ctx.now(), 2);
    }

    /// The loom-style check of the snapshot publish/read pair, run as a
    /// seeded schedule-perturbation stress (loom itself is not vendored):
    /// a committer thread installs version v and only then publishes v,
    /// with per-seed jitter between the two steps; readers continuously
    /// snapshot a cap and assert the capped lookup serves exactly version
    /// cap. A publish-before-install reordering (the bug this protocol
    /// exists to prevent) fails the assertion within a few schedules.
    #[test]
    fn publish_read_pair_never_misses_capped_installs() {
        use std::sync::atomic::AtomicBool;

        for seed in 0..12u64 {
            let ctx = Arc::new(NestCtx::new());
            let b = VBox::new_raw(0i32);
            let id = b.id();
            let stop = Arc::new(AtomicBool::new(false));

            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let ctx = Arc::clone(&ctx);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            let cap = ctx.now();
                            if cap > 0 {
                                // Published cap ⇒ installs <= cap visible; the
                                // single box is written once per version, so
                                // the capped lookup must land exactly on cap.
                                let got = ctx.index.latest_at(id, cap);
                                assert_eq!(
                                    got,
                                    Some(cap),
                                    "reader with cap {cap} missed a published install"
                                );
                            }
                        }
                    })
                })
                .collect();

            let spin = crate::vbox::mix_id(seed) % 300;
            for v in 1..=400u32 {
                let _g = ctx.commit_mx.lock();
                let version = ctx.next_version();
                assert_eq!(version, v);
                ctx.index.install(entry(&b, v as i32), version);
                // Seeded jitter inside the install→publish window, where a
                // torn protocol would be observable.
                for _ in 0..spin {
                    std::hint::spin_loop();
                }
                ctx.publish(version);
            }

            stop.store(true, Ordering::Release);
            for r in readers {
                r.join().unwrap();
            }
        }
    }
}
