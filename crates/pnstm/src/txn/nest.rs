//! Per-parent nesting context: the nest clock, the nest store of
//! child-committed tentative versions, and the merged read set.
//!
//! Closed nesting means a child's writes become visible *to its siblings*
//! when the child commits into the parent, and reach main memory only when
//! the top-level ancestor commits. Each transaction that spawns children owns
//! a [`NestCtx`]:
//!
//! * `clock` — a tree-local version counter. A child snapshots it at begin
//!   (its *cap*) and at commit validates that no sibling installed a newer
//!   version of any box it read.
//! * `store` — tentative versions `(nest_version, value)` installed by
//!   committed children, ordered per box.
//! * `merged_rs` — the union of committed children's read sets; validated
//!   again one level up when this transaction itself commits.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

use super::sets::{ReadSet, WsEntry};
use crate::vbox::{BoxId, ErasedValue};

/// Tentative versions committed by children of one transaction.
#[derive(Default)]
pub(crate) struct NestStore {
    map: HashMap<BoxId, Vec<(u32, WsEntry)>>,
}

impl NestStore {
    /// Newest value for `id` with nest version `<= cap`.
    pub(crate) fn lookup(&self, id: BoxId, cap: u32) -> Option<ErasedValue> {
        let versions = self.map.get(&id)?;
        versions.iter().rev().find(|(v, _)| *v <= cap).map(|(_, e)| std::sync::Arc::clone(&e.value))
    }

    /// Newest nest version recorded for `id` (0 if never written in this
    /// nest; nest versions start at 1).
    pub(crate) fn latest_version(&self, id: BoxId) -> u32 {
        self.map.get(&id).and_then(|v| v.last()).map(|(v, _)| *v).unwrap_or(0)
    }

    /// Install `entry` at `version` (strictly newer than existing versions of
    /// the same box — enforced by the caller holding the store lock).
    pub(crate) fn install(&mut self, entry: WsEntry, version: u32) {
        let versions = self.map.entry(entry.vbox.id()).or_default();
        debug_assert!(versions.last().map(|(v, _)| *v < version).unwrap_or(true));
        versions.push((version, entry));
    }

    /// The newest value of every box written in this nest, for merging into
    /// the enclosing level (or main memory, at the root).
    pub(crate) fn newest_entries(&self) -> impl Iterator<Item = &WsEntry> {
        self.map.values().map(|v| &v.last().expect("version list never empty").1)
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn written_box_count(&self) -> usize {
        self.map.len()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Nesting context owned by a transaction that spawned children.
pub(crate) struct NestCtx {
    clock: AtomicU32,
    /// Doubles as the nested-commit lock: validation + clock tick + install
    /// happen while holding it.
    pub(crate) store: Mutex<NestStore>,
    /// Read sets of committed children, merged for revalidation one level up.
    pub(crate) merged_rs: Mutex<ReadSet>,
}

impl NestCtx {
    pub(crate) fn new() -> Self {
        Self {
            clock: AtomicU32::new(0),
            store: Mutex::new(NestStore::default()),
            merged_rs: Mutex::new(ReadSet::new()),
        }
    }

    /// Current nest version; children snapshot this at begin.
    pub(crate) fn now(&self) -> u32 {
        self.clock.load(Ordering::Acquire)
    }

    /// Advance the nest clock (called under the store lock).
    pub(crate) fn tick(&self) -> u32 {
        self.clock.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vbox::VBox;
    use std::sync::Arc;

    fn entry(b: &VBox<i32>, v: i32) -> WsEntry {
        WsEntry { vbox: b.as_any(), value: Arc::new(v) }
    }

    fn as_i32(v: &ErasedValue) -> i32 {
        *v.downcast_ref::<i32>().unwrap()
    }

    #[test]
    fn store_lookup_respects_cap() {
        let b = VBox::new_raw(0);
        let mut s = NestStore::default();
        s.install(entry(&b, 10), 1);
        s.install(entry(&b, 20), 3);
        assert!(s.lookup(b.id(), 0).is_none());
        assert_eq!(as_i32(&s.lookup(b.id(), 1).unwrap()), 10);
        assert_eq!(as_i32(&s.lookup(b.id(), 2).unwrap()), 10);
        assert_eq!(as_i32(&s.lookup(b.id(), 3).unwrap()), 20);
        assert_eq!(as_i32(&s.lookup(b.id(), u32::MAX).unwrap()), 20);
    }

    #[test]
    fn store_latest_version_zero_when_absent() {
        let s = NestStore::default();
        assert_eq!(s.latest_version(42), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn store_newest_entries_take_last() {
        let a = VBox::new_raw(0);
        let b = VBox::new_raw(0);
        let mut s = NestStore::default();
        s.install(entry(&a, 1), 1);
        s.install(entry(&a, 2), 2);
        s.install(entry(&b, 9), 2);
        assert_eq!(s.written_box_count(), 2);
        let mut newest: Vec<i32> = s.newest_entries().map(|e| as_i32(&e.value)).collect();
        newest.sort();
        assert_eq!(newest, vec![2, 9]);
    }

    #[test]
    fn ctx_clock_ticks() {
        let ctx = NestCtx::new();
        assert_eq!(ctx.now(), 0);
        assert_eq!(ctx.tick(), 1);
        assert_eq!(ctx.tick(), 2);
        assert_eq!(ctx.now(), 2);
    }
}
