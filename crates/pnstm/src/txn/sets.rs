//! Read and write sets.

use std::collections::HashMap;
use std::sync::Arc;

use crate::stripes::stripe_of;
use crate::vbox::{filter_bits, AnyVBox, BoxId, ErasedValue};

/// One tentative write: the target box (type-erased) and the value.
#[derive(Clone)]
pub(crate) struct WsEntry {
    pub vbox: Arc<dyn AnyVBox>,
    pub value: ErasedValue,
}

/// The tentative writes of one transaction (top-level or nested).
///
/// Held as `Arc<WriteSet>` by its owning [`crate::Txn`]: the owner mutates it
/// copy-on-write (`Arc::make_mut` — in-place while it holds the only
/// reference, which is the entire life of a transaction outside `parallel()`)
/// and publishes the `Arc` as an immutable snapshot to its children, who read
/// it without any locking. `Clone` exists solely to back that copy-on-write.
#[derive(Default, Clone)]
pub(crate) struct WriteSet {
    entries: HashMap<BoxId, WsEntry>,
    /// Bloom filter over the inserted box ids ([`filter_bits`] positions).
    /// Never reset by removal — entries are only ever inserted or the whole
    /// set cleared — so it always over-approximates membership.
    filter: u64,
}

impl WriteSet {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn insert(&mut self, vbox: Arc<dyn AnyVBox>, value: ErasedValue) {
        self.filter |= filter_bits(vbox.id());
        self.entries.insert(vbox.id(), WsEntry { vbox, value });
    }

    /// The Bloom filter word over every inserted box id. A probe whose
    /// [`filter_bits`] are not all present here can skip [`WriteSet::get`].
    pub(crate) fn filter(&self) -> u64 {
        self.filter
    }

    pub(crate) fn get(&self, id: BoxId) -> Option<ErasedValue> {
        self.entries.get(&id).map(|e| Arc::clone(&e.value))
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &WsEntry> {
        self.entries.values()
    }

    /// The stripes this write set touches, sorted and deduplicated — the
    /// canonical acquisition order of the striped commit path.
    pub(crate) fn stripe_footprint(&self) -> Vec<usize> {
        let mut stripes: Vec<usize> = self.entries.keys().map(|&id| stripe_of(id)).collect();
        stripes.sort_unstable();
        stripes.dedup();
        stripes
    }

    /// Retained for the filter-reset contract (retry drivers now swap in a
    /// fresh `Arc<WriteSet>` instead of clearing in place).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.filter = 0;
    }
}

/// The boxes a transaction has read (outside its own write set).
///
/// Validation only needs the box handle — multi-version reads are compared
/// against version clocks, not against the values that were read.
#[derive(Default)]
pub(crate) struct ReadSet {
    entries: HashMap<BoxId, Arc<dyn AnyVBox>>,
}

impl ReadSet {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(&mut self, vbox: Arc<dyn AnyVBox>) {
        self.entries.entry(vbox.id()).or_insert(vbox);
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (&BoxId, &Arc<dyn AnyVBox>)> {
        self.entries.iter()
    }

    pub(crate) fn merge_from(&mut self, other: &ReadSet) {
        for (id, vbox) in &other.entries {
            self.entries.entry(*id).or_insert_with(|| Arc::clone(vbox));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vbox::VBox;

    #[test]
    fn write_set_last_write_wins() {
        let b = VBox::new_raw(0i32);
        let mut ws = WriteSet::new();
        ws.insert(b.as_any(), Arc::new(1i32));
        ws.insert(b.as_any(), Arc::new(2i32));
        assert_eq!(ws.len(), 1);
        let v = ws.get(b.id()).unwrap();
        assert_eq!(*v.downcast_ref::<i32>().unwrap(), 2);
    }

    #[test]
    fn write_set_miss_returns_none() {
        let ws = WriteSet::new();
        assert!(ws.get(12345).is_none());
        assert!(ws.is_empty());
    }

    #[test]
    fn stripe_footprint_is_sorted_and_deduped() {
        let mut ws = WriteSet::new();
        for _ in 0..64 {
            let b = VBox::new_raw(0i32);
            ws.insert(b.as_any(), Arc::new(1i32));
        }
        let fp = ws.stripe_footprint();
        assert!(!fp.is_empty());
        assert!(fp.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        assert!(fp.iter().all(|&s| s < crate::stripes::STRIPE_COUNT));
    }

    #[test]
    fn write_set_filter_tracks_inserts_and_clears() {
        let mut ws = WriteSet::new();
        assert_eq!(ws.filter(), 0, "empty set admits nothing");
        let boxes: Vec<VBox<i32>> = (0..8).map(|_| VBox::new_raw(0)).collect();
        for b in &boxes {
            ws.insert(b.as_any(), Arc::new(1i32));
        }
        for b in &boxes {
            let bits = crate::vbox::filter_bits(b.id());
            assert_eq!(ws.filter() & bits, bits, "no false negatives for members");
        }
        ws.clear();
        assert_eq!(ws.filter(), 0, "clear resets the filter");
    }

    #[test]
    fn write_set_clone_snapshots_entries() {
        let b = VBox::new_raw(0i32);
        let mut ws = WriteSet::new();
        ws.insert(b.as_any(), Arc::new(1i32));
        let snap = ws.clone();
        ws.insert(b.as_any(), Arc::new(2i32));
        assert_eq!(*snap.get(b.id()).unwrap().downcast_ref::<i32>().unwrap(), 1);
        assert_eq!(*ws.get(b.id()).unwrap().downcast_ref::<i32>().unwrap(), 2);
    }

    #[test]
    fn read_set_dedups() {
        let b = VBox::new_raw(0i32);
        let mut rs = ReadSet::new();
        rs.record(b.as_any());
        rs.record(b.as_any());
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn read_set_merge() {
        let a = VBox::new_raw(0i32);
        let b = VBox::new_raw(0i32);
        let mut r1 = ReadSet::new();
        r1.record(a.as_any());
        let mut r2 = ReadSet::new();
        r2.record(a.as_any());
        r2.record(b.as_any());
        r1.merge_from(&r2);
        assert_eq!(r1.len(), 2);
    }
}
