//! Transactions: the unified [`Txn`] type used at every nesting depth, the
//! read/write machinery, and the nested/top-level commit protocols.
//!
//! # The lock-free hot read path
//!
//! `Txn::read` is the hottest operation in the system and takes **no lock**
//! in the common case:
//!
//! * **Own write set** — a `Txn` is single-threaded between `parallel()`
//!   calls, so its write set is a plain map behind an `Arc` mutated
//!   copy-on-write ([`std::sync::Arc::make_mut`]). While the transaction
//!   runs alone it holds the only reference and mutates in place; when it
//!   suspends in `parallel()` it publishes the `Arc` as an immutable
//!   snapshot into its children's scope. Children read the snapshot with a
//!   plain map probe. After the join the children are gone, the snapshot
//!   handle is dropped, and the owner is back to sole ownership — the clone
//!   inside `make_mut` never actually runs in the normal lifecycle.
//! * **Ancestor levels** — each scope level carries a 64-bit Bloom filter
//!   (the published write-set filter united with the level's nest-index
//!   filter). A read probes the filter first and skips the level entirely on
//!   the common miss; only a filter hit walks the lock-free
//!   [`nest::NestIndex`] and the write-set snapshot.
//! * **Global snapshot** — multi-version chains, unchanged.
//!
//! The retained [`crate::ReadPathMode::Locked`] mode routes the same lookups
//! through the nest commit lock and a per-level write-set lock — the exact
//! locking discipline this refactor removed — as the differential baseline
//! for the `read_scaling` bench and the visibility proptests.

pub(crate) mod nest;
pub(crate) mod sets;

use parking_lot::Mutex;
use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::{TxError, TxResult};
use crate::runtime::StmShared;
use crate::vbox::{filter_bits, BelowFloor, VBox};
use crate::TxValue;
use nest::NestCtx;
use sets::{ReadSet, WriteSet};

/// A child-transaction body: called (and re-called, on sibling conflicts)
/// with a fresh nested [`Txn`].
pub type ChildTask<R> = Box<dyn FnMut(&mut Txn) -> TxResult<R> + Send + 'static>;

/// Convenience constructor for a [`ChildTask`]; lets call sites avoid
/// spelling the boxed-closure type.
///
/// ```
/// # use pnstm::{child, ChildTask};
/// let task: ChildTask<i32> = child(|_tx| Ok(42));
/// ```
pub fn child<R, F>(f: F) -> ChildTask<R>
where
    F: FnMut(&mut Txn) -> TxResult<R> + Send + 'static,
{
    Box::new(f)
}

/// One level of the ancestor chain visible to a nested transaction.
///
/// `ws` is the ancestor's write set as published at the `parallel()` call
/// that spawned this subtree — an immutable snapshot, read without locking
/// (`ws_filter` is its Bloom filter, captured once at publication). `cap` is
/// the nest-clock snapshot this transaction took of that level: only sibling
/// commits at versions `<= cap` are visible, and validation at commit checks
/// nothing newer appeared for any box this transaction read.
#[derive(Clone)]
pub(crate) struct ScopeEntry {
    pub(crate) ws: Arc<WriteSet>,
    pub(crate) ws_filter: u64,
    pub(crate) nest: Arc<NestCtx>,
    pub(crate) cap: u32,
}

/// Read-path counters local to one transaction attempt: plain integers on
/// the hot path, flushed to the shared [`crate::Stats`] once, when the
/// attempt's `Txn` drops.
#[derive(Clone, Copy, Default)]
struct ReadPathCounters {
    /// Ancestor-level probes the filter could not rule out.
    filter_hits: u64,
    /// Ancestor-level probes skipped entirely by the filter.
    filter_misses: u64,
    /// Reads that performed at least one ancestor fallback lookup.
    slow_path: u64,
}

/// A running transaction, top-level or nested.
///
/// Handed by reference to transaction bodies; see [`crate::Stm::atomic`] and
/// [`Txn::parallel`]. All reads observe the snapshot fixed at the top-level
/// begin plus the transaction tree's own tentative writes.
pub struct Txn {
    shared: Arc<StmShared>,
    /// Global snapshot version of the whole transaction tree.
    root_read_version: u64,
    /// Own tentative writes, mutated copy-on-write; published as an immutable
    /// snapshot to descendants at each `parallel()` call.
    ws: Arc<WriteSet>,
    /// Own reads (excluding own-write-set hits), plus the reads of committed
    /// children merged in at each `parallel()` join.
    rs: ReadSet,
    /// Ancestor chain, nearest first; empty for top-level transactions.
    scope: Vec<ScopeEntry>,
    /// 0 for top-level, parent depth + 1 for children.
    depth: u32,
    /// True when the instance runs `ReadPathMode::Locked` (cached from the
    /// config so the read path pays a field load, not a config match).
    locked_reads: bool,
    /// Stands in for the removed own-write-set mutex in `Locked` mode.
    own_ws_mx: Mutex<()>,
    reads: ReadPathCounters,
    /// Eviction flag of the root snapshot's lease registration (shared by
    /// the whole transaction tree; `None` for unleased contexts). Set by the
    /// GC watermark computation once the lease expired — see
    /// [`crate::clock::SnapshotRegistry`].
    evicted: Option<Arc<AtomicBool>>,
    /// Latched true once this attempt observed its snapshot's eviction (a
    /// below-floor read it had to paper over): the attempt must abort at
    /// commit regardless of what the flag reads later.
    doomed: bool,
}

impl Txn {
    pub(crate) fn top(
        shared: Arc<StmShared>,
        root_read_version: u64,
        evicted: Option<Arc<AtomicBool>>,
    ) -> Self {
        let locked_reads =
            matches!(shared.config().read_path, crate::runtime::ReadPathMode::Locked);
        Self {
            shared,
            root_read_version,
            ws: Arc::new(WriteSet::new()),
            rs: ReadSet::new(),
            scope: Vec::new(),
            depth: 0,
            locked_reads,
            own_ws_mx: Mutex::new(()),
            reads: ReadPathCounters::default(),
            evicted,
            doomed: false,
        }
    }

    fn nested(
        shared: Arc<StmShared>,
        root_read_version: u64,
        scope: Vec<ScopeEntry>,
        depth: u32,
        evicted: Option<Arc<AtomicBool>>,
    ) -> Self {
        let locked_reads =
            matches!(shared.config().read_path, crate::runtime::ReadPathMode::Locked);
        Self {
            shared,
            root_read_version,
            ws: Arc::new(WriteSet::new()),
            rs: ReadSet::new(),
            scope,
            depth,
            locked_reads,
            own_ws_mx: Mutex::new(()),
            reads: ReadPathCounters::default(),
            evicted,
            doomed: false,
        }
    }

    /// Whether the tree's snapshot has been evicted (lease expired, GC no
    /// longer honours it). Checked by the commit protocols and the retry
    /// drivers; true also once this attempt hit a below-floor read.
    pub(crate) fn snapshot_evicted(&self) -> bool {
        self.doomed || self.evicted.as_ref().is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// The global snapshot version this transaction tree reads at.
    pub fn root_version(&self) -> u64 {
        self.root_read_version
    }

    /// Nesting depth: 0 for top-level transactions.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Whether this is a nested (child) transaction.
    pub fn is_nested(&self) -> bool {
        self.depth > 0
    }

    /// Read the current value of `vbox` as seen by this transaction.
    ///
    /// Lookup order: own write set (which, after each `parallel()` join,
    /// already contains the newest values committed by this transaction's
    /// children) → each ancestor level, nearest first (that level's nest
    /// index up to the inherited cap, then its published write-set snapshot)
    /// → the global snapshot at the tree's read version. The common case is
    /// lock-free end to end: an own-set probe, one Bloom-filter word per
    /// ancestor level, and a multi-version chain read. Reads never block on
    /// or conflict with concurrent writers.
    pub fn read<T: TxValue>(&mut self, vbox: &VBox<T>) -> T {
        let id = vbox.id();
        // 1. Own write set (not recorded in the read set: reading your own
        //    write has no external dependency).
        if self.locked_reads {
            let _g = self.own_ws_mx.lock();
            if let Some(v) = self.ws.get(id) {
                return downcast_clone::<T>(&v);
            }
        } else if let Some(v) = self.ws.get(id) {
            return downcast_clone::<T>(&v);
        }
        // 2. Ancestor chain, nearest level first.
        if !self.scope.is_empty() {
            let bits = filter_bits(id);
            let mut probed = false;
            for level in 0..self.scope.len() {
                let entry = &self.scope[level];
                if !self.locked_reads {
                    // Level filter: the union of the published write-set
                    // filter and the live nest-index filter over-approximates
                    // everything this level could serve; a miss skips both
                    // probes. (The index filter is or'ed before each commit's
                    // clock publish, so it can't under-report anything our
                    // cap entitles us to see.)
                    let level_filter = entry.ws_filter | entry.nest.index.filter();
                    if level_filter & bits != bits {
                        self.reads.filter_misses += 1;
                        continue;
                    }
                    self.reads.filter_hits += 1;
                }
                if !probed {
                    probed = true;
                    self.reads.slow_path += 1;
                }
                // Within a level the nest index takes precedence over the
                // write-set snapshot: everything in the snapshot was written
                // before the level's current batch started, while index
                // entries are commits from the in-flight batch.
                //
                // Fault site (`ReadHold`): a slow ancestor probe. Locked mode
                // takes the stall while holding the level's commit lock, so
                // sibling reads through this level queue behind it; the
                // lock-free path just lengthens this one read.
                let store_hit = if self.locked_reads {
                    let _g = entry.nest.commit_mx.lock();
                    if let Some(action) =
                        self.shared.fault().inject(crate::fault::FaultKind::ReadHold)
                    {
                        action.stall();
                    }
                    entry.nest.index.lookup(id, entry.cap)
                } else {
                    if let Some(action) =
                        self.shared.fault().inject(crate::fault::FaultKind::ReadHold)
                    {
                        action.stall();
                    }
                    entry.nest.index.lookup(id, entry.cap)
                };
                if let Some(v) = store_hit {
                    self.rs.record(vbox.as_any());
                    return downcast_clone::<T>(&v);
                }
                let ws_hit = if self.locked_reads {
                    let _g = entry.nest.ws_mx.lock();
                    entry.ws.get(id)
                } else {
                    entry.ws.get(id)
                };
                if let Some(v) = ws_hit {
                    self.rs.record(vbox.as_any());
                    return downcast_clone::<T>(&v);
                }
            }
        }
        // 3. Global snapshot.
        self.rs.record(vbox.as_any());
        match vbox.body.read_at(self.root_read_version) {
            Ok(v) => v,
            Err(floor) => self.read_below_floor(vbox, floor),
        }
    }

    /// A global-snapshot read found every retained version newer than the
    /// tree's snapshot. For an evicted snapshot this is expected (the GC
    /// pruned past the expired lease): the attempt is doomed — it will abort
    /// at commit and the driver retries on a fresh snapshot — and the read is
    /// served from the oldest retained version so the body can run to its
    /// next abort point. (Such a read may be mutually inconsistent with
    /// earlier reads; the doomed attempt can never commit them.) Anywhere
    /// else it is a GC watermark bug: counted as a hard error and panicked,
    /// never masked.
    #[cold]
    fn read_below_floor<T: TxValue>(&mut self, vbox: &VBox<T>, floor: BelowFloor) -> T {
        if self.snapshot_evicted() {
            self.doomed = true;
            self.shared.stats().record_evicted_read();
            return vbox.body.read_floor();
        }
        self.shared.stats().record_read_below_floor();
        panic!(
            "vbox {}: no version <= snapshot {} (oldest retained: {}); GC invariant violated",
            vbox.id(),
            self.root_read_version,
            floor.oldest
        );
    }

    /// Tentatively write `value` to `vbox`. Takes effect for other
    /// transactions only when the top-level ancestor commits.
    pub fn write<T: TxValue>(&mut self, vbox: &VBox<T>, value: T) {
        // In-place while we hold the only reference (always, outside
        // `parallel()`); a clone would only ever run if a write raced a
        // published snapshot, which the suspend discipline rules out.
        Arc::make_mut(&mut self.ws).insert(vbox.as_any(), Arc::new(value));
    }

    /// Read-modify-write convenience: `write(f(read()))` and return the new
    /// value.
    pub fn modify<T: TxValue>(&mut self, vbox: &VBox<T>, f: impl FnOnce(T) -> T) -> T {
        let old = self.read(vbox);
        let new = f(old);
        self.write(vbox, new.clone());
        new
    }

    /// Create a new box from inside a transaction.
    ///
    /// The box's initial value is installed at version 0 (visible to every
    /// snapshot). This is safe under the standard publication discipline:
    /// other transactions can only discover the box through data that is
    /// itself updated transactionally.
    pub fn new_vbox<T: TxValue>(&mut self, initial: T) -> VBox<T> {
        self.shared.register_vbox(initial)
    }

    /// Abort the transaction without retry. Sugar for
    /// `return Err(TxError::UserAbort)` via `?`.
    pub fn abort<T>(&mut self) -> TxResult<T> {
        Err(TxError::UserAbort)
    }

    /// Number of boxes read / written so far (introspection and tests).
    pub fn footprint(&self) -> (usize, usize) {
        (self.rs.len(), self.ws.len())
    }

    /// Execute `tasks` as parallel nested (child) transactions and return
    /// their results in task order.
    ///
    /// At most `c` tasks run concurrently, where `c` is the per-tree nested
    /// limit currently configured on the [`crate::Throttle`] — the calling
    /// thread itself executes tasks alongside up to `c - 1` shared-pool
    /// workers, so `c = 1` degenerates to sequential (flat-nesting-like)
    /// execution. Each child retries automatically on sibling conflicts.
    ///
    /// Errors: the first task error in task order is returned. A
    /// [`TxError::UserAbort`] or exhausted child retry budget
    /// ([`TxError::Conflict`]) aborts the enclosing attempt; a panicking
    /// child is re-raised on this thread once the batch has drained.
    pub fn parallel<R: Send + 'static>(&mut self, tasks: Vec<ChildTask<R>>) -> TxResult<Vec<R>> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        // Each batch gets a fresh nest context; at join time the batch's
        // committed writes are folded into this transaction's write set and
        // the children's reads into its read set, so the transaction's own
        // sets always describe its complete tentative state.
        let nest = Arc::new(NestCtx::new());
        let c = self.shared.throttle().nested_limit();
        let helper_limit = c.saturating_sub(1);

        // The scope a child sees: this transaction (with a fresh cap taken at
        // child begin) followed by this transaction's own inherited scope.
        // This is the suspend-point snapshot publication: children share the
        // `Arc` and its filter, and this transaction does not touch `ws`
        // again until the join.
        let parent_entry_proto = ScopeEntry {
            ws: Arc::clone(&self.ws),
            ws_filter: self.ws.filter(),
            nest: Arc::clone(&nest),
            cap: 0,
        };
        let inherited: Vec<ScopeEntry> = self.scope.clone();

        let n_tasks = tasks.len();
        let (tx_results, rx_results) = crossbeam::channel::bounded(n_tasks);
        let panic_payload: Arc<Mutex<Option<Box<dyn Any + Send>>>> = Arc::new(Mutex::new(None));

        let wrapped: Vec<crate::sched::Task> = tasks
            .into_iter()
            .enumerate()
            .map(|(idx, mut body)| {
                let shared = Arc::clone(&self.shared);
                let root_rv = self.root_read_version;
                let depth = self.depth + 1;
                let parent_proto = parent_entry_proto.clone();
                let inherited = inherited.clone();
                let results = tx_results.clone();
                let panic_payload = Arc::clone(&panic_payload);
                let evicted = self.evicted.clone();
                Box::new(move || {
                    let outcome = run_child(
                        &shared,
                        root_rv,
                        depth,
                        &parent_proto,
                        &inherited,
                        evicted,
                        &mut body,
                        &panic_payload,
                    );
                    // The receiver outlives the batch, so send cannot fail.
                    let _ = results.send((idx, outcome));
                }) as crate::sched::Task
            })
            .collect();
        drop(tx_results);

        self.shared.pool().run_batch(wrapped, helper_limit);

        // The batch has drained: every child (and its scope clone) is gone.
        // Drop our own snapshot handle so the fold below mutates the write
        // set in place instead of cloning it.
        drop(parent_entry_proto);

        // Join: fold the batch's effects into this transaction. The index is
        // quiescent now, so it is safe to iterate without the commit lock.
        // Index entries override pre-batch write-set values (they are
        // newer); the children's merged reads become our reads, to be
        // revalidated at our own commit.
        {
            let ws = Arc::make_mut(&mut self.ws);
            for entry in nest.index.newest_entries() {
                ws.insert(entry.vbox, entry.value);
            }
            self.rs.merge_from(&nest.merged_rs.lock());
        }

        if let Some(payload) = panic_payload.lock().take() {
            panic::resume_unwind(payload);
        }

        let mut slots: Vec<Option<TxResult<R>>> = (0..n_tasks).map(|_| None).collect();
        for (idx, outcome) in rx_results.try_iter() {
            slots[idx] = Some(outcome);
        }
        let mut out = Vec::with_capacity(n_tasks);
        for slot in slots {
            out.push(slot.expect("every child task reports exactly once")?);
        }
        Ok(out)
    }

    /// Commit a nested transaction into its parent. Returns
    /// `Err(TxError::Conflict)` on a sibling conflict.
    fn commit_nested(&mut self) -> TxResult<()> {
        if self.snapshot_evicted() {
            self.doomed = true;
            return Err(TxError::Conflict);
        }
        let parent = self.scope.first().expect("nested txn has a parent scope");
        let commit_guard = parent.nest.commit_mx.lock();
        // Sibling validation: no sibling may have installed a newer version
        // of any box we read after our nest-clock snapshot. Committers
        // serialize on the commit lock, so the index is stable here.
        for (id, _) in self.rs.iter() {
            if parent.nest.index.latest_version(*id) > parent.cap {
                return Err(TxError::Conflict);
            }
        }
        if !self.ws.is_empty() {
            // Install first, publish the nest clock after: a sibling whose
            // cap covers this version must find every node of this commit
            // (the Release publish pairs with the Acquire cap read), which
            // is what lets sibling reads skip the commit lock entirely.
            let version = parent.nest.next_version();
            // The write set already contains everything our own children
            // committed (folded in at join time).
            for entry in self.ws.iter() {
                parent.nest.index.install(entry.clone(), version);
            }
            parent.nest.publish(version);
        }
        drop(commit_guard);
        // Merge reads (ours + our committed children's) upward for
        // revalidation at the parent's own commit.
        parent.nest.merged_rs.lock().merge_from(&self.rs);
        Ok(())
    }

    /// Commit a top-level transaction: validate the tree's reads and install
    /// the tree's writes at a fresh global version, via the commit path this
    /// STM instance was configured with.
    pub(crate) fn commit_top(&mut self) -> TxResult<()> {
        debug_assert_eq!(self.depth, 0, "commit_top on a nested transaction");
        // An evicted snapshot aborts at its commit point: the versions it
        // read may already be pruned, and committing would legitimize reads
        // the GC stopped protecting. The driver maps this conflict to an
        // eviction abort (fresh snapshot on retry).
        if self.snapshot_evicted() {
            self.doomed = true;
            return Err(TxError::Conflict);
        }
        match self.shared.config().commit_path {
            crate::runtime::CommitPath::Striped => self.commit_top_striped(),
            crate::runtime::CommitPath::GlobalLock => self.commit_top_global(),
        }
    }

    /// Striped commit (TL2-style, the default): lock the write set's stripes
    /// in canonical order, validate reads against per-stripe version stamps,
    /// reserve a commit version, install, publish.
    ///
    /// Serialization point: the version reservation, taken *while holding*
    /// every write-set stripe lock. Two committers that touch a common box
    /// serialize on its stripe lock, so their reservation order matches
    /// their per-box install order (the version chains stay sorted).
    /// Validation runs twice: a cheap pass before reserving — so the common
    /// conflict abort burns no clock version — and a mandatory pass after,
    /// because a committer with a *smaller* version could lock, install and
    /// release a stripe we read in the window between the first pass and our
    /// reservation.
    fn commit_top_striped(&mut self) -> TxResult<()> {
        let ws = Arc::clone(&self.ws);
        if ws.is_empty() {
            return Ok(()); // Read-only: serializable at its snapshot.
        }
        let shared = &self.shared;
        let table = shared.stripes();
        let footprint = ws.stripe_footprint();
        let contended = table.acquire_sorted(&footprint);
        shared.stats().record_stripe_locks(footprint.len() as u32, contended);
        let trace = shared.trace();
        if contended > 0 && trace.is_enabled() {
            trace.emit(crate::trace::TraceEvent::CommitStripeContention {
                stripes: footprint.len() as u32,
                contended,
                at_ns: crate::trace::now_ns(),
            });
        }
        // Fault site: stall while holding this commit's stripe locks — and
        // only those. Committers on disjoint stripes must keep flowing; only
        // a committer sharing one of our stripes waits out the stall. Sited
        // before the version reservation so a stalled commit cannot block
        // publication of concurrently reserved versions either.
        if let Some(action) = shared.fault().inject(crate::fault::FaultKind::CommitHold) {
            action.stall();
        }
        // Fault site: force a validation failure (synthetic abort storm).
        if shared.fault().inject(crate::fault::FaultKind::ValidationAbort).is_some() {
            table.release_aborted(&footprint);
            return Err(TxError::Conflict);
        }
        if !self.stripe_validate(&footprint) {
            self.note_stripe_false_conflict();
            table.release_aborted(&footprint);
            return Err(TxError::Conflict);
        }
        let version = shared.clock().reserve();
        if !self.stripe_validate(&footprint) {
            self.note_stripe_false_conflict();
            // The reserved version is already part of the visible sequence;
            // publish it as a no-op so the clock stays gap-free.
            shared.clock().publish(version);
            table.release_aborted(&footprint);
            return Err(TxError::Conflict);
        }
        // Install at the reserved version first and make it visible only
        // afterwards: a transaction beginning mid-commit must keep reading
        // the old snapshot. `publish` additionally waits for version - 1, so
        // a snapshot at V is guaranteed to see the writes of *every* commit
        // <= V, exactly as under the global lock.
        for entry in ws.iter() {
            entry.vbox.install_erased(&entry.value, version);
        }
        shared.clock().publish(version);
        table.release_committed(&footprint, version);
        Ok(())
    }

    /// Validate the whole tree's reads (children's reads were folded into
    /// ours at each join) against the stripe table: each read box's stripe
    /// must be unlocked (or held by this commit) with a stamp at or below
    /// our snapshot. Coarser than per-box validation — distinct boxes
    /// sharing a stripe can fail this spuriously — but never admits a stale
    /// read.
    fn stripe_validate(&self, held: &[usize]) -> bool {
        let table = self.shared.stripes();
        let rv = self.root_read_version;
        self.rs.iter().all(|(id, _)| table.read_valid(crate::stripes::stripe_of(*id), rv, held))
    }

    /// After a stripe-validation failure: if every read box is individually
    /// still at or below our snapshot, the abort was pure stripe-collision
    /// granularity — count it so the false-conflict rate is observable.
    fn note_stripe_false_conflict(&self) {
        let rv = self.root_read_version;
        if self.rs.iter().all(|(_, vbox)| vbox.latest_version() <= rv) {
            self.shared.stats().record_stripe_false_conflict();
        }
    }

    /// Global-lock commit: the original protocol, retained as the
    /// differential-testing oracle and bench baseline
    /// ([`crate::CommitPath::GlobalLock`]).
    fn commit_top_global(&mut self) -> TxResult<()> {
        let ws = Arc::clone(&self.ws);
        if ws.is_empty() {
            return Ok(()); // Read-only: serializable at its snapshot.
        }

        let _commit_guard = self.shared.commit_lock().lock();
        // Fault site: stall while *holding* the commit lock (serializes every
        // other committer behind the injected delay).
        if let Some(action) = self.shared.fault().inject(crate::fault::FaultKind::CommitHold) {
            action.stall();
        }
        // Fault site: force a validation failure (synthetic abort storm).
        if self.shared.fault().inject(crate::fault::FaultKind::ValidationAbort).is_some() {
            return Err(TxError::Conflict);
        }
        // Validate the whole tree's reads (children's reads were folded into
        // ours at each join).
        for (_, vbox) in self.rs.iter() {
            if vbox.latest_version() > self.root_read_version {
                return Err(TxError::Conflict);
            }
        }
        // Install at the *next* version first and publish the clock only
        // afterwards: a transaction beginning mid-commit must keep reading
        // the old snapshot. Ticking before installing would let it adopt the
        // new version number while some boxes still serve old values — and
        // then pass validation against data it never actually read.
        let version = self.shared.clock().now() + 1;
        for entry in ws.iter() {
            entry.vbox.install_erased(&entry.value, version);
        }
        let published = self.shared.clock().tick();
        debug_assert_eq!(published, version, "commit lock serializes clock ticks");
        Ok(())
    }
}

impl Drop for Txn {
    /// Flush the attempt's read-path counters to the shared stats (and the
    /// trace bus, when enabled). Every attempt runs on a fresh `Txn` — the
    /// retry drivers construct one per iteration — so this fires exactly
    /// once per attempt, on every exit path including panics.
    fn drop(&mut self) {
        let ReadPathCounters { filter_hits, filter_misses, slow_path } = self.reads;
        if filter_hits == 0 && filter_misses == 0 && slow_path == 0 {
            return;
        }
        self.shared.stats().record_read_path(filter_hits, filter_misses, slow_path);
        let trace = self.shared.trace();
        if trace.is_enabled() {
            trace.emit(crate::trace::TraceEvent::ReadPath {
                filter_hits,
                filter_misses,
                slow_path,
                at_ns: crate::trace::now_ns(),
            });
        }
    }
}

/// Run one child task to completion: retry on sibling conflicts (with a fresh
/// nest-clock cap each attempt), propagate user aborts, capture panics.
///
/// Between attempts the contention manager is consulted
/// ([`crate::cm::AbortSite::Nested`]): under the backoff/karma/greedy rungs
/// a losing child sleeps instead of hot-spinning its way through
/// `max_nested_retries` immediate re-executions against the same winner.
#[allow(clippy::too_many_arguments)]
fn run_child<R>(
    shared: &Arc<StmShared>,
    root_rv: u64,
    depth: u32,
    parent_proto: &ScopeEntry,
    inherited: &[ScopeEntry],
    evicted: Option<Arc<AtomicBool>>,
    body: &mut (dyn FnMut(&mut Txn) -> TxResult<R> + Send),
    panic_payload: &Arc<Mutex<Option<Box<dyn Any + Send>>>>,
) -> TxResult<R> {
    let max_retries = shared.config().max_nested_retries;
    let trace = shared.trace();
    if trace.is_enabled() {
        trace.emit(crate::trace::TraceEvent::TxBegin {
            kind: crate::stats::TxKind::Nested,
            at_ns: crate::trace::now_ns(),
        });
    }
    let mut cm_tx = shared.cm().begin_guard();
    let mut attempts: u64 = 0;
    loop {
        let mut scope = Vec::with_capacity(1 + inherited.len());
        scope.push(ScopeEntry { cap: parent_proto.nest.now(), ..parent_proto.clone() });
        scope.extend_from_slice(inherited);
        let mut tx = Txn::nested(Arc::clone(shared), root_rv, scope, depth, evicted.clone());

        let ran = panic::catch_unwind(AssertUnwindSafe(|| body(&mut tx)));
        match ran {
            Err(payload) => {
                let mut slot = panic_payload.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                return Err(TxError::ChildPanic);
            }
            Ok(Err(e)) => return Err(e),
            Ok(Ok(value)) => match tx.commit_nested() {
                Ok(()) => {
                    shared.stats().record_commit_nested();
                    if trace.is_enabled() {
                        trace.emit(crate::trace::TraceEvent::TxCommit {
                            kind: crate::stats::TxKind::Nested,
                            retries: attempts,
                            at_ns: crate::trace::now_ns(),
                        });
                    }
                    return Ok(value);
                }
                Err(TxError::Conflict) => {
                    shared.stats().record_abort_nested();
                    attempts += 1;
                    if trace.is_enabled() {
                        trace.emit(crate::trace::TraceEvent::TxAbort {
                            kind: crate::stats::TxKind::Nested,
                            retries: attempts,
                            at_ns: crate::trace::now_ns(),
                        });
                    }
                    if attempts >= max_retries {
                        return Err(TxError::Conflict);
                    }
                    // A sibling retry cannot save an evicted tree: the whole
                    // attempt re-runs on a fresh snapshot anyway. Escalate
                    // immediately instead of burning the nested retry budget.
                    if tx.snapshot_evicted() {
                        return Err(TxError::Conflict);
                    }
                    let (r, w) = tx.footprint();
                    // Drop the attempt (and its scope handles) before any
                    // wait: a sleeping child must not keep the published
                    // parent snapshot alive longer than necessary.
                    drop(tx);
                    let (policy, wait) =
                        cm_tx.decide(crate::cm::AbortSite::Nested, attempts, r + w);
                    if !wait.is_zero() {
                        // A closed admission gate cuts the wait short: the
                        // conflict then escalates through the normal retry
                        // machinery instead of stalling shutdown.
                        let throttle = shared.throttle();
                        let (waited_ns, _cancelled) =
                            crate::cm::sleep_interruptible(wait, || throttle.is_closed());
                        shared.stats().record_cm_wait(policy.index(), waited_ns);
                        if trace.is_enabled() {
                            trace.emit(crate::trace::TraceEvent::CmDecision {
                                policy,
                                site: crate::cm::AbortSite::Nested,
                                waited_ns,
                                attempt: attempts,
                                at_ns: crate::trace::now_ns(),
                            });
                        }
                    }
                    continue;
                }
                Err(other) => return Err(other),
            },
        }
    }
}

fn downcast_clone<T: TxValue>(v: &crate::vbox::ErasedValue) -> T {
    v.downcast_ref::<T>()
        .expect("write-set value type mismatch: a box was written with a different type")
        .clone()
}
