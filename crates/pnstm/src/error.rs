//! Error and result types for transactional code.

use std::fmt;

/// Why a transaction (top-level or nested) could not complete its current
/// attempt.
///
/// `TxError` values returned from a transaction body drive the retry logic in
/// [`crate::Stm::atomic`] and [`crate::Txn::parallel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// Commit-time validation failed: another transaction (a sibling, for
    /// nested transactions, or another top-level transaction) committed a
    /// conflicting write. The attempt is rolled back and retried.
    Conflict,
    /// The user code requested an abort. The transaction is *not* retried;
    /// the abort is propagated to the caller of [`crate::Stm::atomic`].
    UserAbort,
    /// A child transaction panicked. The panic payload is re-raised on the
    /// thread that called [`crate::Txn::parallel`] after the batch drains.
    ChildPanic,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Conflict => write!(f, "transactional conflict"),
            TxError::UserAbort => write!(f, "user-requested abort"),
            TxError::ChildPanic => write!(f, "child transaction panicked"),
        }
    }
}

impl std::error::Error for TxError {}

/// Result type returned by transaction bodies.
pub type TxResult<T> = Result<T, TxError>;

/// Terminal error reported by [`crate::Stm::atomic`] once retrying has been
/// given up on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmError {
    /// The transaction body asked for an abort via [`TxError::UserAbort`].
    UserAborted,
    /// The transaction still conflicted after the configured maximum number
    /// of retries ([`crate::StmConfig::max_retries`]).
    RetriesExhausted {
        /// Number of attempts that were made (aborted attempts only).
        attempts: u64,
    },
    /// Top-level admission is closed ([`crate::Stm::close_admission`]): the
    /// STM is shutting down and the transaction never started. Callers
    /// (typically worker loops) should treat this as a stop signal, not as a
    /// transactional failure.
    Shutdown,
    /// The transaction's snapshot lease expired and the GC advanced the
    /// watermark past it (see `pnstm::mem`): the versions the snapshot needs
    /// may already be pruned, so the attempt cannot produce a consistent
    /// result. Writable [`crate::Stm::atomic`] transactions absorb this
    /// internally (the abort is routed through the contention manager and the
    /// body retries on a fresh snapshot); it surfaces terminally only from
    /// read-only contexts, which have no retry loop of their own.
    SnapshotEvicted,
}

impl fmt::Display for StmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmError::UserAborted => write!(f, "transaction aborted by user code"),
            StmError::RetriesExhausted { attempts } => {
                write!(f, "transaction aborted {attempts} times; retry budget exhausted")
            }
            StmError::Shutdown => write!(f, "transaction rejected: STM admission is closed"),
            StmError::SnapshotEvicted => {
                write!(f, "transaction snapshot evicted: lease expired under memory pressure")
            }
        }
    }
}

impl std::error::Error for StmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(TxError::Conflict.to_string(), "transactional conflict");
        assert_eq!(TxError::UserAbort.to_string(), "user-requested abort");
        assert_eq!(TxError::ChildPanic.to_string(), "child transaction panicked");
        assert_eq!(StmError::UserAborted.to_string(), "transaction aborted by user code");
        assert!(StmError::RetriesExhausted { attempts: 3 }.to_string().contains("3 times"));
        assert!(StmError::Shutdown.to_string().contains("admission is closed"));
        assert!(StmError::SnapshotEvicted.to_string().contains("lease expired"));
    }

    #[test]
    fn tx_error_equality() {
        assert_eq!(TxError::Conflict, TxError::Conflict);
        assert_ne!(TxError::Conflict, TxError::UserAbort);
    }
}
