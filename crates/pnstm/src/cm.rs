//! Contention management: *when* an aborted transaction retries.
//!
//! Aborts used to retry immediately at every site — the top-level driver,
//! the nested sibling-conflict loop, and (transitively) the striped-commit
//! revalidation failure path — which lets two writers with overlapping
//! footprints invalidate each other's snapshots forever under sustained
//! contention (the `commit-hold` chaos livelock). This module makes the
//! retry delay a policy, following the commit/read/scheduler ladder pattern:
//! a [`ContentionManager`] trait with four rungs selected by
//! [`crate::StmConfig::cm_mode`] and switchable at runtime
//! ([`crate::Stm::set_cm_mode`]) so the AutoPN tuner can treat the policy as
//! a discrete knob:
//!
//! * [`CmMode::Immediate`] — retry with no delay: the original behaviour,
//!   retained as the differential oracle and bench baseline. Still the
//!   default.
//! * [`CmMode::ExpBackoff`] — jittered exponential delay, doubling per
//!   consecutive abort (capped at 2⁶×). The jitter is a pure function of
//!   `(ticket, attempt)` (same SplitMix64 idiom as [`crate::fault`]), so
//!   runs replay deterministically.
//! * [`CmMode::Karma`] — priority accrues with every aborted attempt plus
//!   the work it had done (read + write footprint); the loser waits
//!   proportionally to its gap below the highest-karma active transaction,
//!   so long transactions that keep losing eventually stop being starved.
//! * [`CmMode::Greedy`] — timestamp seniority: the oldest active transaction
//!   (smallest begin ticket) never waits; a junior loser waits an escalating
//!   quantum per abort for as long as a strictly more senior transaction is
//!   active. (The classic eager-CM "never waits twice" rule assumes the
//!   winner can abort the loser outright; in a lazy abort-and-retry STM the
//!   only lever is who pauses, so seniority is enforced by making juniors —
//!   and only juniors — yield the conflict window.)
//!
//! Decisions with a nonzero wait are counted per policy in
//! [`crate::Stats`] (plus a log2 wait histogram) and emitted as
//! [`crate::TraceEvent::CmDecision`] events. The waits themselves are
//! executed by the runtime in small interruptible slices so admission
//! shutdown cuts a backoff short promptly.

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// Number of contention-manager policies (the length of [`CmMode::ALL`]).
pub const CM_POLICIES: usize = 4;

/// Default base delay of the exponential-backoff rung, used when the
/// deprecated `StmConfig::retry_backoff` is zero.
pub const DEFAULT_BACKOFF_BASE_NS: u64 = 20_000;

/// Exponent cap of the backoff rung: the delay doubles per consecutive
/// abort up to `base << BACKOFF_MAX_EXP` (matching the semantics of the
/// absorbed `retry_backoff` field).
pub const BACKOFF_MAX_EXP: u64 = 6;

/// Wait per unit of karma gap ([`karma_wait_ns`]).
pub const KARMA_UNIT_WAIT_NS: u64 = 2_000;

/// Karma-gap cap: bounds the karma rung's wait at
/// `KARMA_UNIT_WAIT_NS * KARMA_GAP_CAP` (~1 ms).
pub const KARMA_GAP_CAP: u64 = 512;

/// Base quantum a junior transaction waits under the greedy rung; doubles
/// per consecutive abort up to `GREEDY_WAIT_NS << GREEDY_MAX_EXP`.
pub const GREEDY_WAIT_NS: u64 = 200_000;

/// Exponent cap of the greedy rung's escalating junior wait (~3.2 ms).
pub const GREEDY_MAX_EXP: u64 = 4;

/// A CM wait at least this long releases the top-level admission permit
/// before sleeping and re-acquires it before retrying, so a backing-off
/// transaction does not occupy an admission slot it is not using.
pub const PERMIT_RELEASE_THRESHOLD_NS: u64 = 100_000;

/// Slice length of [`sleep_interruptible`]: the granularity at which a CM
/// wait notices admission shutdown.
const WAIT_SLICE: Duration = Duration::from_micros(200);

/// Which contention-management policy decides post-abort retry delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CmMode {
    /// Retry immediately (the pre-CM behaviour; differential oracle and
    /// bench baseline). The default.
    #[default]
    Immediate,
    /// Jittered exponential backoff, doubling per consecutive abort.
    ExpBackoff,
    /// Priority accrued per aborted attempt and work done; the loser waits
    /// proportionally to its priority gap.
    Karma,
    /// Timestamp seniority: the oldest active transaction never waits;
    /// junior losers wait escalating quanta while their senior is active.
    Greedy,
}

impl CmMode {
    /// Every policy, in [`CmMode::index`] order.
    pub const ALL: [CmMode; CM_POLICIES] =
        [CmMode::Immediate, CmMode::ExpBackoff, CmMode::Karma, CmMode::Greedy];

    /// Dense index, for per-policy counters.
    pub fn index(&self) -> usize {
        match self {
            CmMode::Immediate => 0,
            CmMode::ExpBackoff => 1,
            CmMode::Karma => 2,
            CmMode::Greedy => 3,
        }
    }

    /// Inverse of [`CmMode::index`] (`None` out of range).
    pub fn from_index(i: usize) -> Option<CmMode> {
        Self::ALL.get(i).copied()
    }

    /// Short kebab-case tag (the `"policy"` field of the trace schema).
    pub fn tag(&self) -> &'static str {
        match self {
            CmMode::Immediate => "immediate",
            CmMode::ExpBackoff => "exp-backoff",
            CmMode::Karma => "karma",
            CmMode::Greedy => "greedy",
        }
    }
}

impl std::fmt::Display for CmMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Where an abort consulted the contention manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortSite {
    /// The top-level retry loop, for a conflict surfaced by the transaction
    /// body (a child that exhausted its sibling-retry budget, or a panic).
    Top,
    /// The top-level retry loop, for a striped- or global-commit validation
    /// failure (including the post-reservation revalidation path).
    Commit,
    /// The nested sibling-conflict retry loop in the child driver.
    Nested,
    /// The top-level retry loop, for an attempt whose snapshot lease expired
    /// under memory pressure and was evicted from the registry. The retry
    /// begins on a fresh snapshot; the conflict is with the GC, not another
    /// transaction.
    Evicted,
}

impl AbortSite {
    /// Short tag (the `"site"` field of the trace schema).
    pub fn tag(&self) -> &'static str {
        match self {
            AbortSite::Top => "top",
            AbortSite::Commit => "commit",
            AbortSite::Nested => "nested",
            AbortSite::Evicted => "evicted",
        }
    }
}

/// Per-attempt-chain contention-manager state: one per `atomic()` call and
/// one per child task, spanning every retry of that chain.
#[derive(Debug)]
pub struct CmTx {
    /// Begin ticket: globally unique, monotonically increasing. Doubles as
    /// the greedy rung's seniority stamp and the backoff rung's jitter seed.
    pub ticket: u64,
    /// Accrued karma (aborted attempts + work done), karma rung only.
    pub karma: u64,
    /// Whether this chain is registered in the greedy seniority set (and
    /// must be deregistered at finish).
    pub greedy_registered: bool,
}

/// A policy rung: decides how long an aborted transaction waits before its
/// next attempt. Implementations must be cheap — `on_abort` runs on the
/// abort path of every conflicted attempt.
pub trait ContentionManager: Send + Sync {
    /// The rung this manager implements.
    fn mode(&self) -> CmMode;

    /// Called once when an attempt chain starts (after its ticket is
    /// minted). Default: nothing.
    fn on_begin(&self, tx: &mut CmTx) {
        let _ = tx;
    }

    /// Decide the delay before the chain's next attempt. `attempt` counts
    /// aborts so far in the chain (≥ 1); `work` is the aborted attempt's
    /// read + write footprint.
    fn on_abort(&self, tx: &mut CmTx, site: AbortSite, attempt: u64, work: usize) -> Duration;
}

/// SplitMix64-style mix of two words: the jitter source. A pure function,
/// so identical histories produce identical delays (mirrors
/// [`crate::fault`]'s replayable decision function).
fn mix2(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The backoff rung's delay: `base << min(attempt - 1, BACKOFF_MAX_EXP)`
/// nanoseconds, jittered by ±25% as a pure function of `(ticket, attempt)`.
/// Saturating throughout — no overflow for any input.
pub fn exp_backoff_ns(base_ns: u64, ticket: u64, attempt: u64) -> u64 {
    if base_ns == 0 || attempt == 0 {
        return 0;
    }
    let exp = attempt.saturating_sub(1).min(BACKOFF_MAX_EXP);
    let nominal = base_ns.saturating_mul(1u64 << exp);
    // Jitter uniformly over [nominal - nominal/4, nominal + nominal/4]:
    // desynchronizes losers that aborted on the same conflict.
    let span = (nominal / 2).max(1);
    let j = mix2(ticket, attempt) % span;
    nominal.saturating_sub(nominal / 4).saturating_add(j)
}

/// The karma rung's delay: proportional to how far the loser's karma lies
/// below the highest karma observed among active transactions, capped at
/// [`KARMA_GAP_CAP`] units. The current karma leader gets a zero wait.
pub fn karma_wait_ns(max_karma: u64, karma: u64) -> u64 {
    let gap = max_karma.saturating_sub(karma);
    KARMA_UNIT_WAIT_NS.saturating_mul(gap.min(KARMA_GAP_CAP))
}

/// Karma priority total order: does priority `a = (karma, ticket)` beat
/// `b`? Higher karma wins; equal karma falls back to seniority (the smaller
/// ticket wins), so any two distinct transactions are strictly ordered —
/// tickets are unique.
pub fn karma_wins(a: (u64, u64), b: (u64, u64)) -> bool {
    (a.0, std::cmp::Reverse(a.1)) > (b.0, std::cmp::Reverse(b.1))
}

/// State shared by all rungs of one [`CmEngine`].
struct CmCore {
    /// Base delay of the backoff rung (ns).
    base_backoff_ns: u64,
    /// Begin-ticket source.
    next_ticket: AtomicU64,
    /// Highest karma observed among active transactions (reset by the
    /// leader when it finishes).
    max_karma: AtomicU64,
    /// Begin tickets of active chains, greedy rung only (registered at
    /// begin while the greedy rung is active, so the other rungs pay
    /// nothing for it).
    active: Mutex<BTreeSet<u64>>,
}

/// Immediate rung: the pre-CM behaviour — zero delay, no state.
struct ImmediateCm;

impl ContentionManager for ImmediateCm {
    fn mode(&self) -> CmMode {
        CmMode::Immediate
    }
    fn on_abort(&self, _tx: &mut CmTx, _site: AbortSite, _attempt: u64, _work: usize) -> Duration {
        Duration::ZERO
    }
}

/// Exponential-backoff rung (see [`exp_backoff_ns`]).
struct ExpBackoffCm {
    core: std::sync::Arc<CmCore>,
}

impl ContentionManager for ExpBackoffCm {
    fn mode(&self) -> CmMode {
        CmMode::ExpBackoff
    }
    fn on_abort(&self, tx: &mut CmTx, _site: AbortSite, attempt: u64, _work: usize) -> Duration {
        Duration::from_nanos(exp_backoff_ns(self.core.base_backoff_ns, tx.ticket, attempt))
    }
}

/// Karma rung: accrue priority per abort and per unit of wasted work; wait
/// proportionally to the gap below the current leader.
struct KarmaCm {
    core: std::sync::Arc<CmCore>,
}

impl ContentionManager for KarmaCm {
    fn mode(&self) -> CmMode {
        CmMode::Karma
    }
    fn on_abort(&self, tx: &mut CmTx, _site: AbortSite, _attempt: u64, work: usize) -> Duration {
        tx.karma = tx.karma.saturating_add(1 + work as u64);
        let observed = self.core.max_karma.fetch_max(tx.karma, Ordering::Relaxed).max(tx.karma);
        Duration::from_nanos(karma_wait_ns(observed, tx.karma))
    }
}

/// Greedy rung: the most senior active chain retries immediately; junior
/// losers wait an escalating quantum per abort while their senior lives, so
/// the senior eventually gets a junior-free conflict window however long its
/// commit takes.
struct GreedyCm {
    core: std::sync::Arc<CmCore>,
}

impl GreedyCm {
    fn is_most_senior(&self, ticket: u64) -> bool {
        self.core.active.lock().iter().next().is_none_or(|&min| min >= ticket)
    }
}

/// The greedy rung's junior delay: `GREEDY_WAIT_NS << min(attempt - 1,
/// GREEDY_MAX_EXP)`. Deterministic — the senior/junior asymmetry itself
/// provides the desynchronization, no jitter needed.
pub fn greedy_wait_ns(attempt: u64) -> u64 {
    if attempt == 0 {
        return 0;
    }
    GREEDY_WAIT_NS.saturating_mul(1u64 << attempt.saturating_sub(1).min(GREEDY_MAX_EXP))
}

impl ContentionManager for GreedyCm {
    fn mode(&self) -> CmMode {
        CmMode::Greedy
    }
    fn on_begin(&self, tx: &mut CmTx) {
        self.core.active.lock().insert(tx.ticket);
        tx.greedy_registered = true;
    }
    fn on_abort(&self, tx: &mut CmTx, _site: AbortSite, attempt: u64, _work: usize) -> Duration {
        if self.is_most_senior(tx.ticket) {
            return Duration::ZERO;
        }
        Duration::from_nanos(greedy_wait_ns(attempt))
    }
}

/// The runtime's contention manager: all four rungs plus the live mode
/// switch. One per [`crate::Stm`] instance.
pub(crate) struct CmEngine {
    mode: AtomicU8,
    core: std::sync::Arc<CmCore>,
    rungs: [Box<dyn ContentionManager>; CM_POLICIES],
}

impl CmEngine {
    pub(crate) fn new(mode: CmMode, base_backoff_ns: u64) -> Self {
        let core = std::sync::Arc::new(CmCore {
            base_backoff_ns: if base_backoff_ns == 0 {
                DEFAULT_BACKOFF_BASE_NS
            } else {
                base_backoff_ns
            },
            next_ticket: AtomicU64::new(1),
            max_karma: AtomicU64::new(0),
            active: Mutex::new(BTreeSet::new()),
        });
        let rungs: [Box<dyn ContentionManager>; CM_POLICIES] = [
            Box::new(ImmediateCm),
            Box::new(ExpBackoffCm { core: std::sync::Arc::clone(&core) }),
            Box::new(KarmaCm { core: std::sync::Arc::clone(&core) }),
            Box::new(GreedyCm { core: std::sync::Arc::clone(&core) }),
        ];
        Self { mode: AtomicU8::new(mode.index() as u8), core, rungs }
    }

    /// The policy currently in force.
    pub(crate) fn mode(&self) -> CmMode {
        CmMode::from_index(self.mode.load(Ordering::Relaxed) as usize)
            .expect("mode index always stored from a valid CmMode")
    }

    /// Switch policy live. In-flight chains keep their accrued state; they
    /// consult the new policy from their next abort on.
    pub(crate) fn set_mode(&self, mode: CmMode) {
        self.mode.store(mode.index() as u8, Ordering::Relaxed);
    }

    /// Start an attempt chain: mint a ticket and let the active rung
    /// initialize per-chain state. Pair with [`CmEngine::finish`] (or use
    /// [`CmEngine::begin_guard`]).
    pub(crate) fn begin(&self) -> CmTx {
        let ticket = self.core.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut tx = CmTx { ticket, karma: 0, greedy_registered: false };
        self.rungs[self.mode().index()].on_begin(&mut tx);
        tx
    }

    /// RAII [`CmEngine::begin`]: finishes the chain on drop, on every exit
    /// path of the retry drivers.
    pub(crate) fn begin_guard(&self) -> CmTxGuard<'_> {
        CmTxGuard { engine: self, tx: self.begin() }
    }

    /// Consult the active rung after an aborted attempt. Returns the
    /// deciding policy together with the wait it chose (zero = retry
    /// immediately).
    pub(crate) fn decide(
        &self,
        tx: &mut CmTx,
        site: AbortSite,
        attempt: u64,
        work: usize,
    ) -> (CmMode, Duration) {
        let mode = self.mode();
        let wait = self.rungs[mode.index()].on_abort(tx, site, attempt, work);
        (mode, wait)
    }

    /// End an attempt chain: deregister greedy seniority and let the karma
    /// leader's priority ceiling re-form from the remaining active chains.
    /// Rung-independent (guarded by the chain's own flags) so a chain that
    /// outlived a live policy switch still cleans up.
    pub(crate) fn finish(&self, tx: &mut CmTx) {
        if tx.greedy_registered {
            self.core.active.lock().remove(&tx.ticket);
            tx.greedy_registered = false;
        }
        if tx.karma > 0 {
            let _ = self.core.max_karma.compare_exchange(
                tx.karma,
                0,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            tx.karma = 0;
        }
    }
}

/// RAII wrapper around a [`CmTx`]: finishes the chain when dropped.
pub(crate) struct CmTxGuard<'a> {
    engine: &'a CmEngine,
    tx: CmTx,
}

impl CmTxGuard<'_> {
    pub(crate) fn decide(
        &mut self,
        site: AbortSite,
        attempt: u64,
        work: usize,
    ) -> (CmMode, Duration) {
        self.engine.decide(&mut self.tx, site, attempt, work)
    }
}

impl Drop for CmTxGuard<'_> {
    fn drop(&mut self) {
        self.engine.finish(&mut self.tx);
    }
}

/// Sleep `dur` in [`WAIT_SLICE`] slices, returning early once `cancelled`
/// turns true. Returns `(waited_ns, was_cancelled)`.
pub(crate) fn sleep_interruptible(dur: Duration, cancelled: impl Fn() -> bool) -> (u64, bool) {
    let start = std::time::Instant::now();
    loop {
        if cancelled() {
            return (start.elapsed().as_nanos() as u64, true);
        }
        let elapsed = start.elapsed();
        if elapsed >= dur {
            return (elapsed.as_nanos() as u64, false);
        }
        std::thread::sleep(WAIT_SLICE.min(dur - elapsed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_index_round_trips() {
        for m in CmMode::ALL {
            assert_eq!(CmMode::from_index(m.index()), Some(m));
        }
        assert_eq!(CmMode::from_index(CM_POLICIES), None);
        assert_eq!(CmMode::default(), CmMode::Immediate);
        let tags: Vec<&str> = CmMode::ALL.iter().map(|m| m.tag()).collect();
        assert_eq!(tags, ["immediate", "exp-backoff", "karma", "greedy"]);
        assert_eq!(CmMode::Karma.to_string(), "karma");
    }

    #[test]
    fn abort_site_tags() {
        assert_eq!(AbortSite::Top.tag(), "top");
        assert_eq!(AbortSite::Commit.tag(), "commit");
        assert_eq!(AbortSite::Nested.tag(), "nested");
        assert_eq!(AbortSite::Evicted.tag(), "evicted");
    }

    #[test]
    fn exp_backoff_doubles_and_caps() {
        let base = 1_000;
        let at = |attempt| exp_backoff_ns(base, 7, attempt);
        // Every delay lands within ±25% of its nominal value.
        for attempt in 1..=20u64 {
            let nominal = base << attempt.saturating_sub(1).min(BACKOFF_MAX_EXP);
            let d = at(attempt);
            assert!(d >= nominal - nominal / 4, "attempt {attempt}: {d} < 0.75x{nominal}");
            assert!(d <= nominal + nominal / 4, "attempt {attempt}: {d} > 1.25x{nominal}");
        }
        // Capped at 2^BACKOFF_MAX_EXP from attempt 7 on: same nominal band.
        assert!(at(20) <= (base << BACKOFF_MAX_EXP) + (base << BACKOFF_MAX_EXP) / 4);
        // Deterministic: same inputs, same delay.
        assert_eq!(exp_backoff_ns(base, 42, 3), exp_backoff_ns(base, 42, 3));
        // Jitter varies by ticket.
        let spread: std::collections::HashSet<u64> =
            (0..32).map(|t| exp_backoff_ns(base, t, 4)).collect();
        assert!(spread.len() > 1, "jitter must depend on the ticket");
        // Disabled base and zero attempt are zero-delay.
        assert_eq!(exp_backoff_ns(0, 1, 5), 0);
        assert_eq!(exp_backoff_ns(base, 1, 0), 0);
    }

    #[test]
    fn exp_backoff_never_overflows() {
        // Saturating math: extreme bases and attempts stay finite.
        let _ = exp_backoff_ns(u64::MAX, u64::MAX, u64::MAX);
        let _ = exp_backoff_ns(u64::MAX / 2, 0, BACKOFF_MAX_EXP + 1);
        let _ = exp_backoff_ns(1, u64::MAX, 1);
    }

    #[test]
    fn karma_wait_is_proportional_and_capped() {
        assert_eq!(karma_wait_ns(10, 10), 0, "the leader never waits");
        assert_eq!(karma_wait_ns(10, 12), 0, "above the observed max: no wait");
        assert_eq!(karma_wait_ns(10, 7), 3 * KARMA_UNIT_WAIT_NS);
        assert_eq!(karma_wait_ns(u64::MAX, 0), KARMA_GAP_CAP * KARMA_UNIT_WAIT_NS);
        // No overflow at the extremes.
        let _ = karma_wait_ns(u64::MAX, u64::MAX);
        let _ = karma_wait_ns(u64::MAX, 0);
    }

    #[test]
    fn karma_priority_is_a_total_order() {
        // Higher karma wins.
        assert!(karma_wins((5, 9), (3, 1)));
        assert!(!karma_wins((3, 1), (5, 9)));
        // Ties broken by seniority: the smaller ticket wins.
        assert!(karma_wins((5, 1), (5, 2)));
        assert!(!karma_wins((5, 2), (5, 1)));
        // Distinct transactions (tickets unique) are always strictly
        // ordered: exactly one of the two wins.
        let prios = [(0u64, 1u64), (0, 2), (5, 3), (5, 4), (u64::MAX, 5), (u64::MAX, 6)];
        for a in prios {
            assert!(!karma_wins(a, a), "irreflexive");
            for b in prios {
                if a != b {
                    assert!(karma_wins(a, b) != karma_wins(b, a), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn karma_rung_accrues_and_waits_by_gap() {
        let engine = CmEngine::new(CmMode::Karma, 1_000);
        let mut rich = engine.begin();
        let mut poor = engine.begin();
        // The rich chain aborts with a large footprint: accrues karma and,
        // as the leader, retries with no wait.
        let (mode, wait) = engine.decide(&mut rich, AbortSite::Commit, 1, 99);
        assert_eq!(mode, CmMode::Karma);
        assert_eq!(rich.karma, 100);
        assert_eq!(wait, Duration::ZERO);
        // The poor chain aborts with no work done: waits by its gap.
        let (_, wait) = engine.decide(&mut poor, AbortSite::Top, 1, 0);
        assert_eq!(poor.karma, 1);
        assert_eq!(wait, Duration::from_nanos(99 * KARMA_UNIT_WAIT_NS));
        // The leader finishing releases the ceiling: the poor chain's next
        // abort sees itself as leader and retries immediately.
        engine.finish(&mut rich);
        let (_, wait) = engine.decide(&mut poor, AbortSite::Top, 2, 0);
        assert_eq!(wait, Duration::ZERO);
    }

    #[test]
    fn greedy_rung_senior_wins_juniors_wait_escalating() {
        let engine = CmEngine::new(CmMode::Greedy, 1_000);
        let mut senior = engine.begin();
        let mut junior = engine.begin();
        assert!(senior.ticket < junior.ticket);
        assert!(senior.greedy_registered && junior.greedy_registered);
        // The senior chain never waits.
        for attempt in 1..=3 {
            let (mode, wait) = engine.decide(&mut senior, AbortSite::Commit, attempt, 1);
            assert_eq!(mode, CmMode::Greedy);
            assert_eq!(wait, Duration::ZERO);
        }
        // The junior chain waits a doubling quantum per abort, capped.
        for attempt in 1..=8u64 {
            let (_, w) = engine.decide(&mut junior, AbortSite::Commit, attempt, 1);
            let want = GREEDY_WAIT_NS << (attempt - 1).min(GREEDY_MAX_EXP);
            assert_eq!(w, Duration::from_nanos(want), "attempt {attempt}");
        }
        // Once the senior finishes, the junior is the most senior active
        // chain: it stops waiting, while a fresh junior behind it waits.
        engine.finish(&mut senior);
        let (_, w) = engine.decide(&mut junior, AbortSite::Commit, 9, 1);
        assert_eq!(w, Duration::ZERO, "promoted to most senior");
        let mut newer = engine.begin();
        let (_, w) = engine.decide(&mut newer, AbortSite::Top, 1, 0);
        assert_eq!(w, Duration::from_nanos(GREEDY_WAIT_NS));
        engine.finish(&mut junior);
        engine.finish(&mut newer);
        assert!(engine.core.active.lock().is_empty(), "all chains deregistered");
    }

    #[test]
    fn greedy_wait_escalates_and_never_overflows() {
        assert_eq!(greedy_wait_ns(0), 0);
        assert_eq!(greedy_wait_ns(1), GREEDY_WAIT_NS);
        assert_eq!(greedy_wait_ns(2), 2 * GREEDY_WAIT_NS);
        assert_eq!(greedy_wait_ns(GREEDY_MAX_EXP + 1), GREEDY_WAIT_NS << GREEDY_MAX_EXP);
        assert_eq!(greedy_wait_ns(u64::MAX), GREEDY_WAIT_NS << GREEDY_MAX_EXP);
    }

    #[test]
    fn immediate_rung_is_stateless_and_instant() {
        let engine = CmEngine::new(CmMode::Immediate, 1_000);
        let mut tx = engine.begin();
        assert!(!tx.greedy_registered);
        for attempt in 1..=10 {
            let (mode, wait) = engine.decide(&mut tx, AbortSite::Top, attempt, 1_000);
            assert_eq!(mode, CmMode::Immediate);
            assert_eq!(wait, Duration::ZERO);
        }
        assert_eq!(tx.karma, 0, "immediate accrues nothing");
    }

    #[test]
    fn live_mode_switch_applies_from_next_abort() {
        let engine = CmEngine::new(CmMode::Immediate, 1_000);
        let mut tx = engine.begin();
        assert_eq!(engine.decide(&mut tx, AbortSite::Top, 1, 0).1, Duration::ZERO);
        engine.set_mode(CmMode::ExpBackoff);
        assert_eq!(engine.mode(), CmMode::ExpBackoff);
        let (mode, wait) = engine.decide(&mut tx, AbortSite::Top, 2, 0);
        assert_eq!(mode, CmMode::ExpBackoff);
        assert!(wait > Duration::ZERO);
        // A chain begun before a switch to Greedy is simply treated as
        // junior; chains begun after register normally.
        engine.set_mode(CmMode::Greedy);
        let mut newer = engine.begin();
        assert!(newer.greedy_registered);
        engine.finish(&mut newer);
        engine.finish(&mut tx);
    }

    #[test]
    fn guard_finishes_on_drop() {
        let engine = CmEngine::new(CmMode::Greedy, 1_000);
        {
            let _guard = engine.begin_guard();
            assert_eq!(engine.core.active.lock().len(), 1);
        }
        assert!(engine.core.active.lock().is_empty());
    }

    #[test]
    fn interruptible_sleep_completes_and_cancels() {
        let (waited, cancelled) = sleep_interruptible(Duration::from_micros(300), || false);
        assert!(!cancelled);
        assert!(waited >= 300_000, "slept the full duration: {waited}");
        let start = std::time::Instant::now();
        let (_, cancelled) = sleep_interruptible(Duration::from_secs(60), || true);
        assert!(cancelled);
        assert!(start.elapsed() < Duration::from_secs(5), "cancellation is prompt");
    }
}
