//! Convenience transactional data structures built on [`VBox`]: the shapes
//! PN-TM applications actually use (the paper's Array benchmark is a chunked
//! parallel scan; TPC-C-style counters are ubiquitous).

use std::sync::Arc;

use crate::error::TxResult;
use crate::txn::{child, ChildTask, Txn};
use crate::vbox::VBox;
use crate::{Stm, TxValue};

/// A fixed-size transactional array with helpers for chunked
/// parallel-nested scans and updates.
///
/// Cloning is cheap (`Arc` of the element handles); clones alias the same
/// cells.
#[derive(Clone)]
pub struct TArray<T> {
    cells: Arc<Vec<VBox<T>>>,
}

impl<T: TxValue> TArray<T> {
    /// Allocate `len` cells initialized by `init(index)`.
    pub fn new(stm: &Stm, len: usize, init: impl Fn(usize) -> T) -> Self {
        assert!(len > 0, "TArray must be non-empty");
        Self { cells: Arc::new((0..len).map(|i| stm.new_vbox(init(i))).collect()) }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false (construction requires `len > 0`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Read cell `i` inside a transaction.
    pub fn get(&self, tx: &mut Txn, i: usize) -> T {
        tx.read(&self.cells[i])
    }

    /// Write cell `i` inside a transaction.
    pub fn set(&self, tx: &mut Txn, i: usize, value: T) {
        tx.write(&self.cells[i], value);
    }

    /// Read–modify–write cell `i`.
    pub fn update(&self, tx: &mut Txn, i: usize, f: impl FnOnce(T) -> T) -> T {
        tx.modify(&self.cells[i], f)
    }

    /// Fold every cell sequentially within the calling transaction.
    pub fn fold<A>(&self, tx: &mut Txn, init: A, mut f: impl FnMut(A, &T) -> A) -> A {
        let mut acc = init;
        for cell in self.cells.iter() {
            let v = tx.read(cell);
            acc = f(acc, &v);
        }
        acc
    }

    /// Scan the whole array with `chunks` parallel child transactions, each
    /// folding its contiguous slice with `fold`, and combine the per-chunk
    /// results with `combine`. This is the paper's Array-benchmark pattern
    /// as a reusable primitive.
    pub fn parallel_fold<A>(
        &self,
        tx: &mut Txn,
        chunks: usize,
        fold: impl Fn(A, &T) -> A + Send + Sync + Clone + 'static,
        init: impl Fn() -> A + Send + Sync + Clone + 'static,
        combine: impl Fn(A, A) -> A,
    ) -> TxResult<A>
    where
        A: Send + 'static,
    {
        let chunks = chunks.clamp(1, self.len());
        let chunk_len = self.len().div_ceil(chunks);
        let tasks: Vec<ChildTask<A>> = (0..chunks)
            .map(|ci| {
                let cells = Arc::clone(&self.cells);
                let fold = fold.clone();
                let init = init.clone();
                child(move |ct| -> TxResult<A> {
                    let lo = ci * chunk_len;
                    let hi = ((ci + 1) * chunk_len).min(cells.len());
                    let mut acc = init();
                    for cell in &cells[lo..hi] {
                        let v = ct.read(cell);
                        acc = fold(acc, &v);
                    }
                    Ok(acc)
                })
            })
            .collect();
        let parts = tx.parallel(tasks)?;
        let mut iter = parts.into_iter();
        let first = iter.next().expect("at least one chunk");
        Ok(iter.fold(first, combine))
    }

    /// Apply `f` to every cell with `chunks` parallel child transactions.
    pub fn parallel_update(
        &self,
        tx: &mut Txn,
        chunks: usize,
        f: impl Fn(usize, T) -> T + Send + Sync + Clone + 'static,
    ) -> TxResult<()> {
        let chunks = chunks.clamp(1, self.len());
        let chunk_len = self.len().div_ceil(chunks);
        let tasks: Vec<ChildTask<()>> = (0..chunks)
            .map(|ci| {
                let cells = Arc::clone(&self.cells);
                let f = f.clone();
                child(move |ct| -> TxResult<()> {
                    let lo = ci * chunk_len;
                    let hi = ((ci + 1) * chunk_len).min(cells.len());
                    for (i, cell) in cells[lo..hi].iter().enumerate() {
                        let v = ct.read(cell);
                        ct.write(cell, f(lo + i, v));
                    }
                    Ok(())
                })
            })
            .collect();
        tx.parallel::<()>(tasks)?;
        Ok(())
    }

    /// Consistent snapshot sum-like fold outside any transaction.
    pub fn snapshot_fold<A>(&self, stm: &Stm, init: A, mut f: impl FnMut(A, &T) -> A) -> A {
        stm.read_only(|tx| {
            let mut acc = init;
            for cell in self.cells.iter() {
                let v = tx.read(cell);
                acc = f(acc, &v);
            }
            acc
        })
    }
}

/// A transactional counter sharded across `shards` cells: increments hit a
/// per-caller shard (low contention), reads sum a snapshot.
#[derive(Clone)]
pub struct TCounter {
    shards: TArray<i64>,
}

impl TCounter {
    /// Create with `shards` independent cells (more shards = less conflict
    /// pressure between concurrent incrementers).
    pub fn new(stm: &Stm, shards: usize) -> Self {
        Self { shards: TArray::new(stm, shards.max(1), |_| 0) }
    }

    /// Add `delta` on the shard selected by `key` (e.g. a worker id).
    pub fn add(&self, tx: &mut Txn, key: usize, delta: i64) {
        let i = key % self.shards.len();
        self.shards.update(tx, i, |v| v + delta);
    }

    /// Transactional total (reads every shard — conflicts with all adders).
    pub fn total(&self, tx: &mut Txn) -> i64 {
        self.shards.fold(tx, 0i64, |a, v| a + v)
    }

    /// Snapshot total without joining any transaction.
    pub fn snapshot_total(&self, stm: &Stm) -> i64 {
        self.shards.snapshot_fold(stm, 0i64, |a, v| a + v)
    }
}

/// A transactional hash map: fixed bucket array of `VBox<Vec<(K, V)>>`.
///
/// Operations conflict only when they touch the same bucket, so sizing the
/// bucket count to the expected concurrency keeps contention low. Cloning is
/// cheap and aliases the same map.
#[derive(Clone)]
pub struct TMap<K, V> {
    buckets: Arc<Vec<Bucket<K, V>>>,
}

/// One hash bucket: a versioned vector of entries.
type Bucket<K, V> = VBox<Vec<(K, V)>>;

impl<K, V> TMap<K, V>
where
    K: TxValue + Eq + std::hash::Hash,
    V: TxValue,
{
    /// Create with `buckets` buckets (rounded up to at least 1).
    pub fn new(stm: &Stm, buckets: usize) -> Self {
        Self { buckets: Arc::new((0..buckets.max(1)).map(|_| stm.new_vbox(Vec::new())).collect()) }
    }

    fn bucket_of(&self, key: &K) -> &Bucket<K, V> {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.buckets[(h.finish() as usize) % self.buckets.len()]
    }

    /// Look a key up inside a transaction.
    pub fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
        let bucket = tx.read(self.bucket_of(key));
        bucket.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
        let cell = self.bucket_of(&key);
        let mut bucket = tx.read(cell);
        let old = match bucket.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => Some(std::mem::replace(&mut slot.1, value)),
            None => {
                bucket.push((key, value));
                None
            }
        };
        tx.write(cell, bucket);
        old
    }

    /// Remove a key; returns its value if it was present.
    pub fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
        let cell = self.bucket_of(key);
        let mut bucket = tx.read(cell);
        let pos = bucket.iter().position(|(k, _)| k == key)?;
        let (_, v) = bucket.swap_remove(pos);
        tx.write(cell, bucket);
        Some(v)
    }

    /// Whether a key is present.
    pub fn contains(&self, tx: &mut Txn, key: &K) -> bool {
        self.get(tx, key).is_some()
    }

    /// Number of entries (reads every bucket — conflicts with all writers).
    pub fn len(&self, tx: &mut Txn) -> usize {
        self.buckets.iter().map(|b| tx.read(b).len()).sum()
    }

    /// Whether the map is empty (reads every bucket).
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.len(tx) == 0
    }

    /// Snapshot of all entries outside any transaction.
    pub fn snapshot_entries(&self, stm: &Stm) -> Vec<(K, V)> {
        stm.read_only(|tx| self.buckets.iter().flat_map(|b| tx.read(b)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParallelismDegree, StmConfig};

    fn stm() -> Stm {
        Stm::new(StmConfig {
            degree: ParallelismDegree::new(4, 4),
            worker_threads: 2,
            ..StmConfig::default()
        })
    }

    #[test]
    fn tarray_basic_ops() {
        let stm = stm();
        let arr = TArray::new(&stm, 8, |i| i as i64);
        stm.atomic(|tx| {
            assert_eq!(arr.get(tx, 3), 3);
            arr.set(tx, 3, 30);
            assert_eq!(arr.update(tx, 3, |v| v + 1), 31);
            Ok(())
        })
        .unwrap();
        assert_eq!(arr.snapshot_fold(&stm, 0, |a, v| a + v), 1 + 2 + 31 + 4 + 5 + 6 + 7);
        assert_eq!(arr.len(), 8);
        assert!(!arr.is_empty());
    }

    #[test]
    fn parallel_fold_matches_sequential() {
        let stm = stm();
        let arr = TArray::new(&stm, 100, |i| i as i64);
        let (par, seq) = stm
            .atomic(|tx| {
                let par =
                    arr.parallel_fold(tx, 7, |a: i64, v: &i64| a + v, || 0i64, |a, b| a + b)?;
                let seq = arr.fold(tx, 0i64, |a, v| a + v);
                Ok((par, seq))
            })
            .unwrap();
        assert_eq!(par, seq);
        assert_eq!(par, (0..100).sum::<i64>());
    }

    #[test]
    fn parallel_update_applies_everywhere() {
        let stm = stm();
        let arr = TArray::new(&stm, 33, |_| 1i64);
        stm.atomic(|tx| arr.parallel_update(tx, 4, |i, v| v + i as i64)).unwrap();
        let total = arr.snapshot_fold(&stm, 0, |a, v| a + v);
        assert_eq!(total, 33 + (0..33).sum::<i64>());
    }

    #[test]
    fn parallel_chunks_clamped() {
        let stm = stm();
        let arr = TArray::new(&stm, 3, |_| 2i64);
        // More chunks than cells must not panic or double-count.
        let sum = stm
            .atomic(|tx| arr.parallel_fold(tx, 16, |a: i64, v: &i64| a + v, || 0i64, |a, b| a + b))
            .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn sharded_counter_is_exact_under_concurrency() {
        let stm = stm();
        let ctr = TCounter::new(&stm, 8);
        let mut handles = vec![];
        for worker in 0..4usize {
            let stm = stm.clone();
            let ctr = ctr.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    stm.atomic(|tx| {
                        ctr.add(tx, worker, 1);
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ctr.snapshot_total(&stm), 400);
        let total = stm.atomic(|tx| Ok(ctr.total(tx))).unwrap();
        assert_eq!(total, 400);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_tarray_rejected() {
        let stm = stm();
        let _ = TArray::<i64>::new(&stm, 0, |_| 0);
    }

    #[test]
    fn tmap_insert_get_remove() {
        let stm = stm();
        let map: TMap<String, i64> = TMap::new(&stm, 8);
        stm.atomic(|tx| {
            assert!(map.is_empty(tx));
            assert_eq!(map.insert(tx, "a".into(), 1), None);
            assert_eq!(map.insert(tx, "b".into(), 2), None);
            assert_eq!(map.insert(tx, "a".into(), 10), Some(1));
            assert_eq!(map.get(tx, &"a".into()), Some(10));
            assert_eq!(map.len(tx), 2);
            assert!(map.contains(tx, &"b".into()));
            assert_eq!(map.remove(tx, &"b".into()), Some(2));
            assert_eq!(map.remove(tx, &"b".into()), None);
            assert_eq!(map.len(tx), 1);
            Ok(())
        })
        .unwrap();
        let mut entries = map.snapshot_entries(&stm);
        entries.sort();
        assert_eq!(entries, vec![("a".to_string(), 10)]);
    }

    #[test]
    fn tmap_aborted_txn_leaves_map_untouched() {
        let stm = stm();
        let map: TMap<u32, u32> = TMap::new(&stm, 4);
        stm.atomic(|tx| {
            map.insert(tx, 1, 1);
            Ok(())
        })
        .unwrap();
        let r: Result<(), _> = stm.atomic(|tx| {
            map.insert(tx, 2, 2);
            map.remove(tx, &1);
            tx.abort()
        });
        assert!(r.is_err());
        let entries = map.snapshot_entries(&stm);
        assert_eq!(entries, vec![(1, 1)]);
    }

    #[test]
    fn tmap_concurrent_disjoint_keys_all_survive() {
        let stm = stm();
        let map: TMap<u64, u64> = TMap::new(&stm, 16);
        let mut handles = vec![];
        for w in 0..4u64 {
            let stm = stm.clone();
            let map = map.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let key = w * 1000 + i;
                    stm.atomic(|tx| {
                        map.insert(tx, key, key * 2);
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let entries = map.snapshot_entries(&stm);
        assert_eq!(entries.len(), 200);
        assert!(entries.iter().all(|&(k, v)| v == k * 2));
    }

    #[test]
    fn tmap_single_bucket_still_correct() {
        let stm = stm();
        let map: TMap<u8, u8> = TMap::new(&stm, 1);
        stm.atomic(|tx| {
            for k in 0..20u8 {
                map.insert(tx, k, k);
            }
            assert_eq!(map.len(tx), 20);
            Ok(())
        })
        .unwrap();
    }
}
