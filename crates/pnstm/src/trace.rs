//! Low-overhead event tracing for the tune loop (observability layer).
//!
//! Every stage of the paper's Fig. 2 feedback loop — actuator, monitor,
//! optimizer — emits typed [`TraceEvent`]s onto a shared [`TraceBus`]. The
//! bus is designed so that an STM with tracing *disabled* pays a single
//! relaxed atomic load per emission site, and an STM with tracing enabled
//! pays whatever the subscribed sinks cost:
//!
//! * [`RingSink`] — fixed-capacity ring buffer, no allocation per event
//!   (events are `Copy`); the cheap always-on option for flight recording.
//! * [`TestSink`] — unbounded in-memory vector, for assertions in tests.
//! * [`JsonlSink`] — one JSON object per line to any writer, for offline
//!   analysis (`jq`-able; see `DESIGN.md` for the schema).
//!
//! Producers inside `pnstm` (the [`crate::Stm`] retry driver, the
//! [`crate::Throttle`] actuator, the nested-transaction runner) share the
//! STM instance's bus ([`crate::Stm::trace_bus`]); the `autopn` controller
//! accepts a bus in its `*_traced` entry points so one stream can interleave
//! runtime and control-plane events.

use parking_lot::{Mutex, RwLock};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::cm::{AbortSite, CmMode};
use crate::fault::FaultKind;
use crate::mem::MemLevel;
use crate::stats::TxKind;

/// Nanoseconds since the process-wide trace epoch (first call wins). All
/// `at_ns` fields of events produced inside `pnstm` use this clock; control
/// planes driving a virtual clock stamp events with their own time instead.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Maximum number of discrete axes a trace event can carry inline. Bounded
/// so [`TraceEvent`] stays `Copy` with no heap payload (ring-sink contract);
/// matches the config-space limit in `autopn`.
pub const MAX_TRACE_AXES: usize = 4;

/// One discrete-axis assignment carried by a trace event: the axis `name`,
/// its raw `value` (e.g. slice boxes, block txns, or a categorical index)
/// and a human-readable `label` (empty for plain integer axes).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AxisValue {
    pub name: &'static str,
    pub value: u32,
    pub label: &'static str,
}

/// Inline, `Copy` snapshot of the discrete-axis half of a configuration
/// point — `(t, c)` stays in the event's own fields; this carries the rest
/// (`cm`, `gc_boxes`, `block`, `sched`, ...). Empty for the legacy 2-D
/// space, in which case the JSON serialization omits the `"axes"` key
/// entirely so pre-generalization consumers see byte-identical lines.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AxesTrace {
    n: u8,
    entries: [AxisValue; MAX_TRACE_AXES],
}

impl AxesTrace {
    /// The empty (legacy `(t, c)`-only) axis set.
    pub const fn empty() -> Self {
        Self { n: 0, entries: [AxisValue { name: "", value: 0, label: "" }; MAX_TRACE_AXES] }
    }

    /// Append one axis assignment. Panics past [`MAX_TRACE_AXES`] — the
    /// config space enforces the same bound at construction.
    pub fn push(&mut self, name: &'static str, value: u32, label: &'static str) {
        assert!((self.n as usize) < MAX_TRACE_AXES, "more than {MAX_TRACE_AXES} trace axes");
        self.entries[self.n as usize] = AxisValue { name, value, label };
        self.n += 1;
    }

    pub fn len(&self) -> usize {
        self.n as usize
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The recorded assignments, in axis order.
    pub fn entries(&self) -> &[AxisValue] {
        &self.entries[..self.n as usize]
    }

    /// Look up an axis by name.
    pub fn get(&self, name: &str) -> Option<&AxisValue> {
        self.entries().iter().find(|a| a.name == name)
    }

    /// Append the `,"axes":{...}` JSON fragment; nothing when empty.
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        if self.is_empty() {
            return;
        }
        out.push_str(",\"axes\":{");
        for (i, a) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if a.label.is_empty() {
                let _ = write!(out, "\"{}\":{}", a.name, a.value);
            } else {
                let _ = write!(out, "\"{}\":\"{}\"", a.name, a.label);
            }
        }
        out.push('}');
    }
}

/// One typed observation from the tune loop. `Copy`, no heap payload — a
/// ring sink can store events without allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A transaction attempt chain started (once per `atomic()` call /
    /// child task, not per retry).
    TxBegin { kind: TxKind, at_ns: u64 },
    /// A transaction committed after `retries` aborted attempts.
    TxCommit { kind: TxKind, retries: u64, at_ns: u64 },
    /// A transaction attempt aborted; `retries` counts aborts so far in the
    /// chain (including this one).
    TxAbort { kind: TxKind, retries: u64, at_ns: u64 },
    /// Time spent blocked on the top-level admission semaphore.
    SemWait { wait_ns: u64 },
    /// A striped commit attempt acquired its write-set stripe locks:
    /// `stripes` locked in canonical order, `contended` of which were held by
    /// another committer on first try. Emitted only when `contended > 0` —
    /// the uncontended common case stays off the bus.
    CommitStripeContention { stripes: u32, contended: u32, at_ns: u64 },
    /// One transaction attempt's aggregated read-path counters, flushed when
    /// the attempt ends: ancestor-level filter probes that could not rule the
    /// level out (`filter_hits`), probes the filter skipped (`filter_misses`),
    /// and reads that performed at least one ancestor fallback lookup
    /// (`slow_path`). Emitted only when at least one counter is nonzero.
    ReadPath { filter_hits: u64, filter_misses: u64, slow_path: u64, at_ns: u64 },
    /// The work-stealing scheduler completed a `parallel()` batch of `tasks`
    /// child tasks, `stolen` of which were executed by helper workers and
    /// `overflowed` of which spilled past the fixed deque capacity. Emitted
    /// once per batch at completion (the mutex pool emits nothing — its
    /// dispatch shape is visible through lock contention instead).
    SchedBatch { tasks: u32, stolen: u32, overflowed: u32, at_ns: u64 },
    /// The actuator switched the parallelism degree `from` → `to` `(t, c)`.
    /// `axes` carries the discrete-axis half of the configuration point in
    /// force after the switch (empty for the legacy 2-D space).
    Reconfigure { from: (u32, u32), to: (u32, u32), axes: AxesTrace },
    /// The monitor opened a measurement window.
    WindowOpen { at_ns: u64 },
    /// A commit observed inside the window, with the policy's running CV
    /// estimate at that point (the CV trajectory; `None` until defined).
    WindowSample { at_ns: u64, cv: Option<f64> },
    /// The monitor closed the window with a measurement.
    WindowClose {
        at_ns: u64,
        commits: u64,
        window_ns: u64,
        throughput: f64,
        timed_out: bool,
        cv: Option<f64>,
    },
    /// The optimizer proposed a configuration to measure; `relative_ei` is
    /// the SMBO acquisition value when the proposal came from that phase.
    /// `axes` is the discrete-axis half of the proposed point.
    Proposal { t: u32, c: u32, relative_ei: Option<f64>, axes: AxesTrace },
    /// The optimizer moved between phases (endpoints of one `propose` call).
    OptimizerPhase { from: &'static str, to: &'static str },
    /// A tuning session started.
    SessionStart { at_ns: u64 },
    /// A tuning session ended on `best = (t, c)`. `fallback` is set when the
    /// tuner had no observation at all and the controller fell back to the
    /// sequential configuration. `degraded` is set when the session survived
    /// a fault — a reconfiguration fallback, a watchdog-terminated window or
    /// a starved pivot — and its result should be treated with suspicion.
    SessionEnd {
        at_ns: u64,
        best_t: u32,
        best_c: u32,
        throughput: f64,
        explored: u64,
        fallback: bool,
        degraded: bool,
        /// Discrete-axis half of the winning configuration point (empty for
        /// the legacy 2-D space).
        axes: AxesTrace,
    },
    /// The change detector reported a workload change during supervision.
    ChangeDetected { at_ns: u64 },
    /// The fault layer injected a fault at a site of `kind`; `seq` is the
    /// 1-based injection number within the kind, `delay_ns` the configured
    /// stall/jitter magnitude (0 for abort/panic/fail kinds).
    FaultInjected { kind: FaultKind, seq: u64, delay_ns: u64, at_ns: u64 },
    /// A supervised application worker's transaction body panicked;
    /// `restarts` counts panics absorbed so far across the system.
    WorkerPanicked { worker: u32, restarts: u64, at_ns: u64 },
    /// Applying `(t, c)` kept failing after bounded retries; the controller
    /// fell back to the last-known-good `(fb_t, fb_c)`.
    ApplyDegraded { t: u32, c: u32, fb_t: u32, fb_c: u32, attempts: u32 },
    /// The measurement watchdog force-closed a window that outlived its hard
    /// deadline (the adaptive timeout never fired — e.g. a stalled system).
    WatchdogFired { at_ns: u64 },
    /// The contention manager delayed a retry: `policy` decided a wait of
    /// `waited_ns` at abort site `site`, `attempt` aborts into the chain.
    /// Emitted only for nonzero waits — the `Immediate` rung (and winners
    /// under karma/greedy) stay off the bus.
    CmDecision { policy: CmMode, site: AbortSite, waited_ns: u64, attempt: u64, at_ns: u64 },
    /// A GC cycle finished: the version-heap gauge stood at
    /// `retained_versions`/`retained_bytes` after pruning `pruned` versions
    /// over `slices` bounded slices. `urgent` marks ladder-triggered cycles.
    MemPressure {
        retained_versions: u64,
        retained_bytes: u64,
        pruned: u64,
        slices: u64,
        urgent: bool,
        at_ns: u64,
    },
    /// The memory degradation ladder moved between levels (escalation or
    /// recovery) at a gauge reading of `retained_versions`.
    MemDegraded { from: MemLevel, to: MemLevel, retained_versions: u64, at_ns: u64 },
    /// A ledger block of `txns` transactions committed in deterministic
    /// index order after `reexecutions` incarnation re-runs (0 on the
    /// sequential rung).
    BlockCommitted { txns: u32, reexecutions: u32, at_ns: u64 },
    /// Block-STM validation aborted a transaction: `txn_idx` will re-run as
    /// `incarnation` (the first re-execution is incarnation 1).
    TxnReexecuted { txn_idx: u32, incarnation: u32, at_ns: u64 },
    /// One ingress monitoring window closed: `offered` requests arrived
    /// (per the open-loop schedule), `completed` finished, `rejected` hit
    /// the queue ceiling (typed backpressure, counted as SLO misses).
    /// Latency percentiles are measured from *intended arrival* — the
    /// scheduled arrival instant, not the dequeue instant — so the figures
    /// are coordinated-omission-free. `goodput` is completed requests per
    /// second over `window_ns`.
    IngressWindow {
        at_ns: u64,
        window_ns: u64,
        offered: u64,
        completed: u64,
        rejected: u64,
        goodput: f64,
        p50_ns: u64,
        p99_ns: u64,
        p999_ns: u64,
    },
}

fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&x.to_string());
    } else {
        out.push_str("null");
    }
}

fn push_opt_f64(out: &mut String, x: Option<f64>) {
    match x {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

impl TraceEvent {
    /// Short event-type tag (the `"ev"` field of the JSON schema).
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::TxBegin { .. } => "tx_begin",
            TraceEvent::TxCommit { .. } => "tx_commit",
            TraceEvent::TxAbort { .. } => "tx_abort",
            TraceEvent::SemWait { .. } => "sem_wait",
            TraceEvent::CommitStripeContention { .. } => "commit_stripe_contention",
            TraceEvent::ReadPath { .. } => "read_path",
            TraceEvent::SchedBatch { .. } => "sched_batch",
            TraceEvent::Reconfigure { .. } => "reconfigure",
            TraceEvent::WindowOpen { .. } => "window_open",
            TraceEvent::WindowSample { .. } => "window_sample",
            TraceEvent::WindowClose { .. } => "window_close",
            TraceEvent::Proposal { .. } => "proposal",
            TraceEvent::OptimizerPhase { .. } => "optimizer_phase",
            TraceEvent::SessionStart { .. } => "session_start",
            TraceEvent::SessionEnd { .. } => "session_end",
            TraceEvent::ChangeDetected { .. } => "change_detected",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::WorkerPanicked { .. } => "worker_panicked",
            TraceEvent::ApplyDegraded { .. } => "apply_degraded",
            TraceEvent::WatchdogFired { .. } => "watchdog_fired",
            TraceEvent::CmDecision { .. } => "cm_decision",
            TraceEvent::MemPressure { .. } => "mem_pressure",
            TraceEvent::MemDegraded { .. } => "mem_degraded",
            TraceEvent::BlockCommitted { .. } => "block_committed",
            TraceEvent::TxnReexecuted { .. } => "txn_reexecuted",
            TraceEvent::IngressWindow { .. } => "ingress_window",
        }
    }

    /// Append this event as one JSON object (no trailing newline). The
    /// schema is documented in `DESIGN.md`; keys are stable.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let kind_str = |k: &TxKind| match k {
            TxKind::TopLevel => "top",
            TxKind::Nested => "nested",
        };
        let _ = write!(out, "{{\"ev\":\"{}\"", self.tag());
        match *self {
            TraceEvent::TxBegin { kind, at_ns } => {
                let _ = write!(out, ",\"kind\":\"{}\",\"at_ns\":{at_ns}", kind_str(&kind));
            }
            TraceEvent::TxCommit { kind, retries, at_ns }
            | TraceEvent::TxAbort { kind, retries, at_ns } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"{}\",\"retries\":{retries},\"at_ns\":{at_ns}",
                    kind_str(&kind)
                );
            }
            TraceEvent::SemWait { wait_ns } => {
                let _ = write!(out, ",\"wait_ns\":{wait_ns}");
            }
            TraceEvent::CommitStripeContention { stripes, contended, at_ns } => {
                let _ = write!(
                    out,
                    ",\"stripes\":{stripes},\"contended\":{contended},\"at_ns\":{at_ns}"
                );
            }
            TraceEvent::ReadPath { filter_hits, filter_misses, slow_path, at_ns } => {
                let _ = write!(
                    out,
                    ",\"filter_hits\":{filter_hits},\"filter_misses\":{filter_misses},\"slow_path\":{slow_path},\"at_ns\":{at_ns}"
                );
            }
            TraceEvent::SchedBatch { tasks, stolen, overflowed, at_ns } => {
                let _ = write!(
                    out,
                    ",\"tasks\":{tasks},\"stolen\":{stolen},\"overflowed\":{overflowed},\"at_ns\":{at_ns}"
                );
            }
            TraceEvent::Reconfigure { from, to, axes } => {
                let _ = write!(out, ",\"from\":[{},{}],\"to\":[{},{}]", from.0, from.1, to.0, to.1);
                axes.write_json(out);
            }
            TraceEvent::WindowOpen { at_ns }
            | TraceEvent::ChangeDetected { at_ns }
            | TraceEvent::WatchdogFired { at_ns } => {
                let _ = write!(out, ",\"at_ns\":{at_ns}");
            }
            TraceEvent::WindowSample { at_ns, cv } => {
                let _ = write!(out, ",\"at_ns\":{at_ns},\"cv\":");
                push_opt_f64(out, cv);
            }
            TraceEvent::WindowClose { at_ns, commits, window_ns, throughput, timed_out, cv } => {
                let _ = write!(
                    out,
                    ",\"at_ns\":{at_ns},\"commits\":{commits},\"window_ns\":{window_ns},\"throughput\":"
                );
                push_f64(out, throughput);
                let _ = write!(out, ",\"timed_out\":{timed_out},\"cv\":");
                push_opt_f64(out, cv);
            }
            TraceEvent::Proposal { t, c, relative_ei, axes } => {
                let _ = write!(out, ",\"t\":{t},\"c\":{c},\"relative_ei\":");
                push_opt_f64(out, relative_ei);
                axes.write_json(out);
            }
            TraceEvent::OptimizerPhase { from, to } => {
                let _ = write!(out, ",\"from\":\"{from}\",\"to\":\"{to}\"");
            }
            TraceEvent::SessionStart { at_ns } => {
                let _ = write!(out, ",\"at_ns\":{at_ns}");
            }
            TraceEvent::SessionEnd {
                at_ns,
                best_t,
                best_c,
                throughput,
                explored,
                fallback,
                degraded,
                axes,
            } => {
                let _ = write!(
                    out,
                    ",\"at_ns\":{at_ns},\"best_t\":{best_t},\"best_c\":{best_c},\"throughput\":"
                );
                push_f64(out, throughput);
                let _ = write!(
                    out,
                    ",\"explored\":{explored},\"fallback\":{fallback},\"degraded\":{degraded}"
                );
                axes.write_json(out);
            }
            TraceEvent::FaultInjected { kind, seq, delay_ns, at_ns } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"{}\",\"seq\":{seq},\"delay_ns\":{delay_ns},\"at_ns\":{at_ns}",
                    kind.tag()
                );
            }
            TraceEvent::WorkerPanicked { worker, restarts, at_ns } => {
                let _ =
                    write!(out, ",\"worker\":{worker},\"restarts\":{restarts},\"at_ns\":{at_ns}");
            }
            TraceEvent::ApplyDegraded { t, c, fb_t, fb_c, attempts } => {
                let _ = write!(
                    out,
                    ",\"t\":{t},\"c\":{c},\"fb_t\":{fb_t},\"fb_c\":{fb_c},\"attempts\":{attempts}"
                );
            }
            TraceEvent::CmDecision { policy, site, waited_ns, attempt, at_ns } => {
                let _ = write!(
                    out,
                    ",\"policy\":\"{}\",\"site\":\"{}\",\"waited_ns\":{waited_ns},\"attempt\":{attempt},\"at_ns\":{at_ns}",
                    policy.tag(),
                    site.tag()
                );
            }
            TraceEvent::MemPressure {
                retained_versions,
                retained_bytes,
                pruned,
                slices,
                urgent,
                at_ns,
            } => {
                let _ = write!(
                    out,
                    ",\"retained_versions\":{retained_versions},\"retained_bytes\":{retained_bytes},\"pruned\":{pruned},\"slices\":{slices},\"urgent\":{urgent},\"at_ns\":{at_ns}"
                );
            }
            TraceEvent::MemDegraded { from, to, retained_versions, at_ns } => {
                let _ = write!(
                    out,
                    ",\"from\":\"{}\",\"to\":\"{}\",\"retained_versions\":{retained_versions},\"at_ns\":{at_ns}",
                    from.tag(),
                    to.tag()
                );
            }
            TraceEvent::BlockCommitted { txns, reexecutions, at_ns } => {
                let _ = write!(
                    out,
                    ",\"txns\":{txns},\"reexecutions\":{reexecutions},\"at_ns\":{at_ns}"
                );
            }
            TraceEvent::TxnReexecuted { txn_idx, incarnation, at_ns } => {
                let _ = write!(
                    out,
                    ",\"txn_idx\":{txn_idx},\"incarnation\":{incarnation},\"at_ns\":{at_ns}"
                );
            }
            TraceEvent::IngressWindow {
                at_ns,
                window_ns,
                offered,
                completed,
                rejected,
                goodput,
                p50_ns,
                p99_ns,
                p999_ns,
            } => {
                let _ = write!(
                    out,
                    ",\"at_ns\":{at_ns},\"window_ns\":{window_ns},\"offered\":{offered},\"completed\":{completed},\"rejected\":{rejected},\"goodput\":"
                );
                push_f64(out, goodput);
                let _ =
                    write!(out, ",\"p50_ns\":{p50_ns},\"p99_ns\":{p99_ns},\"p999_ns\":{p999_ns}");
            }
        }
        out.push('}');
    }

    /// This event as a JSON string.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_json(&mut s);
        s
    }
}

/// Consumer of trace events. Implementations must tolerate concurrent
/// `record` calls from many threads.
pub trait TraceSink: Send + Sync {
    fn record(&self, ev: &TraceEvent);
    /// Flush any buffering to the backing store. Default: no-op.
    fn flush(&self) {}
}

#[derive(Default)]
struct BusInner {
    /// True iff at least one sink is subscribed — the only state the
    /// disabled fast path reads.
    active: AtomicBool,
    sinks: RwLock<Vec<Arc<dyn TraceSink>>>,
}

/// Fan-out bus for [`TraceEvent`]s. Cheap to clone (`Arc` inside); clones
/// share subscriptions. A bus with no sinks costs one relaxed atomic load
/// per [`TraceBus::emit`].
#[derive(Clone, Default)]
pub struct TraceBus {
    inner: Arc<BusInner>,
}

impl TraceBus {
    /// A bus with no subscribers (tracing disabled until one subscribes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any sink is subscribed. Use to skip *constructing* expensive
    /// events; [`TraceBus::emit`] performs the same check itself.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Attach a sink; enables the bus.
    pub fn subscribe(&self, sink: Arc<dyn TraceSink>) {
        let mut sinks = self.inner.sinks.write();
        sinks.push(sink);
        self.inner.active.store(true, Ordering::Release);
    }

    /// Detach all sinks; the bus returns to the disabled fast path.
    pub fn clear_sinks(&self) {
        let mut sinks = self.inner.sinks.write();
        self.inner.active.store(false, Ordering::Release);
        sinks.clear();
    }

    /// Publish an event to every subscribed sink (no-op when disabled).
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if self.inner.active.load(Ordering::Relaxed) {
            self.emit_slow(ev);
        }
    }

    #[cold]
    fn emit_slow(&self, ev: TraceEvent) {
        for sink in self.inner.sinks.read().iter() {
            sink.record(&ev);
        }
    }

    /// Flush every subscribed sink.
    pub fn flush(&self) {
        for sink in self.inner.sinks.read().iter() {
            sink.flush();
        }
    }
}

impl std::fmt::Debug for TraceBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBus")
            .field("enabled", &self.is_enabled())
            .field("sinks", &self.inner.sinks.read().len())
            .finish()
    }
}

/// Unbounded in-memory sink for tests: collect events, then assert on them.
#[derive(Default)]
pub struct TestSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl TestSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all recorded events in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Drain the recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl TraceSink for TestSink {
    fn record(&self, ev: &TraceEvent) {
        self.events.lock().push(*ev);
    }
}

struct RingState {
    /// Pre-reserved to `capacity`; pushes never reallocate.
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    overwritten: u64,
}

/// Fixed-capacity flight recorder: keeps the most recent events, overwriting
/// the oldest. The record path takes a short mutex but never allocates.
pub struct RingSink {
    capacity: usize,
    state: Mutex<RingState>,
}

impl RingSink {
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            state: Mutex::new(RingState {
                buf: Vec::with_capacity(capacity),
                head: 0,
                overwritten: 0,
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events were overwritten because the ring was full.
    pub fn overwritten(&self) -> u64 {
        self.state.lock().overwritten
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let st = self.state.lock();
        let mut out = Vec::with_capacity(st.buf.len());
        out.extend_from_slice(&st.buf[st.head..]);
        out.extend_from_slice(&st.buf[..st.head]);
        out
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: &TraceEvent) {
        let mut st = self.state.lock();
        if st.buf.len() < self.capacity {
            st.buf.push(*ev);
        } else {
            let head = st.head;
            st.buf[head] = *ev;
            st.head = (head + 1) % self.capacity;
            st.overwritten += 1;
        }
    }
}

/// Writes one JSON object per event, newline-delimited (JSONL), to any
/// writer. Buffered; call [`TraceSink::flush`] (or drop the sink) to make
/// the tail visible.
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// Trace to a freshly created (truncated) file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::fs::File::create(path)?))
    }

    /// Trace to an arbitrary writer.
    pub fn new(w: impl Write + Send + 'static) -> Self {
        Self { out: Mutex::new(std::io::BufWriter::new(Box::new(w))) }
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, ev: &TraceEvent) {
        let mut line = ev.to_json();
        line.push('\n');
        let _ = self.out.lock().write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_disabled_until_subscribed() {
        let bus = TraceBus::new();
        assert!(!bus.is_enabled());
        bus.emit(TraceEvent::SemWait { wait_ns: 1 }); // goes nowhere
        let sink = Arc::new(TestSink::new());
        bus.subscribe(sink.clone());
        assert!(bus.is_enabled());
        bus.emit(TraceEvent::SemWait { wait_ns: 2 });
        assert_eq!(sink.events(), vec![TraceEvent::SemWait { wait_ns: 2 }]);
        bus.clear_sinks();
        assert!(!bus.is_enabled());
        bus.emit(TraceEvent::SemWait { wait_ns: 3 });
        assert_eq!(sink.len(), 1, "cleared sink no longer receives");
    }

    #[test]
    fn clones_share_subscriptions() {
        let bus = TraceBus::new();
        let clone = bus.clone();
        let sink = Arc::new(TestSink::new());
        bus.subscribe(sink.clone());
        clone.emit(TraceEvent::WindowOpen { at_ns: 7 });
        assert_eq!(sink.events(), vec![TraceEvent::WindowOpen { at_ns: 7 }]);
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let ring = RingSink::with_capacity(3);
        for i in 0..5u64 {
            ring.record(&TraceEvent::SemWait { wait_ns: i });
        }
        assert_eq!(
            ring.snapshot(),
            vec![
                TraceEvent::SemWait { wait_ns: 2 },
                TraceEvent::SemWait { wait_ns: 3 },
                TraceEvent::SemWait { wait_ns: 4 },
            ]
        );
        assert_eq!(ring.overwritten(), 2);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn events_format_as_json_objects() {
        let evs = [
            TraceEvent::TxBegin { kind: TxKind::TopLevel, at_ns: 5 },
            TraceEvent::TxCommit { kind: TxKind::Nested, retries: 2, at_ns: 9 },
            TraceEvent::TxAbort { kind: TxKind::TopLevel, retries: 1, at_ns: 11 },
            TraceEvent::SemWait { wait_ns: 1500 },
            TraceEvent::CommitStripeContention { stripes: 4, contended: 1, at_ns: 6 },
            TraceEvent::ReadPath { filter_hits: 2, filter_misses: 30, slow_path: 2, at_ns: 8 },
            TraceEvent::SchedBatch { tasks: 8, stolen: 3, overflowed: 0, at_ns: 9 },
            TraceEvent::Reconfigure { from: (4, 1), to: (2, 2), axes: AxesTrace::empty() },
            TraceEvent::WindowOpen { at_ns: 1 },
            TraceEvent::WindowSample { at_ns: 2, cv: Some(0.25) },
            TraceEvent::WindowClose {
                at_ns: 3,
                commits: 10,
                window_ns: 100,
                throughput: 1e8,
                timed_out: false,
                cv: None,
            },
            TraceEvent::Proposal { t: 6, c: 2, relative_ei: Some(0.5), axes: AxesTrace::empty() },
            TraceEvent::OptimizerPhase { from: "smbo", to: "hill-climb" },
            TraceEvent::SessionStart { at_ns: 0 },
            TraceEvent::SessionEnd {
                at_ns: 10,
                best_t: 6,
                best_c: 2,
                throughput: 123.0,
                explored: 17,
                fallback: false,
                degraded: false,
                axes: AxesTrace::empty(),
            },
            TraceEvent::ChangeDetected { at_ns: 42 },
            TraceEvent::FaultInjected {
                kind: FaultKind::ValidationAbort,
                seq: 3,
                delay_ns: 0,
                at_ns: 50,
            },
            TraceEvent::WorkerPanicked { worker: 2, restarts: 5, at_ns: 60 },
            TraceEvent::ApplyDegraded { t: 8, c: 4, fb_t: 2, fb_c: 1, attempts: 4 },
            TraceEvent::WatchdogFired { at_ns: 70 },
            TraceEvent::CmDecision {
                policy: CmMode::ExpBackoff,
                site: AbortSite::Commit,
                waited_ns: 40_000,
                attempt: 2,
                at_ns: 80,
            },
            TraceEvent::MemPressure {
                retained_versions: 1024,
                retained_bytes: 16_384,
                pruned: 12,
                slices: 3,
                urgent: false,
                at_ns: 90,
            },
            TraceEvent::MemDegraded {
                from: MemLevel::Normal,
                to: MemLevel::Soft,
                retained_versions: 2048,
                at_ns: 91,
            },
            TraceEvent::BlockCommitted { txns: 128, reexecutions: 7, at_ns: 92 },
            TraceEvent::TxnReexecuted { txn_idx: 17, incarnation: 2, at_ns: 93 },
            TraceEvent::IngressWindow {
                at_ns: 94,
                window_ns: 1_000_000,
                offered: 1000,
                completed: 990,
                rejected: 10,
                goodput: 990_000.0,
                p50_ns: 2_047,
                p99_ns: 65_535,
                p999_ns: 524_287,
            },
        ];
        for ev in evs {
            let json = ev.to_json();
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert!(json.contains(&format!("\"ev\":\"{}\"", ev.tag())), "{json}");
        }
        assert_eq!(
            TraceEvent::Reconfigure { from: (4, 1), to: (2, 2), axes: AxesTrace::empty() }
                .to_json(),
            r#"{"ev":"reconfigure","from":[4,1],"to":[2,2]}"#,
            "empty axes must keep the legacy JSON byte-identical"
        );
        let mut axes = AxesTrace::empty();
        axes.push("cm", 2, "karma");
        axes.push("gc_boxes", 64, "");
        assert_eq!(
            TraceEvent::Reconfigure { from: (4, 1), to: (2, 2), axes }.to_json(),
            r#"{"ev":"reconfigure","from":[4,1],"to":[2,2],"axes":{"cm":"karma","gc_boxes":64}}"#
        );
        assert_eq!(axes.len(), 2);
        assert_eq!(axes.get("gc_boxes").map(|a| a.value), Some(64));
        assert!(axes.get("block").is_none());
        assert_eq!(
            TraceEvent::WindowSample { at_ns: 2, cv: None }.to_json(),
            r#"{"ev":"window_sample","at_ns":2,"cv":null}"#
        );
        assert_eq!(
            TraceEvent::CommitStripeContention { stripes: 4, contended: 1, at_ns: 6 }.to_json(),
            r#"{"ev":"commit_stripe_contention","stripes":4,"contended":1,"at_ns":6}"#
        );
        assert_eq!(
            TraceEvent::ReadPath { filter_hits: 2, filter_misses: 30, slow_path: 2, at_ns: 8 }
                .to_json(),
            r#"{"ev":"read_path","filter_hits":2,"filter_misses":30,"slow_path":2,"at_ns":8}"#
        );
        assert_eq!(
            TraceEvent::SchedBatch { tasks: 8, stolen: 3, overflowed: 0, at_ns: 9 }.to_json(),
            r#"{"ev":"sched_batch","tasks":8,"stolen":3,"overflowed":0,"at_ns":9}"#
        );
        assert_eq!(
            TraceEvent::FaultInjected {
                kind: FaultKind::CommitHold,
                seq: 1,
                delay_ns: 250,
                at_ns: 9
            }
            .to_json(),
            r#"{"ev":"fault_injected","kind":"commit-hold","seq":1,"delay_ns":250,"at_ns":9}"#
        );
        assert_eq!(
            TraceEvent::CmDecision {
                policy: CmMode::Greedy,
                site: AbortSite::Nested,
                waited_ns: 200_000,
                attempt: 1,
                at_ns: 12,
            }
            .to_json(),
            r#"{"ev":"cm_decision","policy":"greedy","site":"nested","waited_ns":200000,"attempt":1,"at_ns":12}"#
        );
        assert_eq!(
            TraceEvent::MemPressure {
                retained_versions: 7,
                retained_bytes: 112,
                pruned: 4,
                slices: 2,
                urgent: true,
                at_ns: 13,
            }
            .to_json(),
            r#"{"ev":"mem_pressure","retained_versions":7,"retained_bytes":112,"pruned":4,"slices":2,"urgent":true,"at_ns":13}"#
        );
        assert_eq!(
            TraceEvent::MemDegraded {
                from: MemLevel::Soft,
                to: MemLevel::Hard,
                retained_versions: 99,
                at_ns: 14,
            }
            .to_json(),
            r#"{"ev":"mem_degraded","from":"soft","to":"hard","retained_versions":99,"at_ns":14}"#
        );
        assert_eq!(
            TraceEvent::BlockCommitted { txns: 128, reexecutions: 7, at_ns: 92 }.to_json(),
            r#"{"ev":"block_committed","txns":128,"reexecutions":7,"at_ns":92}"#
        );
        assert_eq!(
            TraceEvent::TxnReexecuted { txn_idx: 17, incarnation: 2, at_ns: 93 }.to_json(),
            r#"{"ev":"txn_reexecuted","txn_idx":17,"incarnation":2,"at_ns":93}"#
        );
        assert_eq!(
            TraceEvent::IngressWindow {
                at_ns: 94,
                window_ns: 1_000_000,
                offered: 1000,
                completed: 990,
                rejected: 10,
                goodput: 990_000.0,
                p50_ns: 2_047,
                p99_ns: 65_535,
                p999_ns: 524_287,
            }
            .to_json(),
            r#"{"ev":"ingress_window","at_ns":94,"window_ns":1000000,"offered":1000,"completed":990,"rejected":10,"goodput":990000,"p50_ns":2047,"p99_ns":65535,"p999_ns":524287}"#
        );
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Shared(buf.clone()));
        sink.record(&TraceEvent::SemWait { wait_ns: 10 });
        sink.record(&TraceEvent::WindowOpen { at_ns: 20 });
        sink.flush();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn trace_clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn concurrent_emitters_do_not_lose_events() {
        let bus = TraceBus::new();
        let sink = Arc::new(TestSink::new());
        bus.subscribe(sink.clone());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let bus = bus.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    bus.emit(TraceEvent::SemWait { wait_ns: t * 1000 + i });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.len(), 1000);
    }
}
