//! TL2-style striped ownership table for the top-level commit path.
//!
//! Every [`crate::VBox`] hashes to one of [`STRIPE_COUNT`] stripes. A stripe
//! is a single versioned-lock word (`AtomicU64`): bit 63 is the lock bit, the
//! low 63 bits are the **version stamp** — the global commit version of the
//! newest commit that installed a write into any box of the stripe.
//!
//! The commit protocol (`Txn::commit_top` in striped mode) uses the table as
//! follows:
//!
//! 1. **Acquire** the stripes of the write set in canonical (sorted index)
//!    order — two committers that contend on any stripe subset always lock in
//!    the same global order, so lock acquisition cannot deadlock.
//! 2. **Validate** the read set against the stripe stamps: a read of box `b`
//!    at snapshot `rv` is still valid iff `b`'s stripe is not locked by
//!    another committer and its stamp is `<= rv`. Stamp validation is
//!    deliberately coarser than per-box validation: two distinct boxes on the
//!    same stripe can produce a *false conflict*, which costs a retry but
//!    never admits a non-serializable history (see
//!    `crate::stats::StatsSnapshot::stripe_false_conflicts`).
//! 3. **Stamp** the held stripes with the commit version on release; an
//!    aborted attempt releases without touching the stamp.
//!
//! The table never blocks readers: transactional reads are served from the
//! multi-version chains and consult no stripe.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::vbox::BoxId;

/// Number of stripes in the commit ownership table (power of two).
///
/// 256 stripes keep the table at 2 KiB while making accidental collisions
/// rare for realistic write sets; the stripe-collision property tests
/// deliberately construct colliding boxes to exercise the false-conflict
/// path.
pub const STRIPE_COUNT: usize = 256;

const LOCK_BIT: u64 = 1 << 63;
const STAMP_MASK: u64 = LOCK_BIT - 1;

/// The stripe a box hashes to. Pure function of the box id (SplitMix64
/// finalizer, masked to [`STRIPE_COUNT`]); exposed so tests and diagnostics
/// can construct deliberately colliding or deliberately disjoint box sets.
#[inline]
pub fn stripe_of(id: BoxId) -> usize {
    let mut z = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) & (STRIPE_COUNT as u64 - 1)) as usize
}

/// The commit ownership table: one versioned-lock word per stripe.
pub(crate) struct StripeTable {
    words: Vec<AtomicU64>,
}

impl StripeTable {
    pub(crate) fn new() -> Self {
        Self { words: (0..STRIPE_COUNT).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Acquire the given stripes, which **must** be sorted and deduplicated
    /// (the canonical order that makes acquisition deadlock-free). Returns
    /// how many of them were contended (needed at least one retry).
    pub(crate) fn acquire_sorted(&self, stripes: &[usize]) -> u32 {
        debug_assert!(stripes.windows(2).all(|w| w[0] < w[1]), "stripes not sorted/deduped");
        let mut contended = 0u32;
        for &s in stripes {
            let word = &self.words[s];
            let mut waited = false;
            loop {
                let w = word.load(Ordering::Relaxed);
                if w & LOCK_BIT == 0
                    && word
                        .compare_exchange_weak(
                            w,
                            w | LOCK_BIT,
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    break;
                }
                waited = true;
                // The holder is mid-commit (install + ordered publication);
                // on oversubscribed machines spinning starves it, so yield.
                std::hint::spin_loop();
                std::thread::yield_now();
            }
            contended += u32::from(waited);
        }
        contended
    }

    /// Validate one read: the stripe of the read box must carry a stamp
    /// `<= rv` and must not be locked by another committer. `held` is the
    /// caller's own sorted acquired-stripe list (a stripe locked by the
    /// validating transaction itself is judged by its stamp alone).
    #[inline]
    pub(crate) fn read_valid(&self, stripe: usize, rv: u64, held: &[usize]) -> bool {
        let w = self.words[stripe].load(Ordering::Acquire);
        if w & LOCK_BIT != 0 && held.binary_search(&stripe).is_err() {
            return false; // another committer is installing into this stripe
        }
        (w & STAMP_MASK) <= rv
    }

    /// Release after a successful commit: stamp each stripe with the commit
    /// `version` (strictly newer than any prior stamp of the stripe, because
    /// writers of a stripe serialize on its lock and reserve their versions
    /// while holding it) and clear the lock bit in the same store.
    pub(crate) fn release_committed(&self, stripes: &[usize], version: u64) {
        debug_assert_eq!(version & LOCK_BIT, 0, "commit version overflows the stamp");
        for &s in stripes {
            debug_assert!(self.words[s].load(Ordering::Relaxed) & LOCK_BIT != 0);
            self.words[s].store(version, Ordering::Release);
        }
    }

    /// Release after an aborted attempt: clear the lock bit, keep the stamp.
    pub(crate) fn release_aborted(&self, stripes: &[usize]) {
        for &s in stripes {
            self.words[s].fetch_and(!LOCK_BIT, Ordering::Release);
        }
    }

    /// Current stamp of a stripe (introspection/tests).
    #[cfg(test)]
    pub(crate) fn stamp(&self, stripe: usize) -> u64 {
        self.words[stripe].load(Ordering::Relaxed) & STAMP_MASK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_of_is_stable_and_in_range() {
        for id in 0..10_000u64 {
            let s = stripe_of(id);
            assert!(s < STRIPE_COUNT);
            assert_eq!(s, stripe_of(id), "stripe_of must be pure");
        }
    }

    #[test]
    fn stripe_of_spreads_ids() {
        use std::collections::HashSet;
        let hit: HashSet<usize> = (0..4096u64).map(stripe_of).collect();
        assert!(hit.len() > STRIPE_COUNT / 2, "only {} stripes hit", hit.len());
    }

    #[test]
    fn acquire_release_round_trip() {
        let t = StripeTable::new();
        let stripes = [3usize, 7, 250];
        assert_eq!(t.acquire_sorted(&stripes), 0, "uncontended acquisition");
        t.release_committed(&stripes, 42);
        for &s in &stripes {
            assert_eq!(t.stamp(s), 42);
            assert!(t.read_valid(s, 42, &[]));
            assert!(!t.read_valid(s, 41, &[]), "stamp 42 invalidates snapshot 41");
        }
    }

    #[test]
    fn aborted_release_keeps_stamp() {
        let t = StripeTable::new();
        t.acquire_sorted(&[5]);
        t.release_committed(&[5], 9);
        t.acquire_sorted(&[5]);
        t.release_aborted(&[5]);
        assert_eq!(t.stamp(5), 9, "abort must not advance the stamp");
        assert!(t.read_valid(5, 9, &[]));
    }

    #[test]
    fn locked_stripe_fails_validation_for_others_only() {
        let t = StripeTable::new();
        t.acquire_sorted(&[11]);
        assert!(!t.read_valid(11, u64::MAX, &[]), "foreign lock invalidates");
        assert!(t.read_valid(11, 0, &[11]), "own lock is judged by stamp");
        t.release_aborted(&[11]);
        assert!(t.read_valid(11, 0, &[]));
    }

    #[test]
    fn contention_is_counted() {
        use std::sync::Arc;
        let t = Arc::new(StripeTable::new());
        t.acquire_sorted(&[99]);
        let t2 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || t2.acquire_sorted(&[99]));
        std::thread::sleep(std::time::Duration::from_millis(20));
        t.release_committed(&[99], 1);
        assert_eq!(waiter.join().unwrap(), 1, "blocked acquisition counts as contended");
        t.release_aborted(&[99]);
    }

    #[test]
    fn concurrent_disjoint_acquisition_never_blocks() {
        use std::sync::Arc;
        let t = Arc::new(StripeTable::new());
        let mut handles = Vec::new();
        for s in 0..8usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for v in 1..=100u64 {
                    t.acquire_sorted(&[s]);
                    t.release_committed(&[s], v);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for s in 0..8usize {
            assert_eq!(t.stamp(s), 100);
        }
    }
}
