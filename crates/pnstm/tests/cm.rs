//! Contention-manager integration: the CM rungs observed through the public
//! API, at every abort site. The unit tests in `src/cm.rs` pin the pure
//! decision math; these tests pin the *wiring* — waits actually happen (and
//! show up in stats), admission tokens are surrendered across long waits,
//! and shutdown cuts a parked backoff short.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pnstm::{child, CmMode, ParallelismDegree, Stm, StmConfig, StmError, TxError, TxResult};

#[test]
fn nested_sibling_conflicts_back_off_instead_of_hot_spinning() {
    // 48 children read-modify-write one hot box under c = 8: every batch is
    // a sibling-conflict storm. Under ExpBackoff the losers must *wait*
    // between attempts (visible in the CM stats) instead of burning their
    // whole 10k-attempt nested-retry budget hot-spinning against the winner.
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(1, 8),
        worker_threads: 8,
        cm_mode: CmMode::ExpBackoff,
        retry_backoff: Duration::from_micros(30),
        ..StmConfig::default()
    });
    let hot = stm.new_vbox(0i64);
    let total = stm
        .atomic({
            let hot = hot.clone();
            move |tx| {
                let tasks = (0..48)
                    .map(|_| {
                        let b = hot.clone();
                        child(move |ct| {
                            let v = ct.read(&b);
                            // Hold the read open long enough for siblings to
                            // overlap: tiny bodies can serialize by accident
                            // and dodge the conflict this test is about.
                            std::thread::sleep(Duration::from_micros(200));
                            ct.write(&b, v + 1);
                            Ok(())
                        })
                    })
                    .collect();
                tx.parallel::<()>(tasks)?;
                Ok(tx.read(&hot))
            }
        })
        .expect("hot-box batch commits");
    assert_eq!(total, 48);
    assert_eq!(stm.read_atomic(&hot), 48);

    let snap = stm.stats().snapshot();
    assert!(snap.nested_aborts > 0, "a 48-way hot-box batch must see sibling conflicts");
    assert!(
        snap.cm_policy_waits[CmMode::ExpBackoff.index()] > 0,
        "nested losers must consult the CM and wait: {:?}",
        snap.cm_policy_waits
    );
    assert!(snap.cm_wait_total_ns > 0);
    // The regression bound: nowhere near the per-child retry budget. Before
    // the CM landed, storms like this burned thousands of immediate retries.
    assert!(
        snap.nested_aborts < 2_000,
        "sibling conflicts hot-spun {} times despite backoff",
        snap.nested_aborts
    );
}

#[test]
fn backing_off_writer_releases_its_admission_token() {
    // t = 1: a single admission token. A transaction entering a long CM wait
    // must surrender it so an unrelated transaction can run *during* the
    // wait — a parked loser holding the only token would serialize the whole
    // system behind its sleep.
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(1, 1),
        worker_threads: 1,
        cm_mode: CmMode::ExpBackoff,
        // Base far above PERMIT_RELEASE_THRESHOLD_NS: the first wait is
        // 50 ms ± 25 % jitter, so the token must be released.
        retry_backoff: Duration::from_millis(50),
        ..StmConfig::default()
    });
    let cell = stm.new_vbox(0i64);
    let in_backoff = Arc::new(AtomicBool::new(false));

    let loser = std::thread::spawn({
        let stm = stm.clone();
        let cell = cell.clone();
        let in_backoff = Arc::clone(&in_backoff);
        let attempts = AtomicU64::new(0);
        move || {
            stm.atomic(move |tx| {
                if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    // Force one abort so the CM schedules a long wait.
                    in_backoff.store(true, Ordering::Release);
                    return Err(TxError::Conflict);
                }
                tx.write(&cell, 7);
                Ok(())
            })
        }
    });

    while !in_backoff.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    // The loser is aborting / about to sleep ~50 ms. An unrelated
    // transaction must get the (sole) token and finish well inside that
    // window — if the sleeper kept it, this would block ~50 ms.
    let other = stm.new_vbox(0i64);
    let start = Instant::now();
    stm.atomic({
        let other = other.clone();
        move |tx| {
            tx.write(&other, 1);
            Ok(())
        }
    })
    .expect("unrelated transaction commits during the backoff");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(30),
        "unrelated txn waited {elapsed:?} behind a backing-off writer's token"
    );

    loser.join().unwrap().expect("loser retries and commits after its wait");
    assert_eq!(stm.read_atomic(&cell), 7);
    assert_eq!(stm.read_atomic(&other), 1);
    let snap = stm.stats().snapshot();
    assert!(snap.cm_policy_waits[CmMode::ExpBackoff.index()] >= 1);
}

#[test]
fn shutdown_during_cm_wait_returns_promptly() {
    // A transaction parked in a multi-second backoff is morally idle:
    // closing admission must wake it with `Shutdown` within a wait slice,
    // not after the full backoff elapses.
    let stm = Stm::new(StmConfig {
        worker_threads: 1,
        cm_mode: CmMode::ExpBackoff,
        retry_backoff: Duration::from_secs(3),
        ..StmConfig::default()
    });
    let in_backoff = Arc::new(AtomicBool::new(false));
    let sleeper = std::thread::spawn({
        let stm = stm.clone();
        let in_backoff = Arc::clone(&in_backoff);
        move || {
            stm.atomic(move |_tx| -> TxResult<()> {
                in_backoff.store(true, Ordering::Release);
                Err(TxError::Conflict)
            })
        }
    });
    while !in_backoff.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    // Give the aborting attempt a moment to actually enter its sleep.
    std::thread::sleep(Duration::from_millis(10));
    let closed_at = Instant::now();
    stm.close_admission();
    let result = sleeper.join().unwrap();
    let woke_after = closed_at.elapsed();
    assert_eq!(result, Err(StmError::Shutdown));
    assert!(
        woke_after < Duration::from_millis(500),
        "CM wait ignored shutdown for {woke_after:?} (backoff base is 3 s)"
    );
    stm.reopen_admission();
    // The instance stays usable after the aborted wait.
    let cell = stm.new_vbox(0i32);
    stm.atomic({
        let cell = cell.clone();
        move |tx| {
            tx.write(&cell, 1);
            Ok(())
        }
    })
    .expect("STM usable after reopen");
    assert_eq!(stm.read_atomic(&cell), 1);
}

#[test]
fn retry_backoff_config_is_absorbed_as_expbackoff() {
    // The deprecated `retry_backoff` knob keeps its damping semantics by
    // flipping the instance onto the ExpBackoff rung.
    let stm =
        Stm::new(StmConfig { retry_backoff: Duration::from_micros(40), ..StmConfig::default() });
    assert_eq!(stm.cm_mode(), CmMode::ExpBackoff);
    // Zero (the default) stays on Immediate; an explicit cm_mode wins.
    assert_eq!(Stm::new(StmConfig::default()).cm_mode(), CmMode::Immediate);
    let karma = Stm::new(StmConfig {
        retry_backoff: Duration::from_micros(40),
        cm_mode: CmMode::Karma,
        ..StmConfig::default()
    });
    assert_eq!(karma.cm_mode(), CmMode::Karma);
}

#[test]
fn cm_mode_is_switchable_at_runtime() {
    let stm = Stm::new(StmConfig::default());
    assert_eq!(stm.cm_mode(), CmMode::Immediate);
    for mode in CmMode::ALL {
        stm.set_cm_mode(mode);
        assert_eq!(stm.cm_mode(), mode);
        // The instance keeps committing under every rung.
        let cell = stm.new_vbox(0i64);
        stm.atomic({
            let cell = cell.clone();
            move |tx| {
                let v = tx.read(&cell);
                tx.write(&cell, v + 1);
                Ok(())
            }
        })
        .expect("commit under runtime-switched CM mode");
        assert_eq!(stm.read_atomic(&cell), 1);
    }
}
