//! Property tests of the execution-layer contract under concurrent resize:
//! whatever the worker count does mid-batch, every task of a
//! [`Scheduler::run_batch`] call runs exactly once, and the number of
//! concurrent executors of one batch never exceeds `helper_limit + 1` (the
//! helpers plus the calling thread, which is always an executor).
//!
//! Both rungs of the scheduler ladder are driven through the same trait
//! object, so a divergence between the mutex pool and the work-stealing
//! scheduler fails the same property.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use pnstm::{ChildPool, SchedMode, Scheduler, WorkStealingPool};

fn pool_of(mode: SchedMode, size: usize) -> Arc<dyn Scheduler> {
    match mode {
        SchedMode::Mutex => Arc::new(ChildPool::new(size)),
        SchedMode::WorkStealing => Arc::new(WorkStealingPool::new(size)),
    }
}

/// Run one batch of `n_tasks` counting tasks and return
/// `(per-task execution counts, peak concurrent executors)`.
fn run_counted_batch(
    pool: &Arc<dyn Scheduler>,
    n_tasks: usize,
    helper_limit: usize,
) -> (Vec<usize>, usize) {
    let counts: Arc<Vec<AtomicUsize>> =
        Arc::new((0..n_tasks).map(|_| AtomicUsize::new(0)).collect());
    let active = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let tasks: Vec<pnstm::Task> = (0..n_tasks)
        .map(|i| {
            let counts = Arc::clone(&counts);
            let active = Arc::clone(&active);
            let peak = Arc::clone(&peak);
            Box::new(move || {
                let now = active.fetch_add(1, Ordering::AcqRel) + 1;
                peak.fetch_max(now, Ordering::AcqRel);
                counts[i].fetch_add(1, Ordering::AcqRel);
                // Keep the task on-CPU briefly so helpers have a window to
                // pile in; a yield beats a sleep for case throughput.
                thread::yield_now();
                active.fetch_sub(1, Ordering::AcqRel);
            }) as pnstm::Task
        })
        .collect();
    pool.run_batch(tasks, helper_limit);
    let counts = counts.iter().map(|c| c.load(Ordering::Acquire)).collect();
    (counts, peak.load(Ordering::Acquire))
}

proptest! {
    // Default config: CI scales the case count via `PROPTEST_CASES`.

    /// Grow/shrink the worker count concurrently with a stream of batches:
    /// exactly-once execution and the helper cap must hold throughout, on
    /// both rungs of the scheduler ladder.
    #[test]
    fn resize_mid_batch_preserves_exactly_once_and_helper_cap(
        mode_ix in 0usize..2,
        initial in 0usize..5,
        sizes in proptest::collection::vec(0usize..6, 1..5),
        batches in proptest::collection::vec((1usize..24, 0usize..5), 1..6),
    ) {
        let mode = if mode_ix == 0 { SchedMode::Mutex } else { SchedMode::WorkStealing };
        let pool = pool_of(mode, initial);

        let stop = Arc::new(AtomicBool::new(false));
        let resizer = {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            let sizes = sizes.clone();
            thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    for &s in &sizes {
                        pool.resize(s);
                        thread::yield_now();
                    }
                }
            })
        };

        for &(n_tasks, helper_limit) in &batches {
            let (counts, peak) = run_counted_batch(&pool, n_tasks, helper_limit);
            prop_assert!(
                counts.iter().all(|&c| c == 1),
                "{mode:?}: tasks must run exactly once, got {counts:?}"
            );
            prop_assert!(
                peak <= helper_limit + 1,
                "{mode:?}: {peak} concurrent executors with helper_limit {helper_limit}"
            );
        }

        stop.store(true, Ordering::Release);
        resizer.join().unwrap();
        let last = *sizes.last().unwrap();
        pool.resize(last);
        prop_assert_eq!(pool.size(), last);
    }
}

/// After a shrink, surplus workers retire: `live_workers` converges to the
/// target once woken (bounded by the idle-wait backstop).
#[test]
fn shrink_retires_surplus_workers_on_both_rungs() {
    for mode in [SchedMode::Mutex, SchedMode::WorkStealing] {
        let pool = pool_of(mode, 6);
        pool.resize(1);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.live_workers() > 1 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        assert!(
            pool.live_workers() <= 1,
            "{mode:?}: {} workers still live after shrink to 1",
            pool.live_workers()
        );
        // And the pool still runs batches afterwards.
        let (counts, _) = run_counted_batch(&pool, 8, 2);
        assert!(counts.iter().all(|&c| c == 1), "{mode:?}: post-shrink batch misbehaved");
    }
}

/// A grow mid-wait takes effect: a zero-worker pool grown to `k` gains live
/// workers that then actually help drain a batch.
#[test]
fn grow_from_zero_supplies_helpers_on_both_rungs() {
    for mode in [SchedMode::Mutex, SchedMode::WorkStealing] {
        let pool = pool_of(mode, 0);
        assert_eq!(pool.live_workers(), 0, "{mode:?}");
        pool.resize(4);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.live_workers() < 4 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(pool.live_workers(), 4, "{mode:?}: grow did not spawn workers");
        let (counts, peak) = run_counted_batch(&pool, 16, 3);
        assert!(counts.iter().all(|&c| c == 1), "{mode:?}: grown pool lost or re-ran tasks");
        assert!(peak <= 4, "{mode:?}: helper cap violated after grow ({peak})");
    }
}
