//! Memory-robustness integration tests: version-heap GC correctness
//! (background vs inline differential oracle), snapshot-lease eviction
//! end-to-end, and the pressure-driven degradation ladder.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use pnstm::trace::TraceEvent;
use pnstm::{
    GcMode, MemConfig, MemLevel, ParallelismDegree, Stm, StmConfig, StmError, TestSink, VBox,
};

/// An STM whose GC driver and lease policy are the variables under test.
/// Auto-GC by commit interval is disabled so the tests drive sweeps
/// explicitly (or via the background thread's own wakeups).
fn stm_with_mem(mem: MemConfig) -> Stm {
    Stm::new(StmConfig {
        degree: ParallelismDegree::new(2, 1),
        worker_threads: 1,
        gc_interval: 0,
        mem,
        ..StmConfig::default()
    })
}

fn leases_off(gc_mode: GcMode) -> MemConfig {
    MemConfig { gc_mode, snapshot_lease: None, ..MemConfig::default() }
}

/// Deadline-bounded spin on a condition driven by another thread.
fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One step of a randomized single-threaded history over `slots` boxes.
#[derive(Debug, Clone)]
enum Step {
    /// Commit `slot += delta`.
    Write { slot: usize, delta: i64 },
    /// Run one full synchronous GC cycle.
    Gc,
}

fn steps(slots: usize) -> impl Strategy<Value = Vec<Step>> {
    // Slot index `slots` encodes a GC step (≈ 1 in `slots + 1` draws).
    proptest::collection::vec((0..slots + 1, -5i64..=5i64), 1..40).prop_map(move |ops| {
        ops.into_iter()
            .map(|(slot, delta)| if slot == slots { Step::Gc } else { Step::Write { slot, delta } })
            .collect()
    })
}

fn replay(mode: GcMode, slots: usize, history: &[Step]) -> (Vec<i64>, u64) {
    let stm = stm_with_mem(leases_off(mode));
    let boxes: Vec<VBox<i64>> = (0..slots).map(|_| stm.new_vbox(0i64)).collect();
    for step in history {
        match *step {
            Step::Write { slot, delta } => {
                stm.atomic(|tx| {
                    let v = tx.read(&boxes[slot]);
                    tx.write(&boxes[slot], v + delta);
                    Ok(())
                })
                .unwrap();
            }
            Step::Gc => {
                stm.gc();
            }
        }
    }
    stm.gc();
    let finals = boxes.iter().map(|b| stm.read_atomic(b)).collect();
    (finals, stm.heap_gauge().retained_versions())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Differential oracle: the background driver and the inline driver run
    /// the *same* sliced sweep, so replaying a history under each must end
    /// in identical box state — and with no snapshot pinning the watermark,
    /// a final sweep leaves exactly one retained version per box.
    #[test]
    fn background_and_inline_gc_replay_to_identical_state(history in steps(6)) {
        let (bg, bg_retained) = replay(GcMode::Background, 6, &history);
        let (inl, inl_retained) = replay(GcMode::Inline, 6, &history);
        prop_assert_eq!(&bg, &inl, "final box state diverged between GC drivers");
        prop_assert_eq!(bg_retained, 6, "background: final sweep must leave one version per box");
        prop_assert_eq!(inl_retained, 6, "inline: final sweep must leave one version per box");
    }

    /// Safety: a sweep never prunes a version a live, unexpired snapshot can
    /// read. A snapshot registered mid-history must read the exact values it
    /// pinned, no matter how many writes and full GC cycles follow.
    #[test]
    fn gc_never_prunes_versions_a_live_snapshot_reads(
        before in steps(5),
        after in steps(5),
    ) {
        let stm = stm_with_mem(leases_off(GcMode::Background));
        let boxes: Vec<VBox<i64>> = (0..5).map(|_| stm.new_vbox(0i64)).collect();
        let mut shadow = [0i64; 5];
        for step in &before {
            if let Step::Write { slot, delta } = *step {
                stm.atomic(|tx| {
                    let v = tx.read(&boxes[slot]);
                    tx.write(&boxes[slot], v + delta);
                    Ok(())
                })
                .unwrap();
                shadow[slot] += delta;
            }
        }
        stm.read_only(|snap| -> Result<(), TestCaseError> {
            for step in &after {
                match *step {
                    Step::Write { slot, delta } => {
                        stm.atomic(|tx| {
                            let v = tx.read(&boxes[slot]);
                            tx.write(&boxes[slot], v + delta);
                            Ok(())
                        })
                        .unwrap();
                    }
                    Step::Gc => {
                        stm.gc();
                    }
                }
            }
            stm.gc();
            prop_assert!(!snap.is_evicted(), "unleased snapshot must never be evicted");
            for (slot, b) in boxes.iter().enumerate() {
                let got = snap.try_read(b);
                prop_assert_eq!(
                    got, Ok(shadow[slot]),
                    "slot {} read a value the snapshot did not pin", slot
                );
            }
            Ok(())
        })?;
        let s = stm.stats().snapshot();
        prop_assert_eq!(s.snapshot_evictions, 0);
        prop_assert_eq!(s.read_below_floor, 0, "GC watermark invariant violated");
    }
}

/// End-to-end lease eviction: a parked reader outlives its lease, gets
/// evicted, observes `SnapshotEvicted` once the collector prunes past its
/// snapshot — and the version heap returns to steady state (one version per
/// box) even though the reader never finished.
#[test]
fn parked_reader_is_evicted_and_heap_returns_to_steady_state() {
    let stm = stm_with_mem(MemConfig {
        gc_mode: GcMode::Background,
        snapshot_lease: Some(Duration::from_millis(50)),
        ..MemConfig::default()
    });
    let boxes: Vec<VBox<i64>> = (0..4).map(|_| stm.new_vbox(0i64)).collect();
    let peak = stm.read_only(|snap| {
        assert_eq!(snap.try_read(&boxes[0]), Ok(0), "fresh snapshot reads fine");
        // Outlive the lease while writers churn versions the snapshot pins.
        let commit = || {
            stm.atomic(|tx| {
                let v = tx.read(&boxes[0]);
                tx.write(&boxes[0], v + 1);
                Ok(())
            })
            .unwrap()
        };
        // Track the pinned-heap high-water mark *before* each sweep: once
        // the reader is evicted a single cycle may already reclaim.
        let mut peak = 0u64;
        wait_until("lease eviction of the parked reader", Duration::from_secs(10), || {
            commit();
            peak = peak.max(stm.heap_gauge().retained_versions());
            stm.gc();
            snap.is_evicted()
        });
        // Eviction unpins the watermark; keep churning until the collector
        // has actually pruned past the snapshot on this box.
        wait_until("pruning past the evicted snapshot", Duration::from_secs(10), || {
            commit();
            stm.gc();
            snap.try_read(&boxes[0]) == Err(StmError::SnapshotEvicted)
        });
        assert!(snap.is_evicted());
        peak
    });
    // With the reader gone and no snapshot live, the heap settles back to
    // one version per box.
    stm.gc();
    let retained = stm.heap_gauge().retained_versions();
    assert_eq!(retained, 4, "steady state: one retained version per box (peak was {peak})");
    assert!(peak > retained, "the parked reader must have pinned versions before eviction");
    let s = stm.stats().snapshot();
    assert!(s.snapshot_evictions >= 1, "eviction must be counted: {s:?}");
    assert!(s.gc_cycles >= 1);
    assert_eq!(s.read_below_floor, 0, "below-floor reads of live snapshots are a GC bug");
    assert_eq!(s.retained_versions, retained, "stats snapshot mirrors the gauge");
}

/// A *writer* whose snapshot lease expires mid-flight: its doomed attempt is
/// aborted at commit, routed through the contention manager as an
/// eviction-site abort, and the retry — on a fresh snapshot — commits.
#[test]
fn evicted_writer_retries_on_fresh_snapshot_and_commits() {
    let stm = stm_with_mem(MemConfig {
        gc_mode: GcMode::Background,
        snapshot_lease: Some(Duration::from_millis(10)),
        ..MemConfig::default()
    });
    let b = stm.new_vbox(0i64);
    let base = stm.stats().snapshot();

    // A churn thread keeps installing fresh versions and sweeping, so an
    // evicted snapshot's versions really do get pruned underneath it.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churn = {
        let stm = stm.clone();
        let b = b.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                stm.atomic(|tx| {
                    let v = tx.read(&b);
                    tx.write(&b, v + 1);
                    Ok(())
                })
                .unwrap();
                stm.gc();
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let mut attempts = 0u64;
    stm.atomic(|tx| {
        attempts += 1;
        let v = tx.read(&b);
        if attempts == 1 {
            // Park until this attempt's snapshot has been evicted *and* its
            // chain pruned past — the re-read is then served from the chain
            // floor and the attempt is doomed.
            let end = Instant::now() + Duration::from_secs(10);
            while stm.stats().snapshot().evicted_reads == base.evicted_reads {
                assert!(Instant::now() < end, "first attempt never observed an evicted read");
                std::thread::sleep(Duration::from_millis(5));
                let _ = tx.read(&b);
            }
        }
        tx.write(&b, v + 1000);
        Ok(())
    })
    .expect("the retry on a fresh snapshot must commit");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    churn.join().unwrap();

    assert!(attempts >= 2, "the doomed first attempt must have been retried");
    let d = stm.stats().snapshot().delta_since(&base);
    assert!(d.evicted_reads >= 1, "the doomed attempt's floor-served reads are counted");
    assert!(d.evicted_aborts >= 1, "the doomed attempt aborts at the eviction site: {d:?}");
    assert_eq!(d.read_below_floor, 0);
    assert!(stm.read_atomic(&b) >= 1000, "the retried write landed");
}

/// The degradation ladder end-to-end: an unleased reader pins the heap past
/// both ceilings (Soft shortens leases + demands urgent GC, Hard adds
/// admission backpressure), and once the pin is gone one sweep recovers the
/// ladder to Normal, clears the cap and restores the configured lease.
#[test]
fn ladder_escalates_to_hard_and_recovers() {
    let urgent = Duration::from_millis(1);
    let stm = stm_with_mem(MemConfig {
        gc_mode: GcMode::Inline,
        // Leases off: the pinned reader is exempt from urgent clamping, so
        // the ladder degrades throughput but never evicts it.
        snapshot_lease: None,
        urgent_lease: urgent,
        soft_ceiling_versions: 40,
        hard_ceiling_versions: 80,
        gc_slice_boxes: 4,
    });
    let sink = Arc::new(TestSink::default());
    stm.trace_bus().subscribe(sink.clone());
    let boxes: Vec<VBox<i64>> = (0..8).map(|_| stm.new_vbox(0i64)).collect();
    assert_eq!(stm.mem_level(), MemLevel::Normal);
    assert_eq!(stm.throttle().pressure_cap(), None);

    stm.read_only(|snap| {
        for i in 0..120usize {
            stm.atomic(|tx| {
                let v = tx.read(&boxes[i % 8]);
                tx.write(&boxes[i % 8], v + 1);
                Ok(())
            })
            .unwrap();
        }
        assert!(!snap.is_evicted(), "unleased snapshots ride out the ladder");
        assert_eq!(snap.try_read(&boxes[0]), Ok(0), "pinned versions stayed readable");
    });

    // 8 initial + 120 installed versions, nothing prunable: both rungs hit.
    assert_eq!(stm.mem_level(), MemLevel::Hard);
    assert_eq!(stm.throttle().pressure_cap(), Some(1), "hard rung throttles admission to 1");
    assert_eq!(stm.snapshot_lease(), Some(urgent), "escalation shortened the lease");
    let s = stm.stats().snapshot();
    assert!(s.mem_soft_events >= 1, "soft escalation counted: {s:?}");
    assert!(s.mem_hard_events >= 1, "hard escalation counted: {s:?}");
    assert!(s.retained_versions >= 80);

    // The pin is gone: one sweep reclaims everything and recovers the ladder.
    stm.gc();
    assert_eq!(stm.mem_level(), MemLevel::Normal);
    assert_eq!(stm.throttle().pressure_cap(), None, "recovery clears the admission cap");
    assert_eq!(stm.snapshot_lease(), None, "recovery restores the configured lease");
    assert_eq!(stm.heap_gauge().retained_versions(), 8);

    // The trace shows the full ladder walk.
    let degradations: Vec<(MemLevel, MemLevel)> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::MemDegraded { from, to, .. } => Some((*from, *to)),
            _ => None,
        })
        .collect();
    assert!(degradations.contains(&(MemLevel::Normal, MemLevel::Soft)), "{degradations:?}");
    assert!(degradations.contains(&(MemLevel::Soft, MemLevel::Hard)), "{degradations:?}");
    assert_eq!(degradations.last(), Some(&(MemLevel::Hard, MemLevel::Normal)));
    // Urgent sweeps were demanded on escalation and traced.
    assert!(
        sink.events().iter().any(|e| matches!(e, TraceEvent::MemPressure { urgent: true, .. })),
        "escalation must demand an urgent GC cycle"
    );
}

/// Retuning the ceilings live re-evaluates the ladder immediately — the
/// actuation point AutoPN uses when trading memory headroom for GC work.
#[test]
fn live_ceiling_retune_moves_the_ladder() {
    let stm = stm_with_mem(MemConfig {
        gc_mode: GcMode::Inline,
        snapshot_lease: None,
        ..MemConfig::default()
    });
    let boxes: Vec<VBox<i64>> = (0..16).map(|_| stm.new_vbox(0i64)).collect();
    assert_eq!(stm.mem_level(), MemLevel::Normal);
    // 16 retained versions; drop the soft ceiling under them.
    stm.set_mem_soft_ceiling(10);
    assert_eq!(stm.mem_level(), MemLevel::Soft, "retune re-evaluates the ladder");
    // Raising it back past the gauge (plus hysteresis) recovers.
    stm.set_mem_soft_ceiling(1 << 20);
    assert_eq!(stm.mem_level(), MemLevel::Normal);
    drop(boxes);
}
