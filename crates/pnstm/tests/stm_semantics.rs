//! Behavioural tests of the PN-STM: atomicity, isolation, nesting semantics,
//! retry behaviour, throttling, and garbage collection.

use pnstm::{child, ParallelismDegree, Stm, StmConfig, StmError, TxError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

fn small_stm() -> Stm {
    Stm::new(StmConfig {
        degree: ParallelismDegree::new(8, 4),
        worker_threads: 3,
        ..StmConfig::default()
    })
}

#[test]
fn single_txn_read_write() {
    let stm = small_stm();
    let b = stm.new_vbox(5i64);
    let out = stm
        .atomic(|tx| {
            let v = tx.read(&b);
            tx.write(&b, v * 2);
            Ok(tx.read(&b))
        })
        .unwrap();
    assert_eq!(out, 10);
    assert_eq!(stm.read_atomic(&b), 10);
    assert_eq!(stm.clock_now(), 1);
}

#[test]
fn read_only_txn_does_not_advance_clock() {
    let stm = small_stm();
    let b = stm.new_vbox(1i32);
    stm.atomic(|tx| {
        let _ = tx.read(&b);
        Ok(())
    })
    .unwrap();
    assert_eq!(stm.clock_now(), 0, "read-only commit installs nothing");
}

#[test]
fn user_abort_discards_writes() {
    let stm = small_stm();
    let b = stm.new_vbox(1i32);
    let r: Result<(), StmError> = stm.atomic(|tx| {
        tx.write(&b, 99);
        tx.abort()
    });
    assert_eq!(r, Err(StmError::UserAborted));
    assert_eq!(stm.read_atomic(&b), 1);
    assert_eq!(stm.stats().snapshot().top_aborts, 1);
}

#[test]
fn counter_increments_are_atomic_across_threads() {
    let stm = small_stm();
    let b = stm.new_vbox(0i64);
    let threads = 4;
    let per_thread = 200;
    let mut handles = vec![];
    for _ in 0..threads {
        let stm = stm.clone();
        let b = b.clone();
        handles.push(thread::spawn(move || {
            for _ in 0..per_thread {
                stm.atomic(|tx| {
                    let v = tx.read(&b);
                    tx.write(&b, v + 1);
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(stm.read_atomic(&b), (threads * per_thread) as i64);
    let snap = stm.stats().snapshot();
    assert_eq!(snap.top_commits, (threads * per_thread) as u64);
}

#[test]
fn snapshot_isolation_for_read_only() {
    let stm = small_stm();
    let a = stm.new_vbox(0i64);
    let b = stm.new_vbox(0i64);
    // Invariant: a == b at every commit point.
    let writer = {
        let (stm, a, b) = (stm.clone(), a.clone(), b.clone());
        thread::spawn(move || {
            for i in 1..=100 {
                stm.atomic(|tx| {
                    tx.write(&a, i);
                    tx.write(&b, i);
                    Ok(())
                })
                .unwrap();
            }
        })
    };
    for _ in 0..200 {
        stm.read_only(|tx| {
            let (va, vb) = (tx.read(&a), tx.read(&b));
            assert_eq!(va, vb, "read-only txn saw a torn snapshot");
        });
    }
    writer.join().unwrap();
}

#[test]
fn write_skew_is_prevented() {
    // T1 reads a, writes b; T2 reads b, writes a. Serializability requires
    // one of them to abort-and-retry; final state must match some serial
    // order: with bodies x = read(other) + 1, a serial execution gives
    // {1, 2} in some assignment.
    let stm = small_stm();
    let a = stm.new_vbox(0i64);
    let b = stm.new_vbox(0i64);
    let t1 = {
        let (stm, a, b) = (stm.clone(), a.clone(), b.clone());
        thread::spawn(move || {
            stm.atomic(|tx| {
                let v = tx.read(&a);
                std::thread::sleep(std::time::Duration::from_millis(5));
                tx.write(&b, v + 1);
                Ok(())
            })
            .unwrap();
        })
    };
    let t2 = {
        let (stm, a, b) = (stm.clone(), a.clone(), b.clone());
        thread::spawn(move || {
            stm.atomic(|tx| {
                let v = tx.read(&b);
                std::thread::sleep(std::time::Duration::from_millis(5));
                tx.write(&a, v + 1);
                Ok(())
            })
            .unwrap();
        })
    };
    t1.join().unwrap();
    t2.join().unwrap();
    let (va, vb) = (stm.read_atomic(&a), stm.read_atomic(&b));
    let mut vals = [va, vb];
    vals.sort();
    assert_eq!(vals, [1, 2], "outcome {va},{vb} matches no serial order");
}

#[test]
fn nested_children_see_parent_writes() {
    let stm = small_stm();
    let b = stm.new_vbox(0i32);
    let b2 = b.clone();
    let observed = stm
        .atomic(move |tx| {
            tx.write(&b2, 7);
            let b3 = b2.clone();
            let mut r = tx.parallel(vec![child(move |ct| Ok(ct.read(&b3)))])?;
            Ok(r.pop().unwrap())
        })
        .unwrap();
    assert_eq!(observed, 7);
}

#[test]
fn parent_sees_child_writes_after_join() {
    let stm = small_stm();
    let b = stm.new_vbox(0i32);
    let b2 = b.clone();
    let seen = stm
        .atomic(move |tx| {
            let b3 = b2.clone();
            tx.parallel::<()>(vec![child(move |ct| {
                ct.write(&b3, 41);
                Ok(())
            })])?;
            Ok(tx.read(&b2) + 1)
        })
        .unwrap();
    assert_eq!(seen, 42);
    assert_eq!(stm.read_atomic(&b), 41, "child write committed with the root");
}

#[test]
fn child_writes_invisible_until_root_commits() {
    let stm = small_stm();
    let b = stm.new_vbox(0i32);
    let b_in = b.clone();
    let stm_probe = stm.clone();
    let b_probe = b.clone();
    stm.atomic(move |tx| {
        let b3 = b_in.clone();
        tx.parallel::<()>(vec![child(move |ct| {
            ct.write(&b3, 9);
            Ok(())
        })])?;
        // Closed nesting: the child committed into this tree, but main
        // memory still holds the old value.
        assert_eq!(stm_probe.read_atomic(&b_probe), 0);
        Ok(())
    })
    .unwrap();
    assert_eq!(stm.read_atomic(&b), 9);
}

#[test]
fn sibling_increments_serialize() {
    // c siblings each increment the same counter; sibling conflict detection
    // plus retry must make the increments additive.
    let stm = small_stm();
    let b = stm.new_vbox(0i64);
    let kids = 8;
    let b_outer = b.clone();
    stm.atomic(move |tx| {
        let tasks = (0..kids)
            .map(|_| {
                let bb = b_outer.clone();
                child(move |ct| {
                    let v = ct.read(&bb);
                    ct.write(&bb, v + 1);
                    Ok(())
                })
            })
            .collect();
        tx.parallel::<()>(tasks)
    })
    .unwrap();
    assert_eq!(stm.read_atomic(&b), kids as i64);
}

#[test]
fn nested_results_preserve_task_order() {
    let stm = small_stm();
    let out = stm
        .atomic(|tx| {
            let tasks = (0..16).map(|i| child(move |_ct| Ok(i * 10))).collect();
            tx.parallel(tasks)
        })
        .unwrap();
    assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
}

#[test]
fn deep_nesting_three_levels() {
    let stm = small_stm();
    let b = stm.new_vbox(0i64);
    let b0 = b.clone();
    stm.atomic(move |tx| {
        assert_eq!(tx.depth(), 0);
        let b1 = b0.clone();
        tx.parallel::<()>(vec![child(move |c1| {
            assert_eq!(c1.depth(), 1);
            let v = c1.read(&b1);
            c1.write(&b1, v + 100);
            let b2 = b1.clone();
            c1.parallel::<()>(vec![child(move |c2| {
                assert_eq!(c2.depth(), 2);
                // Grandchild must see its parent's uncommitted +100.
                let v = c2.read(&b2);
                assert_eq!(v, 100);
                c2.write(&b2, v + 10);
                Ok(())
            })])?;
            // Parent sees the grandchild's committed write.
            let v = c1.read(&b1);
            assert_eq!(v, 110);
            c1.write(&b1, v + 1);
            Ok(())
        })])
    })
    .unwrap();
    assert_eq!(stm.read_atomic(&b), 111);
}

#[test]
fn nested_user_abort_aborts_whole_txn() {
    let stm = small_stm();
    let b = stm.new_vbox(0i32);
    let b2 = b.clone();
    let r = stm.atomic(move |tx| {
        let b3 = b2.clone();
        tx.parallel::<()>(vec![child(move |ct| {
            ct.write(&b3, 5);
            Err(TxError::UserAbort)
        })])?;
        Ok(())
    });
    assert_eq!(r, Err(StmError::UserAborted));
    assert_eq!(stm.read_atomic(&b), 0);
}

#[test]
#[should_panic(expected = "boom")]
fn child_panic_propagates_to_parent_thread() {
    let stm = small_stm();
    let _ = stm.atomic(|tx| {
        tx.parallel::<()>(vec![child(|_ct| -> pnstm::TxResult<()> { panic!("boom") })])?;
        Ok(())
    });
}

#[test]
fn conflicting_top_level_txns_retry_to_consistency() {
    // Two threads transfer between accounts; total must be conserved.
    let stm = small_stm();
    let acc: Vec<_> = (0..4).map(|_| stm.new_vbox(100i64)).collect();
    let mut handles = vec![];
    for t in 0..4 {
        let stm = stm.clone();
        let acc = acc.clone();
        handles.push(thread::spawn(move || {
            for i in 0..100 {
                let from = (t + i) % 4;
                let to = (t + i + 1) % 4;
                stm.atomic(|tx| {
                    let f = tx.read(&acc[from]);
                    let g = tx.read(&acc[to]);
                    tx.write(&acc[from], f - 1);
                    tx.write(&acc[to], g + 1);
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total: i64 = acc.iter().map(|a| stm.read_atomic(a)).sum();
    assert_eq!(total, 400, "money was created or destroyed");
}

#[test]
fn commit_publication_race_regression() {
    // Regression test for a TOCTOU in the commit protocol: the global clock
    // must be published only after every write of the commit is installed.
    // If the clock ticks first, a transaction beginning in that window
    // snapshots the new version while boxes still serve old values — and
    // passes validation, losing updates. Heavy oversubscription on few
    // cores maximizes preemption inside the race window.
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(16, 1),
        worker_threads: 0,
        ..StmConfig::default()
    });
    let counter = stm.new_vbox(0i64);
    let threads = 8;
    let per_thread = 400;
    let mut handles = vec![];
    for _ in 0..threads {
        let stm = stm.clone();
        let counter = counter.clone();
        handles.push(thread::spawn(move || {
            for _ in 0..per_thread {
                stm.atomic(|tx| {
                    let v = tx.read(&counter);
                    std::thread::yield_now(); // widen the race window
                    tx.write(&counter, v + 1);
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        stm.read_atomic(&counter),
        (threads * per_thread) as i64,
        "lost update: clock published before installs completed"
    );
}

#[test]
fn throttle_limits_top_level_concurrency() {
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(2, 1),
        worker_threads: 0,
        ..StmConfig::default()
    });
    let active = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let mut handles = vec![];
    for _ in 0..6 {
        let stm = stm.clone();
        let active = Arc::clone(&active);
        let peak = Arc::clone(&peak);
        handles.push(thread::spawn(move || {
            stm.atomic(|_tx| {
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                thread::sleep(std::time::Duration::from_millis(5));
                active.fetch_sub(1, Ordering::SeqCst);
                Ok(())
            })
            .unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(peak.load(Ordering::SeqCst) <= 2, "t=2 exceeded: {}", peak.load(Ordering::SeqCst));
}

#[test]
fn reconfigure_degree_applies_to_new_txns() {
    let stm = small_stm();
    stm.set_degree(ParallelismDegree::new(1, 1));
    assert_eq!(stm.degree(), ParallelismDegree::new(1, 1));
    stm.set_degree(ParallelismDegree::new(16, 3));
    assert_eq!(stm.degree(), ParallelismDegree::new(16, 3));
    // And transactions still work after reconfiguration.
    let b = stm.new_vbox(0);
    stm.atomic(|tx| {
        tx.write(&b, 1);
        Ok(())
    })
    .unwrap();
    assert_eq!(stm.read_atomic(&b), 1);
}

#[test]
fn retry_backoff_preserves_correctness() {
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(8, 1),
        worker_threads: 0,
        retry_backoff: std::time::Duration::from_micros(50),
        ..StmConfig::default()
    });
    let b = stm.new_vbox(0i64);
    let mut handles = vec![];
    for _ in 0..4 {
        let stm = stm.clone();
        let b = b.clone();
        handles.push(thread::spawn(move || {
            for _ in 0..50 {
                stm.atomic(|tx| {
                    let v = tx.read(&b);
                    tx.write(&b, v + 1);
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(stm.read_atomic(&b), 200, "backoff must not lose updates");
}

#[test]
fn gc_prunes_old_versions() {
    let stm = Stm::new(StmConfig { gc_interval: 0, ..StmConfig::default() });
    let b = stm.new_vbox(0i64);
    for i in 1..=50 {
        stm.atomic(|tx| {
            tx.write(&b, i);
            Ok(())
        })
        .unwrap();
    }
    assert_eq!(b.version_count(), 51);
    let pruned = stm.gc();
    assert_eq!(pruned, 1);
    assert_eq!(b.version_count(), 1, "only the newest version is reachable");
    assert_eq!(stm.read_atomic(&b), 50);
}

#[test]
fn gc_respects_live_snapshots() {
    let stm = Stm::new(StmConfig { gc_interval: 0, ..StmConfig::default() });
    let b = stm.new_vbox(0i64);
    stm.atomic(|tx| {
        tx.write(&b, 1);
        Ok(())
    })
    .unwrap();
    // Hold a read-only snapshot at version 1 while new versions land.
    let stm2 = stm.clone();
    let b2 = b.clone();
    stm.read_only(move |tx| {
        let pinned = tx.read(&b2);
        assert_eq!(pinned, 1);
        for i in 2..=10 {
            stm2.atomic(|t| {
                t.write(&b2, i);
                Ok(())
            })
            .unwrap();
        }
        stm2.gc();
        // The pinned snapshot must still read its version.
        assert_eq!(tx.read(&b2), 1);
    });
    stm.gc();
    assert_eq!(b.version_count(), 1);
}

#[test]
fn modify_helper_round_trips() {
    let stm = small_stm();
    let b = stm.new_vbox(10i32);
    let out = stm.atomic(|tx| Ok(tx.modify(&b, |v| v * 3))).unwrap();
    assert_eq!(out, 30);
    assert_eq!(stm.read_atomic(&b), 30);
}

#[test]
fn vbox_created_inside_txn_is_usable() {
    let stm = small_stm();
    let holder = stm.new_vbox(None::<pnstm::VBox<i32>>);
    stm.atomic(|tx| {
        let fresh = tx.new_vbox(123);
        tx.write(&holder, Some(fresh));
        Ok(())
    })
    .unwrap();
    let fetched = stm.read_atomic(&holder).expect("holder was written");
    assert_eq!(stm.read_atomic(&fetched), 123);
}

#[test]
fn stats_track_nested_activity() {
    let stm = small_stm();
    let b = stm.new_vbox(0i64);
    let b2 = b.clone();
    stm.atomic(move |tx| {
        let tasks = (0..4)
            .map(|_| {
                let bb = b2.clone();
                child(move |ct| {
                    let v = ct.read(&bb);
                    ct.write(&bb, v + 1);
                    Ok(())
                })
            })
            .collect();
        tx.parallel::<()>(tasks)
    })
    .unwrap();
    let snap = stm.stats().snapshot();
    assert_eq!(snap.top_commits, 1);
    assert_eq!(snap.nested_commits, 4);
}

#[test]
fn c_equals_one_runs_children_sequentially() {
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(4, 1),
        worker_threads: 4,
        ..StmConfig::default()
    });
    let active = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let (a2, p2) = (Arc::clone(&active), Arc::clone(&peak));
    stm.atomic(move |tx| {
        let tasks = (0..8)
            .map(|_| {
                let (a, p) = (Arc::clone(&a2), Arc::clone(&p2));
                child(move |_ct| {
                    let now = a.fetch_add(1, Ordering::SeqCst) + 1;
                    p.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(std::time::Duration::from_millis(2));
                    a.fetch_sub(1, Ordering::SeqCst);
                    Ok(())
                })
            })
            .collect();
        tx.parallel::<()>(tasks)
    })
    .unwrap();
    assert_eq!(peak.load(Ordering::SeqCst), 1, "c=1 must serialize children");
}
