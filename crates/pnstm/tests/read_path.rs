//! Read-path behaviour: ancestor-read recording (the sibling-invalidation
//! regression), Locked vs. LockFree differential equivalence, read-path
//! stats/trace plumbing, and the snapshot-registration/GC race regression.

use pnstm::{child, ParallelismDegree, ReadPathMode, Stm, StmConfig, TestSink, TraceEvent};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn stm_with_read_path(read_path: ReadPathMode) -> Stm {
    Stm::new(StmConfig {
        degree: ParallelismDegree::new(8, 4),
        worker_threads: 3,
        read_path,
        ..StmConfig::default()
    })
}

/// Spin until `cond` holds or the deadline passes; returns whether it held.
/// Test-only handshake: children synchronize on shared stats counters.
fn wait_until(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while !cond() {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::yield_now();
    }
    true
}

/// Satellite regression (read-set recording): a child whose read was
/// satisfied from its *parent's write set* must record that read, so a
/// sibling committing the same box invalidates it. If the ancestor-ws hit
/// skipped `rs.record`, the reader would commit against a stale value and
/// the final state would lose the sibling's update.
#[test]
fn sibling_invalidation_of_ancestor_ws_read_is_detected() {
    for mode in [ReadPathMode::LockFree, ReadPathMode::Locked] {
        let stm = stm_with_read_path(mode);
        let w = stm.new_vbox(100i64);
        let stats = stm.stats();
        let nested_commits_before = stats.snapshot().nested_commits;

        let w1 = w.clone();
        let w2 = w.clone();
        let stm2 = stm.clone();
        // Set by the reader sibling *after* it has begun (cap taken) and read
        // w from the ancestor write set; the writer holds its commit until
        // then, so the reader's first-attempt read is guaranteed stale.
        let reader_began = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let began_w = Arc::clone(&reader_began);
        let out = stm
            .atomic(move |tx| {
                // Parent writes w so children read it from the published
                // parent write-set snapshot, not the global store.
                tx.write(&w1, 100);
                let writer_box = w1.clone();
                let reader_box = w1.clone();
                let stm3 = stm2.clone();
                let began_set = Arc::clone(&reader_began);
                let began_wait = Arc::clone(&began_w);
                let tasks = vec![
                    // Writer sibling: waits for the reader's stale read,
                    // then doubles w and commits — invalidating it.
                    child(move |ctx| {
                        assert!(
                            wait_until(
                                || began_wait.load(std::sync::atomic::Ordering::Acquire),
                                Duration::from_secs(10),
                            ),
                            "reader sibling never started"
                        );
                        let v = ctx.read(&writer_box);
                        ctx.write(&writer_box, v * 2);
                        Ok(())
                    }),
                    // Reader sibling: reads w (an ancestor-ws hit, with a
                    // nest-clock cap that predates the writer's commit by
                    // construction), releases the writer, and stalls until
                    // the writer has committed. Its own commit must then
                    // detect the conflict and retry; the retry reads the
                    // writer's value.
                    child(move |ctx| {
                        let v = ctx.read(&reader_box);
                        began_set.store(true, std::sync::atomic::Ordering::Release);
                        let committed = nested_commits_before + 1;
                        assert!(
                            wait_until(
                                || stm3.stats().snapshot().nested_commits >= committed,
                                Duration::from_secs(10),
                            ),
                            "writer sibling never committed"
                        );
                        ctx.write(&reader_box, v + 1);
                        Ok(())
                    }),
                ];
                tx.parallel::<()>(tasks)?;
                Ok(tx.read(&w2))
            })
            .unwrap();

        // The only serializable outcome of this schedule is writer-then-
        // reader: 100 * 2 + 1. The lost-update outcome 101 — the reader
        // committing its stale first read over the writer — is what an
        // unrecorded ancestor-ws read would produce.
        assert_eq!(out, 201, "non-serializable outcome {out} under {mode:?}");
        assert_eq!(stm.read_atomic(&w), 201);
        // The reader's first attempt *was* invalidated: recording the
        // ancestor-ws read is exactly what produced this abort.
        let snap = stm.stats().snapshot();
        assert!(
            snap.nested_aborts >= 1,
            "reader's stale ancestor-ws read must abort under {mode:?}: {snap:?}"
        );
    }
}

/// A read satisfied from an ancestor's *nest index* (a sibling-of-parent
/// commit) must also be recorded: the footprint counts it, and the value is
/// the sibling's, not the global snapshot's.
#[test]
fn ancestor_nest_index_reads_are_recorded_and_versioned() {
    let stm = stm_with_read_path(ReadPathMode::LockFree);
    let w = stm.new_vbox(7i64);
    let stats = stm.stats();
    let commits_before = stats.snapshot().nested_commits;

    let w1 = w.clone();
    let stm2 = stm.clone();
    let seen = stm
        .atomic(move |tx| {
            let writer_box = w1.clone();
            let spawner_box = w1.clone();
            let stm3 = stm2.clone();
            let tasks = vec![
                // Uncle: commits w = 8 into the parent's nest index.
                child(move |ctx| {
                    ctx.write(&writer_box, 8);
                    Ok(0i64)
                }),
                // Spawner: waits for the uncle's commit, then runs a child
                // of its own whose read of w can only be served by the
                // *grandparent-level* nest index (w is in no write set on
                // the path and the global store still has 7).
                child(move |ctx| {
                    let committed = commits_before + 1;
                    assert!(
                        wait_until(
                            || stm3.stats().snapshot().nested_commits >= committed,
                            Duration::from_secs(10),
                        ),
                        "uncle never committed"
                    );
                    let gp_box = spawner_box.clone();
                    let vals = ctx.parallel(vec![child(move |g| {
                        let v = g.read(&gp_box);
                        let (reads, writes) = g.footprint();
                        assert_eq!(writes, 0);
                        assert_eq!(reads, 1, "ancestor-index read must be recorded");
                        Ok(v)
                    })])?;
                    Ok(vals[0])
                }),
            ];
            let results = tx.parallel(tasks)?;
            Ok(results[1])
        })
        .unwrap();

    // The grandchild must observe the uncle's committed value on the attempt
    // that commits (its cap covers the uncle's version by then, via the
    // conflict-retry ladder if its first cap predated the commit).
    assert_eq!(seen, 8, "grandchild read must be served by the ancestor nest index");
    assert_eq!(stm.read_atomic(&w), 8);
}

/// Differential: an identical nested workload produces identical results
/// under the lock-free and the locked read path.
#[test]
fn locked_and_lockfree_read_paths_agree() {
    let mut finals = Vec::new();
    for mode in [ReadPathMode::LockFree, ReadPathMode::Locked] {
        let stm = stm_with_read_path(mode);
        let boxes: Vec<_> = (0..8).map(|i| stm.new_vbox(i as i64)).collect();
        for round in 0..10 {
            let boxes2 = boxes.clone();
            stm.atomic(move |tx| {
                let tasks = (0..4)
                    .map(|k| {
                        let bs = boxes2.clone();
                        child(move |ctx| {
                            // Each child reads two boxes and rewrites two
                            // others with a non-commutative mix.
                            let a = ctx.read(&bs[k]);
                            let b = ctx.read(&bs[k + 4]);
                            ctx.write(&bs[(k + 1) % 4], a.wrapping_mul(3).wrapping_add(b + round));
                            ctx.write(&bs[4 + (k + 1) % 4], b.wrapping_mul(5).wrapping_add(a));
                            Ok(())
                        })
                    })
                    .collect();
                tx.parallel::<()>(tasks)?;
                Ok(())
            })
            .unwrap();
        }
        finals.push(boxes.iter().map(|b| stm.read_atomic(b)).collect::<Vec<_>>());
        let snap = stm.stats().snapshot();
        assert_eq!(snap.top_commits, 10);
        match mode {
            // The lock-free ladder consults the per-level filters...
            ReadPathMode::LockFree => assert!(
                snap.read_filter_hits + snap.read_filter_misses > 0,
                "filters never consulted: {snap:?}"
            ),
            // ...the locked baseline has none, but every ancestor probe is a
            // slow-path read.
            ReadPathMode::Locked => {
                assert_eq!(snap.read_filter_hits + snap.read_filter_misses, 0);
                assert!(snap.read_slow_path > 0, "locked reads must count slow-path: {snap:?}");
            }
        }
    }
    // Sibling commit order varies run to run, so per-run values may differ
    // legally; re-running each mode with c=1 gives a deterministic check.
    for mode in [ReadPathMode::LockFree, ReadPathMode::Locked] {
        let stm = Stm::new(StmConfig {
            degree: ParallelismDegree::new(1, 1),
            worker_threads: 0,
            read_path: mode,
            ..StmConfig::default()
        });
        let boxes: Vec<_> = (0..8).map(|i| stm.new_vbox(i as i64)).collect();
        for round in 0..10 {
            let boxes2 = boxes.clone();
            stm.atomic(move |tx| {
                let tasks = (0..4)
                    .map(|k| {
                        let bs = boxes2.clone();
                        child(move |ctx| {
                            let a = ctx.read(&bs[k]);
                            let b = ctx.read(&bs[k + 4]);
                            ctx.write(&bs[(k + 1) % 4], a.wrapping_mul(3).wrapping_add(b + round));
                            ctx.write(&bs[4 + (k + 1) % 4], b.wrapping_mul(5).wrapping_add(a));
                            Ok(())
                        })
                    })
                    .collect();
                tx.parallel::<()>(tasks)?;
                Ok(())
            })
            .unwrap();
        }
        finals.push(boxes.iter().map(|b| stm.read_atomic(b)).collect::<Vec<_>>());
    }
    let n = finals.len();
    assert_eq!(
        finals[n - 2],
        finals[n - 1],
        "sequential (c=1) execution must agree across read-path modes"
    );
}

/// The `read_path` trace event carries the attempt's aggregated counters.
#[test]
fn read_path_trace_event_is_emitted() {
    let stm = stm_with_read_path(ReadPathMode::LockFree);
    let sink = Arc::new(TestSink::new());
    stm.trace_bus().subscribe(sink.clone());
    let a = stm.new_vbox(1i64);
    let b = stm.new_vbox(2i64);
    stm.atomic(|tx| {
        tx.write(&a, 10);
        let b2 = b.clone();
        let a2 = a.clone();
        let tasks = vec![child(move |ctx| {
            // One ancestor-level probe that hits (a is in the parent ws) and
            // typically one the filter skips (b is nowhere on the path).
            let x = ctx.read(&a2);
            let y = ctx.read(&b2);
            Ok(x + y)
        })];
        let v = tx.parallel(tasks)?;
        Ok(v[0])
    })
    .unwrap();
    let events = sink.events();
    let read_path_events: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ReadPath { filter_hits, filter_misses, slow_path, .. } => {
                Some((*filter_hits, *filter_misses, *slow_path))
            }
            _ => None,
        })
        .collect();
    assert!(!read_path_events.is_empty(), "no read_path event in {events:?}");
    let (hits, _misses, slow): (u64, u64, u64) =
        read_path_events.iter().fold((0, 0, 0), |acc, e| (acc.0 + e.0, acc.1 + e.1, acc.2 + e.2));
    assert!(hits >= 1, "the ancestor-ws hit must register as a filter hit");
    assert!(slow >= 1, "the ancestor-ws hit must count as a slow-path read");
    let snap = stm.stats().snapshot();
    assert_eq!(snap.read_filter_hits, hits, "stats and trace must agree");
}

/// Regression for the snapshot-registration race: a transaction that read
/// the clock but had not yet registered its snapshot could have the versions
/// it needs GC'd underneath it (observed as "GC invariant violated" panics
/// under load). `register_current`/`gc_watermark` read the clock under the
/// registry lock, closing the window. This stress keeps GC maximally hot
/// (every commit) against concurrent snapshot takers.
#[test]
fn gc_never_prunes_a_snapshot_being_registered() {
    let stm = Stm::new(StmConfig {
        degree: ParallelismDegree::new(8, 1),
        worker_threads: 0,
        gc_interval: 1,
        ..StmConfig::default()
    });
    let b = stm.new_vbox(0u64);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let stm = stm.clone();
        let b = b.clone();
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                stm.atomic(|tx| {
                    let v = tx.read(&b);
                    tx.write(&b, v + 1);
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for _ in 0..2 {
        let stm = stm.clone();
        let b = b.clone();
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut last = 0;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let v = stm.read_atomic(&b); // panics if its snapshot was pruned
                assert!(v >= last, "counter is monotone");
                last = v;
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(800));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert!(stm.read_atomic(&b) > 0);
}
