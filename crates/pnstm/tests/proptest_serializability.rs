//! Property-based tests: randomized transactional histories must always be
//! equivalent to some serial execution.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use pnstm::{child, ParallelismDegree, Stm, StmConfig, VBox};

/// One randomly generated top-level transaction: a list of per-slot deltas;
/// each delta is applied read-modify-write, some of them via parallel
/// children.
#[derive(Debug, Clone)]
struct TxSpec {
    /// (slot index, delta) pairs applied sequentially by the root.
    root_ops: Vec<(usize, i64)>,
    /// (slot index, delta) pairs applied by parallel children (one each).
    child_ops: Vec<(usize, i64)>,
}

fn tx_spec(slots: usize) -> impl Strategy<Value = TxSpec> {
    let op = (0..slots, -5i64..=5i64);
    (proptest::collection::vec(op.clone(), 0..4), proptest::collection::vec(op, 0..4))
        .prop_map(|(root_ops, child_ops)| TxSpec { root_ops, child_ops })
}

fn run_history(
    specs: &[TxSpec],
    slots: usize,
    threads: usize,
    degree: ParallelismDegree,
) -> Vec<i64> {
    let stm = Stm::new(StmConfig { degree, worker_threads: 2, ..StmConfig::default() });
    let boxes: Arc<Vec<VBox<i64>>> = Arc::new((0..slots).map(|_| stm.new_vbox(0i64)).collect());
    let chunks: Vec<Vec<TxSpec>> =
        (0..threads).map(|t| specs.iter().skip(t).step_by(threads).cloned().collect()).collect();
    let mut handles = vec![];
    for chunk in chunks {
        let stm = stm.clone();
        let boxes = Arc::clone(&boxes);
        handles.push(thread::spawn(move || {
            for spec in chunk {
                let boxes = Arc::clone(&boxes);
                stm.atomic(move |tx| {
                    for &(slot, delta) in &spec.root_ops {
                        let v = tx.read(&boxes[slot]);
                        tx.write(&boxes[slot], v + delta);
                    }
                    if !spec.child_ops.is_empty() {
                        let tasks = spec
                            .child_ops
                            .iter()
                            .map(|&(slot, delta)| {
                                let boxes = Arc::clone(&boxes);
                                child(move |ct| {
                                    let v = ct.read(&boxes[slot]);
                                    ct.write(&boxes[slot], v + delta);
                                    Ok(())
                                })
                            })
                            .collect();
                        tx.parallel::<()>(tasks)?;
                    }
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    boxes.iter().map(|b| stm.read_atomic(b)).collect()
}

/// Expected final state: deltas are commutative additions, so any serial
/// order yields the same sums.
fn expected_state(specs: &[TxSpec], slots: usize) -> Vec<i64> {
    let mut out = vec![0i64; slots];
    for spec in specs {
        for &(slot, delta) in spec.root_ops.iter().chain(spec.child_ops.iter()) {
            out[slot] += delta;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Additive read-modify-write histories commute, so the final state must
    /// equal the sum of all deltas regardless of interleaving — any lost
    /// update or torn nested commit breaks this.
    #[test]
    fn additive_histories_conserve_sums(
        specs in proptest::collection::vec(tx_spec(4), 1..12),
        degree in (1usize..=4, 1usize..=4),
    ) {
        let slots = 4;
        let got = run_history(&specs, slots, 3, ParallelismDegree::new(degree.0, degree.1));
        let want = expected_state(&specs, slots);
        prop_assert_eq!(got, want);
    }

    /// Read-only snapshots observe `a + b` invariants maintained by writers.
    #[test]
    fn snapshots_never_torn(writes in 1usize..40) {
        let stm = Stm::new(StmConfig::default());
        let a = stm.new_vbox(0i64);
        let b = stm.new_vbox(0i64);
        let writer = {
            let (stm, a, b) = (stm.clone(), a.clone(), b.clone());
            thread::spawn(move || {
                for i in 1..=writes as i64 {
                    stm.atomic(|tx| {
                        tx.write(&a, i);
                        tx.write(&b, -i);
                        Ok(())
                    }).unwrap();
                }
            })
        };
        for _ in 0..writes {
            stm.read_only(|tx| {
                let (va, vb) = (tx.read(&a), tx.read(&b));
                assert_eq!(va + vb, 0, "torn snapshot: {va} + {vb}");
            });
        }
        writer.join().unwrap();
    }

    /// Unique-token generation: every transaction takes a distinct value from
    /// a shared counter; duplicates would reveal a validation hole.
    #[test]
    fn counter_hands_out_unique_tokens(n in 1usize..60) {
        let stm = Stm::new(StmConfig::default());
        let ctr = stm.new_vbox(0u64);
        let tokens = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut handles = vec![];
        for t in 0..3usize {
            let stm = stm.clone();
            let ctr = ctr.clone();
            let tokens = Arc::clone(&tokens);
            let mine = n / 3 + usize::from(t < n % 3);
            handles.push(thread::spawn(move || {
                for _ in 0..mine {
                    let tok = stm.atomic(|tx| {
                        let v = tx.read(&ctr);
                        tx.write(&ctr, v + 1);
                        Ok(v)
                    }).unwrap();
                    tokens.lock().push(tok);
                }
            }));
        }
        for h in handles { h.join().unwrap(); }
        let toks = tokens.lock();
        let set: HashSet<_> = toks.iter().collect();
        prop_assert_eq!(set.len(), toks.len(), "duplicate tokens: {:?}", *toks);
        prop_assert_eq!(toks.len() as u64, stm.read_atomic(&ctr));
    }
}
