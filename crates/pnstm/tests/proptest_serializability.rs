//! Property-based tests: randomized transactional histories must always be
//! equivalent to some serial execution.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use pnstm::{
    child, stripe_of, CmMode, CommitPath, ParallelismDegree, ReadPathMode, SchedMode, Stm,
    StmConfig, VBox,
};

/// One randomly generated top-level transaction: a list of per-slot deltas;
/// each delta is applied read-modify-write, some of them via parallel
/// children.
#[derive(Debug, Clone)]
struct TxSpec {
    /// (slot index, delta) pairs applied sequentially by the root.
    root_ops: Vec<(usize, i64)>,
    /// (slot index, delta) pairs applied by parallel children (one each).
    child_ops: Vec<(usize, i64)>,
}

fn tx_spec(slots: usize) -> impl Strategy<Value = TxSpec> {
    let op = (0..slots, -5i64..=5i64);
    (proptest::collection::vec(op.clone(), 0..4), proptest::collection::vec(op, 0..4))
        .prop_map(|(root_ops, child_ops)| TxSpec { root_ops, child_ops })
}

fn run_history(
    specs: &[TxSpec],
    slots: usize,
    threads: usize,
    degree: ParallelismDegree,
) -> Vec<i64> {
    let stm = stm_with(degree, CommitPath::Striped);
    let boxes: Arc<Vec<VBox<i64>>> = Arc::new((0..slots).map(|_| stm.new_vbox(0i64)).collect());
    run_history_on(&stm, &boxes, specs, threads)
}

fn stm_with(degree: ParallelismDegree, commit_path: CommitPath) -> Stm {
    Stm::new(StmConfig { degree, worker_threads: 2, commit_path, ..StmConfig::default() })
}

fn stm_sched(degree: ParallelismDegree, sched_mode: SchedMode) -> Stm {
    Stm::new(StmConfig { degree, worker_threads: 2, sched_mode, ..StmConfig::default() })
}

/// Allocate `n` boxes that all hash to the same commit stripe (rejection
/// sampling over fresh box ids), so every commit in a history over them
/// takes the lock-ordering and false-conflict paths of the striped protocol.
fn colliding_boxes(stm: &Stm, n: usize) -> Vec<VBox<i64>> {
    let first = stm.new_vbox(0i64);
    let target = stripe_of(first.id());
    let mut out = vec![first];
    while out.len() < n {
        let b = stm.new_vbox(0i64);
        if stripe_of(b.id()) == target {
            out.push(b);
        }
    }
    out
}

fn run_history_on(
    stm: &Stm,
    boxes: &Arc<Vec<VBox<i64>>>,
    specs: &[TxSpec],
    threads: usize,
) -> Vec<i64> {
    let chunks: Vec<Vec<TxSpec>> =
        (0..threads).map(|t| specs.iter().skip(t).step_by(threads).cloned().collect()).collect();
    let mut handles = vec![];
    for chunk in chunks {
        let stm = stm.clone();
        let boxes = Arc::clone(boxes);
        handles.push(thread::spawn(move || {
            for spec in chunk {
                let boxes = Arc::clone(&boxes);
                stm.atomic(move |tx| {
                    for &(slot, delta) in &spec.root_ops {
                        let v = tx.read(&boxes[slot]);
                        tx.write(&boxes[slot], v + delta);
                    }
                    if !spec.child_ops.is_empty() {
                        let tasks = spec
                            .child_ops
                            .iter()
                            .map(|&(slot, delta)| {
                                let boxes = Arc::clone(&boxes);
                                child(move |ct| {
                                    let v = ct.read(&boxes[slot]);
                                    ct.write(&boxes[slot], v + delta);
                                    Ok(())
                                })
                            })
                            .collect();
                        tx.parallel::<()>(tasks)?;
                    }
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    boxes.iter().map(|b| stm.read_atomic(b)).collect()
}

/// All permutations of `items` (items.len() ≤ 4 in our use, so at most 24).
fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest = items.to_vec();
        let head = rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head.clone());
            out.push(tail);
        }
    }
    out
}

/// Expected final state: deltas are commutative additions, so any serial
/// order yields the same sums.
fn expected_state(specs: &[TxSpec], slots: usize) -> Vec<i64> {
    let mut out = vec![0i64; slots];
    for spec in specs {
        for &(slot, delta) in spec.root_ops.iter().chain(spec.child_ops.iter()) {
            out[slot] += delta;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Additive read-modify-write histories commute, so the final state must
    /// equal the sum of all deltas regardless of interleaving — any lost
    /// update or torn nested commit breaks this.
    #[test]
    fn additive_histories_conserve_sums(
        specs in proptest::collection::vec(tx_spec(4), 1..12),
        degree in (1usize..=4, 1usize..=4),
    ) {
        let slots = 4;
        let got = run_history(&specs, slots, 3, ParallelismDegree::new(degree.0, degree.1));
        let want = expected_state(&specs, slots);
        prop_assert_eq!(got, want);
    }

    /// Read-only snapshots observe `a + b` invariants maintained by writers.
    #[test]
    fn snapshots_never_torn(writes in 1usize..40) {
        let stm = Stm::new(StmConfig::default());
        let a = stm.new_vbox(0i64);
        let b = stm.new_vbox(0i64);
        let writer = {
            let (stm, a, b) = (stm.clone(), a.clone(), b.clone());
            thread::spawn(move || {
                for i in 1..=writes as i64 {
                    stm.atomic(|tx| {
                        tx.write(&a, i);
                        tx.write(&b, -i);
                        Ok(())
                    }).unwrap();
                }
            })
        };
        for _ in 0..writes {
            stm.read_only(|tx| {
                let (va, vb) = (tx.read(&a), tx.read(&b));
                assert_eq!(va + vb, 0, "torn snapshot: {va} + {vb}");
            });
        }
        writer.join().unwrap();
    }

    /// Unique-token generation: every transaction takes a distinct value from
    /// a shared counter; duplicates would reveal a validation hole.
    #[test]
    fn counter_hands_out_unique_tokens(n in 1usize..60) {
        let stm = Stm::new(StmConfig::default());
        let ctr = stm.new_vbox(0u64);
        let tokens = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut handles = vec![];
        for t in 0..3usize {
            let stm = stm.clone();
            let ctr = ctr.clone();
            let tokens = Arc::clone(&tokens);
            let mine = n / 3 + usize::from(t < n % 3);
            handles.push(thread::spawn(move || {
                for _ in 0..mine {
                    let tok = stm.atomic(|tx| {
                        let v = tx.read(&ctr);
                        tx.write(&ctr, v + 1);
                        Ok(v)
                    }).unwrap();
                    tokens.lock().push(tok);
                }
            }));
        }
        for h in handles { h.join().unwrap(); }
        let toks = tokens.lock();
        let set: HashSet<_> = toks.iter().collect();
        prop_assert_eq!(set.len(), toks.len(), "duplicate tokens: {:?}", *toks);
        prop_assert_eq!(toks.len() as u64, stm.read_atomic(&ctr));
    }
}

// Striped-commit-specific properties. This block deliberately uses the
// default `ProptestConfig` (no explicit `cases`) so CI can scale the case
// count through the `PROPTEST_CASES` environment variable.
proptest! {
    /// Histories over boxes that all hash to the *same* commit stripe:
    /// every concurrent commit contends on one stripe lock, and every
    /// read of a sibling box is validated through a stamp another box
    /// advanced — the false-conflict and lock-ordering paths. The outcome
    /// must still be the serial sum, and the run must terminate (a
    /// lock-ordering bug would deadlock here first).
    #[test]
    fn colliding_stripe_histories_conserve_sums(
        specs in proptest::collection::vec(tx_spec(4), 1..12),
        degree in (1usize..=4, 1usize..=4),
    ) {
        let slots = 4;
        let stm = stm_with(ParallelismDegree::new(degree.0, degree.1), CommitPath::Striped);
        let boxes = Arc::new(colliding_boxes(&stm, slots));
        let first = stripe_of(boxes[0].id());
        prop_assert!(boxes.iter().all(|b| stripe_of(b.id()) == first));
        let got = run_history_on(&stm, &boxes, &specs, 3);
        prop_assert_eq!(got, expected_state(&specs, slots));
    }

    /// Differential replay: the same specs produce the same history under
    /// the striped path and the retained global-lock oracle. Single-threaded
    /// the histories are fully defined, so commit/abort outcomes and the
    /// clock must agree exactly; concurrently the additive deltas commute,
    /// so the final states must agree.
    #[test]
    fn striped_path_replays_global_lock_histories(
        specs in proptest::collection::vec(tx_spec(4), 1..10),
    ) {
        let slots = 4;
        // Deterministic single-threaded replay: outcome-for-outcome equal.
        let mut single = Vec::new();
        for path in [CommitPath::Striped, CommitPath::GlobalLock] {
            let stm = stm_with(ParallelismDegree::new(1, 1), path);
            let boxes = Arc::new((0..slots).map(|_| stm.new_vbox(0i64)).collect::<Vec<_>>());
            let state = run_history_on(&stm, &boxes, &specs, 1);
            let snap = stm.stats().snapshot();
            single.push((state, snap.top_commits, snap.top_aborts, stm.clock_now()));
        }
        prop_assert_eq!(&single[0], &single[1], "single-threaded histories diverged");
        prop_assert_eq!(single[0].2, 0, "uncontended history must not abort");

        // Concurrent replay: serializability pins the final state.
        let striped = run_history(&specs, slots, 3, ParallelismDegree::new(4, 2));
        let stm = stm_with(ParallelismDegree::new(4, 2), CommitPath::GlobalLock);
        let boxes = Arc::new((0..slots).map(|_| stm.new_vbox(0i64)).collect::<Vec<_>>());
        let global = run_history_on(&stm, &boxes, &specs, 3);
        prop_assert_eq!(striped, global);
    }

    /// Differential replay across the execution-layer ladder: the same specs
    /// produce the same history whether child batches run on the retained
    /// mutex pool or the work-stealing scheduler. Commit semantics live
    /// entirely above the [`pnstm::Scheduler`] trait, so the two rungs must
    /// agree outcome-for-outcome single-threaded and state-for-state
    /// concurrently.
    #[test]
    fn work_stealing_replays_mutex_histories(
        specs in proptest::collection::vec(tx_spec(4), 1..10),
    ) {
        let slots = 4;
        // Deterministic single-threaded replay: outcome-for-outcome equal.
        let mut single = Vec::new();
        for mode in [SchedMode::WorkStealing, SchedMode::Mutex] {
            let stm = stm_sched(ParallelismDegree::new(1, 1), mode);
            let boxes = Arc::new((0..slots).map(|_| stm.new_vbox(0i64)).collect::<Vec<_>>());
            let state = run_history_on(&stm, &boxes, &specs, 1);
            let snap = stm.stats().snapshot();
            single.push((state, snap.top_commits, snap.top_aborts, stm.clock_now()));
        }
        prop_assert_eq!(&single[0], &single[1], "single-threaded histories diverged");
        prop_assert_eq!(single[0].2, 0, "uncontended history must not abort");

        // Concurrent replay: serializability pins the final state.
        let mut states = Vec::new();
        for mode in [SchedMode::WorkStealing, SchedMode::Mutex] {
            let stm = stm_sched(ParallelismDegree::new(4, 2), mode);
            let boxes = Arc::new((0..slots).map(|_| stm.new_vbox(0i64)).collect::<Vec<_>>());
            states.push(run_history_on(&stm, &boxes, &specs, 3));
        }
        prop_assert_eq!(&states[0], &states[1], "concurrent final states diverged");
    }

    /// Differential replay across the contention-manager ladder: an
    /// explicitly-Immediate instance is byte-identical to the pre-CM default
    /// — the CM begin/decide calls on the hot path must be observably free
    /// when the policy is Immediate. Single-threaded the histories are fully
    /// defined, so states, commit/abort counts and the clock must agree
    /// exactly; concurrently the additive deltas commute, so the final
    /// states must agree (also exercised under ExpBackoff, whose waits may
    /// reorder but never lose updates).
    #[test]
    fn immediate_cm_replays_seed_histories(
        specs in proptest::collection::vec(tx_spec(4), 1..10),
    ) {
        let slots = 4;
        let stm_cm = |degree, cm_mode| Stm::new(StmConfig {
            degree, worker_threads: 2, cm_mode, ..StmConfig::default()
        });
        // Deterministic single-threaded replay: outcome-for-outcome equal.
        let mut single = Vec::new();
        for explicit in [true, false] {
            let stm = if explicit {
                stm_cm(ParallelismDegree::new(1, 1), CmMode::Immediate)
            } else {
                // The seed configuration, CM left entirely to its default.
                Stm::new(StmConfig {
                    degree: ParallelismDegree::new(1, 1),
                    worker_threads: 2,
                    ..StmConfig::default()
                })
            };
            prop_assert_eq!(stm.cm_mode(), CmMode::Immediate);
            let boxes = Arc::new((0..slots).map(|_| stm.new_vbox(0i64)).collect::<Vec<_>>());
            let state = run_history_on(&stm, &boxes, &specs, 1);
            let snap = stm.stats().snapshot();
            prop_assert_eq!(snap.cm_wait_count(), 0, "Immediate must never wait");
            single.push((state, snap.top_commits, snap.top_aborts, stm.clock_now()));
        }
        prop_assert_eq!(&single[0], &single[1], "single-threaded histories diverged");
        prop_assert_eq!(single[0].2, 0, "uncontended history must not abort");

        // Concurrent replay: serializability pins the final state, on the
        // oracle rung and on a waiting rung.
        let mut states = Vec::new();
        for cm_mode in [CmMode::Immediate, CmMode::ExpBackoff] {
            let stm = stm_cm(ParallelismDegree::new(4, 2), cm_mode);
            let boxes = Arc::new((0..slots).map(|_| stm.new_vbox(0i64)).collect::<Vec<_>>());
            states.push(run_history_on(&stm, &boxes, &specs, 3));
        }
        prop_assert_eq!(&states[0], &states[1], "concurrent final states diverged");
    }

    /// Closed-nesting visibility under random sibling interleavings, on both
    /// read paths:
    ///
    /// 1. **Read-your-ancestors** — every child observes the parent's
    ///    pre-`parallel()` write of the marker box.
    /// 2. **Sibling isolation until commit** — each child writes a poison
    ///    sentinel to its slot before the real value; a sibling observing
    ///    uncommitted state would fold the sentinel into its product.
    /// 3. **Serializability of siblings** — the child ops `x := x*m + a` are
    ///    non-commutative, so the final state is legal only if it equals
    ///    applying the children in *some* sequential order; the oracle
    ///    enumerates all k! orders (k ≤ 4).
    #[test]
    fn closed_nesting_visibility_matches_a_sequential_child_order(
        children in proptest::collection::vec((0usize..2, 2i64..=5, -7i64..=7), 1..5),
        degree_c in 1usize..=4,
        locked in 0usize..2,
    ) {
        let read_path = if locked == 1 { ReadPathMode::Locked } else { ReadPathMode::LockFree };
        let stm = Stm::new(StmConfig {
            degree: ParallelismDegree::new(2, degree_c),
            worker_threads: 2,
            read_path,
            ..StmConfig::default()
        });
        let slots: Arc<Vec<VBox<i64>>> =
            Arc::new((0..2).map(|i| stm.new_vbox(10 + i as i64)).collect());
        let marker = stm.new_vbox(0i64);

        let marker2 = marker.clone();
        let slots2 = Arc::clone(&slots);
        let children2 = children.clone();
        let markers_seen = stm
            .atomic(move |tx| {
                tx.write(&marker2, 99);
                let tasks = children2
                    .iter()
                    .map(|&(slot, m, a)| {
                        let slots = Arc::clone(&slots2);
                        let marker = marker2.clone();
                        child(move |ct| {
                            let seen = ct.read(&marker);
                            let v = ct.read(&slots[slot]);
                            // Tentative garbage a sibling must never see...
                            ct.write(&slots[slot], i64::MIN / 2);
                            // ...overwritten by the real value before commit.
                            ct.write(&slots[slot], v * m + a);
                            Ok(seen)
                        })
                    })
                    .collect();
                tx.parallel(tasks)
            })
            .unwrap();

        prop_assert!(
            markers_seen.iter().all(|&s| s == 99),
            "a child missed its ancestor's write: {:?}", markers_seen
        );

        let legal: HashSet<Vec<i64>> = permutations(&children)
            .into_iter()
            .map(|order| {
                let mut state = vec![10i64, 11];
                for (slot, m, a) in order {
                    state[slot] = state[slot] * m + a;
                }
                state
            })
            .collect();
        let got: Vec<i64> = slots.iter().map(|b| stm.read_atomic(b)).collect();
        prop_assert!(
            legal.contains(&got),
            "final {:?} matches no sequential order of the children; legal: {:?}", got, legal
        );
    }
}
