//! Property-based tests of the optimizer machinery: search-space algebra,
//! model invariants, EI properties, sampling validity, monitor and detector
//! behaviour under random inputs.

use proptest::prelude::*;

use autopn::model::{BaggedM5, M5Tree, Regressor, Sample};
use autopn::monitor::{AdaptiveMonitor, MonitorPolicy, Verdict};
use autopn::smbo::expected_improvement;
use autopn::{AutoPn, AutoPnConfig, Config, CusumDetector, InitialSampling, SearchSpace, Tuner};

proptest! {
    #[test]
    fn space_enumeration_is_exact(n in 1usize..96) {
        let space = SearchSpace::new(n);
        // |S| = Σ_t ⌊n/t⌋ and every member is admissible and unique.
        let expected: usize = (1..=n).map(|t| n / t).sum();
        prop_assert_eq!(space.len(), expected);
        let set: std::collections::HashSet<_> = space.configs().iter().collect();
        prop_assert_eq!(set.len(), space.len());
        prop_assert!(space.configs().iter().all(|c| c.t * c.c <= n));
    }

    #[test]
    fn neighbors_always_valid(n in 2usize..64, t in 1usize..64, c in 1usize..64) {
        let space = SearchSpace::new(n);
        let cfg = Config::new(t.min(n), c.min(n / t.min(n).max(1)).max(1));
        prop_assume!(space.contains(cfg));
        for variant in [space.neighbors(cfg), space.von_neumann_neighbors(cfg)] {
            let set: std::collections::HashSet<_> = variant.iter().collect();
            prop_assert_eq!(set.len(), variant.len(), "duplicate neighbors");
            for nb in &variant {
                prop_assert!(space.contains(*nb));
                prop_assert!(*nb != cfg);
            }
        }
    }

    #[test]
    fn biased_sampling_always_admissible(n in 1usize..128, k in 0usize..12) {
        let space = SearchSpace::new(n);
        let cfgs = InitialSampling::Biased(k).configs(&space);
        let set: std::collections::HashSet<_> = cfgs.iter().collect();
        prop_assert_eq!(set.len(), cfgs.len());
        prop_assert!(cfgs.iter().all(|c| space.contains(*c)));
        prop_assert!(cfgs.len() <= k.min(9).min(space.len()));
    }

    #[test]
    fn ei_is_nonnegative_and_bounded(
        mu in -1e6f64..1e6,
        sigma in 0.0f64..1e5,
        best in -1e6f64..1e6,
    ) {
        let ei = expected_improvement(mu, sigma, best);
        prop_assert!(ei >= 0.0);
        prop_assert!(ei.is_finite());
        // EI is bounded by E[max(X - best, 0)] <= |mu - best| + sigma.
        prop_assert!(ei <= (mu - best).abs() + sigma + 1e-9);
    }

    #[test]
    fn m5_predictions_are_finite(
        points in proptest::collection::vec(
            (1.0f64..48.0, 1.0f64..16.0, -1e5f64..1e5), 0..40),
        query in (1.0f64..48.0, 1.0f64..16.0),
    ) {
        let samples: Vec<Sample> =
            points.iter().map(|&(t, c, y)| Sample::point(t, c, y)).collect();
        let tree = M5Tree::fit(&samples);
        prop_assert!(tree.predict(&[query.0, query.1]).is_finite());
        let ens = BaggedM5::fit(&samples, 5, 7);
        let (mu, sigma) = ens.predict_dist(&[query.0, query.1]);
        prop_assert!(mu.is_finite());
        prop_assert!(sigma.is_finite() && sigma >= 0.0);
    }

    #[test]
    fn m5_interpolates_constants(value in -1e4f64..1e4) {
        let samples: Vec<Sample> = (1..=6)
            .flat_map(|t| (1..=6).map(move |c| Sample::point(t as f64, c as f64, value)))
            .collect();
        let tree = M5Tree::fit(&samples);
        // The ridge term in the leaf models biases large constants slightly;
        // allow a small relative tolerance.
        prop_assert!((tree.predict(&[3.5, 2.5]) - value).abs() < 0.01 + value.abs() * 1e-4);
    }

    #[test]
    fn autopn_terminates_and_stays_in_space(
        n in 2usize..32,
        seed in 0u64..1000,
        peak_t in 1usize..32,
        peak_c in 1usize..8,
    ) {
        let space = SearchSpace::new(n);
        let f = move |cfg: Config| {
            -((cfg.t as f64 - peak_t as f64).powi(2)) - (cfg.c as f64 - peak_c as f64).powi(2)
        };
        let mut tuner = AutoPn::new(space.clone(), AutoPnConfig { seed, ..AutoPnConfig::default() });
        let mut seen = std::collections::HashSet::new();
        let mut steps = 0;
        while let Some(cfg) = tuner.propose() {
            prop_assert!(space.contains(cfg), "proposed {cfg} outside the space");
            prop_assert!(seen.insert(cfg), "duplicate proposal {cfg}");
            tuner.observe(cfg, f(cfg));
            steps += 1;
            prop_assert!(steps <= space.len(), "did not terminate");
        }
        prop_assert!(tuner.best().is_some());
    }

    #[test]
    fn adaptive_monitor_measures_uniform_streams_accurately(
        period_us in 10u64..100_000,
        start_ms in 0u64..10_000,
    ) {
        let mut m = AdaptiveMonitor::default();
        let start = start_ms * 1_000_000;
        m.begin_window(start);
        let mut at = start;
        let mut result = None;
        for _ in 0..10_000 {
            at += period_us * 1_000;
            if let Verdict::Complete(meas) = m.on_commit(at) {
                result = Some(meas);
                break;
            }
        }
        let meas = result.expect("uniform stream must stabilize");
        let want = 1e9 / (period_us as f64 * 1_000.0);
        prop_assert!(!meas.timed_out);
        prop_assert!(
            (meas.throughput - want).abs() / want < 0.05,
            "measured {} want {want}", meas.throughput
        );
    }

    #[test]
    fn cusum_ignores_scale(scale in 1e-3f64..1e9) {
        // Stability detection must be scale-free (relative deviations).
        let mut d = CusumDetector::default();
        for i in 0..200 {
            let wiggle = 1.0 + 0.02 * ((i % 7) as f64 - 3.0) / 3.0;
            prop_assert!(!d.observe(scale * wiggle), "false positive at scale {scale}");
        }
    }

    #[test]
    fn cusum_catches_halving(scale in 1e-3f64..1e9) {
        let mut d = CusumDetector::default();
        for _ in 0..10 {
            let _ = d.observe(scale);
        }
        let mut fired = false;
        for _ in 0..10 {
            if d.observe(scale * 0.5) {
                fired = true;
                break;
            }
        }
        prop_assert!(fired, "halving must be detected at scale {scale}");
    }
}
