//! Differential proptest pinning the N-dimensional generalization to the
//! frozen 2-D oracle: restricted to an axis-less `ConfigSpace` (the pure
//! `(t, c)` grid), the generalized [`AutoPn`] must replay [`LegacyAutoPn`]
//! seed histories **exactly** — identical proposal sequences, identical
//! phase transitions, identical observations, and an identical session
//! outcome. Any arithmetic drift in the feature-vector rewrite of the
//! model/SMBO/hill-climb layers shows up here as a bit-level divergence.

use autopn::legacy::LegacyAutoPn;
use autopn::{
    AutoPn, AutoPnConfig, Config, ConfigSpace, InitialSampling, SearchSpace, StopCondition, Tuner,
};
use proptest::prelude::*;

/// A deterministic synthetic KPI surface: a quadratic bowl with a seed-mixed
/// per-config perturbation, so the tuners see realistic (non-separable,
/// noisy-looking) observations that are still replayable.
fn kpi(cfg: Config, t0: f64, c0: f64, st: f64, sc: f64, noise: u64) -> f64 {
    let base = 1000.0 - st * (cfg.t as f64 - t0).powi(2) - sc * (cfg.c as f64 - c0).powi(2);
    let h = (cfg.t as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((cfg.c as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(noise);
    let h = (h ^ (h >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let jitter = ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 40.0;
    base + jitter
}

/// CV stream derived from the same hash, for the noise-aware variant.
fn cv_of(cfg: Config, noise: u64) -> Option<f64> {
    let h = (cfg.t as u64 * 31 + cfg.c as u64).wrapping_mul(noise | 1);
    match h % 4 {
        0 => None,
        1 => Some(0.02),
        2 => Some(0.10),
        _ => Some(0.35),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 1000, ..ProptestConfig::default() })]

    /// Full-session lockstep replay on the (t, c)-only projection.
    #[test]
    fn generalized_tuner_replays_legacy_histories(
        n_cores in 2usize..=14,
        t0 in 1.0f64..14.0,
        c0 in 1.0f64..6.0,
        st in 0.5f64..30.0,
        sc in 0.5f64..60.0,
        noise in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
        ensemble in 1usize..=5,
        init_k in (0usize..4).prop_map(|i| [3usize, 5, 7, 9][i]),
        noise_aware in (0u8..2).prop_map(|b| b == 1),
        hill_climb in (0u8..2).prop_map(|b| b == 1),
        ei_stop in 0.01f64..0.25,
    ) {
        let cfg = AutoPnConfig {
            init: InitialSampling::Biased(init_k),
            stop: StopCondition::EiBelow(ei_stop),
            hill_climb,
            ensemble_size: ensemble,
            seed,
            noise_aware,
            ..AutoPnConfig::default()
        };
        let tc = SearchSpace::new(n_cores);
        let mut legacy = LegacyAutoPn::new(tc.clone(), cfg);
        let mut gen = AutoPn::new(ConfigSpace::from(tc), cfg);

        let mut steps = 0usize;
        loop {
            prop_assert_eq!(legacy.phase_name(), gen.phase_name(),
                "phase diverged after {} steps", steps);
            let (pl, pg) = (legacy.propose(), gen.propose());
            prop_assert_eq!(pl, pg, "proposal diverged at step {}", steps);
            let Some(cfg) = pl else { break };
            let y = kpi(cfg, t0, c0, st, sc, noise);
            if noise_aware {
                let cv = cv_of(cfg, noise);
                let timed_out = cv.is_none() && noise % 3 == 0;
                legacy.observe_noisy(cfg, y, cv, timed_out);
                gen.observe_noisy(cfg, y, cv, timed_out);
            } else {
                legacy.observe(cfg, y);
                gen.observe(cfg, y);
            }
            steps += 1;
            prop_assert!(steps <= 4 * 14 * 14, "session failed to terminate");
        }

        // Identical session outcome: same winner, same KPI, bit-for-bit.
        let (bl, bg) = (legacy.best(), gen.best());
        prop_assert_eq!(bl.map(|(c, _)| c), bg.map(|(c, _)| c.tc()));
        prop_assert_eq!(bl.map(|(_, v)| v.to_bits()), bg.map(|(_, v)| v.to_bits()));
        prop_assert_eq!(legacy.explored(), gen.explored());
    }
}
