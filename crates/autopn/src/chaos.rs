//! Chaos harness for the control plane: wrap any [`TunableSystem`] in a
//! deterministic [`FaultPlan`] so tuning sessions can be driven through
//! reconfiguration failures, swallowed commits and clock jitter without
//! touching the wrapped system — the simulator-side twin of the fault sites
//! compiled into the live `pnstm` runtime.
//!
//! The wrapper consults the plan at three sites:
//!
//! * [`FaultKind::ReconfigFail`] — `try_apply` returns an [`ApplyError`]
//!   without applying (exercises the controller's retry/fallback ladder).
//! * [`FaultKind::AdmissionStall`] — `wait_commit` swallows a delivered
//!   commit and reports a timeout instead (starves measurement windows).
//! * [`FaultKind::ClockJitter`] — commit timestamps are perturbed by the
//!   rule's bounded jitter (pathological measurement streams).
//!
//! Fault decisions are pure functions of `(seed, site, consult index)`, and
//! every injection is stamped with the *wrapped system's* clock (via
//! [`FaultCtx::inject_at`]), so a virtual-time system produces byte-identical
//! `fault_injected` trace streams run after run — the property the chaos
//! proptests pin down.

use crate::controller::{ApplyError, TunableSystem};
use crate::space::Config;
use pnstm::{FaultCtx, FaultKind, FaultPlan, TraceBus};
use std::sync::Arc;

/// A [`TunableSystem`] decorator that injects control-plane faults from a
/// deterministic [`FaultPlan`].
pub struct FaultyTunable<S> {
    inner: S,
    fault: FaultCtx,
}

impl<S: TunableSystem> FaultyTunable<S> {
    /// Wrap `inner`, consulting `plan` at each control-plane site and
    /// publishing injections on `trace`.
    pub fn new(inner: S, plan: Arc<FaultPlan>, trace: TraceBus) -> Self {
        Self { inner, fault: FaultCtx::new(Some(plan), trace) }
    }

    /// The wrapped system.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped system, mutably.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// The fault context (e.g. to read injection counters via
    /// [`FaultCtx::plan`]).
    pub fn fault_ctx(&self) -> &FaultCtx {
        &self.fault
    }
}

impl<S: TunableSystem> TunableSystem for FaultyTunable<S> {
    fn apply(&mut self, cfg: Config) {
        self.inner.apply(cfg);
    }

    fn try_apply(&mut self, cfg: Config) -> Result<(), ApplyError> {
        if let Some(action) = self.fault.inject_at(FaultKind::ReconfigFail, self.inner.now_ns()) {
            return Err(ApplyError::new(format!(
                "injected reconfiguration failure #{}",
                action.seq
            )));
        }
        self.inner.try_apply(cfg)
    }

    fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
        let ts = self.inner.wait_commit(max_wait_ns)?;
        if self.fault.inject_at(FaultKind::AdmissionStall, ts).is_some() {
            // Swallow the commit: the monitor sees a silent window tick.
            return None;
        }
        if let Some(action) = self.fault.inject_at(FaultKind::ClockJitter, ts) {
            return Some(ts.saturating_add_signed(action.signed_jitter_ns()));
        }
        Some(ts)
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn quiesce(&mut self) {
        self.inner.quiesce();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnstm::FaultRule;

    /// Deterministic inner system: one commit per millisecond of virtual
    /// time.
    struct Metronome {
        now: u64,
    }

    impl TunableSystem for Metronome {
        fn apply(&mut self, _cfg: Config) {}
        fn wait_commit(&mut self, _max_wait_ns: u64) -> Option<u64> {
            self.now += 1_000_000;
            Some(self.now)
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
    }

    #[test]
    fn reconfig_fail_surfaces_as_apply_error() {
        let plan = Arc::new(
            FaultPlan::new(7)
                .with_rule(FaultKind::ReconfigFail, FaultRule::with_probability(1.0).budget(2)),
        );
        let mut sys = FaultyTunable::new(Metronome { now: 0 }, plan, TraceBus::default());
        assert!(sys.try_apply(Config::new(2, 2)).is_err());
        assert!(sys.try_apply(Config::new(2, 2)).is_err());
        assert!(sys.try_apply(Config::new(2, 2)).is_ok(), "budget spent, applies recover");
    }

    #[test]
    fn admission_stall_swallows_commits() {
        let plan = Arc::new(
            FaultPlan::new(11)
                .with_rule(FaultKind::AdmissionStall, FaultRule::with_probability(1.0).budget(3)),
        );
        let mut sys = FaultyTunable::new(Metronome { now: 0 }, plan.clone(), TraceBus::default());
        let mut delivered = 0;
        for _ in 0..10 {
            if sys.wait_commit(1_000_000).is_some() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 7, "3 of 10 commits swallowed");
        assert_eq!(plan.injected(FaultKind::AdmissionStall), 3);
    }

    #[test]
    fn clock_jitter_stays_within_rule_bound() {
        let plan = Arc::new(
            FaultPlan::new(13)
                .with_rule(FaultKind::ClockJitter, FaultRule::with_probability(1.0).delay_ns(500)),
        );
        let mut sys = FaultyTunable::new(Metronome { now: 0 }, plan, TraceBus::default());
        for i in 1..=20u64 {
            let ts = sys.wait_commit(1_000_000).expect("jitter never swallows");
            let ideal = i * 1_000_000;
            assert!(ts.abs_diff(ideal) <= 500, "jittered {ts} strays more than 500ns from {ideal}");
        }
    }
}
