//! Stopping criteria for the SMBO exploration phase (§V-B and §VII-C).

/// When to conclude model-driven exploration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCondition {
    /// Stop when the best relative Expected Improvement falls below the
    /// threshold (the paper's default policy; typical values 1%–10%).
    EiBelow(f64),
    /// Stop when the best KPI has not improved by more than `min_gain`
    /// (relative) over the last `k` explorations.
    NoImprovement {
        /// Window of recent explorations considered.
        k: usize,
        /// Minimum relative improvement that counts as progress.
        min_gain: f64,
    },
    /// Hybrid: EI threshold *and* no-improvement must both hold.
    HybridAnd {
        /// Relative EI threshold.
        ei: f64,
        /// No-improvement window.
        k: usize,
        /// Minimum relative improvement that counts as progress.
        min_gain: f64,
    },
    /// Hybrid: either criterion suffices.
    HybridOr {
        /// Relative EI threshold.
        ei: f64,
        /// No-improvement window.
        k: usize,
        /// Minimum relative improvement that counts as progress.
        min_gain: f64,
    },
    /// Idealized oracle that stops only once a KPI within `tolerance`
    /// (relative) of the known optimum `target` has been observed. Not
    /// implementable in practice (the optimum is unknown); used in §VII-C to
    /// show that chasing exact optimality with the model is counterproductive.
    Stubborn {
        /// The known optimal KPI value.
        target: f64,
        /// Relative tolerance around the target.
        tolerance: f64,
    },
}

impl Default for StopCondition {
    fn default() -> Self {
        StopCondition::EiBelow(0.10)
    }
}

impl StopCondition {
    /// Decide whether to stop, given the KPIs observed so far (exploration
    /// order) and the best relative EI among unexplored configurations
    /// (`None` when the model cannot propose, which always stops).
    pub fn should_stop(&self, history: &[f64], relative_ei: Option<f64>) -> bool {
        let Some(rel_ei) = relative_ei else { return true };
        match *self {
            StopCondition::EiBelow(threshold) => rel_ei < threshold,
            StopCondition::NoImprovement { k, min_gain } => no_improvement(history, k, min_gain),
            StopCondition::HybridAnd { ei, k, min_gain } => {
                rel_ei < ei && no_improvement(history, k, min_gain)
            }
            StopCondition::HybridOr { ei, k, min_gain } => {
                rel_ei < ei || no_improvement(history, k, min_gain)
            }
            StopCondition::Stubborn { target, tolerance } => {
                let best = history.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                best >= target * (1.0 - tolerance)
            }
        }
    }
}

/// True when the best of the last `k` observations improves the best of the
/// earlier observations by at most `min_gain` (relative).
fn no_improvement(history: &[f64], k: usize, min_gain: f64) -> bool {
    if history.len() <= k {
        return false; // not enough evidence yet
    }
    let split = history.len() - k;
    let best_before = history[..split].iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let best_recent = history[split..].iter().copied().fold(f64::NEG_INFINITY, f64::max);
    best_recent <= best_before * (1.0 + min_gain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ei_threshold() {
        let s = StopCondition::EiBelow(0.10);
        assert!(!s.should_stop(&[1.0], Some(0.5)));
        assert!(s.should_stop(&[1.0], Some(0.05)));
        assert!(s.should_stop(&[1.0], None), "no proposal always stops");
    }

    #[test]
    fn no_improvement_needs_full_window() {
        let s = StopCondition::NoImprovement { k: 5, min_gain: 0.10 };
        assert!(!s.should_stop(&[1.0, 2.0, 3.0], Some(1.0)), "window not full");
        // 6 samples, last 5 never beat the first (10.0) by >10%.
        assert!(s.should_stop(&[10.0, 1.0, 2.0, 10.5, 3.0, 4.0], Some(1.0)));
        // A recent sample beats it by more than 10%.
        assert!(!s.should_stop(&[10.0, 1.0, 2.0, 12.0, 3.0, 4.0], Some(1.0)));
    }

    #[test]
    fn hybrid_and_requires_both() {
        let s = StopCondition::HybridAnd { ei: 0.10, k: 2, min_gain: 0.0 };
        let flat = &[5.0, 5.0, 5.0, 5.0];
        assert!(s.should_stop(flat, Some(0.01)));
        assert!(!s.should_stop(flat, Some(0.5)), "EI still high");
        let improving = &[1.0, 2.0, 4.0, 8.0];
        assert!(!s.should_stop(improving, Some(0.01)), "still improving");
    }

    #[test]
    fn hybrid_or_takes_either() {
        let s = StopCondition::HybridOr { ei: 0.10, k: 2, min_gain: 0.0 };
        assert!(s.should_stop(&[1.0, 2.0, 4.0, 8.0], Some(0.01)), "EI low");
        assert!(s.should_stop(&[5.0, 5.0, 5.0, 5.0], Some(0.9)), "no improvement");
        assert!(!s.should_stop(&[1.0, 2.0, 4.0, 8.0], Some(0.9)));
    }

    #[test]
    fn stubborn_stops_only_at_target() {
        let s = StopCondition::Stubborn { target: 100.0, tolerance: 0.01 };
        assert!(!s.should_stop(&[50.0, 80.0, 98.0], Some(0.0001)), "EI irrelevant");
        assert!(s.should_stop(&[50.0, 99.5], Some(0.9)));
        assert!(s.should_stop(&[120.0], Some(0.9)), "beyond target counts");
    }

    #[test]
    fn default_is_ei_10_percent() {
        assert_eq!(StopCondition::default(), StopCondition::EiBelow(0.10));
    }
}
