//! Standard normal pdf/cdf, implemented from scratch (no special-function
//! crates offline).

use std::f64::consts::PI;

/// Standard normal probability density function φ(x).
pub fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Standard normal cumulative distribution function Φ(x).
///
/// Uses `Φ(x) = (1 + erf(x/√2)) / 2` with a high-accuracy rational erf
/// approximation (Abramowitz & Stegun 7.1.26, |ε| < 1.5e-7).
pub fn cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (A&S 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_known_values() {
        assert!((pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
        assert!((pdf(1.0) - 0.241_970_724_5).abs() < 1e-9);
        assert!((pdf(3.0) - pdf(-3.0)).abs() < 1e-15, "pdf is even");
    }

    #[test]
    fn cdf_known_values() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((cdf(1.0) - 0.841_344_746_1).abs() < 1e-6);
        assert!((cdf(-1.0) - 0.158_655_253_9).abs() < 1e-6);
        assert!((cdf(1.959_964) - 0.975).abs() < 1e-5);
    }

    #[test]
    fn cdf_limits() {
        assert!(cdf(-8.0) < 1e-12);
        assert!(cdf(8.0) > 1.0 - 1e-12);
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = -1.0;
        let mut x = -5.0;
        while x <= 5.0 {
            let v = cdf(x);
            assert!(v >= prev - 1e-12, "cdf not monotone at {x}");
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn erf_symmetry_and_values() {
        // The A&S 7.1.26 polynomial is accurate to ~1.5e-7, not exact at 0.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12);
    }

    #[test]
    fn pdf_is_derivative_of_cdf() {
        for &x in &[-2.0, -0.5, 0.0, 0.7, 1.8] {
            let h = 1e-5;
            let numeric = (cdf(x + h) - cdf(x - h)) / (2.0 * h);
            assert!((numeric - pdf(x)).abs() < 1e-4, "mismatch at {x}");
        }
    }
}
