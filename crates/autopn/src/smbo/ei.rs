//! Closed-form Expected Improvement under a Gaussian predictive
//! distribution (Eq. 1 of the paper).

use super::normal;

/// Expected improvement of sampling a point whose predicted KPI is
/// `N(mu, sigma²)` over the incumbent `f_best` (maximization):
///
/// `EI = (μ − f*) · Φ(z) + σ · φ(z)` with `z = (μ − f*) / σ`.
///
/// With `σ = 0` this degenerates to `max(μ − f*, 0)`.
pub fn expected_improvement(mu: f64, sigma: f64, f_best: f64) -> f64 {
    // Non-finite inputs (a model fitted on garbage, an unset incumbent)
    // have no meaningful improvement value; 0 keeps the candidate ranked
    // last instead of letting NaN leak into the comparison.
    if !mu.is_finite() || !sigma.is_finite() || !f_best.is_finite() {
        return 0.0;
    }
    let delta = mu - f_best;
    if sigma <= 0.0 {
        return delta.max(0.0);
    }
    let z = delta / sigma;
    (delta * normal::cdf(z) + sigma * normal::pdf(z)).max(0.0)
}

/// Probability of improvement `PI = Φ((μ − f*) / σ)` — the alternative
/// acquisition §V-B mentions and rejects because it "reflects potential
/// gain" less directly than EI (a tiny-but-certain gain scores 1.0).
pub fn probability_of_improvement(mu: f64, sigma: f64, f_best: f64) -> f64 {
    if !mu.is_finite() || !sigma.is_finite() || !f_best.is_finite() {
        return 0.0;
    }
    if sigma <= 0.0 {
        return if mu > f_best { 1.0 } else { 0.0 };
    }
    normal::cdf((mu - f_best) / sigma)
}

/// Gaussian-process upper confidence bound `UCB = μ + κ·σ` — the second
/// alternative of §V-B, rejected because κ needs workload-dependent tuning.
pub fn upper_confidence_bound(mu: f64, sigma: f64, kappa: f64) -> f64 {
    mu + kappa * sigma.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_relu_of_delta() {
        assert_eq!(expected_improvement(10.0, 0.0, 8.0), 2.0);
        assert_eq!(expected_improvement(5.0, 0.0, 8.0), 0.0);
    }

    #[test]
    fn symmetric_case_mu_equals_best() {
        // EI = sigma * phi(0) ≈ 0.3989 sigma.
        let ei = expected_improvement(5.0, 2.0, 5.0);
        assert!((ei - 2.0 * 0.398_942_280_4).abs() < 1e-6);
    }

    #[test]
    fn ei_nonnegative_everywhere() {
        for mu in [-10.0, 0.0, 3.0, 100.0] {
            for sigma in [0.0, 0.1, 1.0, 50.0] {
                for best in [-5.0, 0.0, 42.0] {
                    assert!(expected_improvement(mu, sigma, best) >= 0.0);
                }
            }
        }
    }

    #[test]
    fn ei_monotone_in_sigma() {
        // For fixed mu <= f_best, more uncertainty means more EI.
        let mut prev = 0.0;
        for s in 1..=20 {
            let ei = expected_improvement(4.0, s as f64 * 0.25, 5.0);
            assert!(ei >= prev, "EI must grow with sigma");
            prev = ei;
        }
    }

    #[test]
    fn ei_monotone_in_mu() {
        let mut prev = 0.0;
        for m in 0..=20 {
            let ei = expected_improvement(m as f64, 1.0, 5.0);
            assert!(ei >= prev);
            prev = ei;
        }
    }

    #[test]
    fn ei_matches_numeric_integration() {
        // EI = ∫_{f*}^{∞} (y − f*) N(y; mu, sigma) dy, integrated numerically.
        let (mu, sigma, best) = (3.0, 1.5, 4.0);
        let mut acc = 0.0;
        let dy = 0.001;
        let mut y = best;
        while y < mu + 10.0 * sigma {
            let density = normal::pdf((y - mu) / sigma) / sigma;
            acc += (y - best) * density * dy;
            y += dy;
        }
        let ei = expected_improvement(mu, sigma, best);
        assert!((ei - acc).abs() < 1e-3, "closed form {ei} vs numeric {acc}");
    }

    #[test]
    fn deep_below_best_ei_is_tiny() {
        let ei = expected_improvement(0.0, 1.0, 10.0);
        assert!(ei < 1e-12);
    }

    #[test]
    fn pi_bounds_and_midpoint() {
        assert!((probability_of_improvement(5.0, 2.0, 5.0) - 0.5).abs() < 1e-7);
        assert_eq!(probability_of_improvement(6.0, 0.0, 5.0), 1.0);
        assert_eq!(probability_of_improvement(4.0, 0.0, 5.0), 0.0);
        for mu in [-3.0, 0.0, 8.0] {
            let p = probability_of_improvement(mu, 1.5, 2.0);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn pi_ignores_gain_magnitude_unlike_ei() {
        // A certain epsilon gain: PI says 1.0, EI says epsilon — the paper's
        // argument for EI over PI.
        let (pi, ei) =
            (probability_of_improvement(5.001, 1e-9, 5.0), expected_improvement(5.001, 1e-9, 5.0));
        assert!(pi > 0.999);
        assert!(ei < 0.01);
    }

    #[test]
    fn non_finite_inputs_score_zero() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(expected_improvement(bad, 1.0, 5.0), 0.0);
            assert_eq!(expected_improvement(5.0, bad, 5.0), 0.0);
            assert_eq!(expected_improvement(5.0, 1.0, bad), 0.0);
            assert_eq!(probability_of_improvement(bad, 1.0, 5.0), 0.0);
            assert_eq!(probability_of_improvement(5.0, bad, 5.0), 0.0);
            assert_eq!(probability_of_improvement(5.0, 1.0, bad), 0.0);
        }
    }

    #[test]
    fn ucb_linear_in_kappa() {
        assert_eq!(upper_confidence_bound(10.0, 2.0, 0.0), 10.0);
        assert_eq!(upper_confidence_bound(10.0, 2.0, 1.0), 12.0);
        assert_eq!(upper_confidence_bound(10.0, 2.0, 3.0), 16.0);
        assert_eq!(upper_confidence_bound(10.0, -1.0, 5.0), 10.0, "negative sigma clamped");
    }
}
