//! Sequential Model-Based Optimization (SMBO) with Expected Improvement.
//!
//! §V-B of the paper: fit a probabilistic model over the observations, use an
//! acquisition function to pick the next configuration, repeat until the
//! stopping criterion fires. AutoPN instantiates the framework with a bagged
//! M5 ensemble and closed-form EI under a Gaussian assumption.

pub mod ei;
pub mod normal;

pub use ei::{expected_improvement, probability_of_improvement, upper_confidence_bound};

use crate::model::{BaggedM5, Sample};
use crate::space::{Config, ConfigSpace};

/// Acquisition functions SMBO can be coupled with (§V-B). AutoPN defaults
/// to EI; PI and UCB are provided for the comparison the paper argues from
/// (see `bench --bin ablation_acquisition`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Acquisition {
    /// Expected Improvement (the paper's choice).
    #[default]
    ExpectedImprovement,
    /// Probability of Improvement.
    ProbabilityOfImprovement,
    /// Upper confidence bound `μ + κσ`.
    UpperConfidenceBound {
        /// Exploration weight κ.
        kappa: f64,
    },
}

impl Acquisition {
    /// Score a candidate under this acquisition (higher = explore sooner).
    pub fn score(&self, mu: f64, sigma: f64, f_best: f64) -> f64 {
        match *self {
            Acquisition::ExpectedImprovement => expected_improvement(mu, sigma, f_best),
            Acquisition::ProbabilityOfImprovement => probability_of_improvement(mu, sigma, f_best),
            Acquisition::UpperConfidenceBound { kappa } => upper_confidence_bound(mu, sigma, kappa),
        }
    }
}

/// One SMBO proposal: the configuration with the highest EI and the EI values
/// backing the decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proposal {
    /// Configuration with maximum EI among unexplored configurations.
    pub config: Config,
    /// Its EI value.
    pub ei: f64,
    /// EI relative to the best observed KPI (`ei / f_best`), which the
    /// stopping criterion thresholds.
    pub relative_ei: f64,
}

/// Fit the ensemble and score every unexplored configuration by EI.
///
/// Returns `None` when every configuration has been explored. `f_best` must
/// be the best KPI observed so far (maximization).
pub fn propose(
    space: &ConfigSpace,
    observations: &[(Config, f64)],
    ensemble_size: usize,
    seed: u64,
) -> Option<Proposal> {
    propose_with(space, observations, ensemble_size, seed, Acquisition::ExpectedImprovement)
}

/// [`propose`] with an explicit acquisition function. The returned
/// `Proposal::ei`/`relative_ei` are always the *EI* values of the selected
/// point (whatever the ranking criterion), so the EI-based stopping
/// criterion stays meaningful across acquisitions.
pub fn propose_with(
    space: &ConfigSpace,
    observations: &[(Config, f64)],
    ensemble_size: usize,
    seed: u64,
    acquisition: Acquisition,
) -> Option<Proposal> {
    propose_noise_aware(space, observations, None, ensemble_size, seed, acquisition)
}

/// [`propose_with`] plus per-observation confidence weights (§VIII
/// noise-aware modeling). `weights`, when given, must be parallel to
/// `observations`; `None` means uniform confidence.
pub fn propose_noise_aware(
    space: &ConfigSpace,
    observations: &[(Config, f64)],
    weights: Option<&[f64]>,
    ensemble_size: usize,
    seed: u64,
    acquisition: Acquisition,
) -> Option<Proposal> {
    if let Some(w) = weights {
        assert_eq!(w.len(), observations.len(), "weights must be parallel to observations");
    }
    // Defensive layer below the intake clamp in `AutoPn::record`: callers
    // can hand us raw observation logs, so non-finite KPIs must not reach
    // the incumbent fold (NaN poisons `max`) or the training set (a NaN
    // target corrupts every M5 split score).
    let f_best = observations
        .iter()
        .map(|&(_, y)| y)
        .filter(|y| y.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    if !f_best.is_finite() {
        return None;
    }
    let samples: Vec<Sample> = observations
        .iter()
        .enumerate()
        .filter(|&(_, &(_, y))| y.is_finite())
        .map(|(i, &(cfg, y))| match weights {
            Some(w) => Sample::weighted(space.encode(cfg), y, w[i]),
            None => Sample::new(space.encode(cfg), y),
        })
        .collect();
    let model = BaggedM5::fit(&samples, ensemble_size, seed);

    let explored: std::collections::HashSet<Config> =
        observations.iter().map(|&(cfg, _)| cfg).collect();
    let mut best: Option<(Proposal, f64)> = None;
    let mut x = Vec::with_capacity(space.dim());
    for &cfg in space.configs() {
        if explored.contains(&cfg) {
            continue;
        }
        space.encode_into(cfg, &mut x);
        let (mu, sigma) = model.predict_dist(&x);
        let score = acquisition.score(mu, sigma, f_best);
        // A NaN score would win every `>` comparison's negation and lose
        // every comparison — either way the ranking is meaningless, so a
        // candidate the model cannot score finitely is skipped outright.
        if !score.is_finite() {
            continue;
        }
        if best.as_ref().map(|(_, b)| score.total_cmp(b).is_gt()).unwrap_or(true) {
            let ei = expected_improvement(mu, sigma, f_best);
            let relative_ei = if f_best.abs() > f64::EPSILON { ei / f_best.abs() } else { ei };
            best = Some((Proposal { config: cfg, ei, relative_ei }, score));
        }
    }
    best.map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Axis, SearchSpace};

    fn tc_space(n: usize) -> ConfigSpace {
        SearchSpace::new(n).into()
    }

    fn obs(
        space: &ConfigSpace,
        f: impl Fn(Config) -> f64,
        cfgs: &[(usize, usize)],
    ) -> Vec<(Config, f64)> {
        cfgs.iter()
            .map(|&(t, c)| {
                let cfg = Config::new(t, c);
                assert!(space.contains(cfg));
                (cfg, f(cfg))
            })
            .collect()
    }

    #[test]
    fn proposes_unexplored_config() {
        let space = tc_space(16);
        let f = |cfg: Config| -((cfg.t as f64 - 8.0).powi(2)) - (cfg.c as f64 - 2.0).powi(2);
        let observations = obs(&space, f, &[(1, 1), (16, 1), (1, 16), (4, 2), (8, 1)]);
        let p = propose(&space, &observations, 10, 7).unwrap();
        assert!(space.contains(p.config));
        assert!(!observations.iter().any(|&(cfg, _)| cfg == p.config));
        assert!(p.ei >= 0.0);
    }

    #[test]
    fn exhausted_space_returns_none() {
        let space = tc_space(2); // {(1,1),(1,2),(2,1)}
        let observations = obs(&space, |_| 1.0, &[(1, 1), (1, 2), (2, 1)]);
        assert!(propose(&space, &observations, 4, 1).is_none());
    }

    #[test]
    fn no_observations_returns_none() {
        let space = tc_space(8);
        assert!(propose(&space, &[], 4, 1).is_none());
    }

    #[test]
    fn gravitates_toward_predicted_peak() {
        // With a clean linear trend upward in t, EI should prefer larger t
        // among the unexplored configurations.
        let space = tc_space(32);
        let f = |cfg: Config| 10.0 * cfg.t as f64;
        let observations = obs(&space, f, &[(1, 1), (2, 1), (4, 1), (8, 1), (12, 1)]);
        let p = propose(&space, &observations, 10, 3).unwrap();
        assert!(p.config.t > 12, "proposed {:?}", p.config);
    }

    #[test]
    fn nan_and_infinite_observations_do_not_poison_proposals() {
        let space = tc_space(8);
        let f = |cfg: Config| 10.0 * cfg.t as f64;
        let mut observations = obs(&space, f, &[(1, 1), (2, 1), (4, 1)]);
        observations.push((Config::new(1, 2), f64::NAN));
        observations.push((Config::new(2, 2), f64::INFINITY));
        observations.push((Config::new(1, 4), f64::NEG_INFINITY));
        let p = propose(&space, &observations, 6, 11).expect("finite subset must still propose");
        assert!(space.contains(p.config));
        assert!(p.ei.is_finite(), "EI must stay finite, got {}", p.ei);
        assert!(p.relative_ei.is_finite());
        // The proposal must match what the finite observations alone produce:
        // the corrupted rows carry no signal.
        let clean = obs(&space, f, &[(1, 1), (2, 1), (4, 1)]);
        let q = propose(&space, &clean, 6, 11).unwrap();
        let explored: std::collections::HashSet<Config> =
            observations.iter().map(|&(cfg, _)| cfg).collect();
        if !explored.contains(&q.config) {
            assert_eq!(p.config, q.config, "non-finite rows changed the ranking");
        }
    }

    #[test]
    fn all_non_finite_observations_yield_no_proposal() {
        let space = tc_space(4);
        let observations = vec![(Config::new(1, 1), f64::NAN), (Config::new(2, 1), f64::INFINITY)];
        assert!(propose(&space, &observations, 4, 1).is_none());
    }

    #[test]
    fn relative_ei_scales_by_best() {
        let space = tc_space(8);
        let observations = obs(&space, |cfg| 1000.0 + cfg.t as f64, &[(1, 1), (2, 2), (8, 1)]);
        let p = propose(&space, &observations, 10, 5).unwrap();
        assert!((p.relative_ei - p.ei / 1008.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_space_proposal_prefers_better_axis_level() {
        // A categorical axis whose level 1 adds a large KPI bonus: after
        // observing both levels at a few (t, c) points, EI must send the
        // search toward unexplored level-1 configurations.
        let space = ConfigSpace::new(
            SearchSpace::new(8),
            vec![Axis::categorical("cm", &["immediate", "karma"], 0)],
        );
        let f = |cfg: Config| 10.0 * cfg.t as f64 + if cfg.axes.get(0) == 1 { 500.0 } else { 0.0 };
        let mut observations = Vec::new();
        for (t, c, lvl) in [(1, 1, 0), (1, 1, 1), (2, 1, 0), (2, 1, 1), (4, 1, 0), (1, 2, 1)] {
            let cfg = Config::with_axes(t, c, crate::space::AxisLevels::from_slice(&[lvl]));
            assert!(space.contains(cfg));
            observations.push((cfg, f(cfg)));
        }
        let p = propose(&space, &observations, 10, 3).unwrap();
        assert!(space.contains(p.config));
        assert_eq!(p.config.axes.get(0), 1, "proposed {:?}", p.config);
    }
}
