//! KPI measurements produced by the monitor.

use serde::impl_serde;

/// The result of one measurement window on one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Committed top-level transactions per second (the paper's target KPI).
    pub throughput: f64,
    /// Commits observed inside the window.
    pub commits: u64,
    /// Window length in nanoseconds.
    pub window_ns: u64,
    /// Whether the window was cut short by the adaptive timeout (the
    /// configuration is then known to be of very low quality).
    pub timed_out: bool,
    /// Coefficient of variation of the per-commit throughput estimates at
    /// window close, when the policy tracks it.
    pub cv: Option<f64>,
    /// The window closed without observing a single commit — a starved
    /// configuration (or a watchdog-terminated window). Downstream consumers
    /// must not derive timing references (e.g. the adaptive `1/T(1,1)`
    /// timeout) from a starved measurement.
    pub starved: bool,
}

impl_serde!(Measurement { throughput, commits, window_ns, timed_out, cv } defaults { starved });

impl Measurement {
    /// A window that saw `commits` commits over `window_ns`.
    pub fn from_counts(commits: u64, window_ns: u64, timed_out: bool, cv: Option<f64>) -> Self {
        let throughput = if window_ns == 0 { 0.0 } else { commits as f64 * 1e9 / window_ns as f64 };
        Self { throughput, commits, window_ns, timed_out, cv, starved: commits == 0 }
    }
}

/// One ingress monitoring window's service-level KPI: goodput plus
/// coordinated-omission-free latency percentiles, measured from *intended
/// arrival* (the open-loop schedule instant, not the dequeue instant).
///
/// This is the KPI the paper never had: the source AutoPN tunes raw
/// closed-loop throughput, but a front door serving an open-loop stream
/// must optimize what clients experience — "maximize goodput subject to
/// p99 ≤ target" — where backpressure rejections count as SLO misses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloKpi {
    /// Completed requests per second over the window.
    pub goodput: f64,
    /// Requests whose intended arrival fell inside the window.
    pub offered: u64,
    /// Requests completed inside the window.
    pub completed: u64,
    /// Requests rejected at the queue ceiling (typed backpressure); each
    /// one is an SLO miss even though it has no latency sample.
    pub rejected: u64,
    /// Median intended-arrival latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile intended-arrival latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile intended-arrival latency in nanoseconds.
    pub p999_ns: u64,
    /// Window length in nanoseconds.
    pub window_ns: u64,
}

impl_serde!(SloKpi { goodput, offered, completed, rejected, p50_ns, p99_ns, p999_ns, window_ns });

/// Fraction of offered requests a window may reject before the whole window
/// is treated as violating any latency target (rejections carry no latency
/// sample, so without this rule shedding load would *improve* measured p99).
pub const SLO_REJECT_TOLERANCE: f64 = 0.01;

impl SloKpi {
    /// The p99 the SLO comparison sees: the measured tail latency, or
    /// `u64::MAX` when more than [`SLO_REJECT_TOLERANCE`] of offered
    /// requests were rejected — a shedding configuration must never look
    /// fast.
    pub fn effective_p99(&self) -> u64 {
        if self.offered > 0 && self.rejected as f64 > self.offered as f64 * SLO_REJECT_TOLERANCE {
            u64::MAX
        } else {
            self.p99_ns
        }
    }

    /// Whether this window met a p99 target of `target_ns`.
    pub fn meets(&self, target_ns: u64) -> bool {
        self.effective_p99() <= target_ns
    }

    /// Scalar objective for "maximize goodput subject to p99 ≤ target":
    /// a feasible window scores its goodput; an infeasible one scores its
    /// goodput scaled down by both how far it overshot the target and a
    /// large constant penalty, so any feasible configuration strictly
    /// dominates every infeasible one while infeasible configurations still
    /// order by how badly they violate (the tuner can hill-climb out).
    pub fn score(&self, target_ns: u64) -> f64 {
        if self.meets(target_ns) {
            self.goodput
        } else {
            let p99 = self.effective_p99().max(1) as f64;
            self.goodput * (target_ns.max(1) as f64 / p99) * 1e-6
        }
    }
}

/// Incremental mean/variance tracker (Welford) for the per-commit throughput
/// series the CV policy needs.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation `σ/μ`; `None` until two samples arrived or
    /// when the mean is 0.
    pub fn cv(&self) -> Option<f64> {
        if self.n < 2 || self.mean == 0.0 {
            None
        } else {
            Some(self.std_dev() / self.mean.abs())
        }
    }

    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Mean/variance over a sliding window of the most recent samples.
///
/// The adaptive monitor uses this instead of full-series statistics so that
/// transients at the start of a measurement window (e.g. commits from
/// transactions admitted under the previous configuration) age out instead
/// of inflating the CV forever.
#[derive(Debug, Clone)]
pub struct WindowedStats {
    window: std::collections::VecDeque<f64>,
    capacity: usize,
}

impl WindowedStats {
    /// `capacity` = 0 keeps every sample (full-series statistics).
    pub fn new(capacity: usize) -> Self {
        Self { window: std::collections::VecDeque::new(), capacity }
    }

    pub fn push(&mut self, x: f64) {
        if self.capacity > 0 && self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
    }

    pub fn count(&self) -> usize {
        self.window.len()
    }

    pub fn mean(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window.iter().sum::<f64>() / self.window.len() as f64
        }
    }

    /// Coefficient of variation of the retained samples; `None` until two
    /// samples arrived or when the mean is 0.
    pub fn cv(&self) -> Option<f64> {
        if self.window.len() < 2 {
            return None;
        }
        let mean = self.mean();
        if mean == 0.0 {
            return None;
        }
        let var =
            self.window.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / self.window.len() as f64;
        Some(var.sqrt() / mean.abs())
    }

    pub fn reset(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_stats_age_out_outliers() {
        let mut w = WindowedStats::new(4);
        w.push(1000.0); // transient outlier
        for _ in 0..4 {
            w.push(10.0);
        }
        assert_eq!(w.count(), 4);
        assert_eq!(w.mean(), 10.0);
        assert_eq!(w.cv(), Some(0.0), "outlier aged out of the window");
    }

    #[test]
    fn windowed_stats_unbounded_when_zero_capacity() {
        let mut w = WindowedStats::new(0);
        for i in 0..100 {
            w.push(i as f64);
        }
        assert_eq!(w.count(), 100);
    }

    #[test]
    fn windowed_cv_undefined_early() {
        let mut w = WindowedStats::new(8);
        assert_eq!(w.cv(), None);
        w.push(5.0);
        assert_eq!(w.cv(), None);
        w.push(5.0);
        assert_eq!(w.cv(), Some(0.0));
    }

    fn slo(goodput: f64, offered: u64, rejected: u64, p99_ns: u64) -> SloKpi {
        SloKpi {
            goodput,
            offered,
            completed: offered - rejected,
            rejected,
            p50_ns: p99_ns / 4,
            p99_ns,
            p999_ns: p99_ns * 2,
            window_ns: 1_000_000_000,
        }
    }

    #[test]
    fn slo_kpi_feasible_scores_goodput() {
        let k = slo(5_000.0, 5_000, 0, 800_000);
        assert!(k.meets(1_000_000));
        assert_eq!(k.effective_p99(), 800_000);
        assert_eq!(k.score(1_000_000), 5_000.0);
    }

    #[test]
    fn slo_kpi_feasible_dominates_infeasible() {
        // An infeasible config with far higher goodput must still score below
        // a modest feasible one.
        let feasible = slo(100.0, 100, 0, 900_000);
        let infeasible = slo(1_000_000.0, 1_000_000, 0, 50_000_000);
        let target = 1_000_000;
        assert!(feasible.meets(target));
        assert!(!infeasible.meets(target));
        assert!(feasible.score(target) > infeasible.score(target));
        // ...and infeasible configs still order by violation depth.
        let worse = slo(1_000_000.0, 1_000_000, 0, 500_000_000);
        assert!(infeasible.score(target) > worse.score(target));
    }

    #[test]
    fn slo_kpi_rejections_are_misses() {
        // 5% rejected: the window violates any finite target even though the
        // measured p99 of the requests it deigned to serve looks great.
        let shedding = slo(10_000.0, 10_000, 500, 10_000);
        assert_eq!(shedding.effective_p99(), u64::MAX);
        assert!(!shedding.meets(u64::MAX - 1));
        // Within tolerance (≤1%), rejections don't poison the window.
        let ok = slo(10_000.0, 10_000, 100, 10_000);
        assert_eq!(ok.effective_p99(), 10_000);
        assert!(ok.meets(1_000_000));
    }

    #[test]
    fn measurement_throughput_units() {
        let m = Measurement::from_counts(100, 1_000_000_000, false, None);
        assert!((m.throughput - 100.0).abs() < 1e-9);
        let empty = Measurement::from_counts(0, 0, true, None);
        assert_eq!(empty.throughput, 0.0);
    }

    #[test]
    fn running_stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        assert!((rs.std_dev() - 2.0).abs() < 1e-12);
        assert!((rs.cv().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn cv_undefined_for_small_samples() {
        let mut rs = RunningStats::new();
        assert_eq!(rs.cv(), None);
        rs.push(3.0);
        assert_eq!(rs.cv(), None);
        rs.push(3.0);
        assert_eq!(rs.cv(), Some(0.0));
    }

    #[test]
    fn reset_clears() {
        let mut rs = RunningStats::new();
        rs.push(1.0);
        rs.push(2.0);
        rs.reset();
        assert_eq!(rs.count(), 0);
        assert_eq!(rs.mean(), 0.0);
    }
}
