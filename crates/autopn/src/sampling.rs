//! Initial sampling strategies (§V-A).
//!
//! AutoPN's biased scheme deterministically explores up to nine
//! configurations on the three boundary regions of the search space
//! (Fig. 4 of the paper): the three pivots `(1,1)`, `(n,1)`, `(1,n)`,
//! their axis neighbours, and two points on the over-subscription boundary
//! `t·c ≈ n`. The generic alternative is uniform random sampling.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::space::{Config, ConfigSpace, SearchSpace};

/// How the initial training set is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitialSampling {
    /// The paper's biased boundary scheme with 3, 5, 7 or 9 configurations
    /// (footnote 1 of §VII-C): 3 → pivots only; 5 → + `(n−1,1)`, `(1,n−1)`;
    /// 7 → + `(2,1)`, `(1,2)`; 9 → + two points on the `t·c ≈ n` boundary.
    Biased(usize),
    /// `count` distinct configurations drawn uniformly at random.
    UniformRandom {
        /// Number of configurations to draw.
        count: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl Default for InitialSampling {
    fn default() -> Self {
        InitialSampling::Biased(9)
    }
}

impl InitialSampling {
    /// Materialize the initial configurations for `space`, deduplicated and
    /// all admissible.
    pub fn configs(&self, space: &SearchSpace) -> Vec<Config> {
        match *self {
            InitialSampling::Biased(k) => biased(space, k),
            InitialSampling::UniformRandom { count, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut all: Vec<Config> = space.configs().to_vec();
                all.shuffle(&mut rng);
                all.truncate(count.min(all.len()));
                all
            }
        }
    }

    /// Materialize the initial configurations for a typed [`ConfigSpace`]:
    /// the 2-D scheme at the space's default axis levels, plus — for the
    /// biased scheme — one probe per non-default axis level at the balanced
    /// over-subscription pivot `(⌊√n⌋, n/⌊√n⌋)`, so every discrete level
    /// enters the training set before SMBO starts (otherwise the model sees
    /// each axis feature as a constant and EI carries no signal along it).
    /// Axis-less spaces get exactly the legacy list.
    pub fn configs_nd(&self, space: &ConfigSpace) -> Vec<Config> {
        match *self {
            InitialSampling::Biased(_) => {
                let defaults = space.default_axes();
                let mut out: Vec<Config> = self
                    .configs(space.tc())
                    .into_iter()
                    .map(|c| Config::with_axes(c.t, c.c, defaults))
                    .collect();
                if space.axes().is_empty() {
                    return out;
                }
                let n = space.n_cores();
                let sqrt_n = (n as f64).sqrt().floor().max(1.0) as usize;
                let pivot = (sqrt_n, n / sqrt_n);
                for (k, axis) in space.axes().iter().enumerate() {
                    for level in 0..axis.len() {
                        if level == axis.default_level() {
                            continue;
                        }
                        let cfg = Config::with_axes(pivot.0, pivot.1, defaults.with(k, level));
                        if space.contains(cfg) && !out.contains(&cfg) {
                            out.push(cfg);
                        }
                    }
                }
                out
            }
            InitialSampling::UniformRandom { count, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut all: Vec<Config> = space.configs().to_vec();
                all.shuffle(&mut rng);
                all.truncate(count.min(all.len()));
                all
            }
        }
    }
}

/// The biased boundary sample in the paper's incremental order.
fn biased(space: &SearchSpace, k: usize) -> Vec<Config> {
    let n = space.n_cores();
    let sqrt_n = (n as f64).sqrt().floor().max(1.0) as usize;
    let candidates = [
        // 3 pivots.
        Config::new(1, 1),
        Config::new(n, 1),
        Config::new(1, n),
        // 5: pivot neighbours along the axes.
        Config::new(n.saturating_sub(1).max(1), 1),
        Config::new(1, n.saturating_sub(1).max(1)),
        // 7: near the sequential pivot.
        Config::new(2, 1),
        Config::new(1, 2),
        // 9: the over-subscription boundary t·c ≈ n (the third boundary
        // region of Fig. 4).
        Config::new(sqrt_n, n / sqrt_n),
        Config::new(2, (n / 2).max(1)),
    ];
    let mut out: Vec<Config> = Vec::new();
    for cfg in candidates.into_iter().take(k.min(candidates.len())) {
        if space.contains(cfg) && !out.contains(&cfg) {
            out.push(cfg);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_9_covers_three_boundary_regions() {
        let space = SearchSpace::new(48);
        let cfgs = InitialSampling::Biased(9).configs(&space);
        assert_eq!(cfgs.len(), 9);
        assert!(cfgs.contains(&Config::new(1, 1)));
        assert!(cfgs.contains(&Config::new(48, 1)));
        assert!(cfgs.contains(&Config::new(1, 48)));
        assert!(cfgs.contains(&Config::new(47, 1)));
        assert!(cfgs.contains(&Config::new(1, 47)));
        assert!(cfgs.contains(&Config::new(2, 1)));
        assert!(cfgs.contains(&Config::new(1, 2)));
        // Hyperbola points: 6*8 = 48 and 2*24 = 48.
        assert!(cfgs.contains(&Config::new(6, 8)));
        assert!(cfgs.contains(&Config::new(2, 24)));
        assert!(cfgs.iter().all(|c| space.contains(*c)));
    }

    #[test]
    fn biased_prefixes_match_footnote() {
        let space = SearchSpace::new(48);
        let c3 = InitialSampling::Biased(3).configs(&space);
        assert_eq!(c3, vec![Config::new(1, 1), Config::new(48, 1), Config::new(1, 48)]);
        let c5 = InitialSampling::Biased(5).configs(&space);
        assert_eq!(c5.len(), 5);
        assert!(c5.contains(&Config::new(47, 1)) && c5.contains(&Config::new(1, 47)));
        let c7 = InitialSampling::Biased(7).configs(&space);
        assert_eq!(c7.len(), 7);
        assert!(c7.contains(&Config::new(2, 1)) && c7.contains(&Config::new(1, 2)));
    }

    #[test]
    fn biased_on_tiny_machine_dedups() {
        let space = SearchSpace::new(2); // pivots: (1,1),(2,1),(1,2); neighbours collapse
        let cfgs = InitialSampling::Biased(9).configs(&space);
        assert!(cfgs.len() <= space.len());
        let unique: std::collections::HashSet<_> = cfgs.iter().collect();
        assert_eq!(unique.len(), cfgs.len(), "no duplicates");
        assert!(cfgs.iter().all(|c| space.contains(*c)));
    }

    #[test]
    fn random_draws_distinct_admissible() {
        let space = SearchSpace::new(48);
        let cfgs = InitialSampling::UniformRandom { count: 9, seed: 5 }.configs(&space);
        assert_eq!(cfgs.len(), 9);
        let unique: std::collections::HashSet<_> = cfgs.iter().collect();
        assert_eq!(unique.len(), 9);
        assert!(cfgs.iter().all(|c| space.contains(*c)));
    }

    #[test]
    fn random_is_seed_deterministic() {
        let space = SearchSpace::new(24);
        let a = InitialSampling::UniformRandom { count: 7, seed: 11 }.configs(&space);
        let b = InitialSampling::UniformRandom { count: 7, seed: 11 }.configs(&space);
        let c = InitialSampling::UniformRandom { count: 7, seed: 12 }.configs(&space);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_count_capped_by_space() {
        let space = SearchSpace::new(2);
        let cfgs = InitialSampling::UniformRandom { count: 50, seed: 1 }.configs(&space);
        assert_eq!(cfgs.len(), space.len());
    }
}
