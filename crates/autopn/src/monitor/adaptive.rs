//! AutoPN's adaptive monitoring policy: CV-based stability detection plus the
//! `1/T(1,1)` adaptive timeout (§VI).

use super::{MonitorPolicy, Verdict, HARD_WINDOW_CAP_NS};
use crate::kpi::{Measurement, WindowedStats};
use crate::space::Config;

/// Adaptive measurement windows.
///
/// On every commit `i` the policy computes the running throughput estimate
/// `T(i) = i / time(i)` and closes the window once the coefficient of
/// variation of `T(1..=i)` drops to [`cv_threshold`](Self::cv_threshold)
/// (after at least [`min_commits`](Self::min_commits) commits). If no commit
/// arrives for the adaptive timeout — `κ / T(1,1)`, derived automatically
/// from the measurement of the `(1,1)` pivot — the window is cut short and
/// flagged `timed_out`: such a configuration is known to be far from optimal
/// and not worth measuring precisely.
#[derive(Debug, Clone)]
pub struct AdaptiveMonitor {
    /// CV stability threshold (paper default: 0.10).
    pub cv_threshold: f64,
    /// Minimum commits before the CV test may close the window.
    pub min_commits: u64,
    /// Timeout multiplier κ applied to the sequential-transaction timescale
    /// `1/T(1,1)`: a window with no commit for κ timescales is cut short.
    /// κ = 3 keeps configurations that are merely *slower than sequential by
    /// a small factor* measurable (on weakly-scaling workloads much of the
    /// space commits near the sequential rate), while still escaping truly
    /// starving configurations quickly.
    pub timeout_multiplier: f64,
    /// Commits discarded at the start of each window before measurement
    /// begins. Right after a reconfiguration the commit stream still carries
    /// transactions admitted under the previous configuration; folding them
    /// into the `T(i)` series inflates its CV and stalls convergence.
    pub warmup_commits: u64,
    /// One sequential-transaction timescale, `1e9 / T(1,1)` ns.
    timescale_ns: Option<u64>,
    /// When the window was opened (before warm-up discarding).
    window_open_ns: u64,
    start_ns: u64,
    last_event_ns: u64,
    discarded: u64,
    commits: u64,
    stats: WindowedStats,
}

impl Default for AdaptiveMonitor {
    fn default() -> Self {
        Self::new(0.10, 5)
    }
}

impl AdaptiveMonitor {
    pub fn new(cv_threshold: f64, min_commits: u64) -> Self {
        Self {
            cv_threshold,
            min_commits: min_commits.max(2),
            timeout_multiplier: 3.0,
            warmup_commits: 3,
            timescale_ns: None,
            window_open_ns: 0,
            start_ns: 0,
            last_event_ns: 0,
            discarded: 0,
            commits: 0,
            // Sliding CV window: reconfiguration transients age out instead
            // of inflating the series CV forever.
            stats: WindowedStats::new(15),
        }
    }

    /// Derive the adaptive timescale from the sequential configuration's
    /// throughput `t11` (commits/s); the timeout is κ timescales.
    pub fn set_reference_throughput(&mut self, t11: f64) {
        if t11 > 0.0 {
            self.timescale_ns = Some((1e9 / t11) as u64);
        }
    }

    /// The currently armed timeout (κ timescales), if any.
    pub fn timeout_ns(&self) -> Option<u64> {
        self.timescale_ns.map(|t| (t as f64 * self.timeout_multiplier) as u64)
    }

    fn close(&self, now_ns: u64, timed_out: bool) -> Measurement {
        Measurement::from_counts(
            self.commits,
            now_ns.saturating_sub(self.start_ns).max(1),
            timed_out,
            self.stats.cv(),
        )
    }
}

impl MonitorPolicy for AdaptiveMonitor {
    fn begin_window(&mut self, now_ns: u64) {
        self.window_open_ns = now_ns;
        self.start_ns = now_ns;
        self.last_event_ns = now_ns;
        self.discarded = 0;
        self.commits = 0;
        self.stats.reset();
    }

    fn on_commit(&mut self, at_ns: u64) -> Verdict {
        // A commit arriving after a silent period longer than the adaptive
        // timeout still means the window should have been cut: the poll loop
        // only observes idle time at poll granularity, so catch it here too.
        if let Some(timeout) = self.timeout_ns() {
            if at_ns.saturating_sub(self.last_event_ns) >= timeout {
                return Verdict::Complete(self.close(at_ns, true));
            }
        }
        // Warm-up: discard commits still attributable to the previous
        // configuration. Two criteria must both be satisfied before
        // measuring starts: a few commits have passed (covers the
        // no-reference case) AND one sequential-transaction timescale has
        // elapsed since the window opened — after a reconfiguration,
        // transactions admitted under the *old* configuration (up to the old
        // `t` of them) all drain within about one transaction latency, and
        // counting that burst would wildly overestimate the new
        // configuration's throughput.
        let in_commit_warmup = self.discarded < self.warmup_commits;
        let in_time_warmup = self
            .timescale_ns
            .map(|t| at_ns.saturating_sub(self.window_open_ns) < t)
            .unwrap_or(false);
        if in_commit_warmup || in_time_warmup {
            self.discarded += 1;
            self.start_ns = at_ns;
            self.last_event_ns = at_ns;
            return Verdict::Continue;
        }
        self.commits += 1;
        self.last_event_ns = at_ns;
        let elapsed = at_ns.saturating_sub(self.start_ns).max(1);
        let t_i = self.commits as f64 * 1e9 / elapsed as f64;
        self.stats.push(t_i);
        // The CV test may only close a window that spans at least one
        // sequential-transaction timescale (1/T(1,1), the same quantity the
        // timeout is derived from): commits leave the serialized commit
        // section in bursts, and a window closed inside one burst would
        // wildly overestimate throughput.
        let spans_timescale = self.timescale_ns.map(|t| elapsed >= t).unwrap_or(true);
        if self.commits >= self.min_commits && spans_timescale {
            if let Some(cv) = self.stats.cv() {
                if cv <= self.cv_threshold {
                    return Verdict::Complete(self.close(at_ns, false));
                }
            }
        }
        if elapsed >= HARD_WINDOW_CAP_NS {
            return Verdict::Complete(self.close(at_ns, true));
        }
        Verdict::Continue
    }

    fn on_idle(&mut self, now_ns: u64) -> Verdict {
        if let Some(timeout) = self.timeout_ns() {
            if now_ns.saturating_sub(self.last_event_ns) >= timeout {
                return Verdict::Complete(self.close(now_ns, true));
            }
        }
        if now_ns.saturating_sub(self.start_ns) >= HARD_WINDOW_CAP_NS {
            return Verdict::Complete(self.close(now_ns, true));
        }
        Verdict::Continue
    }

    fn poll_interval_ns(&self) -> u64 {
        self.timeout_ns().map(|t| (t / 4).clamp(100_000, 50_000_000)).unwrap_or(1_000_000)
    }

    fn measurement_taken(&mut self, cfg: Config, m: &Measurement) {
        if cfg == Config::new(1, 1) {
            if !m.timed_out {
                self.set_reference_throughput(m.throughput);
            } else if m.starved && self.timescale_ns.is_none() {
                // Starved pivot: T(1,1) = 0, so no timescale can be derived
                // from it — and with no timescale there is no adaptive
                // timeout, which would let *every* subsequent window on this
                // (possibly stalled) system run to the 120 s hard cap. Arm a
                // conservative fallback timescale from the window we actually
                // waited, clamped to a sane range, so later windows are still
                // cut promptly. A real (1,1) measurement replaces it.
                let fallback = (m.window_ns.max(1) / 2).clamp(1_000_000, 10_000_000_000);
                self.timescale_ns = Some(fallback);
            }
        }
    }

    fn reset_reference(&mut self) {
        self.timescale_ns = None;
    }

    fn force_close(&mut self, now_ns: u64) -> Measurement {
        // Salvage whatever the window counted so far; flagged timed-out.
        self.close(now_ns, true)
    }

    fn current_cv(&self) -> Option<f64> {
        self.stats.cv()
    }

    fn name(&self) -> String {
        format!("adaptive(cv={:.0}%)", self.cv_threshold * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::test_util::drive_uniform;

    #[test]
    fn steady_stream_converges_quickly() {
        let mut m = AdaptiveMonitor::default();
        // Perfectly regular commits every 1ms: CV of T(i) shrinks fast.
        let (n, meas) = drive_uniform(&mut m, 0, 1_000_000, 10_000).expect("must complete");
        assert!(n <= 50, "took {n} commits");
        assert!(!meas.timed_out);
        assert!((meas.throughput - 1000.0).abs() / 1000.0 < 0.05, "tp {}", meas.throughput);
        assert!(meas.cv.unwrap() <= 0.10);
    }

    #[test]
    fn jittery_stream_needs_more_commits() {
        let mut steady = AdaptiveMonitor::default();
        let (n_steady, _) = drive_uniform(&mut steady, 0, 1_000_000, 100_000).unwrap();

        // Alternating fast/slow inter-commit gaps: higher CV, later close.
        let mut jittery = AdaptiveMonitor::default();
        jittery.begin_window(0);
        let mut at = 0u64;
        let mut n_jittery = None;
        for i in 1..100_000 {
            at += if i % 2 == 0 { 200_000 } else { 3_800_000 };
            if let Verdict::Complete(_) = jittery.on_commit(at) {
                n_jittery = Some(i);
                break;
            }
        }
        let n_jittery = n_jittery.expect("eventually stabilizes");
        assert!(
            n_jittery > n_steady,
            "jittery ({n_jittery}) must need more commits than steady ({n_steady})"
        );
    }

    #[test]
    fn min_commits_enforced_after_warmup() {
        let mut m = AdaptiveMonitor::new(0.99, 5); // absurdly lax CV
        m.begin_window(0);
        // Default warm-up discards the first 3 commits...
        for i in 1..=3u64 {
            assert_eq!(m.on_commit(i * 1_000), Verdict::Continue, "warm-up commit {i}");
        }
        // ...then min_commits measured commits are required.
        for i in 4..=7u64 {
            assert_eq!(m.on_commit(i * 1_000), Verdict::Continue, "measured commit {i}");
        }
        assert!(matches!(m.on_commit(8_000), Verdict::Complete(_)), "5th measured commit closes");
    }

    #[test]
    fn warmup_resets_measurement_origin() {
        let mut m = AdaptiveMonitor::new(0.10, 2);
        m.warmup_commits = 1;
        m.begin_window(0);
        // A straggler from the previous configuration arrives late...
        assert_eq!(m.on_commit(10_000_000), Verdict::Continue);
        // ...then the new configuration commits at a steady 1 ms.
        let _ = m.on_commit(11_000_000);
        match m.on_commit(12_000_000) {
            Verdict::Complete(meas) => {
                // Throughput reflects the 1 ms cadence, not the straggler gap.
                assert!((meas.throughput - 1000.0).abs() < 50.0, "tp {}", meas.throughput);
            }
            v => panic!("expected completion, got {v:?}"),
        }
    }

    #[test]
    fn timeout_fires_on_silent_config() {
        let mut m = AdaptiveMonitor::default();
        m.set_reference_throughput(1000.0); // timescale 1ms, timeout 3ms
        assert_eq!(m.timeout_ns(), Some(3_000_000));
        m.begin_window(0);
        assert_eq!(m.on_idle(500_000), Verdict::Continue);
        assert_eq!(m.on_idle(2_500_000), Verdict::Continue);
        match m.on_idle(3_200_000) {
            Verdict::Complete(meas) => {
                assert!(meas.timed_out);
                assert_eq!(meas.commits, 0);
                assert_eq!(meas.throughput, 0.0);
            }
            v => panic!("expected timeout, got {v:?}"),
        }
    }

    #[test]
    fn timeout_measured_since_last_commit() {
        let mut m = AdaptiveMonitor::default();
        m.set_reference_throughput(1000.0);
        m.begin_window(0);
        let _ = m.on_commit(900_000);
        // 2.9ms after the commit: not yet 3ms (= 3 timescales) since the
        // last event.
        assert_eq!(m.on_idle(3_800_000), Verdict::Continue);
        assert!(matches!(m.on_idle(3_950_000), Verdict::Complete(_)));
    }

    #[test]
    fn no_timeout_until_reference_known() {
        let mut m = AdaptiveMonitor::default();
        m.begin_window(0);
        assert_eq!(m.on_idle(10_000_000_000), Verdict::Continue, "no reference, no timeout");
        // But the hard cap still protects the driver.
        assert!(matches!(m.on_idle(HARD_WINDOW_CAP_NS + 1), Verdict::Complete(_)));
    }

    #[test]
    fn reference_set_from_1_1_measurement() {
        let mut m = AdaptiveMonitor::default();
        let meas = Measurement::from_counts(100, 1_000_000_000, false, Some(0.05));
        m.measurement_taken(Config::new(4, 4), &meas);
        assert_eq!(m.timeout_ns(), None, "only (1,1) sets the reference");
        m.measurement_taken(Config::new(1, 1), &meas);
        assert_eq!(m.timeout_ns(), Some(30_000_000)); // 3 x (1/100 s)
    }

    #[test]
    fn commit_bursts_cannot_close_a_window_early() {
        // Reference: sequential rate 100 tx/s → timescale 10 ms. A burst of
        // commits 10 µs apart must NOT close the window, even though the
        // T(i) series inside the burst looks perfectly stable.
        let mut m = AdaptiveMonitor::default();
        m.set_reference_throughput(100.0);
        m.begin_window(0);
        let mut at = 0u64;
        for _ in 0..12 {
            at += 10_000; // 10 µs
            assert_eq!(m.on_commit(at), Verdict::Continue, "burst must not close the window");
        }
        // Steady post-burst commits every 1 ms eventually close it, and the
        // measurement reflects the long-run rate, not the burst.
        let mut result = None;
        for _ in 0..200 {
            at += 1_000_000;
            if let Verdict::Complete(meas) = m.on_commit(at) {
                result = Some(meas);
                break;
            }
        }
        let meas = result.expect("must eventually close");
        assert!(
            meas.throughput < 5_000.0,
            "burst inflated the estimate: {:.0} tx/s",
            meas.throughput
        );
    }

    #[test]
    fn starved_pivot_arms_a_fallback_timescale() {
        let mut m = AdaptiveMonitor::default();
        // The (1,1) pivot window closed with zero commits after 200 ms.
        let starved = Measurement::from_counts(0, 200_000_000, true, None);
        assert!(starved.starved);
        m.measurement_taken(Config::new(1, 1), &starved);
        let timeout = m.timeout_ns().expect("starved pivot must still arm a timeout");
        assert!(timeout < HARD_WINDOW_CAP_NS, "fallback must beat the hard cap");
        // Subsequent silent windows are cut by the fallback timeout...
        m.begin_window(0);
        assert!(matches!(m.on_idle(timeout + 1), Verdict::Complete(_)));
        // ...and a real (1,1) measurement replaces the fallback.
        let real = Measurement::from_counts(100, 1_000_000_000, false, Some(0.05));
        m.measurement_taken(Config::new(1, 1), &real);
        assert_eq!(m.timeout_ns(), Some(30_000_000));
    }

    #[test]
    fn force_close_salvages_partial_window() {
        let mut m = AdaptiveMonitor { warmup_commits: 0, ..AdaptiveMonitor::default() };
        m.begin_window(0);
        let _ = m.on_commit(1_000_000);
        let _ = m.on_commit(2_000_000);
        let meas = m.force_close(4_000_000);
        assert!(meas.timed_out);
        assert_eq!(meas.commits, 2);
        assert!(!meas.starved);
    }

    #[test]
    fn windows_reset_cleanly() {
        let mut m = AdaptiveMonitor::default();
        drive_uniform(&mut m, 0, 1_000_000, 10_000).unwrap();
        // Second window starting much later must not inherit state.
        let (n, meas) = drive_uniform(&mut m, 77_000_000_000, 2_000_000, 10_000).unwrap();
        assert!(n <= 50);
        assert!((meas.throughput - 500.0).abs() / 500.0 < 0.05);
    }
}
