//! KPI monitoring policies (§VI).
//!
//! A monitor policy decides when a measurement window is *complete*: it
//! consumes the stream of top-level commit events (timestamps on the
//! system's clock, virtual or real) and either keeps waiting or closes the
//! window with a [`Measurement`]. The paper contrasts:
//!
//! * [`StaticTimeMonitor`] — fixed-duration windows (needs workload-specific
//!   tuning; Fig. 7a/7b).
//! * [`CommitCountMonitor`] — wait for a fixed number of commits (WPNOC-k),
//!   optionally guarded by the adaptive timeout (Fig. 7c).
//! * [`AdaptiveMonitor`] — AutoPN's policy: close the window when the
//!   coefficient of variation of the per-commit throughput estimates drops
//!   below a threshold (default 10%), with an adaptive timeout of
//!   `1/T(1,1)` to escape starving configurations.

pub mod adaptive;
pub mod commit_count;
pub mod static_time;

pub use adaptive::AdaptiveMonitor;
pub use commit_count::CommitCountMonitor;
pub use static_time::StaticTimeMonitor;

use crate::kpi::Measurement;
use crate::space::Config;

/// Outcome of feeding one event to a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Keep measuring.
    Continue,
    /// Window complete.
    Complete(Measurement),
}

/// A measurement-window policy over commit-event streams.
pub trait MonitorPolicy {
    /// Start a fresh window at time `now_ns`.
    fn begin_window(&mut self, now_ns: u64);

    /// A top-level commit occurred at `at_ns`.
    fn on_commit(&mut self, at_ns: u64) -> Verdict;

    /// No commit occurred; the clock is now `now_ns`. Lets timeout-based
    /// policies close windows on silent (starving) configurations.
    fn on_idle(&mut self, now_ns: u64) -> Verdict;

    /// How long the driver may block waiting for a commit before it must
    /// call [`MonitorPolicy::on_idle`].
    fn poll_interval_ns(&self) -> u64 {
        1_000_000 // 1 ms
    }

    /// Hook called by the controller after every completed measurement; the
    /// adaptive policy uses the `(1,1)` measurement to derive its timeout.
    fn measurement_taken(&mut self, _cfg: Config, _m: &Measurement) {}

    /// Forget workload-derived calibration (e.g. the `1/T(1,1)` timeout).
    /// Called by the controller when a workload change triggers a fresh
    /// tuning session: the old reference no longer describes the system.
    fn reset_reference(&mut self) {}

    /// Forcibly close the current window *now* and return a flagged
    /// measurement. Called by the controller's watchdog when a window
    /// outlives its hard deadline (a stalled system never delivers the
    /// commits — or even the idle polls — a policy's own timeout needs).
    /// Policies that track window state should override this to salvage the
    /// partial counts; the default reports a starved, timed-out window.
    fn force_close(&mut self, _now_ns: u64) -> Measurement {
        Measurement::from_counts(0, 0, true, None)
    }

    /// The policy's running stability estimate (CV of the per-commit
    /// throughput series) mid-window, if it tracks one. The traced
    /// controller samples this after every commit to record the CV
    /// trajectory of the window.
    fn current_cv(&self) -> Option<f64> {
        None
    }

    /// Display name for reports.
    fn name(&self) -> String;
}

/// Hard safety cap shared by the policies: no window outlives this, whatever
/// the policy state (keeps drivers loop-safe on pathological configs).
pub const HARD_WINDOW_CAP_NS: u64 = 120_000_000_000; // 120 s

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Feed a policy a uniform commit stream and return how many commits it
    /// took to complete (None if it never completed within `max`).
    pub fn drive_uniform(
        policy: &mut dyn MonitorPolicy,
        start_ns: u64,
        period_ns: u64,
        max: usize,
    ) -> Option<(usize, Measurement)> {
        policy.begin_window(start_ns);
        let mut at = start_ns;
        for i in 1..=max {
            at += period_ns;
            if let Verdict::Complete(m) = policy.on_commit(at) {
                return Some((i, m));
            }
        }
        None
    }
}
