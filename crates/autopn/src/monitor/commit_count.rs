//! Fixed-commit-count windows (the paper's WPNOC-k baselines), optionally
//! guarded by AutoPN's adaptive timeout (Fig. 7c).

use super::{MonitorPolicy, Verdict, HARD_WINDOW_CAP_NS};
use crate::kpi::Measurement;
use crate::space::Config;

/// Wait for `k` commits, then close the window. Without a timeout this
/// policy hangs on starving configurations — exactly the vulnerability §VI
/// describes; enable
/// [`with_adaptive_timeout`](CommitCountMonitor::with_adaptive_timeout) to
/// add the `1/T(1,1)` guard.
#[derive(Debug, Clone)]
pub struct CommitCountMonitor {
    k: u64,
    adaptive_timeout: bool,
    timeout_multiplier: f64,
    timeout_ns: Option<u64>,
    start_ns: u64,
    last_event_ns: u64,
    commits: u64,
}

impl CommitCountMonitor {
    /// Plain WPNOC-k: wait for `k` commits.
    pub fn new(k: u64) -> Self {
        Self {
            k: k.max(1),
            adaptive_timeout: false,
            timeout_multiplier: 3.0,
            timeout_ns: None,
            start_ns: 0,
            last_event_ns: 0,
            commits: 0,
        }
    }

    /// Arm the adaptive timeout (derived from the `(1,1)` measurement).
    pub fn with_adaptive_timeout(mut self) -> Self {
        self.adaptive_timeout = true;
        self
    }

    /// The commit target `k`.
    pub fn target(&self) -> u64 {
        self.k
    }

    fn close(&self, now_ns: u64, timed_out: bool) -> Measurement {
        Measurement::from_counts(
            self.commits,
            now_ns.saturating_sub(self.start_ns).max(1),
            timed_out,
            None,
        )
    }
}

impl MonitorPolicy for CommitCountMonitor {
    fn begin_window(&mut self, now_ns: u64) {
        self.start_ns = now_ns;
        self.last_event_ns = now_ns;
        self.commits = 0;
    }

    fn on_commit(&mut self, at_ns: u64) -> Verdict {
        self.commits += 1;
        self.last_event_ns = at_ns;
        if self.commits >= self.k {
            Verdict::Complete(self.close(at_ns, false))
        } else {
            Verdict::Continue
        }
    }

    fn on_idle(&mut self, now_ns: u64) -> Verdict {
        if let Some(timeout) = self.timeout_ns {
            if now_ns.saturating_sub(self.last_event_ns) >= timeout {
                return Verdict::Complete(self.close(now_ns, true));
            }
        }
        if now_ns.saturating_sub(self.start_ns) >= HARD_WINDOW_CAP_NS {
            return Verdict::Complete(self.close(now_ns, true));
        }
        Verdict::Continue
    }

    fn measurement_taken(&mut self, cfg: Config, m: &Measurement) {
        if self.adaptive_timeout && cfg == Config::new(1, 1) && !m.timed_out && m.throughput > 0.0 {
            self.timeout_ns = Some((self.timeout_multiplier * 1e9 / m.throughput) as u64);
        }
    }

    fn reset_reference(&mut self) {
        self.timeout_ns = None;
    }

    fn name(&self) -> String {
        if self.adaptive_timeout {
            format!("wpnoc{}+adaptTO", self.k)
        } else {
            format!("wpnoc{}", self.k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::test_util::drive_uniform;

    #[test]
    fn closes_after_k_commits() {
        let mut m = CommitCountMonitor::new(10);
        let (n, meas) = drive_uniform(&mut m, 0, 2_000_000, 100).unwrap();
        assert_eq!(n, 10);
        assert_eq!(meas.commits, 10);
        assert!((meas.throughput - 500.0).abs() < 1.0);
        assert!(!meas.timed_out);
    }

    #[test]
    fn without_timeout_never_closes_on_idle() {
        let mut m = CommitCountMonitor::new(10);
        m.begin_window(0);
        assert_eq!(m.on_idle(10_000_000_000), Verdict::Continue);
        // Only the hard cap saves the driver.
        assert!(matches!(m.on_idle(HARD_WINDOW_CAP_NS), Verdict::Complete(_)));
    }

    #[test]
    fn adaptive_timeout_rescues_starving_config() {
        let mut m = CommitCountMonitor::new(30).with_adaptive_timeout();
        // (1,1) measured at 1000 commits/s → timeout 3ms (κ = 3 timescales).
        m.measurement_taken(
            Config::new(1, 1),
            &Measurement::from_counts(1000, 1_000_000_000, false, None),
        );
        m.begin_window(0);
        let _ = m.on_commit(100_000);
        assert_eq!(m.on_idle(1_200_000), Verdict::Continue);
        match m.on_idle(3_200_000) {
            Verdict::Complete(meas) => {
                assert!(meas.timed_out);
                assert_eq!(meas.commits, 1);
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(CommitCountMonitor::new(10).name(), "wpnoc10");
        assert_eq!(CommitCountMonitor::new(30).with_adaptive_timeout().name(), "wpnoc30+adaptTO");
    }

    #[test]
    fn non_pivot_measurements_do_not_arm_timeout() {
        let mut m = CommitCountMonitor::new(5).with_adaptive_timeout();
        m.measurement_taken(
            Config::new(8, 2),
            &Measurement::from_counts(100, 1_000_000_000, false, None),
        );
        m.begin_window(0);
        assert_eq!(m.on_idle(60_000_000_000), Verdict::Continue);
    }
}
