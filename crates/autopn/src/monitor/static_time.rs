//! Fixed-duration measurement windows (the conventional policy of e.g.
//! F2C2-STM that Fig. 7a/7b shows to be brittle across workloads).

use std::time::Duration;

use super::{MonitorPolicy, Verdict};
use crate::kpi::Measurement;

/// Close every window after exactly `window_ns`, whatever happened inside.
#[derive(Debug, Clone)]
pub struct StaticTimeMonitor {
    window_ns: u64,
    start_ns: u64,
    commits: u64,
}

impl StaticTimeMonitor {
    pub fn new(window: Duration) -> Self {
        Self { window_ns: (window.as_nanos() as u64).max(1), start_ns: 0, commits: 0 }
    }

    /// The configured window length.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    fn maybe_close(&self, now_ns: u64) -> Verdict {
        let elapsed = now_ns.saturating_sub(self.start_ns);
        if elapsed >= self.window_ns {
            Verdict::Complete(Measurement::from_counts(self.commits, elapsed.max(1), false, None))
        } else {
            Verdict::Continue
        }
    }
}

impl MonitorPolicy for StaticTimeMonitor {
    fn begin_window(&mut self, now_ns: u64) {
        self.start_ns = now_ns;
        self.commits = 0;
    }

    fn on_commit(&mut self, at_ns: u64) -> Verdict {
        self.commits += 1;
        self.maybe_close(at_ns)
    }

    fn on_idle(&mut self, now_ns: u64) -> Verdict {
        self.maybe_close(now_ns)
    }

    fn poll_interval_ns(&self) -> u64 {
        (self.window_ns / 8).clamp(100_000, 100_000_000)
    }

    fn name(&self) -> String {
        format!("static({:?})", Duration::from_nanos(self.window_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closes_exactly_at_window() {
        let mut m = StaticTimeMonitor::new(Duration::from_millis(10));
        m.begin_window(1_000_000);
        assert_eq!(m.on_commit(2_000_000), Verdict::Continue);
        assert_eq!(m.on_commit(5_000_000), Verdict::Continue);
        match m.on_commit(11_000_001) {
            Verdict::Complete(meas) => {
                assert_eq!(meas.commits, 3);
                assert!(!meas.timed_out);
                assert!((meas.throughput - 300.0).abs() < 1.0, "tp {}", meas.throughput);
            }
            v => panic!("expected completion, got {v:?}"),
        }
    }

    #[test]
    fn closes_on_idle_with_zero_commits() {
        let mut m = StaticTimeMonitor::new(Duration::from_millis(1));
        m.begin_window(0);
        assert_eq!(m.on_idle(500_000), Verdict::Continue);
        match m.on_idle(1_000_000) {
            Verdict::Complete(meas) => {
                assert_eq!(meas.commits, 0);
                assert_eq!(meas.throughput, 0.0);
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn window_resets() {
        let mut m = StaticTimeMonitor::new(Duration::from_millis(1));
        m.begin_window(0);
        let _ = m.on_commit(2_000_000);
        m.begin_window(10_000_000);
        assert_eq!(m.on_commit(10_500_000), Verdict::Continue, "new window not over yet");
    }

    #[test]
    fn name_mentions_duration() {
        let m = StaticTimeMonitor::new(Duration::from_secs(2));
        assert!(m.name().contains("2s"), "{}", m.name());
    }
}
