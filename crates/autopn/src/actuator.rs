//! The actuator: applying `(t, c)` configurations to a running system (§VI),
//! plus the [`AxisRegistry`] that extends actuation to the typed discrete
//! axes of a [`ConfigSpace`].

use crate::controller::ApplyError;
use crate::space::{Axis, Config, ConfigSpace, SearchSpace, MAX_AXES};

/// Anything that can enact a parallelism-degree configuration.
pub trait Actuator {
    /// Apply `cfg`; running transactions finish under their old admission,
    /// new ones observe the new limits.
    fn apply(&mut self, cfg: Config);

    /// The configuration currently in force.
    fn current(&self) -> Config;
}

/// Actuator over a live [`pnstm::Stm`] instance: reconfigures the admission
/// throttle **and** reprovisions the shared child-task scheduler, mirroring
/// the paper's transparent interception of transaction begins.
///
/// The "ad-hoc API" of §VI — letting applications query the tuned optimum —
/// is [`PnstmActuator::current`] plus [`pnstm::Stm::degree`] on the wrapped
/// instance.
pub struct PnstmActuator {
    stm: pnstm::Stm,
}

/// Worker-thread demand of a `(t, c)` configuration: `t` trees, each with
/// the parent as one executor plus up to `c - 1` pool helpers.
pub fn helper_demand(cfg: Config) -> usize {
    cfg.t * cfg.c.saturating_sub(1)
}

impl PnstmActuator {
    pub fn new(stm: pnstm::Stm) -> Self {
        Self { stm }
    }

    /// Access the wrapped STM.
    pub fn stm(&self) -> &pnstm::Stm {
        &self.stm
    }

    /// Switch the STM's contention-management policy. Like [`Actuator::apply`]
    /// this takes effect for *subsequent* abort decisions; transactions
    /// mid-backoff finish their current wait under the old policy.
    pub fn set_policy(&self, policy: crate::space::CmPolicy) {
        self.stm.set_cm_mode(policy.into());
    }

    /// The contention-management policy currently in force.
    pub fn policy(&self) -> crate::space::CmPolicy {
        self.stm.cm_mode().into()
    }

    /// Retarget the background collector's slice budget (boxes pruned per
    /// slice before it yields). Takes effect from the collector's next slice.
    pub fn set_gc_budget(&self, budget: crate::space::GcBudget) {
        self.stm.set_gc_slice_boxes(budget.slice_boxes);
    }

    /// The GC slice budget currently in force.
    pub fn gc_budget(&self) -> crate::space::GcBudget {
        crate::space::GcBudget::new(self.stm.gc_slice_boxes())
    }

    /// Move the memory ladder's soft ceiling (retained versions above which
    /// the runtime enters urgent collection and shortens snapshot leases).
    /// Re-evaluates the ladder immediately against the new ceiling.
    pub fn set_soft_ceiling(&self, versions: u64) {
        self.stm.set_mem_soft_ceiling(versions);
    }

    /// The memory ladder's soft ceiling currently in force.
    pub fn soft_ceiling(&self) -> u64 {
        self.stm.mem_soft_ceiling()
    }
}

/// One registered live knob: a typed [`Axis`] (the level ladder the model
/// and search see) plus the setter that enacts a chosen level on the
/// running system.
struct AxisBinding {
    axis: Axis,
    set: Box<dyn FnMut(u32, usize) -> Result<(), ApplyError> + Send>,
}

/// A registry of live discrete tuning axes, in actuation == feature order.
///
/// Systems embed one of these in `try_apply`: enact the axes first, then
/// switch the parallelism degree, so a full N-dimensional point rides the
/// controller's apply-retry/degradation ladder atomically — an axis failure
/// or degree veto parks the system on the *full* last-good point, because
/// the fallback [`Config`] carries its axis levels and re-applying it
/// re-enacts them.
#[derive(Default)]
pub struct AxisRegistry {
    bindings: Vec<AxisBinding>,
}

impl AxisRegistry {
    pub fn new() -> Self {
        Self { bindings: Vec::new() }
    }

    /// Register `axis`, enacted by `set(raw_value, level_index)` — e.g. the
    /// GC axis receives `(slice_boxes, ladder_index)`. Axes are enacted and
    /// feature-encoded in registration order.
    pub fn bind<F>(mut self, axis: Axis, set: F) -> Self
    where
        F: FnMut(u32, usize) -> Result<(), ApplyError> + Send + 'static,
    {
        assert!(self.bindings.len() < MAX_AXES, "at most {MAX_AXES} axes");
        assert!(
            self.bindings.iter().all(|b| b.axis.name() != axis.name()),
            "axis {} registered twice",
            axis.name()
        );
        self.bindings.push(AxisBinding { axis, set: Box::new(set) });
        self
    }

    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// The registered axes, in actuation order.
    pub fn axes(&self) -> Vec<Axis> {
        self.bindings.iter().map(|b| b.axis.clone()).collect()
    }

    /// The config space these axes span over an `n_cores`-core machine —
    /// what the system hands its tuner so proposals stay enactable.
    pub fn space(&self, n_cores: usize) -> ConfigSpace {
        ConfigSpace::new(SearchSpace::new(n_cores), self.axes())
    }

    /// Level indices `cfg` selects: its own when it carries one level per
    /// registered axis, the defaults when it is a bare `(t, c)` point
    /// (the controller's built-in `Config::new(1, 1)` fallback), an error
    /// on any other arity — a point from a differently-shaped space.
    fn levels_of(&self, cfg: Config) -> Result<Vec<usize>, ApplyError> {
        if cfg.axes.is_empty() {
            return Ok(self.bindings.iter().map(|b| b.axis.default_level()).collect());
        }
        if cfg.axes.len() != self.bindings.len() {
            return Err(ApplyError::new(format!(
                "config carries {} axis levels, registry has {}",
                cfg.axes.len(),
                self.bindings.len()
            )));
        }
        let levels: Vec<usize> = cfg.axes.iter().collect();
        for (b, &l) in self.bindings.iter().zip(&levels) {
            if l >= b.axis.len() {
                return Err(ApplyError::new(format!(
                    "axis {}: level {l} out of range ({} levels)",
                    b.axis.name(),
                    b.axis.len()
                )));
            }
        }
        Ok(levels)
    }

    /// Enact `cfg`'s axis levels in registration order, failing fast on the
    /// first setter error. Setters must be idempotent: the degradation
    /// ladder re-enacts the last-good point on every parked retry.
    pub fn enact(&mut self, cfg: Config) -> Result<(), ApplyError> {
        let levels = self.levels_of(cfg)?;
        for (b, level) in self.bindings.iter_mut().zip(levels) {
            let value = b.axis.value_at(level);
            (b.set)(value, level)?;
        }
        Ok(())
    }

    /// Trace record of `cfg`'s axis point (defaults for a bare `(t, c)`
    /// point, empty when the arity is wrong) — for stamping `Reconfigure`
    /// events via `pnstm::Throttle::note_axes` before the degree switch.
    pub fn axes_trace(&self, cfg: Config) -> pnstm::AxesTrace {
        let mut out = pnstm::AxesTrace::empty();
        let Ok(levels) = self.levels_of(cfg) else { return out };
        for (b, level) in self.bindings.iter().zip(levels) {
            out.push(b.axis.name(), b.axis.value_at(level), b.axis.label_at(level));
        }
        out
    }
}

/// The standard live-STM registry: contention policy and GC slice budget,
/// the two discrete knobs switchable on a running [`pnstm::Stm`] without
/// reconstruction.
pub fn stm_axis_registry(stm: &pnstm::Stm) -> AxisRegistry {
    use crate::space::CmPolicy;
    let cm_stm = stm.clone();
    let gc_stm = stm.clone();
    AxisRegistry::new()
        .bind(Axis::cm_policy(), move |value, _| {
            let policy = *CmPolicy::ALL
                .get(value as usize)
                .ok_or_else(|| ApplyError::new(format!("unknown cm policy index {value}")))?;
            cm_stm.set_cm_mode(policy.into());
            Ok(())
        })
        .bind(Axis::gc_budget(), move |value, _| {
            gc_stm.set_gc_slice_boxes(value as usize);
            Ok(())
        })
}

impl Actuator for PnstmActuator {
    fn apply(&mut self, cfg: Config) {
        self.stm.set_degree(cfg.into());
        // Reprovision the execution layer to the new degree's worker demand:
        // with the lock-free scheduler/admission pair this no longer
        // quiesces in-flight batches through a lock, so it is safe to do on
        // every apply.
        self.stm.resize_pool(helper_demand(cfg));
    }

    fn current(&self) -> Config {
        let d = self.stm.degree();
        Config::new(d.top_level, d.nested_per_tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnstm::{Stm, StmConfig};

    #[test]
    fn applies_to_live_stm() {
        let stm = Stm::new(StmConfig::default());
        let mut act = PnstmActuator::new(stm.clone());
        act.apply(Config::new(7, 3));
        assert_eq!(act.current(), Config::new(7, 3));
        assert_eq!(stm.degree(), pnstm::ParallelismDegree::new(7, 3));
    }

    #[test]
    fn reapplication_is_idempotent() {
        let stm = Stm::new(StmConfig::default());
        let mut act = PnstmActuator::new(stm);
        act.apply(Config::new(2, 2));
        act.apply(Config::new(2, 2));
        assert_eq!(act.current(), Config::new(2, 2));
    }

    #[test]
    fn policy_actuation_round_trips() {
        use crate::space::CmPolicy;
        let stm = Stm::new(StmConfig::default());
        let act = PnstmActuator::new(stm.clone());
        assert_eq!(act.policy(), CmPolicy::Immediate);
        act.set_policy(CmPolicy::Karma);
        assert_eq!(act.policy(), CmPolicy::Karma);
        assert_eq!(stm.cm_mode(), pnstm::CmMode::Karma);
        act.set_policy(CmPolicy::Immediate);
        assert_eq!(act.policy(), CmPolicy::Immediate);
    }

    #[test]
    fn mem_knob_actuation_round_trips() {
        use crate::space::GcBudget;
        let stm = Stm::new(StmConfig::default());
        let act = PnstmActuator::new(stm.clone());
        assert_eq!(act.gc_budget(), GcBudget::default());
        act.set_gc_budget(GcBudget::new(256));
        assert_eq!(act.gc_budget(), GcBudget::new(256));
        assert_eq!(stm.gc_slice_boxes(), 256);
        let soft = act.soft_ceiling();
        act.set_soft_ceiling(soft / 2);
        assert_eq!(act.soft_ceiling(), soft / 2);
        act.set_soft_ceiling(soft);
    }

    #[test]
    fn registry_enacts_in_order_and_defaults_bare_points() {
        use std::sync::{Arc, Mutex};
        let log = Arc::new(Mutex::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        let mut reg = AxisRegistry::new()
            .bind(Axis::categorical("mode", &["a", "b", "c"], 0), move |v, l| {
                l1.lock().unwrap().push(("mode", v, l));
                Ok(())
            })
            .bind(Axis::integer_log2("boxes", &[64, 128, 256], 128), move |v, l| {
                l2.lock().unwrap().push(("boxes", v, l));
                Ok(())
            });
        assert_eq!(reg.len(), 2);
        let space = reg.space(8);
        assert_eq!(space.axes().len(), 2);
        assert_eq!(space.dim(), 2 + 3 + 1, "t, c, one-hot mode, ordinal boxes");

        let cfg = Config::with_axes(2, 3, crate::space::AxisLevels::from_slice(&[2, 0]));
        reg.enact(cfg).unwrap();
        assert_eq!(*log.lock().unwrap(), vec![("mode", 2, 2), ("boxes", 64, 0)]);

        // Bare (t, c) point — the controller's built-in fallback — enacts
        // the defaults.
        log.lock().unwrap().clear();
        reg.enact(Config::new(1, 1)).unwrap();
        assert_eq!(*log.lock().unwrap(), vec![("mode", 0, 0), ("boxes", 128, 1)]);

        // Wrong arity is an apply error, not a silent partial enactment.
        log.lock().unwrap().clear();
        let wrong = Config::with_axes(1, 1, crate::space::AxisLevels::from_slice(&[1]));
        assert!(reg.enact(wrong).is_err());
        assert!(log.lock().unwrap().is_empty());

        let trace = reg.axes_trace(cfg);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.get("mode").unwrap().label, "c");
        assert_eq!(trace.get("boxes").unwrap().value, 64);
    }

    #[test]
    fn registry_setter_failure_propagates() {
        let mut reg =
            AxisRegistry::new().bind(Axis::categorical("flaky", &["ok", "boom"], 0), |_, level| {
                if level == 1 {
                    Err(ApplyError::new("boom"))
                } else {
                    Ok(())
                }
            });
        let good = Config::with_axes(1, 1, crate::space::AxisLevels::from_slice(&[0]));
        let bad = Config::with_axes(1, 1, crate::space::AxisLevels::from_slice(&[1]));
        assert!(reg.enact(good).is_ok());
        assert!(reg.enact(bad).is_err());
    }

    #[test]
    fn stm_registry_switches_live_knobs() {
        use crate::space::{AxisLevels, CmPolicy};
        let stm = Stm::new(StmConfig::default());
        let mut reg = stm_axis_registry(&stm);
        let space = reg.space(4);
        assert_eq!(space.axes().len(), 2);

        let karma = CmPolicy::ALL.iter().position(|&p| p == CmPolicy::Karma).unwrap();
        let gc256 = space.axes()[1].level_of_value(256).unwrap();
        let cfg = Config::with_axes(2, 2, AxisLevels::from_slice(&[karma, gc256]));
        reg.enact(cfg).unwrap();
        assert_eq!(stm.cm_mode(), pnstm::CmMode::Karma);
        assert_eq!(stm.gc_slice_boxes(), 256);

        // Re-enacting a bare point restores both defaults.
        reg.enact(Config::new(1, 1)).unwrap();
        assert_eq!(stm.cm_mode(), pnstm::CmMode::from(CmPolicy::default()));
        assert_eq!(stm.gc_slice_boxes(), crate::space::GcBudget::default().slice_boxes);
    }

    #[test]
    fn apply_reprovisions_the_scheduler() {
        assert_eq!(helper_demand(Config::new(4, 3)), 8);
        assert_eq!(helper_demand(Config::new(8, 1)), 0, "c=1 needs no helpers");
        let stm = Stm::new(StmConfig { worker_threads: 1, ..StmConfig::default() });
        let mut act = PnstmActuator::new(stm.clone());
        act.apply(Config::new(2, 3));
        assert_eq!(stm.pool_size(), 4, "pool retargeted to t*(c-1)");
        act.apply(Config::new(2, 1));
        assert_eq!(stm.pool_size(), 0);
    }
}
