//! The actuator: applying `(t, c)` configurations to a running system (§VI).

use crate::space::Config;

/// Anything that can enact a parallelism-degree configuration.
pub trait Actuator {
    /// Apply `cfg`; running transactions finish under their old admission,
    /// new ones observe the new limits.
    fn apply(&mut self, cfg: Config);

    /// The configuration currently in force.
    fn current(&self) -> Config;
}

/// Actuator over a live [`pnstm::Stm`] instance: reconfigures the semaphore
/// throttle, mirroring the paper's transparent interception of transaction
/// begins.
///
/// The "ad-hoc API" of §VI — letting applications query the tuned optimum —
/// is [`PnstmActuator::current`] plus [`pnstm::Stm::degree`] on the wrapped
/// instance.
pub struct PnstmActuator {
    stm: pnstm::Stm,
}

impl PnstmActuator {
    pub fn new(stm: pnstm::Stm) -> Self {
        Self { stm }
    }

    /// Access the wrapped STM.
    pub fn stm(&self) -> &pnstm::Stm {
        &self.stm
    }
}

impl Actuator for PnstmActuator {
    fn apply(&mut self, cfg: Config) {
        self.stm.set_degree(cfg.into());
    }

    fn current(&self) -> Config {
        let d = self.stm.degree();
        Config::new(d.top_level, d.nested_per_tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnstm::{Stm, StmConfig};

    #[test]
    fn applies_to_live_stm() {
        let stm = Stm::new(StmConfig::default());
        let mut act = PnstmActuator::new(stm.clone());
        act.apply(Config::new(7, 3));
        assert_eq!(act.current(), Config::new(7, 3));
        assert_eq!(stm.degree(), pnstm::ParallelismDegree::new(7, 3));
    }

    #[test]
    fn reapplication_is_idempotent() {
        let stm = Stm::new(StmConfig::default());
        let mut act = PnstmActuator::new(stm);
        act.apply(Config::new(2, 2));
        act.apply(Config::new(2, 2));
        assert_eq!(act.current(), Config::new(2, 2));
    }
}
