//! The actuator: applying `(t, c)` configurations to a running system (§VI).

use crate::space::Config;

/// Anything that can enact a parallelism-degree configuration.
pub trait Actuator {
    /// Apply `cfg`; running transactions finish under their old admission,
    /// new ones observe the new limits.
    fn apply(&mut self, cfg: Config);

    /// The configuration currently in force.
    fn current(&self) -> Config;
}

/// Actuator over a live [`pnstm::Stm`] instance: reconfigures the admission
/// throttle **and** reprovisions the shared child-task scheduler, mirroring
/// the paper's transparent interception of transaction begins.
///
/// The "ad-hoc API" of §VI — letting applications query the tuned optimum —
/// is [`PnstmActuator::current`] plus [`pnstm::Stm::degree`] on the wrapped
/// instance.
pub struct PnstmActuator {
    stm: pnstm::Stm,
}

/// Worker-thread demand of a `(t, c)` configuration: `t` trees, each with
/// the parent as one executor plus up to `c - 1` pool helpers.
pub fn helper_demand(cfg: Config) -> usize {
    cfg.t * cfg.c.saturating_sub(1)
}

impl PnstmActuator {
    pub fn new(stm: pnstm::Stm) -> Self {
        Self { stm }
    }

    /// Access the wrapped STM.
    pub fn stm(&self) -> &pnstm::Stm {
        &self.stm
    }

    /// Switch the STM's contention-management policy. Like [`Actuator::apply`]
    /// this takes effect for *subsequent* abort decisions; transactions
    /// mid-backoff finish their current wait under the old policy.
    pub fn set_policy(&self, policy: crate::space::CmPolicy) {
        self.stm.set_cm_mode(policy.into());
    }

    /// The contention-management policy currently in force.
    pub fn policy(&self) -> crate::space::CmPolicy {
        self.stm.cm_mode().into()
    }

    /// Retarget the background collector's slice budget (boxes pruned per
    /// slice before it yields). Takes effect from the collector's next slice.
    pub fn set_gc_budget(&self, budget: crate::space::GcBudget) {
        self.stm.set_gc_slice_boxes(budget.slice_boxes);
    }

    /// The GC slice budget currently in force.
    pub fn gc_budget(&self) -> crate::space::GcBudget {
        crate::space::GcBudget::new(self.stm.gc_slice_boxes())
    }

    /// Move the memory ladder's soft ceiling (retained versions above which
    /// the runtime enters urgent collection and shortens snapshot leases).
    /// Re-evaluates the ladder immediately against the new ceiling.
    pub fn set_soft_ceiling(&self, versions: u64) {
        self.stm.set_mem_soft_ceiling(versions);
    }

    /// The memory ladder's soft ceiling currently in force.
    pub fn soft_ceiling(&self) -> u64 {
        self.stm.mem_soft_ceiling()
    }
}

impl Actuator for PnstmActuator {
    fn apply(&mut self, cfg: Config) {
        self.stm.set_degree(cfg.into());
        // Reprovision the execution layer to the new degree's worker demand:
        // with the lock-free scheduler/admission pair this no longer
        // quiesces in-flight batches through a lock, so it is safe to do on
        // every apply.
        self.stm.resize_pool(helper_demand(cfg));
    }

    fn current(&self) -> Config {
        let d = self.stm.degree();
        Config::new(d.top_level, d.nested_per_tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnstm::{Stm, StmConfig};

    #[test]
    fn applies_to_live_stm() {
        let stm = Stm::new(StmConfig::default());
        let mut act = PnstmActuator::new(stm.clone());
        act.apply(Config::new(7, 3));
        assert_eq!(act.current(), Config::new(7, 3));
        assert_eq!(stm.degree(), pnstm::ParallelismDegree::new(7, 3));
    }

    #[test]
    fn reapplication_is_idempotent() {
        let stm = Stm::new(StmConfig::default());
        let mut act = PnstmActuator::new(stm);
        act.apply(Config::new(2, 2));
        act.apply(Config::new(2, 2));
        assert_eq!(act.current(), Config::new(2, 2));
    }

    #[test]
    fn policy_actuation_round_trips() {
        use crate::space::CmPolicy;
        let stm = Stm::new(StmConfig::default());
        let act = PnstmActuator::new(stm.clone());
        assert_eq!(act.policy(), CmPolicy::Immediate);
        act.set_policy(CmPolicy::Karma);
        assert_eq!(act.policy(), CmPolicy::Karma);
        assert_eq!(stm.cm_mode(), pnstm::CmMode::Karma);
        act.set_policy(CmPolicy::Immediate);
        assert_eq!(act.policy(), CmPolicy::Immediate);
    }

    #[test]
    fn mem_knob_actuation_round_trips() {
        use crate::space::GcBudget;
        let stm = Stm::new(StmConfig::default());
        let act = PnstmActuator::new(stm.clone());
        assert_eq!(act.gc_budget(), GcBudget::default());
        act.set_gc_budget(GcBudget::new(256));
        assert_eq!(act.gc_budget(), GcBudget::new(256));
        assert_eq!(stm.gc_slice_boxes(), 256);
        let soft = act.soft_ceiling();
        act.set_soft_ceiling(soft / 2);
        assert_eq!(act.soft_ceiling(), soft / 2);
        act.set_soft_ceiling(soft);
    }

    #[test]
    fn apply_reprovisions_the_scheduler() {
        assert_eq!(helper_demand(Config::new(4, 3)), 8);
        assert_eq!(helper_demand(Config::new(8, 1)), 0, "c=1 needs no helpers");
        let stm = Stm::new(StmConfig { worker_threads: 1, ..StmConfig::default() });
        let mut act = PnstmActuator::new(stm.clone());
        act.apply(Config::new(2, 3));
        assert_eq!(stm.pool_size(), 4, "pool retargeted to t*(c-1)");
        act.apply(Config::new(2, 1));
        assert_eq!(stm.pool_size(), 0);
    }
}
