//! # autopn — online self-tuning of parallelism degree for PN-TM
//!
//! From-scratch Rust implementation of **AutoPN** (Zeng et al., *Online
//! Tuning of Parallelism Degree in Parallel Nesting Transactional Memory*,
//! IPDPS 2018): an online self-tuner for the two-dimensional configuration
//! `(t, c)` of a parallel-nesting transactional memory — `t` concurrent
//! top-level transactions and `c` concurrent nested transactions per
//! transaction tree, over the admissible space `S = {(t,c) : t·c ≤ n}`.
//!
//! The tuner combines (§V of the paper):
//!
//! 1. **Biased initial sampling** ([`sampling`]) — nine deterministic
//!    configurations on the three boundary regions of `S`.
//! 2. **SMBO with Expected Improvement** ([`smbo`], [`model`]) — a bagging
//!    ensemble of M5 model trees supplies the predictive mean and variance
//!    for the closed-form EI acquisition function; exploration stops when the
//!    best EI drops below a threshold ([`stopping`]).
//! 3. **Hill-climbing refinement** ([`hillclimb`]) — a final local search
//!    around the SMBO winner, compensating the model's long-sightedness.
//! 4. **Adaptive KPI monitoring** ([`monitor`]) — measurement windows closed
//!    by a coefficient-of-variation stability test with an adaptive
//!    `1/T(1,1)` timeout (§VI).
//! 5. **Actuation** ([`actuator`]) — applying configurations to a live
//!    [`pnstm`] instance (semaphore throttling) or to any other
//!    [`controller::TunableSystem`].
//!
//! The optimizer is exposed in *ask–tell* form ([`Tuner`]): `propose()` a
//! configuration, measure it however you like, `observe()` the result. This
//! supports live tuning, simulator-driven tuning and the paper's
//! trace-driven-replay evaluation methodology with the same code.
//!
//! ```
//! use autopn::{AutoPn, AutoPnConfig, SearchSpace, Tuner};
//!
//! // Tune a synthetic quadratic bowl with the optimum at (12, 4).
//! let space = SearchSpace::new(48);
//! let f = |t: f64, c: f64| 1000.0 - (t - 12.0).powi(2) - 30.0 * (c - 4.0).powi(2);
//! let mut tuner = AutoPn::new(space, AutoPnConfig::default());
//! while let Some(cfg) = tuner.propose() {
//!     tuner.observe(cfg, f(cfg.t as f64, cfg.c as f64));
//! }
//! let best = tuner.best().unwrap().0;
//! assert!((best.t as i64 - 12).abs() <= 2 && (best.c as i64 - 4).abs() <= 2);
//! ```

pub mod actuator;
pub mod change;
pub mod chaos;
pub mod controller;
pub mod hillclimb;
pub mod kpi;
pub mod legacy;
pub mod model;
pub mod monitor;
pub mod multi;
pub mod optimizer;
pub mod policy;
pub mod sampling;
pub mod smbo;
pub mod space;
pub mod stopping;

pub use actuator::{stm_axis_registry, Actuator, AxisRegistry, PnstmActuator};
pub use change::CusumDetector;
pub use chaos::FaultyTunable;
pub use controller::{
    ApplyError, Controller, SloTunableSystem, SloTuningOutcome, TunableSystem, TuneOptions,
    TuningOutcome, Watchdog,
};
// Re-exported so controller callers can build a trace pipeline without
// depending on pnstm directly.
pub use kpi::{Measurement, SloKpi, SLO_REJECT_TOLERANCE};
pub use multi::{MultiAutoPn, MultiAutoPnConfig, MultiConfig};
pub use optimizer::{AutoPn, AutoPnConfig, Tuner};
pub use pnstm::{
    AxesTrace, AxisValue, JsonlSink, RingSink, TestSink, TraceBus, TraceEvent, TraceSink,
};
pub use pnstm::{FaultAction, FaultCtx, FaultKind, FaultPlan, FaultRule};
pub use policy::{
    sweep_block_sizes, sweep_gc_budgets, sweep_policies, BlockSizeSweepOutcome,
    GcBudgetSweepOutcome, PolicySweepOutcome,
};
pub use sampling::InitialSampling;
pub use space::{
    Axis, AxisKind, AxisLevels, BlockSize, CmPolicy, Config, ConfigSpace, GcBudget, SearchSpace,
    MAX_AXES,
};
pub use stopping::StopCondition;
