//! Workload-change detection (§V, "Dynamic workloads").
//!
//! The paper: *"AutoPN can easily be extended to cope with dynamically
//! shifting workloads [...] by coupling it with a change detector (e.g.,
//! based on the CUSUM algorithm). This would allow for identifying
//! statistically relevant alteration of the workload characteristics (e.g.,
//! sudden throughput changes) and, accordingly, activate a new self-tuning
//! process."* This module implements that extension: a two-sided,
//! self-normalizing CUSUM detector over throughput samples, plus a
//! controller loop that re-tunes when the detector fires.

use crate::kpi::RunningStats;

/// Two-sided CUSUM detector over relative throughput deviations.
///
/// A reference mean `μ` is (re)estimated from the first
/// [`calibration_samples`](Self::calibration_samples) observations after each
/// reset; subsequent samples update the cumulative sums
/// `S⁺ = max(0, S⁺ + (x̂ − k))` and `S⁻ = max(0, S⁻ − (x̂ + k))` of the
/// normalized deviation `x̂ = (x − μ)/μ`, with drift allowance `k`. The
/// detector fires when either sum exceeds the threshold `h`.
#[derive(Debug, Clone)]
pub struct CusumDetector {
    /// Drift allowance (relative units): deviations below this are ignored.
    pub drift: f64,
    /// Decision threshold (relative units, accumulated).
    pub threshold: f64,
    /// Samples used to (re)estimate the reference mean after a reset.
    pub calibration_samples: u64,
    reference: RunningStats,
    s_pos: f64,
    s_neg: f64,
}

impl Default for CusumDetector {
    fn default() -> Self {
        // Deviations within ±10% are tolerated as noise (adaptive windows
        // close at CV <= 10%, so individual measurements wobble that much);
        // an accumulated excess of 80 percentage points triggers (e.g. four
        // windows at 30% deviation, or two at 50%).
        Self::new(0.10, 0.8, 5)
    }
}

impl CusumDetector {
    pub fn new(drift: f64, threshold: f64, calibration_samples: u64) -> Self {
        assert!(drift >= 0.0 && threshold > 0.0);
        Self {
            drift,
            threshold,
            calibration_samples: calibration_samples.max(1),
            reference: RunningStats::new(),
            s_pos: 0.0,
            s_neg: 0.0,
        }
    }

    /// Whether the detector has a calibrated reference yet.
    pub fn calibrated(&self) -> bool {
        self.reference.count() >= self.calibration_samples
    }

    /// The current reference throughput, if calibrated.
    pub fn reference_mean(&self) -> Option<f64> {
        self.calibrated().then(|| self.reference.mean())
    }

    /// Feed a throughput observation; returns `true` when a statistically
    /// relevant shift has accumulated (the caller should then re-tune and
    /// [`reset`](Self::reset) the detector).
    pub fn observe(&mut self, throughput: f64) -> bool {
        if !self.calibrated() {
            self.reference.push(throughput);
            return false;
        }
        let mu = self.reference.mean();
        if mu <= 0.0 {
            // Degenerate reference (e.g. a dead configuration): any activity
            // is a change.
            return throughput > 0.0;
        }
        let x = (throughput - mu) / mu;
        self.s_pos = (self.s_pos + x - self.drift).max(0.0);
        self.s_neg = (self.s_neg - x - self.drift).max(0.0);
        self.s_pos > self.threshold || self.s_neg > self.threshold
    }

    /// Current cumulative sums `(S⁺, S⁻)` (introspection).
    pub fn sums(&self) -> (f64, f64) {
        (self.s_pos, self.s_neg)
    }

    /// Forget everything: a new reference is calibrated from the next
    /// observations.
    pub fn reset(&mut self) {
        self.reference.reset();
        self.s_pos = 0.0;
        self.s_neg = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(d: &mut CusumDetector, xs: &[f64]) -> Option<usize> {
        for (i, &x) in xs.iter().enumerate() {
            if d.observe(x) {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn stable_stream_never_fires() {
        let mut d = CusumDetector::default();
        let xs: Vec<f64> = (0..500).map(|i| 1000.0 + ((i * 37) % 60) as f64 - 30.0).collect();
        assert_eq!(feed(&mut d, &xs), None, "±3% wiggle must not trigger");
        assert!(d.calibrated());
        assert!((d.reference_mean().unwrap() - 1000.0).abs() < 30.0);
    }

    #[test]
    fn throughput_drop_fires() {
        let mut d = CusumDetector::default();
        let mut xs = vec![1000.0; 20];
        xs.extend(vec![550.0; 20]); // -45% shift
        let fired_at = feed(&mut d, &xs).expect("must detect the drop");
        assert!(fired_at >= 20, "fired during the stable phase");
        assert!(fired_at <= 24, "took too long: {fired_at}");
    }

    #[test]
    fn throughput_rise_fires() {
        let mut d = CusumDetector::default();
        let mut xs = vec![1000.0; 20];
        xs.extend(vec![1600.0; 20]);
        assert!(feed(&mut d, &xs).is_some(), "two-sided: rises are changes too");
    }

    #[test]
    fn slow_drift_below_allowance_tolerated() {
        // 0.02% per-sample drift stays under the 5% allowance for a long
        // time; the detector must not fire spuriously within the horizon.
        let mut d = CusumDetector::new(0.10, 1.0, 5);
        let xs: Vec<f64> = (0..200).map(|i| 1000.0 + i as f64 * 0.2).collect();
        assert_eq!(feed(&mut d, &xs), None);
    }

    #[test]
    fn reset_recalibrates() {
        let mut d = CusumDetector::default();
        let mut xs = vec![1000.0; 10];
        xs.extend(vec![400.0; 10]);
        assert!(feed(&mut d, &xs).is_some());
        d.reset();
        assert!(!d.calibrated());
        // New regime at 400: now it is the reference; stable → no firing.
        assert_eq!(feed(&mut d, &vec![400.0; 50]), None);
        assert!((d.reference_mean().unwrap() - 400.0).abs() < 1.0);
    }

    #[test]
    fn dead_reference_fires_on_revival() {
        let mut d = CusumDetector::new(0.05, 0.5, 2);
        assert!(!d.observe(0.0));
        assert!(!d.observe(0.0));
        assert!(d.observe(10.0), "activity after a dead reference is a change");
    }
}
