//! The configuration search space `S = {(t, c) : t·c ≤ n}` (§III-B), plus
//! the discrete contention-policy axis ([`CmPolicy`]) that extends it to
//! `{policy} × (t, c)` co-tuning.

use serde::impl_serde;

/// Typed discrete knob for the STM's contention-management policy — the
/// tuner-facing mirror of [`pnstm::CmMode`]. Unlike `(t, c)` this axis is
/// categorical (no neighbourhood structure), so the sweep driver
/// ([`crate::policy`]) enumerates it exhaustively and runs a full `(t, c)`
/// session per value rather than folding it into the numeric search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum CmPolicy {
    /// Retry instantly on abort (the STM default).
    #[default]
    Immediate,
    /// Jittered exponential backoff per failed attempt.
    ExpBackoff,
    /// Karma: aborted work accrues priority; poorer transactions wait.
    Karma,
    /// Greedy: timestamp seniority; juniors wait at most once.
    Greedy,
}

impl CmPolicy {
    /// Every policy, in ladder order (the sweep default).
    pub const ALL: [CmPolicy; 4] =
        [CmPolicy::Immediate, CmPolicy::ExpBackoff, CmPolicy::Karma, CmPolicy::Greedy];

    /// Stable lower-case tag (matches [`pnstm::CmMode::tag`]).
    pub fn tag(&self) -> &'static str {
        pnstm::CmMode::from(*self).tag()
    }
}

impl From<CmPolicy> for pnstm::CmMode {
    fn from(p: CmPolicy) -> Self {
        match p {
            CmPolicy::Immediate => pnstm::CmMode::Immediate,
            CmPolicy::ExpBackoff => pnstm::CmMode::ExpBackoff,
            CmPolicy::Karma => pnstm::CmMode::Karma,
            CmPolicy::Greedy => pnstm::CmMode::Greedy,
        }
    }
}

impl From<pnstm::CmMode> for CmPolicy {
    fn from(m: pnstm::CmMode) -> Self {
        match m {
            pnstm::CmMode::Immediate => CmPolicy::Immediate,
            pnstm::CmMode::ExpBackoff => CmPolicy::ExpBackoff,
            pnstm::CmMode::Karma => CmPolicy::Karma,
            pnstm::CmMode::Greedy => CmPolicy::Greedy,
        }
    }
}

impl std::fmt::Display for CmPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Typed discrete knob for the STM's background-GC slice budget (boxes
/// pruned per collector slice) — the tuner-facing mirror of
/// [`pnstm::Stm::set_gc_slice_boxes`]. Like [`CmPolicy`] it is swept as a
/// discrete axis rather than folded into the numeric `(t, c)` space: the
/// throughput surface over slice budgets is a shallow trade (finer
/// interleaving vs per-slice overhead) with workload-dependent optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GcBudget {
    /// Boxes pruned per GC slice before the collector yields.
    pub slice_boxes: usize,
}

impl GcBudget {
    /// The default sweep ladder, ascending (powers of two around the
    /// [`pnstm::MemConfig`] default of 128).
    pub const SWEEP: [GcBudget; 5] = [
        GcBudget { slice_boxes: 32 },
        GcBudget { slice_boxes: 64 },
        GcBudget { slice_boxes: 128 },
        GcBudget { slice_boxes: 256 },
        GcBudget { slice_boxes: 512 },
    ];

    pub fn new(slice_boxes: usize) -> Self {
        Self { slice_boxes: slice_boxes.max(1) }
    }
}

impl Default for GcBudget {
    fn default() -> Self {
        Self { slice_boxes: pnstm::MemConfig::default().gc_slice_boxes }
    }
}

impl std::fmt::Display for GcBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gc:{}", self.slice_boxes)
    }
}

/// The ledger-mode block-size axis: how many transactions a block batches
/// before the deterministic index-order commit. Larger blocks amortise the
/// per-block install and validation ramp-up; smaller ones shrink the
/// conflict window (and the re-execution bill) under contention — another
/// discrete knob co-tuned alongside `(t, c)`, like [`CmPolicy`] and
/// [`GcBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockSize {
    /// Transactions per block.
    pub txns: usize,
}

impl BlockSize {
    /// The default sweep ladder, ascending (powers of two around the ledger
    /// default of 256).
    pub const SWEEP: [BlockSize; 5] = [
        BlockSize { txns: 64 },
        BlockSize { txns: 128 },
        BlockSize { txns: 256 },
        BlockSize { txns: 512 },
        BlockSize { txns: 1024 },
    ];

    pub fn new(txns: usize) -> Self {
        Self { txns: txns.max(1) }
    }
}

impl Default for BlockSize {
    fn default() -> Self {
        Self { txns: 256 }
    }
}

impl std::fmt::Display for BlockSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "block:{}", self.txns)
    }
}

/// One parallelism-degree configuration: `t` concurrent top-level
/// transactions, `c` concurrent nested transactions per transaction tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config {
    /// Number of concurrent top-level transactions.
    pub t: usize,
    /// Number of concurrent nested transactions per tree.
    pub c: usize,
}

impl_serde!(Config { t, c });

impl Config {
    pub fn new(t: usize, c: usize) -> Self {
        Self { t: t.max(1), c: c.max(1) }
    }

    /// As a `(t, c)` tuple (the simulator's representation).
    pub fn as_tuple(&self) -> (usize, usize) {
        (self.t, self.c)
    }

    /// Total core demand `t · c`.
    pub fn cores(&self) -> usize {
        self.t * self.c
    }
}

impl From<(usize, usize)> for Config {
    fn from((t, c): (usize, usize)) -> Self {
        Self::new(t, c)
    }
}

impl From<Config> for pnstm::ParallelismDegree {
    fn from(cfg: Config) -> Self {
        pnstm::ParallelismDegree::new(cfg.t, cfg.c)
    }
}

impl std::fmt::Display for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.t, self.c)
    }
}

/// The admissible search space for a machine with `n` cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    n_cores: usize,
    configs: Vec<Config>,
}

impl_serde!(SearchSpace { n_cores, configs });

impl SearchSpace {
    /// Enumerate `S` for an `n`-core machine (198 configurations at n = 48).
    pub fn new(n_cores: usize) -> Self {
        let n_cores = n_cores.max(1);
        let mut configs = Vec::new();
        for t in 1..=n_cores {
            for c in 1..=(n_cores / t) {
                configs.push(Config::new(t, c));
            }
        }
        Self { n_cores, configs }
    }

    /// Number of cores `n`.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// All admissible configurations, sorted by `(t, c)`.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// Size of the space.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Whether `cfg` is admissible (no over-subscription).
    pub fn contains(&self, cfg: Config) -> bool {
        cfg.t >= 1 && cfg.c >= 1 && cfg.t * cfg.c <= self.n_cores
    }

    /// The plain von-Neumann neighbourhood `(t±1, c)`, `(t, c±1)`, filtered
    /// for admissibility — what a generic local search over a 2-D integer
    /// space uses (the paper's plain hill-climbing and SA baselines).
    pub fn von_neumann_neighbors(&self, cfg: Config) -> Vec<Config> {
        let mut out = Vec::with_capacity(4);
        let candidates = [
            (cfg.t.wrapping_sub(1), cfg.c),
            (cfg.t + 1, cfg.c),
            (cfg.t, cfg.c.wrapping_sub(1)),
            (cfg.t, cfg.c + 1),
        ];
        for (t, c) in candidates {
            if t >= 1 && c >= 1 {
                let n = Config::new(t, c);
                if self.contains(n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// The domain-specific neighbourhood used by AutoPN's refinement phase:
    /// the von-Neumann moves `(t±1, c)`, `(t, c±1)` plus the two *core-preserving* moves
    /// `(2t, ⌈c/2⌉)` and `(⌊t/2⌋, 2c)`, which trade inter- for
    /// intra-transaction parallelism at (roughly) constant core usage. The
    /// multiplicative moves let local search walk along the `t·c = n`
    /// over-subscription frontier, where the von-Neumann moves alone are
    /// boxed in. All results are admissible and distinct from `cfg`.
    pub fn neighbors(&self, cfg: Config) -> Vec<Config> {
        let mut out = Vec::with_capacity(6);
        let mut candidates = vec![
            (cfg.t.wrapping_sub(1), cfg.c),
            (cfg.t + 1, cfg.c),
            (cfg.t, cfg.c.wrapping_sub(1)),
            (cfg.t, cfg.c + 1),
        ];
        if cfg.c > 1 {
            candidates.push((cfg.t * 2, cfg.c.div_ceil(2)));
        }
        if cfg.t > 1 {
            candidates.push((cfg.t / 2, cfg.c * 2));
        }
        for (t, c) in candidates {
            if t >= 1 && c >= 1 {
                let n = Config::new(t, c);
                if n != cfg && self.contains(n) && !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Index of `cfg` in [`Self::configs`], if admissible.
    pub fn index_of(&self, cfg: Config) -> Option<usize> {
        self.configs.binary_search(&cfg).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps() {
        let c = Config::new(0, 0);
        assert_eq!(c, Config { t: 1, c: 1 });
        assert_eq!(c.cores(), 1);
        assert_eq!(c.to_string(), "(1,1)");
        assert_eq!(c.as_tuple(), (1, 1));
    }

    #[test]
    fn space_count_matches_paper() {
        assert_eq!(SearchSpace::new(48).len(), 198);
        assert_eq!(SearchSpace::new(1).len(), 1);
    }

    #[test]
    fn space_has_no_oversubscription() {
        let s = SearchSpace::new(16);
        assert!(s.configs().iter().all(|c| c.cores() <= 16));
        assert!(s.contains(Config::new(4, 4)));
        assert!(!s.contains(Config::new(4, 5)));
        assert!(!s.contains(Config::new(17, 1)));
    }

    #[test]
    fn neighbors_are_admissible_and_adjacent() {
        let s = SearchSpace::new(48);
        let n = s.neighbors(Config::new(24, 2));
        // (23,2), (24,1) are in; (25,2) = 50 and (24,3) = 72 oversubscribe.
        assert!(n.contains(&Config::new(23, 2)));
        assert!(n.contains(&Config::new(24, 1)));
        assert!(!n.contains(&Config::new(25, 2)));
        assert!(!n.contains(&Config::new(24, 3)));
        // Core-preserving moves along the frontier.
        assert!(n.contains(&Config::new(48, 1)));
        assert!(n.contains(&Config::new(12, 4)));
        for nb in &n {
            assert!(s.contains(*nb));
            assert_ne!(*nb, Config::new(24, 2));
        }
    }

    #[test]
    fn frontier_walk_is_possible() {
        // The multiplicative moves connect the t·c = 48 ridge.
        let s = SearchSpace::new(48);
        let n = s.neighbors(Config::new(6, 8));
        assert!(n.contains(&Config::new(12, 4)));
        assert!(n.contains(&Config::new(3, 16)));
    }

    #[test]
    fn corner_neighbors() {
        let s = SearchSpace::new(8);
        let n = s.neighbors(Config::new(1, 1));
        assert_eq!(n.len(), 2);
        assert!(n.contains(&Config::new(2, 1)));
        assert!(n.contains(&Config::new(1, 2)));
        // No duplicates at small configs where moves collide.
        let n22 = s.neighbors(Config::new(2, 2));
        let set: std::collections::HashSet<_> = n22.iter().collect();
        assert_eq!(set.len(), n22.len());
    }

    #[test]
    fn index_of_round_trips() {
        let s = SearchSpace::new(12);
        for (i, &cfg) in s.configs().iter().enumerate() {
            assert_eq!(s.index_of(cfg), Some(i));
        }
        assert_eq!(s.index_of(Config::new(12, 2)), None);
    }

    #[test]
    fn conversion_to_parallelism_degree() {
        let d: pnstm::ParallelismDegree = Config::new(3, 5).into();
        assert_eq!(d, pnstm::ParallelismDegree::new(3, 5));
    }

    #[test]
    fn gc_budget_axis_is_well_formed() {
        assert_eq!(GcBudget::default().slice_boxes, pnstm::MemConfig::default().gc_slice_boxes);
        assert_eq!(GcBudget::new(0).slice_boxes, 1, "budget clamps to 1");
        assert_eq!(GcBudget::new(64).to_string(), "gc:64");
        let mut sorted = GcBudget::SWEEP.to_vec();
        sorted.sort();
        assert_eq!(sorted, GcBudget::SWEEP.to_vec(), "sweep ladder is ascending");
        assert!(GcBudget::SWEEP.contains(&GcBudget::default()), "sweep covers the default");
    }

    #[test]
    fn block_size_axis_is_well_formed() {
        assert_eq!(BlockSize::default().txns, 256);
        assert_eq!(BlockSize::new(0).txns, 1, "block size clamps to 1");
        assert_eq!(BlockSize::new(128).to_string(), "block:128");
        let mut sorted = BlockSize::SWEEP.to_vec();
        sorted.sort();
        assert_eq!(sorted, BlockSize::SWEEP.to_vec(), "sweep ladder is ascending");
        assert!(BlockSize::SWEEP.contains(&BlockSize::default()), "sweep covers the default");
    }

    #[test]
    fn cm_policy_round_trips_through_cm_mode() {
        assert_eq!(CmPolicy::ALL.len(), pnstm::CM_POLICIES);
        for p in CmPolicy::ALL {
            let mode: pnstm::CmMode = p.into();
            assert_eq!(CmPolicy::from(mode), p);
            assert_eq!(p.tag(), mode.tag());
            assert_eq!(p.to_string(), mode.tag());
        }
        assert_eq!(CmPolicy::default(), CmPolicy::Immediate);
    }
}
