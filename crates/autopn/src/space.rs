//! The configuration search space `S = {(t, c) : t·c ≤ n}` (§III-B), and
//! its generalization to a typed N-dimensional product space
//! ([`ConfigSpace`]): `(t, c)` plus up to [`MAX_AXES`] named discrete axes
//! ([`Axis`]) — integer axes with ±1-level neighbour moves and log-scaled
//! encodings ([`Axis::gc_budget`], [`Axis::block_size`]), categorical axes
//! with one-hot encodings ([`Axis::cm_policy`], [`Axis::sched_mode`]) — so
//! the SMBO model learns across every knob instead of one outer sweep per
//! discrete value.

use serde::impl_serde;

/// Typed discrete knob for the STM's contention-management policy — the
/// tuner-facing mirror of [`pnstm::CmMode`]. Unlike `(t, c)` this axis is
/// categorical (no neighbourhood structure), so the sweep driver
/// ([`crate::policy`]) enumerates it exhaustively and runs a full `(t, c)`
/// session per value rather than folding it into the numeric search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum CmPolicy {
    /// Retry instantly on abort (the STM default).
    #[default]
    Immediate,
    /// Jittered exponential backoff per failed attempt.
    ExpBackoff,
    /// Karma: aborted work accrues priority; poorer transactions wait.
    Karma,
    /// Greedy: timestamp seniority; juniors wait at most once.
    Greedy,
}

impl CmPolicy {
    /// Every policy, in ladder order (the sweep default).
    pub const ALL: [CmPolicy; 4] =
        [CmPolicy::Immediate, CmPolicy::ExpBackoff, CmPolicy::Karma, CmPolicy::Greedy];

    /// Stable lower-case tag (matches [`pnstm::CmMode::tag`]).
    pub fn tag(&self) -> &'static str {
        pnstm::CmMode::from(*self).tag()
    }
}

impl From<CmPolicy> for pnstm::CmMode {
    fn from(p: CmPolicy) -> Self {
        match p {
            CmPolicy::Immediate => pnstm::CmMode::Immediate,
            CmPolicy::ExpBackoff => pnstm::CmMode::ExpBackoff,
            CmPolicy::Karma => pnstm::CmMode::Karma,
            CmPolicy::Greedy => pnstm::CmMode::Greedy,
        }
    }
}

impl From<pnstm::CmMode> for CmPolicy {
    fn from(m: pnstm::CmMode) -> Self {
        match m {
            pnstm::CmMode::Immediate => CmPolicy::Immediate,
            pnstm::CmMode::ExpBackoff => CmPolicy::ExpBackoff,
            pnstm::CmMode::Karma => CmPolicy::Karma,
            pnstm::CmMode::Greedy => CmPolicy::Greedy,
        }
    }
}

impl std::fmt::Display for CmPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Typed discrete knob for the STM's background-GC slice budget (boxes
/// pruned per collector slice) — the tuner-facing mirror of
/// [`pnstm::Stm::set_gc_slice_boxes`]. Like [`CmPolicy`] it is swept as a
/// discrete axis rather than folded into the numeric `(t, c)` space: the
/// throughput surface over slice budgets is a shallow trade (finer
/// interleaving vs per-slice overhead) with workload-dependent optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GcBudget {
    /// Boxes pruned per GC slice before the collector yields.
    pub slice_boxes: usize,
}

impl GcBudget {
    /// The default sweep ladder, ascending (powers of two around the
    /// [`pnstm::MemConfig`] default of 128).
    pub const SWEEP: [GcBudget; 5] = [
        GcBudget { slice_boxes: 32 },
        GcBudget { slice_boxes: 64 },
        GcBudget { slice_boxes: 128 },
        GcBudget { slice_boxes: 256 },
        GcBudget { slice_boxes: 512 },
    ];

    pub fn new(slice_boxes: usize) -> Self {
        Self { slice_boxes: slice_boxes.max(1) }
    }
}

impl Default for GcBudget {
    fn default() -> Self {
        Self { slice_boxes: pnstm::MemConfig::default().gc_slice_boxes }
    }
}

impl std::fmt::Display for GcBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gc:{}", self.slice_boxes)
    }
}

/// The ledger-mode block-size axis: how many transactions a block batches
/// before the deterministic index-order commit. Larger blocks amortise the
/// per-block install and validation ramp-up; smaller ones shrink the
/// conflict window (and the re-execution bill) under contention — another
/// discrete knob co-tuned alongside `(t, c)`, like [`CmPolicy`] and
/// [`GcBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockSize {
    /// Transactions per block.
    pub txns: usize,
}

impl BlockSize {
    /// The default sweep ladder, ascending (powers of two around the ledger
    /// default of 256).
    pub const SWEEP: [BlockSize; 5] = [
        BlockSize { txns: 64 },
        BlockSize { txns: 128 },
        BlockSize { txns: 256 },
        BlockSize { txns: 512 },
        BlockSize { txns: 1024 },
    ];

    pub fn new(txns: usize) -> Self {
        Self { txns: txns.max(1) }
    }
}

impl Default for BlockSize {
    fn default() -> Self {
        Self { txns: 256 }
    }
}

impl std::fmt::Display for BlockSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "block:{}", self.txns)
    }
}

/// Maximum number of discrete axes a [`ConfigSpace`] may carry. Matches
/// [`pnstm::MAX_TRACE_AXES`] so every full configuration point fits in a
/// `Copy` trace event.
pub const MAX_AXES: usize = pnstm::MAX_TRACE_AXES;

/// The discrete-axis half of a configuration point: one level index per
/// axis of the owning [`ConfigSpace`], packed so [`Config`] stays `Copy`.
/// Empty (`len() == 0`) in the legacy 2-D `(t, c)` space — every legacy
/// code path round-trips unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AxisLevels {
    n: u8,
    idx: [u8; MAX_AXES],
}

impl AxisLevels {
    /// No axes (the legacy `(t, c)`-only point).
    pub const fn empty() -> Self {
        Self { n: 0, idx: [0; MAX_AXES] }
    }

    /// Levels from a slice, in axis order. Panics past [`MAX_AXES`] axes or
    /// level index 255 — both enforced structurally by [`ConfigSpace`].
    pub fn from_slice(levels: &[usize]) -> Self {
        let mut out = Self::empty();
        for &l in levels {
            out.push(l);
        }
        out
    }

    /// Append one axis's level index.
    pub fn push(&mut self, level: usize) {
        assert!((self.n as usize) < MAX_AXES, "more than {MAX_AXES} axes");
        assert!(level <= u8::MAX as usize, "axis level {level} out of range");
        self.idx[self.n as usize] = level as u8;
        self.n += 1;
    }

    pub fn len(&self) -> usize {
        self.n as usize
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Level index of axis `i`. Panics out of range — callers iterate the
    /// owning space's axes, so an out-of-range `i` is a construction bug.
    pub fn get(&self, i: usize) -> usize {
        assert!(i < self.n as usize, "axis index {i} out of range (have {})", self.n);
        self.idx[i] as usize
    }

    /// Replace the level of axis `i`, returning the updated copy.
    pub fn with(&self, i: usize, level: usize) -> Self {
        assert!(i < self.n as usize, "axis index {i} out of range (have {})", self.n);
        assert!(level <= u8::MAX as usize, "axis level {level} out of range");
        let mut out = *self;
        out.idx[i] = level as u8;
        out
    }

    /// The level indices, in axis order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.idx[..self.n as usize].iter().map(|&l| l as usize)
    }
}

impl serde::Serialize for AxisLevels {
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(&self.iter().collect::<Vec<usize>>())
    }
}

impl serde::Deserialize for AxisLevels {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let levels: Vec<usize> = serde::Deserialize::from_value(v)?;
        if levels.len() > MAX_AXES {
            return Err(serde::Error::new("more than MAX_AXES axis levels"));
        }
        if levels.iter().any(|&l| l > u8::MAX as usize) {
            return Err(serde::Error::new("axis level out of range"));
        }
        Ok(Self::from_slice(&levels))
    }
}

/// One parallelism-degree configuration: `t` concurrent top-level
/// transactions, `c` concurrent nested transactions per transaction tree,
/// plus the discrete-axis levels of the owning [`ConfigSpace`] (empty in
/// the legacy 2-D space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config {
    /// Number of concurrent top-level transactions.
    pub t: usize,
    /// Number of concurrent nested transactions per tree.
    pub c: usize,
    /// Per-axis level indices into the owning [`ConfigSpace::axes`].
    pub axes: AxisLevels,
}

impl_serde!(Config { t, c } defaults { axes });

impl Config {
    pub fn new(t: usize, c: usize) -> Self {
        Self { t: t.max(1), c: c.max(1), axes: AxisLevels::empty() }
    }

    /// A full configuration point: `(t, c)` plus discrete-axis levels.
    pub fn with_axes(t: usize, c: usize, axes: AxisLevels) -> Self {
        Self { t: t.max(1), c: c.max(1), axes }
    }

    /// The `(t, c)` half of this point, axes stripped.
    pub fn tc(&self) -> Config {
        Config::new(self.t, self.c)
    }

    /// As a `(t, c)` tuple (the simulator's representation).
    pub fn as_tuple(&self) -> (usize, usize) {
        (self.t, self.c)
    }

    /// Total core demand `t · c`.
    pub fn cores(&self) -> usize {
        self.t * self.c
    }
}

impl From<(usize, usize)> for Config {
    fn from((t, c): (usize, usize)) -> Self {
        Self::new(t, c)
    }
}

impl From<Config> for pnstm::ParallelismDegree {
    fn from(cfg: Config) -> Self {
        pnstm::ParallelismDegree::new(cfg.t, cfg.c)
    }
}

impl std::fmt::Display for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.t, self.c)?;
        if !self.axes.is_empty() {
            write!(f, "@")?;
            for (i, l) in self.axes.iter().enumerate() {
                if i > 0 {
                    write!(f, ".")?;
                }
                write!(f, "{l}")?;
            }
        }
        Ok(())
    }
}

/// The admissible search space for a machine with `n` cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    n_cores: usize,
    configs: Vec<Config>,
}

impl_serde!(SearchSpace { n_cores, configs });

impl SearchSpace {
    /// Enumerate `S` for an `n`-core machine (198 configurations at n = 48).
    pub fn new(n_cores: usize) -> Self {
        let n_cores = n_cores.max(1);
        let mut configs = Vec::new();
        for t in 1..=n_cores {
            for c in 1..=(n_cores / t) {
                configs.push(Config::new(t, c));
            }
        }
        Self { n_cores, configs }
    }

    /// Number of cores `n`.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// All admissible configurations, sorted by `(t, c)`.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// Size of the space.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Whether `cfg` is admissible (no over-subscription).
    pub fn contains(&self, cfg: Config) -> bool {
        cfg.t >= 1 && cfg.c >= 1 && cfg.t * cfg.c <= self.n_cores
    }

    /// The plain von-Neumann neighbourhood `(t±1, c)`, `(t, c±1)`, filtered
    /// for admissibility — what a generic local search over a 2-D integer
    /// space uses (the paper's plain hill-climbing and SA baselines).
    pub fn von_neumann_neighbors(&self, cfg: Config) -> Vec<Config> {
        let mut out = Vec::with_capacity(4);
        let candidates = [
            (cfg.t.wrapping_sub(1), cfg.c),
            (cfg.t + 1, cfg.c),
            (cfg.t, cfg.c.wrapping_sub(1)),
            (cfg.t, cfg.c + 1),
        ];
        for (t, c) in candidates {
            if t >= 1 && c >= 1 {
                let n = Config::new(t, c);
                if self.contains(n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// The domain-specific neighbourhood used by AutoPN's refinement phase:
    /// the von-Neumann moves `(t±1, c)`, `(t, c±1)` plus the two *core-preserving* moves
    /// `(2t, ⌈c/2⌉)` and `(⌊t/2⌋, 2c)`, which trade inter- for
    /// intra-transaction parallelism at (roughly) constant core usage. The
    /// multiplicative moves let local search walk along the `t·c = n`
    /// over-subscription frontier, where the von-Neumann moves alone are
    /// boxed in. All results are admissible and distinct from `cfg`.
    pub fn neighbors(&self, cfg: Config) -> Vec<Config> {
        let mut out = Vec::with_capacity(6);
        let mut candidates = vec![
            (cfg.t.wrapping_sub(1), cfg.c),
            (cfg.t + 1, cfg.c),
            (cfg.t, cfg.c.wrapping_sub(1)),
            (cfg.t, cfg.c + 1),
        ];
        if cfg.c > 1 {
            candidates.push((cfg.t * 2, cfg.c.div_ceil(2)));
        }
        if cfg.t > 1 {
            candidates.push((cfg.t / 2, cfg.c * 2));
        }
        for (t, c) in candidates {
            if t >= 1 && c >= 1 {
                let n = Config::new(t, c);
                if n != cfg && self.contains(n) && !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Index of `cfg` in [`Self::configs`], if admissible.
    pub fn index_of(&self, cfg: Config) -> Option<usize> {
        self.configs.binary_search(&cfg).ok()
    }
}

/// How an [`Axis`]'s levels relate to each other — this decides both the
/// neighbour moves local search gets and the feature encoding the model
/// sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisKind {
    /// Ordered levels (e.g. GC slice budget, ledger block size): hill
    /// climbing moves one level up/down, the model sees one ordinal feature
    /// per axis (the level's `encoded` value, typically log-scaled).
    Integer,
    /// Unordered levels (e.g. contention policy, scheduler mode): every
    /// other level is a neighbour, the model sees a one-hot feature per
    /// level so no spurious ordering is learned.
    Categorical,
}

/// One level of an [`Axis`]: its human-readable `label` (empty for plain
/// integer axes), the raw `value` handed to the actuator (slice boxes,
/// block txns, or a categorical index), and the feature `encoded` into the
/// model's input for ordinal axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisLevel {
    pub label: &'static str,
    pub value: u32,
    pub encoded: f64,
}

/// A named discrete tuning axis: a finite ladder of [`AxisLevel`]s with a
/// default, either ordered ([`AxisKind::Integer`]) or unordered
/// ([`AxisKind::Categorical`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    name: &'static str,
    kind: AxisKind,
    levels: Vec<AxisLevel>,
    default_level: usize,
}

impl Axis {
    /// An ordered integer axis over `values`, encoded as the raw value.
    pub fn integer(name: &'static str, values: &[u32], default_value: u32) -> Self {
        let levels =
            values.iter().map(|&v| AxisLevel { label: "", value: v, encoded: v as f64 }).collect();
        Self::build(name, AxisKind::Integer, levels, default_value)
    }

    /// An ordered integer axis over `values`, encoded as `log2(value)` —
    /// the right scale for power-of-two ladders (GC budget, block size)
    /// where each step is a doubling, not a fixed increment.
    pub fn integer_log2(name: &'static str, values: &[u32], default_value: u32) -> Self {
        let levels = values
            .iter()
            .map(|&v| AxisLevel { label: "", value: v, encoded: (v.max(1) as f64).log2() })
            .collect();
        Self::build(name, AxisKind::Integer, levels, default_value)
    }

    /// An unordered categorical axis; level values are the label indices.
    pub fn categorical(name: &'static str, labels: &[&'static str], default_idx: usize) -> Self {
        let levels = labels
            .iter()
            .enumerate()
            .map(|(i, &label)| AxisLevel { label, value: i as u32, encoded: i as f64 })
            .collect();
        Self::build(name, AxisKind::Categorical, levels, default_idx as u32)
    }

    fn build(
        name: &'static str,
        kind: AxisKind,
        levels: Vec<AxisLevel>,
        default_value: u32,
    ) -> Self {
        assert!(!levels.is_empty(), "axis {name} has no levels");
        assert!(levels.len() <= u8::MAX as usize, "axis {name} has too many levels");
        let default_level = levels
            .iter()
            .position(|l| l.value == default_value)
            .unwrap_or_else(|| panic!("axis {name}: default {default_value} not in levels"));
        Self { name, kind, levels, default_level }
    }

    /// The contention-policy axis ([`CmPolicy`]), categorical over the
    /// ladder order; level values are `CmPolicy::ALL` indices.
    pub fn cm_policy() -> Self {
        let labels: Vec<&'static str> = CmPolicy::ALL.iter().map(|p| p.tag()).collect();
        let default = CmPolicy::ALL
            .iter()
            .position(|&p| p == CmPolicy::default())
            .expect("default policy in ALL");
        Self::categorical("cm", &labels, default)
    }

    /// The background-GC slice-budget axis ([`GcBudget`]), log2-encoded
    /// over the sweep ladder; level values are slice boxes.
    pub fn gc_budget() -> Self {
        let values: Vec<u32> = GcBudget::SWEEP.iter().map(|g| g.slice_boxes as u32).collect();
        Self::integer_log2("gc_boxes", &values, GcBudget::default().slice_boxes as u32)
    }

    /// The ledger block-size axis ([`BlockSize`]), log2-encoded over the
    /// sweep ladder; level values are transactions per block.
    pub fn block_size() -> Self {
        let values: Vec<u32> = BlockSize::SWEEP.iter().map(|b| b.txns as u32).collect();
        Self::integer_log2("block", &values, BlockSize::default().txns as u32)
    }

    /// The scheduler-mode axis ([`pnstm::SchedMode`]), categorical; level 0
    /// is the mutex rung (the STM default), level 1 work-stealing.
    pub fn sched_mode() -> Self {
        Self::categorical("sched", &["mutex", "work-stealing"], 0)
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn kind(&self) -> AxisKind {
        self.kind
    }

    pub fn levels(&self) -> &[AxisLevel] {
        &self.levels
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Index of the level actuated when the tuner has not chosen yet.
    pub fn default_level(&self) -> usize {
        self.default_level
    }

    /// Raw actuator value of `level`.
    pub fn value_at(&self, level: usize) -> u32 {
        self.levels[level].value
    }

    /// Human-readable label of `level` (empty for integer axes).
    pub fn label_at(&self, level: usize) -> &'static str {
        self.levels[level].label
    }

    /// The level whose raw value is `value`, if any.
    pub fn level_of_value(&self, value: u32) -> Option<usize> {
        self.levels.iter().position(|l| l.value == value)
    }

    /// How many model features this axis contributes: 1 ordinal feature for
    /// an integer axis, one one-hot feature per level for a categorical.
    pub fn feature_width(&self) -> usize {
        match self.kind {
            AxisKind::Integer => 1,
            AxisKind::Categorical => self.levels.len(),
        }
    }

    /// Append this axis's feature encoding of `level` to `out`.
    pub fn encode_into(&self, level: usize, out: &mut Vec<f64>) {
        match self.kind {
            AxisKind::Integer => out.push(self.levels[level].encoded),
            AxisKind::Categorical => {
                for i in 0..self.levels.len() {
                    out.push(if i == level { 1.0 } else { 0.0 });
                }
            }
        }
    }

    /// `name=value` / `name=label` display of one level.
    pub fn display(&self, level: usize) -> String {
        let l = &self.levels[level];
        if l.label.is_empty() {
            format!("{}={}", self.name, l.value)
        } else {
            format!("{}={}", self.name, l.label)
        }
    }
}

/// The generalized N-dimensional configuration space: the admissible
/// `(t, c)` grid of a [`SearchSpace`] crossed with up to [`MAX_AXES`] named
/// discrete [`Axis`]es. With no axes this is exactly the legacy 2-D space —
/// same enumeration order, same neighbours, same `[t, c]` feature encoding —
/// which the legacy-projection differential proptest pins down.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSpace {
    tc: SearchSpace,
    axes: Vec<Axis>,
    configs: Vec<Config>,
}

impl ConfigSpace {
    /// Cross `tc` with `axes`. The product is materialized: `tc` outer
    /// (ascending `(t, c)` as in [`SearchSpace::configs`]), axis levels
    /// inner with the last axis fastest — so with no axes the enumeration
    /// is exactly the legacy one, and the vector is sorted by
    /// `(t, c, axes)` (binary-searchable).
    pub fn new(tc: SearchSpace, axes: Vec<Axis>) -> Self {
        assert!(axes.len() <= MAX_AXES, "at most {MAX_AXES} discrete axes");
        let prod: usize = axes.iter().map(|a| a.len()).product();
        let mut configs = Vec::with_capacity(tc.len() * prod.max(1));
        for &base in tc.configs() {
            for point in 0..prod.max(1) {
                let mut levels = [0usize; MAX_AXES];
                let mut r = point;
                for k in (0..axes.len()).rev() {
                    levels[k] = r % axes[k].len();
                    r /= axes[k].len();
                }
                configs.push(Config::with_axes(
                    base.t,
                    base.c,
                    AxisLevels::from_slice(&levels[..axes.len()]),
                ));
            }
        }
        Self { tc, axes, configs }
    }

    /// The `(t, c)` grid this space is built over.
    pub fn tc(&self) -> &SearchSpace {
        &self.tc
    }

    /// The discrete axes, in feature/actuation order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of cores `n` bounding the `(t, c)` grid.
    pub fn n_cores(&self) -> usize {
        self.tc.n_cores()
    }

    /// Every admissible configuration point, sorted by `(t, c, axes)`.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// Size of the product space.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Model feature dimensionality: `t`, `c`, plus each axis's width.
    pub fn dim(&self) -> usize {
        2 + self.axes.iter().map(|a| a.feature_width()).sum::<usize>()
    }

    /// Whether `cfg` is an admissible point of *this* space: `(t, c)` not
    /// over-subscribed, one level per axis, every level in range.
    pub fn contains(&self, cfg: Config) -> bool {
        self.tc.contains(cfg.tc())
            && cfg.axes.len() == self.axes.len()
            && cfg.axes.iter().zip(&self.axes).all(|(l, a)| l < a.len())
    }

    /// The default level of every axis.
    pub fn default_axes(&self) -> AxisLevels {
        AxisLevels::from_slice(&self.axes.iter().map(|a| a.default_level()).collect::<Vec<_>>())
    }

    /// A point at `(t, c)` with every axis at its default level.
    pub fn with_default_axes(&self, t: usize, c: usize) -> Config {
        Config::with_axes(t, c, self.default_axes())
    }

    /// Adapt a possibly axis-less `cfg` to this space: a point with the
    /// right number of levels passes through; a legacy `(t, c)`-only point
    /// (e.g. the controller's sequential fallback) gets the default levels.
    pub fn lift(&self, cfg: Config) -> Config {
        if cfg.axes.len() == self.axes.len() {
            cfg
        } else {
            self.with_default_axes(cfg.t, cfg.c)
        }
    }

    /// Write the model feature encoding of `cfg` into `out` (clearing any
    /// previous contents): `[t, c]` then each axis's encoding
    /// ([`Axis::encode_into`]). With no axes this is exactly the legacy
    /// 2-feature `[t, c]` vector.
    pub fn encode_into(&self, cfg: Config, out: &mut Vec<f64>) {
        out.clear();
        out.push(cfg.t as f64);
        out.push(cfg.c as f64);
        for (k, axis) in self.axes.iter().enumerate() {
            axis.encode_into(cfg.axes.get(k), out);
        }
    }

    /// The model feature vector of `cfg` ([`ConfigSpace::encode_into`]).
    pub fn encode(&self, cfg: Config) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim());
        self.encode_into(cfg, &mut out);
        out
    }

    /// The refinement neighbourhood of `cfg`: every [`SearchSpace::neighbors`]
    /// `(t, c)` move with the axes held (first, in the legacy order — so the
    /// axis-less projection matches legacy hill climbing exactly), then per
    /// axis the ±1-level moves (integer) or every other level (categorical).
    pub fn neighbors(&self, cfg: Config) -> Vec<Config> {
        self.neighbors_impl(cfg, false)
    }

    /// As [`ConfigSpace::neighbors`] but with the plain von-Neumann `(t, c)`
    /// moves (the baseline hill-climbing neighbourhood).
    pub fn von_neumann_neighbors(&self, cfg: Config) -> Vec<Config> {
        self.neighbors_impl(cfg, true)
    }

    fn neighbors_impl(&self, cfg: Config, von_neumann: bool) -> Vec<Config> {
        let tc_moves = if von_neumann {
            self.tc.von_neumann_neighbors(cfg.tc())
        } else {
            self.tc.neighbors(cfg.tc())
        };
        let mut out: Vec<Config> =
            tc_moves.into_iter().map(|nb| Config::with_axes(nb.t, nb.c, cfg.axes)).collect();
        for (k, axis) in self.axes.iter().enumerate() {
            let cur = cfg.axes.get(k);
            match axis.kind() {
                AxisKind::Integer => {
                    if cur > 0 {
                        out.push(Config { axes: cfg.axes.with(k, cur - 1), ..cfg });
                    }
                    if cur + 1 < axis.len() {
                        out.push(Config { axes: cfg.axes.with(k, cur + 1), ..cfg });
                    }
                }
                AxisKind::Categorical => {
                    for l in 0..axis.len() {
                        if l != cur {
                            out.push(Config { axes: cfg.axes.with(k, l), ..cfg });
                        }
                    }
                }
            }
        }
        out
    }

    /// Index of `cfg` in [`Self::configs`], if admissible.
    pub fn index_of(&self, cfg: Config) -> Option<usize> {
        self.configs.binary_search(&cfg).ok()
    }

    /// The discrete-axis half of `cfg` as a trace payload (axis name, raw
    /// value, label), for `reconfigure`/`proposal`/`session_end` events.
    pub fn axes_trace(&self, cfg: Config) -> pnstm::AxesTrace {
        let mut out = pnstm::AxesTrace::empty();
        for (k, axis) in self.axes.iter().enumerate() {
            let level = cfg.axes.get(k);
            out.push(axis.name(), axis.value_at(level), axis.label_at(level));
        }
        out
    }

    /// Human-readable full point, e.g. `(8,2) cm=karma block=128`.
    pub fn describe(&self, cfg: Config) -> String {
        let mut s = format!("({},{})", cfg.t, cfg.c);
        for (k, axis) in self.axes.iter().enumerate() {
            s.push(' ');
            s.push_str(&axis.display(cfg.axes.get(k)));
        }
        s
    }
}

impl From<SearchSpace> for ConfigSpace {
    fn from(tc: SearchSpace) -> Self {
        ConfigSpace::new(tc, Vec::new())
    }
}

impl From<&SearchSpace> for ConfigSpace {
    fn from(tc: &SearchSpace) -> Self {
        ConfigSpace::new(tc.clone(), Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps() {
        let c = Config::new(0, 0);
        assert_eq!(c, Config { t: 1, c: 1, axes: AxisLevels::empty() });
        assert_eq!(c.cores(), 1);
        assert_eq!(c.to_string(), "(1,1)");
        assert_eq!(c.as_tuple(), (1, 1));
    }

    #[test]
    fn space_count_matches_paper() {
        assert_eq!(SearchSpace::new(48).len(), 198);
        assert_eq!(SearchSpace::new(1).len(), 1);
    }

    #[test]
    fn space_has_no_oversubscription() {
        let s = SearchSpace::new(16);
        assert!(s.configs().iter().all(|c| c.cores() <= 16));
        assert!(s.contains(Config::new(4, 4)));
        assert!(!s.contains(Config::new(4, 5)));
        assert!(!s.contains(Config::new(17, 1)));
    }

    #[test]
    fn neighbors_are_admissible_and_adjacent() {
        let s = SearchSpace::new(48);
        let n = s.neighbors(Config::new(24, 2));
        // (23,2), (24,1) are in; (25,2) = 50 and (24,3) = 72 oversubscribe.
        assert!(n.contains(&Config::new(23, 2)));
        assert!(n.contains(&Config::new(24, 1)));
        assert!(!n.contains(&Config::new(25, 2)));
        assert!(!n.contains(&Config::new(24, 3)));
        // Core-preserving moves along the frontier.
        assert!(n.contains(&Config::new(48, 1)));
        assert!(n.contains(&Config::new(12, 4)));
        for nb in &n {
            assert!(s.contains(*nb));
            assert_ne!(*nb, Config::new(24, 2));
        }
    }

    #[test]
    fn frontier_walk_is_possible() {
        // The multiplicative moves connect the t·c = 48 ridge.
        let s = SearchSpace::new(48);
        let n = s.neighbors(Config::new(6, 8));
        assert!(n.contains(&Config::new(12, 4)));
        assert!(n.contains(&Config::new(3, 16)));
    }

    #[test]
    fn corner_neighbors() {
        let s = SearchSpace::new(8);
        let n = s.neighbors(Config::new(1, 1));
        assert_eq!(n.len(), 2);
        assert!(n.contains(&Config::new(2, 1)));
        assert!(n.contains(&Config::new(1, 2)));
        // No duplicates at small configs where moves collide.
        let n22 = s.neighbors(Config::new(2, 2));
        let set: std::collections::HashSet<_> = n22.iter().collect();
        assert_eq!(set.len(), n22.len());
    }

    #[test]
    fn index_of_round_trips() {
        let s = SearchSpace::new(12);
        for (i, &cfg) in s.configs().iter().enumerate() {
            assert_eq!(s.index_of(cfg), Some(i));
        }
        assert_eq!(s.index_of(Config::new(12, 2)), None);
    }

    #[test]
    fn conversion_to_parallelism_degree() {
        let d: pnstm::ParallelismDegree = Config::new(3, 5).into();
        assert_eq!(d, pnstm::ParallelismDegree::new(3, 5));
    }

    #[test]
    fn gc_budget_axis_is_well_formed() {
        assert_eq!(GcBudget::default().slice_boxes, pnstm::MemConfig::default().gc_slice_boxes);
        assert_eq!(GcBudget::new(0).slice_boxes, 1, "budget clamps to 1");
        assert_eq!(GcBudget::new(64).to_string(), "gc:64");
        let mut sorted = GcBudget::SWEEP.to_vec();
        sorted.sort();
        assert_eq!(sorted, GcBudget::SWEEP.to_vec(), "sweep ladder is ascending");
        assert!(GcBudget::SWEEP.contains(&GcBudget::default()), "sweep covers the default");
    }

    #[test]
    fn block_size_axis_is_well_formed() {
        assert_eq!(BlockSize::default().txns, 256);
        assert_eq!(BlockSize::new(0).txns, 1, "block size clamps to 1");
        assert_eq!(BlockSize::new(128).to_string(), "block:128");
        let mut sorted = BlockSize::SWEEP.to_vec();
        sorted.sort();
        assert_eq!(sorted, BlockSize::SWEEP.to_vec(), "sweep ladder is ascending");
        assert!(BlockSize::SWEEP.contains(&BlockSize::default()), "sweep covers the default");
    }

    #[test]
    fn axisless_config_space_is_the_legacy_space() {
        let tc = SearchSpace::new(48);
        let space = ConfigSpace::from(tc.clone());
        assert_eq!(space.len(), 198);
        assert_eq!(space.dim(), 2);
        assert_eq!(space.configs(), tc.configs(), "enumeration order must match legacy");
        for &cfg in tc.configs() {
            assert_eq!(space.encode(cfg), vec![cfg.t as f64, cfg.c as f64]);
            assert_eq!(space.neighbors(cfg), tc.neighbors(cfg), "neighbour order must match");
            assert_eq!(space.von_neumann_neighbors(cfg), tc.von_neumann_neighbors(cfg));
            assert_eq!(space.index_of(cfg), tc.index_of(cfg));
        }
        assert!(space.axes_trace(Config::new(4, 2)).is_empty());
        assert_eq!(space.describe(Config::new(4, 2)), "(4,2)");
    }

    #[test]
    fn product_space_enumeration_is_sorted_and_complete() {
        let space =
            ConfigSpace::new(SearchSpace::new(8), vec![Axis::cm_policy(), Axis::block_size()]);
        // 20 tc cells × 4 policies × 5 block sizes.
        assert_eq!(space.len(), SearchSpace::new(8).len() * 4 * 5);
        assert_eq!(space.dim(), 2 + 4 + 1, "one-hot cm (4) + ordinal block (1)");
        let mut sorted = space.configs().to_vec();
        sorted.sort();
        assert_eq!(sorted, space.configs(), "enumeration must be binary-searchable");
        for (i, &cfg) in space.configs().iter().enumerate() {
            assert_eq!(space.index_of(cfg), Some(i));
            assert!(space.contains(cfg));
        }
        // A legacy axis-less point is not a member but lifts to one.
        let legacy = Config::new(4, 2);
        assert!(!space.contains(legacy));
        let lifted = space.lift(legacy);
        assert!(space.contains(lifted));
        assert_eq!(lifted.axes, space.default_axes());
        assert_eq!(space.describe(lifted), "(4,2) cm=immediate block=256");
    }

    #[test]
    fn axis_encodings_and_neighbours() {
        let space =
            ConfigSpace::new(SearchSpace::new(8), vec![Axis::cm_policy(), Axis::gc_budget()]);
        let cfg = Config::with_axes(2, 2, AxisLevels::from_slice(&[2, 0])); // karma, gc 32
        let x = space.encode(cfg);
        assert_eq!(x[..2], [2.0, 2.0]);
        assert_eq!(x[2..6], [0.0, 0.0, 1.0, 0.0], "karma one-hot");
        assert_eq!(x[6], 5.0, "gc 32 log2-encoded");
        assert_eq!(x.len(), space.dim());

        let nbs = space.neighbors(cfg);
        // tc moves first, axes held — legacy order.
        let tc_moves = SearchSpace::new(8).neighbors(cfg.tc());
        for (i, nb) in tc_moves.iter().enumerate() {
            assert_eq!(nbs[i].tc(), *nb);
            assert_eq!(nbs[i].axes, cfg.axes);
        }
        // Categorical: every other policy. Integer: ±1 level (here only +1).
        let axis_moves: Vec<_> = nbs[tc_moves.len()..].to_vec();
        assert_eq!(axis_moves.len(), 3 + 1);
        assert!(axis_moves.contains(&Config::with_axes(2, 2, AxisLevels::from_slice(&[0, 0]))));
        assert!(axis_moves.contains(&Config::with_axes(2, 2, AxisLevels::from_slice(&[2, 1]))));
        assert!(!axis_moves.iter().any(|m| m.axes == cfg.axes), "axis moves change a level");
        assert!(nbs.iter().all(|&n| space.contains(n)));

        // Interior integer level gets both directions.
        let mid = Config::with_axes(2, 2, AxisLevels::from_slice(&[0, 2]));
        let mid_moves = &space.neighbors(mid)[tc_moves.len()..];
        assert!(mid_moves.contains(&Config::with_axes(2, 2, AxisLevels::from_slice(&[0, 1]))));
        assert!(mid_moves.contains(&Config::with_axes(2, 2, AxisLevels::from_slice(&[0, 3]))));
    }

    #[test]
    fn axes_trace_carries_names_values_labels() {
        let space =
            ConfigSpace::new(SearchSpace::new(8), vec![Axis::cm_policy(), Axis::block_size()]);
        let cfg = Config::with_axes(4, 1, AxisLevels::from_slice(&[3, 1]));
        let tr = space.axes_trace(cfg);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.get("cm").map(|a| a.label), Some("greedy"));
        assert_eq!(tr.get("block").map(|a| (a.value, a.label)), Some((128, "")));
        assert_eq!(cfg.to_string(), "(4,1)@3.1");
    }

    #[test]
    fn builtin_axes_are_well_formed() {
        for axis in [Axis::cm_policy(), Axis::gc_budget(), Axis::block_size(), Axis::sched_mode()] {
            assert!(!axis.is_empty());
            assert!(axis.default_level() < axis.len());
            assert_eq!(
                axis.level_of_value(axis.value_at(axis.default_level())),
                Some(axis.default_level())
            );
            let mut buf = Vec::new();
            axis.encode_into(axis.default_level(), &mut buf);
            assert_eq!(buf.len(), axis.feature_width());
        }
        assert_eq!(Axis::cm_policy().kind(), AxisKind::Categorical);
        assert_eq!(Axis::gc_budget().kind(), AxisKind::Integer);
        assert_eq!(Axis::cm_policy().display(2), "cm=karma");
        assert_eq!(Axis::gc_budget().display(2), "gc_boxes=128");
        assert_eq!(Axis::sched_mode().display(1), "sched=work-stealing");
        assert_eq!(
            Axis::gc_budget().default_level(),
            2,
            "gc default 128 is the middle of the sweep ladder"
        );
    }

    #[test]
    fn axis_levels_serde_round_trip() {
        use serde::{Deserialize, Serialize};
        let cfg = Config::with_axes(4, 2, AxisLevels::from_slice(&[1, 3]));
        let v = cfg.to_value();
        assert_eq!(Config::from_value(&v), Ok(cfg));
        // A legacy serialization (no `axes` key) deserializes to empty axes.
        let legacy = serde::Value::Obj(vec![
            ("t".to_string(), 4usize.to_value()),
            ("c".to_string(), 2usize.to_value()),
        ]);
        assert_eq!(Config::from_value(&legacy), Ok(Config::new(4, 2)));
    }

    #[test]
    fn cm_policy_round_trips_through_cm_mode() {
        assert_eq!(CmPolicy::ALL.len(), pnstm::CM_POLICIES);
        for p in CmPolicy::ALL {
            let mode: pnstm::CmMode = p.into();
            assert_eq!(CmPolicy::from(mode), p);
            assert_eq!(p.tag(), mode.tag());
            assert_eq!(p.to_string(), mode.tag());
        }
        assert_eq!(CmPolicy::default(), CmPolicy::Immediate);
    }
}
