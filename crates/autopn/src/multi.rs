//! Heterogeneous transaction types — the §VIII future-work extension.
//!
//! The paper: *"it would be relatively straightforward to extend AutoPN to
//! support this problem of higher dimensionality, by modeling the search
//! space as a set of distinct (t_k, c_k) pairs for each type of top-level
//! transaction. It is unclear, though, whether its efficiency would still
//! remain acceptable when faced with such a larger search space."*
//!
//! This module implements that extension by **coordinate descent over
//! types under explicit per-type core caps**: each type `k` owns a core
//! budget `cap_k` (Σ cap_k ≤ n) and its `(t_k, c_k)` is tuned with a full
//! AutoPN pipeline over `{(t, c) : t·c ≤ cap_k}` while the other types hold
//! their current assignment. Fixed caps keep the coordinates decoupled —
//! naive budgeting by "whatever the others left over" lets the first
//! coordinate greedily absorb the whole machine. The split across types is
//! an outer, low-dimensional search (see `bench --bin ext_heterogeneous`,
//! which sweeps it). Passes over the types repeat until a pass stops
//! improving; the paper's open efficiency question is answered empirically
//! by that experiment.

use crate::optimizer::{AutoPn, AutoPnConfig, Tuner};
use crate::space::{Config, SearchSpace};

/// A per-type assignment of parallelism degrees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MultiConfig {
    /// `(t_k, c_k)` for each transaction type `k`.
    pub per_type: Vec<Config>,
}

impl MultiConfig {
    /// Every type at `(1, 1)`.
    pub fn sequential(types: usize) -> Self {
        Self { per_type: vec![Config::new(1, 1); types] }
    }

    /// Total core demand `Σ t_k · c_k`.
    pub fn cores(&self) -> usize {
        self.per_type.iter().map(|c| c.cores()).sum()
    }

    /// Admissibility on an `n`-core machine.
    pub fn fits(&self, n_cores: usize) -> bool {
        self.cores() <= n_cores
    }

    /// This assignment with type `k` replaced by `cfg`.
    pub fn with_type(&self, k: usize, cfg: Config) -> Self {
        let mut out = self.clone();
        out.per_type[k] = cfg;
        out
    }
}

impl std::fmt::Display for MultiConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.per_type.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Configuration of the multi-type tuner.
#[derive(Debug, Clone, Copy)]
pub struct MultiAutoPnConfig {
    /// Per-coordinate AutoPN settings.
    pub inner: AutoPnConfig,
    /// Maximum coordinate-descent passes over the types.
    pub max_passes: usize,
    /// A pass must improve the best KPI by at least this relative amount to
    /// warrant another pass.
    pub min_pass_gain: f64,
}

impl Default for MultiAutoPnConfig {
    fn default() -> Self {
        Self { inner: AutoPnConfig::default(), max_passes: 3, min_pass_gain: 0.02 }
    }
}

enum Phase {
    /// Measure the starting all-(1,1) assignment.
    Baseline,
    /// Tuning coordinate `k` with an inner AutoPN.
    Coordinate {
        k: usize,
        inner: Box<AutoPn>,
    },
    Done,
}

/// Ask–tell tuner over [`MultiConfig`] assignments.
pub struct MultiAutoPn {
    caps: Vec<usize>,
    n_cores: usize,
    types: usize,
    cfg: MultiAutoPnConfig,
    phase: Phase,
    assignment: MultiConfig,
    best: Option<(MultiConfig, f64)>,
    pass: usize,
    pass_start_best: f64,
    explored: usize,
    pending: Option<MultiConfig>,
    seed_counter: u64,
}

impl MultiAutoPn {
    /// Equal split: each of `types` types gets `n_cores / types` cores.
    pub fn new(n_cores: usize, types: usize, cfg: MultiAutoPnConfig) -> Self {
        assert!(types >= 1);
        assert!(n_cores >= types, "need at least one core per type");
        let caps = vec![(n_cores / types).max(1); types];
        Self::with_caps(n_cores, caps, cfg)
    }

    /// Explicit per-type core caps (Σ caps must not exceed `n_cores`).
    pub fn with_caps(n_cores: usize, caps: Vec<usize>, cfg: MultiAutoPnConfig) -> Self {
        let types = caps.len();
        assert!(types >= 1);
        assert!(caps.iter().all(|&c| c >= 1), "every type needs at least one core");
        assert!(
            caps.iter().sum::<usize>() <= n_cores,
            "caps {caps:?} oversubscribe {n_cores} cores"
        );
        Self {
            caps,
            n_cores,
            types,
            cfg,
            phase: Phase::Baseline,
            assignment: MultiConfig::sequential(types),
            best: None,
            pass: 0,
            pass_start_best: f64::NEG_INFINITY,
            explored: 0,
            pending: None,
            seed_counter: 0,
        }
    }

    /// Budget for type `k`: its fixed cap.
    fn budget_for(&self, k: usize) -> usize {
        self.caps[k]
    }

    fn start_coordinate(&mut self, k: usize) {
        let budget = self.budget_for(k);
        self.seed_counter += 1;
        let inner = AutoPn::new(
            SearchSpace::new(budget),
            AutoPnConfig {
                seed: self.cfg.inner.seed.wrapping_add(self.seed_counter * 7919),
                ..self.cfg.inner
            },
        );
        self.phase = Phase::Coordinate { k, inner: Box::new(inner) };
    }

    fn advance_after_coordinate(&mut self, k: usize) {
        // Adopt the coordinate's winner into the assignment.
        if let Phase::Coordinate { inner, .. } = &self.phase {
            if let Some((cfg, _)) = inner.best() {
                self.assignment = self.assignment.with_type(k, cfg);
            }
        }
        if k + 1 < self.types {
            self.start_coordinate(k + 1);
            return;
        }
        // Pass complete.
        self.pass += 1;
        let best_now = self.best.as_ref().map(|(_, v)| *v).unwrap_or(f64::NEG_INFINITY);
        let improved = best_now > self.pass_start_best * (1.0 + self.cfg.min_pass_gain)
            || !self.pass_start_best.is_finite();
        if improved && self.pass < self.cfg.max_passes {
            self.pass_start_best = best_now;
            self.start_coordinate(0);
        } else {
            self.phase = Phase::Done;
        }
    }

    /// Next assignment to measure; `None` once converged.
    pub fn propose(&mut self) -> Option<MultiConfig> {
        loop {
            match &mut self.phase {
                Phase::Baseline => {
                    let mc = self.assignment.clone();
                    self.pending = Some(mc.clone());
                    return Some(mc);
                }
                Phase::Coordinate { k, inner } => {
                    let k = *k;
                    match inner.propose() {
                        Some(cfg) => {
                            let mc = self.assignment.with_type(k, cfg);
                            debug_assert!(
                                mc.fits(self.n_cores),
                                "budgeting keeps proposals admissible"
                            );
                            self.pending = Some(mc.clone());
                            return Some(mc);
                        }
                        None => self.advance_after_coordinate(k),
                    }
                }
                Phase::Done => return None,
            }
        }
    }

    /// Report the measured KPI of a proposed assignment.
    pub fn observe(&mut self, mc: MultiConfig, kpi: f64) {
        debug_assert_eq!(self.pending.as_ref(), Some(&mc), "observe must match the last proposal");
        self.pending = None;
        self.explored += 1;
        if self.best.as_ref().map(|(_, b)| kpi > *b).unwrap_or(true) {
            self.best = Some((mc.clone(), kpi));
        }
        match &mut self.phase {
            Phase::Baseline => {
                self.pass_start_best = kpi;
                self.start_coordinate(0);
            }
            Phase::Coordinate { k, inner } => {
                let cfg = mc.per_type[*k];
                inner.observe(cfg, kpi);
            }
            Phase::Done => {}
        }
    }

    /// Best assignment observed so far.
    pub fn best(&self) -> Option<(MultiConfig, f64)> {
        self.best.clone()
    }

    /// Assignments measured so far.
    pub fn explored(&self) -> usize {
        self.explored
    }

    /// Coordinate-descent passes completed.
    pub fn passes(&self) -> usize {
        self.pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_config_algebra() {
        let mc = MultiConfig::sequential(3);
        assert_eq!(mc.cores(), 3);
        assert!(mc.fits(3));
        let mc2 = mc.with_type(1, Config::new(4, 2));
        assert_eq!(mc2.cores(), 10);
        assert_eq!(mc2.to_string(), "[(1,1) (4,2) (1,1)]");
        assert_eq!(mc.cores(), 3, "with_type does not mutate the original");
    }

    /// Separable objective: each type has its own bowl; the global optimum
    /// combines the per-type optima (within the core budget).
    fn separable(mc: &MultiConfig) -> f64 {
        let a = mc.per_type[0];
        let b = mc.per_type[1];
        let f_a = 300.0 - 4.0 * (a.t as f64 - 6.0).powi(2) - 30.0 * (a.c as f64 - 1.0).powi(2);
        let f_b = 300.0 - 4.0 * (b.t as f64 - 2.0).powi(2) - 10.0 * (b.c as f64 - 4.0).powi(2);
        f_a + f_b
    }

    #[test]
    fn coordinate_descent_finds_per_type_shapes() {
        let mut tuner = MultiAutoPn::new(24, 2, MultiAutoPnConfig::default());
        let mut steps = 0;
        while let Some(mc) = tuner.propose() {
            assert!(mc.fits(24), "{mc} oversubscribes");
            tuner.observe(mc.clone(), separable(&mc));
            steps += 1;
            assert!(steps < 500, "did not converge");
        }
        let (best, _) = tuner.best().expect("found something");
        let (a, b) = (best.per_type[0], best.per_type[1]);
        assert!((a.t as i64 - 6).abs() <= 2 && a.c <= 2, "type 0 wants ~(6,1), got {a}");
        assert!((b.c as i64 - 4).abs() <= 2, "type 1 wants c~4, got {b}");
        assert!(tuner.passes() >= 1);
    }

    #[test]
    fn proposals_respect_shrinking_budget() {
        // With type 0 holding a large allocation, type 1's proposals must
        // fit the remaining cores.
        let mut tuner = MultiAutoPn::new(12, 2, MultiAutoPnConfig::default());
        let f = |mc: &MultiConfig| {
            // Type 0 strongly prefers (8, 1).
            let a = mc.per_type[0];
            let b = mc.per_type[1];
            -((a.t as f64 - 8.0).powi(2)) * 100.0 - (b.t as f64 + b.c as f64)
        };
        while let Some(mc) = tuner.propose() {
            assert!(mc.fits(12));
            tuner.observe(mc.clone(), f(&mc));
        }
        let (best, _) = tuner.best().unwrap();
        assert!(best.fits(12));
    }

    #[test]
    fn single_type_degenerates_to_autopn_shape() {
        let mut tuner = MultiAutoPn::new(16, 1, MultiAutoPnConfig::default());
        let f = |mc: &MultiConfig| {
            let c = mc.per_type[0];
            -((c.t as f64 - 4.0).powi(2)) - (c.c as f64 - 2.0).powi(2)
        };
        while let Some(mc) = tuner.propose() {
            tuner.observe(mc.clone(), f(&mc));
        }
        let (best, _) = tuner.best().unwrap();
        let c = best.per_type[0];
        assert!((c.t as i64 - 4).abs() <= 1 && (c.c as i64 - 2).abs() <= 1, "got {c}");
    }

    #[test]
    #[should_panic(expected = "at least one core per type")]
    fn too_many_types_rejected() {
        let _ = MultiAutoPn::new(2, 3, MultiAutoPnConfig::default());
    }
}
