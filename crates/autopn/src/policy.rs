//! Co-tuning the contention-management policy with `(t, c)`.
//!
//! The CM policy ([`CmPolicy`]) is a categorical axis: it has no numeric
//! neighbourhood for the model-based `(t, c)` search to exploit, and the
//! best `(t, c)` genuinely depends on the policy (backoff flattens the
//! abort cliff at high `t`, so the throughput surface moves). The sweep
//! therefore runs one *full* tuning session per policy — fresh tuner and
//! fresh monitor each time, since AutoPN keeps no cross-workload knowledge
//! by design (§V-B) and a policy switch is a workload change from the
//! monitor's perspective — and picks the `(policy, t, c)` triple with the
//! best measured throughput.

use crate::controller::{Controller, TunableSystem, TuneOptions, TuningOutcome};
use crate::monitor::MonitorPolicy;
use crate::optimizer::Tuner;
use crate::space::{CmPolicy, Config};
use pnstm::TraceBus;

/// Outcome of a `{policy} × (t, c)` sweep: every per-policy session, plus
/// the winning triple (re-applied to the system before returning).
#[derive(Debug, Clone)]
pub struct PolicySweepOutcome {
    /// One completed tuning session per swept policy, in sweep order.
    pub sessions: Vec<(CmPolicy, TuningOutcome)>,
    /// The policy of the winning session.
    pub best_policy: CmPolicy,
    /// The winning session's best `(t, c)`.
    pub best: Config,
    /// Its measured throughput.
    pub best_throughput: f64,
    /// Any per-policy session degraded (see [`TuningOutcome::degraded`]).
    pub degraded: bool,
}

/// Run one `(t, c)` tuning session per policy in `policies` (the full
/// ladder when empty) and leave the system on the best `(policy, t, c)`.
///
/// `set_policy` enacts a policy on the tuned system (live STM:
/// `|p| stm.set_cm_mode(p.into())`, or [`crate::PnstmActuator::set_policy`]).
/// `make_tuner` / `make_monitor` build a fresh optimizer and measurement
/// policy per session.
pub fn sweep_policies(
    system: &mut dyn TunableSystem,
    policies: &[CmPolicy],
    set_policy: &mut dyn FnMut(CmPolicy),
    make_tuner: &mut dyn FnMut(CmPolicy) -> Box<dyn Tuner>,
    make_monitor: &mut dyn FnMut(CmPolicy) -> Box<dyn MonitorPolicy>,
    trace: &TraceBus,
    opts: &TuneOptions,
) -> PolicySweepOutcome {
    let policies: Vec<CmPolicy> =
        if policies.is_empty() { CmPolicy::ALL.to_vec() } else { policies.to_vec() };
    let mut sessions: Vec<(CmPolicy, TuningOutcome)> = Vec::with_capacity(policies.len());
    let mut degraded = false;
    for &p in &policies {
        set_policy(p);
        let mut tuner = make_tuner(p);
        let mut monitor = make_monitor(p);
        let outcome =
            Controller::tune_traced_with(system, tuner.as_mut(), monitor.as_mut(), trace, opts);
        degraded |= outcome.degraded;
        sessions.push((p, outcome));
    }
    // Winner by measured throughput; ties resolve to the earlier (more
    // conservative, ladder-ordered) policy. `sessions` is non-empty: the
    // policy list defaults to the full ladder above.
    let (best_policy, best, best_throughput) = sessions
        .iter()
        .map(|(p, o)| (*p, o.best, o.best_throughput))
        .reduce(|a, b| if b.2 > a.2 { b } else { a })
        .expect("at least one policy session ran");
    // Each session parks the system on its own best; re-enact the winning
    // triple now that the whole sweep has finished. Best effort, as with the
    // controller's own fallback path: a veto here leaves the last session's
    // configuration in force.
    set_policy(best_policy);
    if system.try_apply(best).is_err() {
        degraded = true;
    }
    PolicySweepOutcome { sessions, best_policy, best, best_throughput, degraded }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::AdaptiveMonitor;
    use crate::optimizer::{AutoPn, AutoPnConfig};
    use crate::space::SearchSpace;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Deterministic fake: commit period depends on `(t, c)` *and* on the
    /// currently enacted policy (Karma is the clear winner, Immediate the
    /// clear loser), with the optimum at (6, 2) in all cases.
    struct PolicyFakeSystem {
        now: u64,
        period_ns: u64,
        cfg: Config,
        policy_idx: Arc<AtomicUsize>,
    }

    impl PolicyFakeSystem {
        fn policy_penalty(idx: usize) -> u64 {
            match CmPolicy::ALL[idx] {
                CmPolicy::Immediate => 600_000,
                CmPolicy::ExpBackoff => 200_000,
                CmPolicy::Karma => 0,
                CmPolicy::Greedy => 300_000,
            }
        }
        fn period_for(cfg: Config, idx: usize) -> u64 {
            let penalty =
                (cfg.t as f64 - 6.0).powi(2) * 40_000.0 + (cfg.c as f64 - 2.0).powi(2) * 90_000.0;
            (200_000.0 + penalty) as u64 + Self::policy_penalty(idx)
        }
        fn refresh(&mut self) {
            self.period_ns = Self::period_for(self.cfg, self.policy_idx.load(Ordering::Relaxed));
        }
    }

    impl TunableSystem for PolicyFakeSystem {
        fn apply(&mut self, cfg: Config) {
            self.cfg = cfg;
            self.refresh();
        }
        fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
            self.refresh();
            if self.period_ns <= max_wait_ns {
                self.now += self.period_ns;
                Some(self.now)
            } else {
                self.now += max_wait_ns;
                None
            }
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
    }

    #[test]
    fn sweep_finds_the_best_policy_and_config() {
        let policy_idx = Arc::new(AtomicUsize::new(0));
        let mut sys = PolicyFakeSystem {
            now: 0,
            period_ns: 1_000_000,
            cfg: Config::new(1, 1),
            policy_idx: Arc::clone(&policy_idx),
        };
        let knob = Arc::clone(&policy_idx);
        let outcome = sweep_policies(
            &mut sys,
            &CmPolicy::ALL,
            &mut |p| {
                knob.store(CmPolicy::ALL.iter().position(|&q| q == p).unwrap(), Ordering::Relaxed)
            },
            &mut |_| Box::new(AutoPn::new(SearchSpace::new(16), AutoPnConfig::default())),
            &mut |_| Box::new(AdaptiveMonitor::default()),
            &TraceBus::default(),
            &TuneOptions::default(),
        );
        assert_eq!(outcome.sessions.len(), 4, "one full session per policy");
        assert_eq!(outcome.best_policy, CmPolicy::Karma);
        assert!(
            (outcome.best.t as i64 - 6).abs() <= 1 && (outcome.best.c as i64 - 2).abs() <= 1,
            "best {} too far from (6,2)",
            outcome.best
        );
        assert!(!outcome.degraded);
        // The system was left on the winning triple.
        assert_eq!(policy_idx.load(Ordering::Relaxed), 2, "karma re-enacted after the sweep");
        assert_eq!(sys.cfg, outcome.best);
        // Throughputs actually separate the policies as constructed.
        let tp =
            |p: CmPolicy| outcome.sessions.iter().find(|(q, _)| *q == p).unwrap().1.best_throughput;
        assert!(tp(CmPolicy::Karma) > tp(CmPolicy::Immediate));
    }

    #[test]
    fn empty_policy_list_defaults_to_the_full_ladder() {
        let policy_idx = Arc::new(AtomicUsize::new(0));
        let mut sys = PolicyFakeSystem {
            now: 0,
            period_ns: 1_000_000,
            cfg: Config::new(1, 1),
            policy_idx: Arc::clone(&policy_idx),
        };
        let knob = Arc::clone(&policy_idx);
        let outcome = sweep_policies(
            &mut sys,
            &[],
            &mut |p| {
                knob.store(CmPolicy::ALL.iter().position(|&q| q == p).unwrap(), Ordering::Relaxed)
            },
            &mut |_| Box::new(AutoPn::new(SearchSpace::new(8), AutoPnConfig::default())),
            &mut |_| Box::new(AdaptiveMonitor::default()),
            &TraceBus::default(),
            &TuneOptions::default(),
        );
        let swept: Vec<CmPolicy> = outcome.sessions.iter().map(|(p, _)| *p).collect();
        assert_eq!(swept, CmPolicy::ALL.to_vec());
    }
}
