//! Co-tuning the contention-management policy with `(t, c)`.
//!
//! The CM policy ([`CmPolicy`]) is a categorical axis: it has no numeric
//! neighbourhood for the model-based `(t, c)` search to exploit, and the
//! best `(t, c)` genuinely depends on the policy (backoff flattens the
//! abort cliff at high `t`, so the throughput surface moves). The sweep
//! therefore runs one *full* tuning session per policy — fresh tuner and
//! fresh monitor each time, since AutoPN keeps no cross-workload knowledge
//! by design (§V-B) and a policy switch is a workload change from the
//! monitor's perspective — and picks the `(policy, t, c)` triple with the
//! best measured throughput.

use crate::controller::{Controller, TunableSystem, TuneOptions, TuningOutcome};
use crate::monitor::MonitorPolicy;
use crate::optimizer::Tuner;
use crate::space::{BlockSize, CmPolicy, Config, GcBudget};
use pnstm::TraceBus;

/// One full `(t, c)` session per value of a categorical axis. Shared driver
/// behind [`sweep_policies`] and [`sweep_gc_budgets`]: fresh tuner and
/// monitor per session (a knob switch is a workload change from the
/// monitor's perspective), winner by measured throughput with ties resolving
/// to the earlier (ladder-ordered) value, winning pair re-enacted at the end.
fn sweep_axis<K: Copy>(
    system: &mut dyn TunableSystem,
    values: &[K],
    set: &mut dyn FnMut(K),
    make_tuner: &mut dyn FnMut(K) -> Box<dyn Tuner>,
    make_monitor: &mut dyn FnMut(K) -> Box<dyn MonitorPolicy>,
    trace: &TraceBus,
    opts: &TuneOptions,
) -> (Vec<(K, TuningOutcome)>, K, Config, f64, bool) {
    assert!(!values.is_empty(), "axis sweep needs at least one value");
    let mut sessions: Vec<(K, TuningOutcome)> = Vec::with_capacity(values.len());
    let mut degraded = false;
    for &k in values {
        set(k);
        let mut tuner = make_tuner(k);
        let mut monitor = make_monitor(k);
        let outcome =
            Controller::tune_traced_with(system, tuner.as_mut(), monitor.as_mut(), trace, opts);
        degraded |= outcome.degraded;
        sessions.push((k, outcome));
    }
    let (best_key, best, best_throughput) = sessions
        .iter()
        .map(|(k, o)| (*k, o.best, o.best_throughput))
        .reduce(|a, b| if b.2 > a.2 { b } else { a })
        .expect("at least one session ran");
    // Each session parks the system on its own best; re-enact the winning
    // pair now that the whole sweep has finished. Best effort, as with the
    // controller's own fallback path: a veto here leaves the last session's
    // configuration in force.
    set(best_key);
    if system.try_apply(best).is_err() {
        degraded = true;
    }
    (sessions, best_key, best, best_throughput, degraded)
}

/// Outcome of a `{policy} × (t, c)` sweep: every per-policy session, plus
/// the winning triple (re-applied to the system before returning).
#[derive(Debug, Clone)]
pub struct PolicySweepOutcome {
    /// One completed tuning session per swept policy, in sweep order.
    pub sessions: Vec<(CmPolicy, TuningOutcome)>,
    /// The policy of the winning session.
    pub best_policy: CmPolicy,
    /// The winning session's best `(t, c)`.
    pub best: Config,
    /// Its measured throughput.
    pub best_throughput: f64,
    /// Any per-policy session degraded (see [`TuningOutcome::degraded`]).
    pub degraded: bool,
}

/// Run one `(t, c)` tuning session per policy in `policies` (the full
/// ladder when empty) and leave the system on the best `(policy, t, c)`.
///
/// `set_policy` enacts a policy on the tuned system (live STM:
/// `|p| stm.set_cm_mode(p.into())`, or [`crate::PnstmActuator::set_policy`]).
/// `make_tuner` / `make_monitor` build a fresh optimizer and measurement
/// policy per session.
pub fn sweep_policies(
    system: &mut dyn TunableSystem,
    policies: &[CmPolicy],
    set_policy: &mut dyn FnMut(CmPolicy),
    make_tuner: &mut dyn FnMut(CmPolicy) -> Box<dyn Tuner>,
    make_monitor: &mut dyn FnMut(CmPolicy) -> Box<dyn MonitorPolicy>,
    trace: &TraceBus,
    opts: &TuneOptions,
) -> PolicySweepOutcome {
    let policies: Vec<CmPolicy> =
        if policies.is_empty() { CmPolicy::ALL.to_vec() } else { policies.to_vec() };
    let (sessions, best_policy, best, best_throughput, degraded) =
        sweep_axis(system, &policies, set_policy, make_tuner, make_monitor, trace, opts);
    PolicySweepOutcome { sessions, best_policy, best, best_throughput, degraded }
}

/// Outcome of a `{gc budget} × (t, c)` sweep; see [`sweep_gc_budgets`].
#[derive(Debug, Clone)]
pub struct GcBudgetSweepOutcome {
    /// One completed tuning session per swept budget, in sweep order.
    pub sessions: Vec<(GcBudget, TuningOutcome)>,
    /// The slice budget of the winning session.
    pub best_budget: GcBudget,
    /// The winning session's best `(t, c)`.
    pub best: Config,
    /// Its measured throughput.
    pub best_throughput: f64,
    /// Any per-budget session degraded (see [`TuningOutcome::degraded`]).
    pub degraded: bool,
}

/// Run one `(t, c)` tuning session per GC slice budget in `budgets` (the
/// default [`GcBudget::SWEEP`] ladder when empty) and leave the system on
/// the best `(budget, t, c)`.
///
/// The budget trades commit-path interference against reclamation latency:
/// a small slice keeps collector pauses between yields short but lets the
/// version heap ride higher (more cache pressure on readers), a large slice
/// reclaims eagerly at the cost of longer boxes-lock holds. The surface is
/// workload-dependent, so like the CM policy it is swept as a categorical
/// axis. `set_budget` enacts a budget on the tuned system (live STM:
/// [`crate::PnstmActuator::set_gc_budget`]).
pub fn sweep_gc_budgets(
    system: &mut dyn TunableSystem,
    budgets: &[GcBudget],
    set_budget: &mut dyn FnMut(GcBudget),
    make_tuner: &mut dyn FnMut(GcBudget) -> Box<dyn Tuner>,
    make_monitor: &mut dyn FnMut(GcBudget) -> Box<dyn MonitorPolicy>,
    trace: &TraceBus,
    opts: &TuneOptions,
) -> GcBudgetSweepOutcome {
    let budgets: Vec<GcBudget> =
        if budgets.is_empty() { GcBudget::SWEEP.to_vec() } else { budgets.to_vec() };
    let (sessions, best_budget, best, best_throughput, degraded) =
        sweep_axis(system, &budgets, set_budget, make_tuner, make_monitor, trace, opts);
    GcBudgetSweepOutcome { sessions, best_budget, best, best_throughput, degraded }
}

/// Outcome of a `{block size} × (t, c)` sweep; see [`sweep_block_sizes`].
#[derive(Debug, Clone)]
pub struct BlockSizeSweepOutcome {
    /// One completed tuning session per swept block size, in sweep order.
    pub sessions: Vec<(BlockSize, TuningOutcome)>,
    /// The block size of the winning session.
    pub best_block_size: BlockSize,
    /// The winning session's best `(t, c)`.
    pub best: Config,
    /// Its measured throughput.
    pub best_throughput: f64,
    /// Any per-size session degraded (see [`TuningOutcome::degraded`]).
    pub degraded: bool,
}

/// Run one `(t, c)` tuning session per ledger block size in `sizes` (the
/// default [`BlockSize::SWEEP`] ladder when empty) and leave the system on
/// the best `(block size, t, c)`.
///
/// Block size trades per-block overhead against conflict exposure: a large
/// block amortises the index-order install and keeps the execution wave
/// saturated, but widens the window in which a hot-account write invalidates
/// the suffix (more incarnation re-runs); a small block bounds the
/// re-execution bill at the cost of more commits. The surface depends on the
/// workload's conflict level, so it is swept as a categorical axis.
/// `set_size` enacts a size on the tuned system (live ledger:
/// `|b| cfg.block_size = b.txns` on the executor driving the loop).
pub fn sweep_block_sizes(
    system: &mut dyn TunableSystem,
    sizes: &[BlockSize],
    set_size: &mut dyn FnMut(BlockSize),
    make_tuner: &mut dyn FnMut(BlockSize) -> Box<dyn Tuner>,
    make_monitor: &mut dyn FnMut(BlockSize) -> Box<dyn MonitorPolicy>,
    trace: &TraceBus,
    opts: &TuneOptions,
) -> BlockSizeSweepOutcome {
    let sizes: Vec<BlockSize> =
        if sizes.is_empty() { BlockSize::SWEEP.to_vec() } else { sizes.to_vec() };
    let (sessions, best_block_size, best, best_throughput, degraded) =
        sweep_axis(system, &sizes, set_size, make_tuner, make_monitor, trace, opts);
    BlockSizeSweepOutcome { sessions, best_block_size, best, best_throughput, degraded }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::AdaptiveMonitor;
    use crate::optimizer::{AutoPn, AutoPnConfig};
    use crate::space::SearchSpace;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Deterministic fake: commit period depends on `(t, c)` *and* on the
    /// currently enacted policy (Karma is the clear winner, Immediate the
    /// clear loser), with the optimum at (6, 2) in all cases.
    struct PolicyFakeSystem {
        now: u64,
        period_ns: u64,
        cfg: Config,
        policy_idx: Arc<AtomicUsize>,
    }

    impl PolicyFakeSystem {
        fn policy_penalty(idx: usize) -> u64 {
            match CmPolicy::ALL[idx] {
                CmPolicy::Immediate => 600_000,
                CmPolicy::ExpBackoff => 200_000,
                CmPolicy::Karma => 0,
                CmPolicy::Greedy => 300_000,
            }
        }
        fn period_for(cfg: Config, idx: usize) -> u64 {
            let penalty =
                (cfg.t as f64 - 6.0).powi(2) * 40_000.0 + (cfg.c as f64 - 2.0).powi(2) * 90_000.0;
            (200_000.0 + penalty) as u64 + Self::policy_penalty(idx)
        }
        fn refresh(&mut self) {
            self.period_ns = Self::period_for(self.cfg, self.policy_idx.load(Ordering::Relaxed));
        }
    }

    impl TunableSystem for PolicyFakeSystem {
        fn apply(&mut self, cfg: Config) {
            self.cfg = cfg;
            self.refresh();
        }
        fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
            self.refresh();
            if self.period_ns <= max_wait_ns {
                self.now += self.period_ns;
                Some(self.now)
            } else {
                self.now += max_wait_ns;
                None
            }
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
    }

    #[test]
    fn sweep_finds_the_best_policy_and_config() {
        let policy_idx = Arc::new(AtomicUsize::new(0));
        let mut sys = PolicyFakeSystem {
            now: 0,
            period_ns: 1_000_000,
            cfg: Config::new(1, 1),
            policy_idx: Arc::clone(&policy_idx),
        };
        let knob = Arc::clone(&policy_idx);
        let outcome = sweep_policies(
            &mut sys,
            &CmPolicy::ALL,
            &mut |p| {
                knob.store(CmPolicy::ALL.iter().position(|&q| q == p).unwrap(), Ordering::Relaxed)
            },
            &mut |_| Box::new(AutoPn::new(SearchSpace::new(16), AutoPnConfig::default())),
            &mut |_| Box::new(AdaptiveMonitor::default()),
            &TraceBus::default(),
            &TuneOptions::default(),
        );
        assert_eq!(outcome.sessions.len(), 4, "one full session per policy");
        assert_eq!(outcome.best_policy, CmPolicy::Karma);
        assert!(
            (outcome.best.t as i64 - 6).abs() <= 1 && (outcome.best.c as i64 - 2).abs() <= 1,
            "best {} too far from (6,2)",
            outcome.best
        );
        assert!(!outcome.degraded);
        // The system was left on the winning triple.
        assert_eq!(policy_idx.load(Ordering::Relaxed), 2, "karma re-enacted after the sweep");
        assert_eq!(sys.cfg, outcome.best);
        // Throughputs actually separate the policies as constructed.
        let tp =
            |p: CmPolicy| outcome.sessions.iter().find(|(q, _)| *q == p).unwrap().1.best_throughput;
        assert!(tp(CmPolicy::Karma) > tp(CmPolicy::Immediate));
    }

    /// Deterministic fake for the GC-budget axis: commit period is parabolic
    /// in the enacted slice budget with the optimum at 128 boxes, on top of
    /// the usual `(t, c)` bowl at (6, 2).
    struct BudgetFakeSystem {
        now: u64,
        cfg: Config,
        budget: Arc<AtomicUsize>,
    }

    impl BudgetFakeSystem {
        fn period(&self) -> u64 {
            let cfg = self.cfg;
            let bowl =
                (cfg.t as f64 - 6.0).powi(2) * 40_000.0 + (cfg.c as f64 - 2.0).powi(2) * 90_000.0;
            let b = self.budget.load(Ordering::Relaxed) as f64;
            let budget_penalty = (b.log2() - 7.0).powi(2) * 150_000.0;
            (200_000.0 + bowl + budget_penalty) as u64
        }
    }

    impl TunableSystem for BudgetFakeSystem {
        fn apply(&mut self, cfg: Config) {
            self.cfg = cfg;
        }
        fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
            let period = self.period();
            if period <= max_wait_ns {
                self.now += period;
                Some(self.now)
            } else {
                self.now += max_wait_ns;
                None
            }
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
    }

    #[test]
    fn gc_budget_sweep_finds_the_best_budget() {
        let budget = Arc::new(AtomicUsize::new(GcBudget::default().slice_boxes));
        let mut sys =
            BudgetFakeSystem { now: 0, cfg: Config::new(1, 1), budget: Arc::clone(&budget) };
        let knob = Arc::clone(&budget);
        let outcome = sweep_gc_budgets(
            &mut sys,
            &[],
            &mut |b| knob.store(b.slice_boxes, Ordering::Relaxed),
            &mut |_| Box::new(AutoPn::new(SearchSpace::new(16), AutoPnConfig::default())),
            &mut |_| Box::new(AdaptiveMonitor::default()),
            &TraceBus::default(),
            &TuneOptions::default(),
        );
        assert_eq!(outcome.sessions.len(), GcBudget::SWEEP.len(), "empty list sweeps the ladder");
        assert_eq!(outcome.best_budget, GcBudget::new(128));
        assert_eq!(budget.load(Ordering::Relaxed), 128, "winner re-enacted after the sweep");
        assert!(
            (outcome.best.t as i64 - 6).abs() <= 1 && (outcome.best.c as i64 - 2).abs() <= 1,
            "best {} too far from (6,2)",
            outcome.best
        );
        let tp =
            |b: GcBudget| outcome.sessions.iter().find(|(q, _)| *q == b).unwrap().1.best_throughput;
        assert!(tp(GcBudget::new(128)) > tp(GcBudget::new(32)));
    }

    /// Deterministic fake for the block-size axis: commit period is
    /// parabolic in log2(block size) with the optimum at 256 txns (the
    /// ladder midpoint), on top of the usual `(t, c)` bowl at (6, 2) —
    /// modelling the amortisation-vs-conflict-window trade-off.
    struct BlockFakeSystem {
        now: u64,
        cfg: Config,
        block: Arc<AtomicUsize>,
    }

    impl BlockFakeSystem {
        fn period(&self) -> u64 {
            let cfg = self.cfg;
            let bowl =
                (cfg.t as f64 - 6.0).powi(2) * 40_000.0 + (cfg.c as f64 - 2.0).powi(2) * 90_000.0;
            let b = self.block.load(Ordering::Relaxed) as f64;
            let block_penalty = (b.log2() - 8.0).powi(2) * 150_000.0;
            (200_000.0 + bowl + block_penalty) as u64
        }
    }

    impl TunableSystem for BlockFakeSystem {
        fn apply(&mut self, cfg: Config) {
            self.cfg = cfg;
        }
        fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
            let period = self.period();
            if period <= max_wait_ns {
                self.now += period;
                Some(self.now)
            } else {
                self.now += max_wait_ns;
                None
            }
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
    }

    #[test]
    fn block_size_sweep_finds_the_best_size() {
        let block = Arc::new(AtomicUsize::new(BlockSize::default().txns));
        let mut sys = BlockFakeSystem { now: 0, cfg: Config::new(1, 1), block: Arc::clone(&block) };
        let knob = Arc::clone(&block);
        let outcome = sweep_block_sizes(
            &mut sys,
            &[],
            &mut |b| knob.store(b.txns, Ordering::Relaxed),
            &mut |_| Box::new(AutoPn::new(SearchSpace::new(16), AutoPnConfig::default())),
            &mut |_| Box::new(AdaptiveMonitor::default()),
            &TraceBus::default(),
            &TuneOptions::default(),
        );
        assert_eq!(outcome.sessions.len(), BlockSize::SWEEP.len(), "empty list sweeps the ladder");
        assert_eq!(outcome.best_block_size, BlockSize::new(256));
        assert_eq!(block.load(Ordering::Relaxed), 256, "winner re-enacted after the sweep");
        assert!(
            (outcome.best.t as i64 - 6).abs() <= 1 && (outcome.best.c as i64 - 2).abs() <= 1,
            "best {} too far from (6,2)",
            outcome.best
        );
        let tp = |b: BlockSize| {
            outcome.sessions.iter().find(|(q, _)| *q == b).unwrap().1.best_throughput
        };
        assert!(tp(BlockSize::new(256)) > tp(BlockSize::new(64)));
    }

    #[test]
    fn empty_policy_list_defaults_to_the_full_ladder() {
        let policy_idx = Arc::new(AtomicUsize::new(0));
        let mut sys = PolicyFakeSystem {
            now: 0,
            period_ns: 1_000_000,
            cfg: Config::new(1, 1),
            policy_idx: Arc::clone(&policy_idx),
        };
        let knob = Arc::clone(&policy_idx);
        let outcome = sweep_policies(
            &mut sys,
            &[],
            &mut |p| {
                knob.store(CmPolicy::ALL.iter().position(|&q| q == p).unwrap(), Ordering::Relaxed)
            },
            &mut |_| Box::new(AutoPn::new(SearchSpace::new(8), AutoPnConfig::default())),
            &mut |_| Box::new(AdaptiveMonitor::default()),
            &TraceBus::default(),
            &TuneOptions::default(),
        );
        let swept: Vec<CmPolicy> = outcome.sessions.iter().map(|(p, _)| *p).collect();
        assert_eq!(swept, CmPolicy::ALL.to_vec());
    }
}
