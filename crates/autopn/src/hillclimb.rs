//! Ask–tell hill climber: the localized refinement phase that follows SMBO
//! (§V of the paper), also reused by the standalone hill-climbing baseline.

use std::collections::HashMap;

use crate::space::{Config, ConfigSpace};

/// Which move set a climber explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Neighborhood {
    /// Plain `(t±1, c)`, `(t, c±1)` — the paper's generic baselines.
    VonNeumann,
    /// Von-Neumann plus the core-preserving moves `(2t, ⌈c/2⌉)`,
    /// `(⌊t/2⌋, 2c)` — used by AutoPN's refinement phase, where walking the
    /// `t·c = n` frontier matters.
    #[default]
    DomainSpecific,
}

/// A steepest-ascent hill climber over the `(t, c)` space, reusing cached
/// measurements so already-explored configurations cost nothing.
#[derive(Debug, Clone)]
pub struct HillClimber {
    space: ConfigSpace,
    neighborhood: Neighborhood,
    center: Config,
    center_val: f64,
    known: HashMap<Config, f64>,
    pending: Vec<Config>,
    converged: bool,
}

impl HillClimber {
    /// Start climbing from `start` (valued `start_val`), with `known` prior
    /// measurements that will be reused instead of re-proposed. Uses the
    /// domain-specific neighbourhood.
    pub fn new(
        space: impl Into<ConfigSpace>,
        start: Config,
        start_val: f64,
        known: HashMap<Config, f64>,
    ) -> Self {
        Self::with_neighborhood(space, start, start_val, known, Neighborhood::DomainSpecific)
    }

    /// Start climbing with an explicit move set.
    pub fn with_neighborhood(
        space: impl Into<ConfigSpace>,
        start: Config,
        start_val: f64,
        known: HashMap<Config, f64>,
        neighborhood: Neighborhood,
    ) -> Self {
        let space = space.into();
        let mut hc = Self {
            pending: neighbors_of(&space, neighborhood, start),
            space,
            neighborhood,
            center: start,
            center_val: start_val,
            known,
            converged: false,
        };
        hc.known.insert(start, start_val);
        hc
    }

    /// Current center of the search (the best configuration found so far by
    /// the climb).
    pub fn center(&self) -> (Config, f64) {
        (self.center, self.center_val)
    }

    /// Whether the climb has reached a local maximum.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Next configuration to measure, or `None` once a local maximum is
    /// reached. Neighbors with cached values are consumed without being
    /// proposed.
    pub fn propose(&mut self) -> Option<Config> {
        loop {
            if self.converged {
                return None;
            }
            while let Some(cfg) = self.pending.pop() {
                if !self.known.contains_key(&cfg) {
                    return Some(cfg);
                }
            }
            // Round complete: every neighbor of the center is known.
            let best_neighbor = neighbors_of(&self.space, self.neighborhood, self.center)
                .into_iter()
                .filter_map(|n| self.known.get(&n).map(|&v| (n, v)))
                .max_by(|a, b| a.1.total_cmp(&b.1));
            match best_neighbor {
                Some((cfg, val)) if val > self.center_val => {
                    self.center = cfg;
                    self.center_val = val;
                    self.pending = neighbors_of(&self.space, self.neighborhood, cfg);
                }
                _ => {
                    self.converged = true;
                    return None;
                }
            }
        }
    }

    /// Report the measured KPI of a proposed configuration.
    pub fn observe(&mut self, cfg: Config, kpi: f64) {
        self.known.insert(cfg, kpi);
    }
}

fn neighbors_of(space: &ConfigSpace, neighborhood: Neighborhood, cfg: Config) -> Vec<Config> {
    match neighborhood {
        Neighborhood::VonNeumann => space.von_neumann_neighbors(cfg),
        Neighborhood::DomainSpecific => space.neighbors(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;

    fn drive(space: SearchSpace, start: Config, f: impl Fn(Config) -> f64) -> (Config, usize) {
        let mut hc = HillClimber::new(space, start, f(start), HashMap::new());
        let mut proposals = 0;
        while let Some(cfg) = hc.propose() {
            proposals += 1;
            hc.observe(cfg, f(cfg));
            assert!(proposals < 10_000, "diverged");
        }
        (hc.center().0, proposals)
    }

    #[test]
    fn climbs_to_unimodal_peak() {
        let space = SearchSpace::new(48);
        let f = |cfg: Config| -((cfg.t as f64 - 10.0).powi(2)) - (cfg.c as f64 - 4.0).powi(2);
        let (best, _) = drive(space, Config::new(1, 1), f);
        assert_eq!(best, Config::new(10, 4));
    }

    #[test]
    fn converges_immediately_at_peak() {
        let space = SearchSpace::new(16);
        let f = |cfg: Config| -((cfg.t as f64 - 4.0).powi(2)) - (cfg.c as f64 - 2.0).powi(2);
        let (best, proposals) = drive(space, Config::new(4, 2), f);
        assert_eq!(best, Config::new(4, 2));
        // Only the (up to 6) neighbors of the peak need measuring.
        assert!(proposals <= 6, "proposals = {proposals}");
    }

    #[test]
    fn gets_trapped_in_local_maximum() {
        // Two-peak function: a small local bump at (2,2) and the global
        // optimum at (14,1). Starting near the bump must trap the climber —
        // this is exactly the short-sightedness Fig. 5 demonstrates.
        let space = SearchSpace::new(16);
        let f = |cfg: Config| {
            let local = 10.0 - ((cfg.t as f64 - 2.0).powi(2) + (cfg.c as f64 - 2.0).powi(2));
            let global =
                50.0 - 8.0 * ((cfg.t as f64 - 14.0).powi(2) + (cfg.c as f64 - 1.0).powi(2));
            local.max(global)
        };
        let (best, _) = drive(space, Config::new(2, 2), f);
        assert_eq!(best, Config::new(2, 2), "expected to be trapped at the local bump");
    }

    #[test]
    fn known_cache_is_not_reproposed() {
        let space = SearchSpace::new(8);
        let f = |cfg: Config| (cfg.t + cfg.c) as f64;
        let mut known = HashMap::new();
        // Pre-seed every neighbor of the start.
        for n in space.neighbors(Config::new(2, 2)) {
            known.insert(n, f(n));
        }
        let mut hc =
            HillClimber::new(space.clone(), Config::new(2, 2), f(Config::new(2, 2)), known);
        // First proposal must already be a neighbor of the *recentered* point.
        let first = hc.propose().unwrap();
        let center_after = hc.center().0;
        assert_ne!(center_after, Config::new(2, 2), "should recenter without proposing");
        assert!(space.neighbors(center_after).contains(&first));
    }

    #[test]
    fn respects_space_boundary() {
        let space = SearchSpace::new(48);
        // Increasing in both t and c: the climb must stop at the t·c ≤ n frontier.
        let f = |cfg: Config| (cfg.t * cfg.c) as f64 + cfg.t as f64 * 0.01;
        let (best, _) = drive(space.clone(), Config::new(3, 3), f);
        assert!(space.contains(best));
        assert!(best.cores() > 40, "should reach near the frontier, got {best}");
    }
}
