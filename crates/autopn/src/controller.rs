//! The tuning controller: drives a [`Tuner`] against a [`TunableSystem`]
//! through a [`MonitorPolicy`], tying together the optimizer, the monitor and
//! the actuator (Fig. 2 of the paper).

use crate::kpi::{Measurement, SloKpi};
use crate::monitor::{MonitorPolicy, Verdict, HARD_WINDOW_CAP_NS};
use crate::optimizer::Tuner;
use crate::space::Config;
use pnstm::{TraceBus, TraceEvent};
use std::time::{Duration, Instant};

/// A configuration could not be enacted (e.g. the actuation backend failed,
/// or the fault layer vetoed the reconfiguration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyError {
    /// Human-readable failure reason.
    pub reason: String,
}

impl ApplyError {
    pub fn new(reason: impl Into<String>) -> Self {
        Self { reason: reason.into() }
    }
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "configuration apply failed: {}", self.reason)
    }
}

impl std::error::Error for ApplyError {}

/// A system whose parallelism degree can be tuned and whose top-level commit
/// events can be observed. Implemented by the `simtm` simulator wrapper and
/// by live `pnstm` workload drivers (see the `workloads` crate), and by
/// trace replayers.
pub trait TunableSystem {
    /// Enact configuration `cfg`.
    fn apply(&mut self, cfg: Config);

    /// Fallibly enact configuration `cfg`. Systems whose actuation can fail
    /// (a vetoed semaphore reconfiguration, a remote actuator) override this;
    /// the default delegates to the infallible [`TunableSystem::apply`]. The
    /// controller retries failed applies with backoff and falls back to the
    /// last-known-good configuration (see [`Controller::tune_traced`]).
    fn try_apply(&mut self, cfg: Config) -> Result<(), ApplyError> {
        self.apply(cfg);
        Ok(())
    }

    /// Block (or advance virtual time) until the next top-level commit, at
    /// most `max_wait_ns`. Returns the commit's timestamp on the system
    /// clock, or `None` on timeout.
    fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64>;

    /// Current time on the system clock (ns).
    fn now_ns(&self) -> u64;

    /// Wait (or advance virtual time) until transactions admitted under the
    /// previous configuration have drained, so the next measurement window
    /// only observes the configuration in force. Default: no-op.
    fn quiesce(&mut self) {}
}

/// A [`TunableSystem`] that additionally serves an open-loop ingress stream
/// and can account a service-level KPI per measurement window: goodput plus
/// coordinated-omission-free latency percentiles (see [`SloKpi`]).
///
/// The controller brackets each measurement window with
/// `begin_slo_window` / `end_slo_window`; the window's *duration* is still
/// decided by the [`MonitorPolicy`] driving commit events, so the SLO path
/// reuses the adaptive windowing machinery unchanged.
pub trait SloTunableSystem: TunableSystem {
    /// Open an SLO accounting window (typically: snapshot the ingress
    /// counters and latency histogram).
    fn begin_slo_window(&mut self);
    /// Close the window opened by the last
    /// [`SloTunableSystem::begin_slo_window`] and return its KPI.
    fn end_slo_window(&mut self) -> SloKpi;
}

/// Hard safety deadlines around one measurement window, *beyond* the
/// policy's own adaptive timeout: the adaptive timeout needs a reference
/// (`1/T(1,1)`) and a ticking system clock, and a sufficiently broken system
/// can deny it both. The watchdog terminates the window on either clock and
/// returns a flagged measurement instead of hanging the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// Wall-clock deadline on the driving host.
    pub wall: Duration,
    /// Deadline on the tuned system's clock (virtual or real), in ns.
    pub system_ns: u64,
}

impl Default for Watchdog {
    fn default() -> Self {
        // Comfortably beyond the policies' 120 s hard window cap, so the
        // watchdog only fires when the normal close paths are all broken.
        Self { wall: Duration::from_secs(150), system_ns: 2 * HARD_WINDOW_CAP_NS }
    }
}

/// Degradation-ladder knobs for a tuning session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneOptions {
    /// Per-window watchdog deadlines.
    pub watchdog: Watchdog,
    /// How many times a failing [`TunableSystem::try_apply`] is attempted
    /// before the controller gives up on the configuration (≥ 1).
    pub apply_attempts: u32,
    /// Base wall-clock backoff between apply retries (doubles per retry;
    /// `ZERO` retries immediately).
    pub apply_backoff: Duration,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            watchdog: Watchdog::default(),
            apply_attempts: 4,
            apply_backoff: Duration::from_micros(200),
        }
    }
}

/// Result of a completed tuning session.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Every exploration in order: configuration and its measurement.
    pub explored: Vec<(Config, Measurement)>,
    /// The configuration the tuner settled on.
    pub best: Config,
    /// Its measured throughput.
    pub best_throughput: f64,
    /// System time consumed by the whole tuning session (ns).
    pub elapsed_ns: u64,
    /// The session survived a fault: a reconfiguration fell back to the
    /// last-known-good configuration, a watchdog terminated a window, or a
    /// measurement came back starved. The result stands but deserves less
    /// trust (mirrors the `SessionEnd.degraded` trace flag).
    pub degraded: bool,
}

/// Result of a completed SLO tuning session ("maximize goodput subject to
/// p99 ≤ target").
#[derive(Debug, Clone)]
pub struct SloTuningOutcome {
    /// Every exploration in order: configuration, the monitor's measurement,
    /// and the ingress window's service-level KPI.
    pub explored: Vec<(Config, Measurement, SloKpi)>,
    /// The configuration the tuner settled on.
    pub best: Config,
    /// Its scalar objective value ([`SloKpi::score`] at the session target).
    pub best_score: f64,
    /// The p99 target the session tuned against, in nanoseconds.
    pub p99_target_ns: u64,
    /// Whether the best configuration's measured window met the target.
    pub meets_target: bool,
    /// System time consumed by the whole session (ns).
    pub elapsed_ns: u64,
    /// Same meaning as [`TuningOutcome::degraded`].
    pub degraded: bool,
}

/// Outcome of a supervised (re-tuning) session.
#[derive(Debug, Clone)]
pub struct SupervisedOutcome {
    /// Every tuning session that ran, in order (a new one per detected
    /// workload change).
    pub sessions: Vec<TuningOutcome>,
    /// Supervision measurements taken between tuning sessions.
    pub supervision_windows: usize,
    /// How many workload changes the detector reported.
    pub changes_detected: usize,
}

/// Drives tuning sessions.
pub struct Controller;

impl Controller {
    /// Measure the system's current configuration under `policy`.
    pub fn measure(system: &mut dyn TunableSystem, policy: &mut dyn MonitorPolicy) -> Measurement {
        Self::measure_traced(system, policy, &TraceBus::default())
    }

    /// [`Controller::measure`], additionally emitting window open/sample/
    /// close events — including the policy's CV trajectory — on `trace`.
    pub fn measure_traced(
        system: &mut dyn TunableSystem,
        policy: &mut dyn MonitorPolicy,
        trace: &TraceBus,
    ) -> Measurement {
        Self::measure_watched(system, policy, trace, &Watchdog::default())
    }

    /// [`Controller::measure_traced`] under explicit [`Watchdog`] deadlines.
    /// When the watchdog fires, the window closes with a flagged (starved,
    /// timed-out) measurement and a [`TraceEvent::WatchdogFired`] marker
    /// instead of the controller hanging on a dead system.
    pub fn measure_watched(
        system: &mut dyn TunableSystem,
        policy: &mut dyn MonitorPolicy,
        trace: &TraceBus,
        watchdog: &Watchdog,
    ) -> Measurement {
        Self::measure_inner(system, policy, trace, watchdog).0
    }

    /// Core measurement loop; the second component reports whether the
    /// watchdog terminated the window (the session is then degraded).
    fn measure_inner(
        system: &mut dyn TunableSystem,
        policy: &mut dyn MonitorPolicy,
        trace: &TraceBus,
        watchdog: &Watchdog,
    ) -> (Measurement, bool) {
        let opened = system.now_ns();
        let wall_start = Instant::now();
        policy.begin_window(opened);
        trace.emit(TraceEvent::WindowOpen { at_ns: opened });
        let close = |m: Measurement, at_ns: u64, trace: &TraceBus| {
            trace.emit(TraceEvent::WindowClose {
                at_ns,
                commits: m.commits,
                window_ns: m.window_ns,
                throughput: m.throughput,
                timed_out: m.timed_out,
                cv: m.cv,
            });
            m
        };
        loop {
            // Hard deadline check on both clocks. The policies' own timeouts
            // run on the *system* clock and need a throughput reference; a
            // frozen clock or an uncalibrated policy can defeat them, and the
            // wall deadline is the backstop that cannot be defeated.
            let sys_now = system.now_ns();
            if wall_start.elapsed() >= watchdog.wall
                || sys_now.saturating_sub(opened) >= watchdog.system_ns
            {
                trace.emit(TraceEvent::WatchdogFired { at_ns: sys_now });
                let m = policy.force_close(sys_now);
                return (close(m, sys_now, trace), true);
            }
            match system.wait_commit(policy.poll_interval_ns()) {
                Some(ts) => {
                    let verdict = policy.on_commit(ts);
                    if trace.is_enabled() {
                        trace.emit(TraceEvent::WindowSample { at_ns: ts, cv: policy.current_cv() });
                    }
                    if let Verdict::Complete(m) = verdict {
                        return (close(m, ts, trace), false);
                    }
                }
                None => {
                    let now = system.now_ns();
                    if let Verdict::Complete(m) = policy.on_idle(now) {
                        return (close(m, now, trace), false);
                    }
                }
            }
        }
    }

    /// Attempt `try_apply` up to `opts.apply_attempts` times with exponential
    /// wall-clock backoff. Returns the last error if every attempt failed.
    ///
    /// Live systems reprovision the whole execution layer inside `try_apply`
    /// — admission capacity *and* scheduler worker count (see
    /// `PnstmActuator::apply` / `LiveStmSystem`) — and do so only after the
    /// degree switch succeeds, so a failed attempt leaves both the `(t, c)`
    /// configuration and the worker pool exactly as they were.
    fn apply_with_retry(
        system: &mut dyn TunableSystem,
        cfg: Config,
        opts: &TuneOptions,
    ) -> Result<(), ApplyError> {
        let attempts = opts.apply_attempts.max(1);
        let mut backoff = opts.apply_backoff;
        let mut last = ApplyError::new("unreachable: zero apply attempts");
        for attempt in 1..=attempts {
            match system.try_apply(cfg) {
                Ok(()) => return Ok(()),
                Err(err) => last = err,
            }
            if attempt < attempts && !backoff.is_zero() {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
        }
        Err(last)
    }

    /// Run a full tuning session: propose → apply → measure → observe, until
    /// the tuner converges; then apply the best configuration.
    pub fn tune(
        system: &mut dyn TunableSystem,
        tuner: &mut dyn Tuner,
        policy: &mut dyn MonitorPolicy,
    ) -> TuningOutcome {
        Self::tune_traced(system, tuner, policy, &TraceBus::default())
    }

    /// [`Controller::tune`], additionally emitting session, window and
    /// optimizer events on `trace`. Pass the tuned STM's own bus
    /// (`stm.trace_bus().clone()`) to interleave control-plane events with
    /// the runtime's transaction/reconfiguration events in one stream.
    pub fn tune_traced(
        system: &mut dyn TunableSystem,
        tuner: &mut dyn Tuner,
        policy: &mut dyn MonitorPolicy,
        trace: &TraceBus,
    ) -> TuningOutcome {
        Self::tune_traced_with(system, tuner, policy, trace, &TuneOptions::default())
    }

    /// [`Controller::tune_traced`] with explicit degradation-ladder knobs.
    ///
    /// The ladder, rung by rung:
    /// 1. a failing reconfiguration is retried `apply_attempts` times with
    ///    exponential backoff;
    /// 2. when retries are exhausted, the configuration is reported to the
    ///    tuner as unusable (zero throughput, timed out) and the system is
    ///    re-parked on the last configuration that *did* apply (or `(1,1)`),
    ///    with a [`TraceEvent::ApplyDegraded`] marker;
    /// 3. a window the policy cannot close is terminated by the watchdog with
    ///    a flagged measurement ([`TraceEvent::WatchdogFired`]).
    ///
    /// Any rung past 1 marks the session (and its `SessionEnd` event) as
    /// degraded, but the session always runs to completion.
    pub fn tune_traced_with(
        system: &mut dyn TunableSystem,
        tuner: &mut dyn Tuner,
        policy: &mut dyn MonitorPolicy,
        trace: &TraceBus,
        opts: &TuneOptions,
    ) -> TuningOutcome {
        tuner.attach_trace(trace.clone());
        let started = system.now_ns();
        trace.emit(TraceEvent::SessionStart { at_ns: started });
        let mut explored = Vec::new();
        let mut degraded = false;
        let mut last_good: Option<Config> = None;
        let park_on_last_good =
            |system: &mut dyn TunableSystem, cfg: Config, last_good: Option<Config>| {
                let fb = last_good.unwrap_or(Config::new(1, 1));
                trace.emit(TraceEvent::ApplyDegraded {
                    t: cfg.t as u32,
                    c: cfg.c as u32,
                    fb_t: fb.t as u32,
                    fb_c: fb.c as u32,
                    attempts: opts.apply_attempts.max(1),
                });
                // Best effort: the fallback has applied before, so this is
                // expected to succeed; if the actuator is wedged enough that
                // even this fails, the system simply keeps its current degree.
                let _ = system.try_apply(fb);
            };
        while let Some(cfg) = tuner.propose() {
            if Self::apply_with_retry(system, cfg, opts).is_err() {
                degraded = true;
                park_on_last_good(system, cfg, last_good);
                // Teach the tuner the configuration is unusable (worst
                // possible, known-noisy observation) so the search moves on
                // instead of re-proposing it.
                tuner.observe_noisy(cfg, 0.0, None, true);
                continue;
            }
            last_good = Some(cfg);
            system.quiesce();
            let (m, watchdog_fired) = Self::measure_inner(system, policy, trace, &opts.watchdog);
            degraded |= watchdog_fired;
            policy.measurement_taken(cfg, &m);
            tuner.observe_noisy(cfg, m.throughput, m.cv, m.timed_out);
            explored.push((cfg, m));
        }
        // A tuner can finish without a single observation (empty search
        // space, a zero-budget stop condition): fall back to the sequential
        // configuration instead of panicking mid-session.
        let (best, best_throughput, fallback) = match tuner.best() {
            Some((cfg, kpi)) => (cfg, kpi, false),
            None => (Config::new(1, 1), 0.0, true),
        };
        if Self::apply_with_retry(system, best, opts).is_err() {
            degraded = true;
            park_on_last_good(system, best, last_good);
        }
        trace.emit(TraceEvent::SessionEnd {
            at_ns: system.now_ns(),
            best_t: best.t as u32,
            best_c: best.c as u32,
            throughput: best_throughput,
            explored: explored.len() as u64,
            fallback,
            degraded,
            axes: tuner.config_space().map(|s| s.axes_trace(s.lift(best))).unwrap_or_default(),
        });
        TuningOutcome {
            explored,
            best,
            best_throughput,
            elapsed_ns: system.now_ns().saturating_sub(started),
            degraded,
        }
    }

    /// Run a full SLO tuning session against a [`SloTunableSystem`]:
    /// "maximize goodput subject to p99 ≤ `p99_target_ns`". Same ladder as
    /// [`Controller::tune_traced_with`], but each measurement window is
    /// bracketed with `begin_slo_window` / `end_slo_window` and the tuner
    /// observes [`SloKpi::score`] instead of raw throughput — so a
    /// configuration that maximizes commit throughput while blowing the tail
    /// latency budget loses to any configuration that meets the target.
    pub fn tune_slo(
        system: &mut impl SloTunableSystem,
        tuner: &mut dyn Tuner,
        policy: &mut dyn MonitorPolicy,
        p99_target_ns: u64,
    ) -> SloTuningOutcome {
        Self::tune_slo_traced_with(
            system,
            tuner,
            policy,
            p99_target_ns,
            &TraceBus::default(),
            &TuneOptions::default(),
        )
    }

    /// [`Controller::tune_slo`] with an explicit trace bus and
    /// degradation-ladder knobs.
    pub fn tune_slo_traced_with(
        system: &mut impl SloTunableSystem,
        tuner: &mut dyn Tuner,
        policy: &mut dyn MonitorPolicy,
        p99_target_ns: u64,
        trace: &TraceBus,
        opts: &TuneOptions,
    ) -> SloTuningOutcome {
        tuner.attach_trace(trace.clone());
        let started = system.now_ns();
        trace.emit(TraceEvent::SessionStart { at_ns: started });
        let mut explored: Vec<(Config, Measurement, SloKpi)> = Vec::new();
        let mut degraded = false;
        let mut last_good: Option<Config> = None;
        let park_on_last_good =
            |system: &mut dyn TunableSystem, cfg: Config, last_good: Option<Config>| {
                let fb = last_good.unwrap_or(Config::new(1, 1));
                trace.emit(TraceEvent::ApplyDegraded {
                    t: cfg.t as u32,
                    c: cfg.c as u32,
                    fb_t: fb.t as u32,
                    fb_c: fb.c as u32,
                    attempts: opts.apply_attempts.max(1),
                });
                let _ = system.try_apply(fb);
            };
        while let Some(cfg) = tuner.propose() {
            if Self::apply_with_retry(system, cfg, opts).is_err() {
                degraded = true;
                park_on_last_good(system, cfg, last_good);
                tuner.observe_noisy(cfg, 0.0, None, true);
                continue;
            }
            last_good = Some(cfg);
            system.quiesce();
            system.begin_slo_window();
            let (m, watchdog_fired) = Self::measure_inner(system, policy, trace, &opts.watchdog);
            let kpi = system.end_slo_window();
            degraded |= watchdog_fired;
            policy.measurement_taken(cfg, &m);
            tuner.observe_noisy(cfg, kpi.score(p99_target_ns), m.cv, m.timed_out);
            explored.push((cfg, m, kpi));
        }
        let (best, best_score, fallback) = match tuner.best() {
            Some((cfg, kpi)) => (cfg, kpi, false),
            None => (Config::new(1, 1), 0.0, true),
        };
        if Self::apply_with_retry(system, best, opts).is_err() {
            degraded = true;
            park_on_last_good(system, best, last_good);
        }
        let meets_target = explored
            .iter()
            .rev()
            .find(|(cfg, _, _)| *cfg == best)
            .is_some_and(|(_, _, kpi)| kpi.meets(p99_target_ns));
        trace.emit(TraceEvent::SessionEnd {
            at_ns: system.now_ns(),
            best_t: best.t as u32,
            best_c: best.c as u32,
            throughput: best_score,
            explored: explored.len() as u64,
            fallback,
            degraded,
            axes: tuner.config_space().map(|s| s.axes_trace(s.lift(best))).unwrap_or_default(),
        });
        SloTuningOutcome {
            explored,
            best,
            best_score,
            p99_target_ns,
            meets_target,
            elapsed_ns: system.now_ns().saturating_sub(started),
            degraded,
        }
    }

    /// The §V "dynamic workloads" extension: tune, then supervise the chosen
    /// configuration with periodic measurements fed to a CUSUM change
    /// detector; when the detector fires, run a fresh tuning session.
    ///
    /// `make_tuner` builds a new optimizer per session (AutoPN keeps no
    /// cross-workload knowledge by design, §V-B). Supervision runs until
    /// `max_windows` measurements have been taken.
    pub fn tune_with_retuning(
        system: &mut dyn TunableSystem,
        make_tuner: &mut dyn FnMut() -> Box<dyn crate::optimizer::Tuner>,
        policy: &mut dyn MonitorPolicy,
        detector: &mut crate::change::CusumDetector,
        max_windows: usize,
    ) -> SupervisedOutcome {
        Self::tune_with_retuning_traced(
            system,
            make_tuner,
            policy,
            detector,
            max_windows,
            &TraceBus::default(),
        )
    }

    /// [`Controller::tune_with_retuning`], additionally emitting the per
    /// session trace plus a [`TraceEvent::ChangeDetected`] whenever the CUSUM
    /// detector triggers a re-tune.
    pub fn tune_with_retuning_traced(
        system: &mut dyn TunableSystem,
        make_tuner: &mut dyn FnMut() -> Box<dyn crate::optimizer::Tuner>,
        policy: &mut dyn MonitorPolicy,
        detector: &mut crate::change::CusumDetector,
        max_windows: usize,
        trace: &TraceBus,
    ) -> SupervisedOutcome {
        let mut sessions = Vec::new();
        let mut windows = 0usize;
        let mut changes = 0usize;
        'sessions: loop {
            let mut tuner = make_tuner();
            // A (suspected) new workload invalidates the 1/T(1,1) reference.
            policy.reset_reference();
            let outcome = Self::tune_traced(system, tuner.as_mut(), policy, trace);
            let best = outcome.best;
            sessions.push(outcome);
            detector.reset();
            while windows < max_windows {
                let m = Self::measure_traced(system, policy, trace);
                policy.measurement_taken(best, &m);
                windows += 1;
                if detector.observe(m.throughput) {
                    changes += 1;
                    trace.emit(TraceEvent::ChangeDetected { at_ns: system.now_ns() });
                    continue 'sessions;
                }
            }
            return SupervisedOutcome {
                sessions,
                supervision_windows: windows,
                changes_detected: changes,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::AdaptiveMonitor;
    use crate::optimizer::{AutoPn, AutoPnConfig};
    use crate::space::SearchSpace;

    /// A deterministic fake system: commits arrive with a period that
    /// depends on the configuration (best at (6,2)).
    struct FakeSystem {
        now: u64,
        period_ns: u64,
    }

    impl FakeSystem {
        fn new() -> Self {
            Self { now: 0, period_ns: 1_000_000 }
        }
        fn period_for(cfg: Config) -> u64 {
            let penalty =
                (cfg.t as f64 - 6.0).powi(2) * 40_000.0 + (cfg.c as f64 - 2.0).powi(2) * 90_000.0;
            (200_000.0 + penalty) as u64
        }
    }

    impl TunableSystem for FakeSystem {
        fn apply(&mut self, cfg: Config) {
            self.period_ns = Self::period_for(cfg);
        }
        fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
            if self.period_ns <= max_wait_ns {
                self.now += self.period_ns;
                Some(self.now)
            } else {
                self.now += max_wait_ns;
                None
            }
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
    }

    #[test]
    fn measure_returns_stable_throughput() {
        let mut sys = FakeSystem::new();
        sys.apply(Config::new(6, 2));
        let mut policy = AdaptiveMonitor::default();
        let m = Controller::measure(&mut sys, &mut policy);
        let want = 1e9 / FakeSystem::period_for(Config::new(6, 2)) as f64;
        assert!((m.throughput - want).abs() / want < 0.05, "tp {} want {}", m.throughput, want);
        assert!(!m.timed_out);
    }

    #[test]
    fn full_tuning_session_finds_good_config() {
        let mut sys = FakeSystem::new();
        let mut tuner = AutoPn::new(SearchSpace::new(16), AutoPnConfig::default());
        let mut policy = AdaptiveMonitor::default();
        let outcome = Controller::tune(&mut sys, &mut tuner, &mut policy);
        assert!(!outcome.explored.is_empty());
        let best = outcome.best;
        assert!(
            (best.t as i64 - 6).abs() <= 1 && (best.c as i64 - 2).abs() <= 1,
            "best {best} too far from (6,2)"
        );
        assert!(outcome.elapsed_ns > 0);
        // The system was left running the chosen configuration.
        assert_eq!(sys.period_ns, FakeSystem::period_for(best));
    }

    #[test]
    fn tune_with_empty_tuner_falls_back_to_sequential_config() {
        /// A tuner that never proposes and never has a best — e.g. an
        /// exhausted search space. `tune` must not panic; it must park the
        /// system on (1,1).
        struct EmptyTuner;
        impl Tuner for EmptyTuner {
            fn propose(&mut self) -> Option<Config> {
                None
            }
            fn observe(&mut self, _cfg: Config, _kpi: f64) {}
            fn best(&self) -> Option<(Config, f64)> {
                None
            }
            fn explored(&self) -> usize {
                0
            }
            fn name(&self) -> String {
                "empty".into()
            }
        }
        let mut sys = FakeSystem::new();
        let mut policy = AdaptiveMonitor::default();
        let sink = std::sync::Arc::new(pnstm::TestSink::default());
        let trace = TraceBus::new();
        trace.subscribe(sink.clone());
        let outcome = Controller::tune_traced(&mut sys, &mut EmptyTuner, &mut policy, &trace);
        assert_eq!(outcome.best, Config::new(1, 1));
        assert_eq!(outcome.best_throughput, 0.0);
        assert!(outcome.explored.is_empty());
        // The fallback was actually applied to the system.
        assert_eq!(sys.period_ns, FakeSystem::period_for(Config::new(1, 1)));
        // And the trace records it as a fallback session.
        let events = sink.events();
        assert!(matches!(events.first(), Some(TraceEvent::SessionStart { .. })));
        match events.last() {
            Some(TraceEvent::SessionEnd {
                best_t: 1,
                best_c: 1,
                fallback: true,
                explored: 0,
                ..
            }) => {}
            other => panic!("unexpected final event {other:?}"),
        }
    }

    #[test]
    fn traced_session_emits_well_ordered_window_events() {
        let mut sys = FakeSystem::new();
        let mut tuner = AutoPn::new(SearchSpace::new(16), AutoPnConfig::default());
        let mut policy = AdaptiveMonitor::default();
        let sink = std::sync::Arc::new(pnstm::TestSink::default());
        let trace = TraceBus::new();
        trace.subscribe(sink.clone());
        let outcome = Controller::tune_traced(&mut sys, &mut tuner, &mut policy, &trace);
        let events = sink.events();
        assert!(matches!(events.first(), Some(TraceEvent::SessionStart { .. })));
        assert!(matches!(events.last(), Some(TraceEvent::SessionEnd { fallback: false, .. })));
        // Windows are properly bracketed and counted: one open+close pair per
        // explored configuration, never nested.
        let mut open = false;
        let mut closes = 0usize;
        let mut proposals = 0usize;
        for ev in events.iter() {
            match ev {
                TraceEvent::WindowOpen { .. } => {
                    assert!(!open, "nested WindowOpen");
                    open = true;
                }
                TraceEvent::WindowClose { commits, throughput, timed_out, .. } => {
                    assert!(open, "WindowClose without WindowOpen");
                    open = false;
                    closes += 1;
                    // Slow configurations may be cut by the adaptive timeout
                    // before a commit lands; otherwise the window saw work.
                    assert!(*timed_out || (*commits > 0 && *throughput > 0.0));
                }
                TraceEvent::WindowSample { .. } => {
                    assert!(open, "WindowSample outside a window");
                }
                TraceEvent::Proposal { t, c, .. } => {
                    proposals += 1;
                    assert!(
                        (*t as u64) * (*c as u64) <= 16,
                        "proposal ({t},{c}) exceeds core budget"
                    );
                }
                _ => {}
            }
        }
        assert!(!open, "unclosed window at session end");
        assert_eq!(closes, outcome.explored.len());
        assert_eq!(proposals, outcome.explored.len());
    }

    #[test]
    fn watchdog_wall_deadline_cuts_frozen_clock_window() {
        /// A system whose clock never advances: defeats every system-clock
        /// timeout (the adaptive 1/T(1,1) timeout *and* the 120 s hard cap),
        /// so only the wall-clock watchdog can terminate the window.
        struct FrozenSystem;
        impl TunableSystem for FrozenSystem {
            fn apply(&mut self, _cfg: Config) {}
            fn wait_commit(&mut self, _max_wait_ns: u64) -> Option<u64> {
                std::thread::sleep(Duration::from_millis(1));
                None
            }
            fn now_ns(&self) -> u64 {
                0
            }
        }
        let mut policy = AdaptiveMonitor::default();
        policy.set_reference_throughput(100.0); // timeout armed but unreachable
        let sink = std::sync::Arc::new(pnstm::TestSink::default());
        let trace = TraceBus::new();
        trace.subscribe(sink.clone());
        let wd = Watchdog { wall: Duration::from_millis(50), system_ns: u64::MAX };
        let m = Controller::measure_watched(&mut FrozenSystem, &mut policy, &trace, &wd);
        assert!(m.timed_out && m.starved, "watchdog measurement must be flagged: {m:?}");
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(e, TraceEvent::WatchdogFired { .. })));
        assert!(
            matches!(events.last(), Some(TraceEvent::WindowClose { .. })),
            "watchdog still closes the window bracket"
        );
    }

    #[test]
    fn watchdog_system_deadline_cuts_silent_window() {
        struct SilentSystem {
            now: u64,
        }
        impl TunableSystem for SilentSystem {
            fn apply(&mut self, _cfg: Config) {}
            fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
                self.now += max_wait_ns;
                None
            }
            fn now_ns(&self) -> u64 {
                self.now
            }
        }
        // No reference throughput: the adaptive timeout is unarmed, and the
        // policy would idle all the way to the 120 s hard cap. The watchdog's
        // (much tighter) system-clock deadline cuts in first.
        let mut policy = AdaptiveMonitor::default();
        let mut sys = SilentSystem { now: 0 };
        let wd = Watchdog { wall: Duration::from_secs(60), system_ns: 5_000_000 };
        let m = Controller::measure_watched(&mut sys, &mut policy, &TraceBus::default(), &wd);
        assert!(m.timed_out && m.starved);
        assert!(sys.now < 100_000_000, "window ended near the 5ms deadline, not the 120s cap");
    }

    /// Proposes a fixed script of configurations; best = highest KPI seen.
    struct ListTuner {
        queue: std::collections::VecDeque<Config>,
        seen: Vec<(Config, f64)>,
    }
    impl ListTuner {
        fn new(script: &[(usize, usize)]) -> Self {
            Self {
                queue: script.iter().map(|&(t, c)| Config::new(t, c)).collect(),
                seen: Vec::new(),
            }
        }
    }
    impl Tuner for ListTuner {
        fn propose(&mut self) -> Option<Config> {
            self.queue.pop_front()
        }
        fn observe(&mut self, cfg: Config, kpi: f64) {
            self.seen.push((cfg, kpi));
        }
        fn best(&self) -> Option<(Config, f64)> {
            self.seen.iter().copied().reduce(|a, b| if b.1 > a.1 { b } else { a })
        }
        fn explored(&self) -> usize {
            self.seen.len()
        }
        fn name(&self) -> String {
            "list".into()
        }
    }

    #[test]
    fn failed_applies_degrade_and_fall_back_to_last_good() {
        /// Vetoes every configuration with `t >= 4`; the rest applies.
        struct VetoSystem {
            inner: FakeSystem,
            vetoes: u32,
        }
        impl TunableSystem for VetoSystem {
            fn apply(&mut self, cfg: Config) {
                self.inner.apply(cfg);
            }
            fn try_apply(&mut self, cfg: Config) -> Result<(), ApplyError> {
                if cfg.t >= 4 {
                    self.vetoes += 1;
                    return Err(ApplyError::new("actuator vetoed"));
                }
                self.inner.apply(cfg);
                Ok(())
            }
            fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
                self.inner.wait_commit(max_wait_ns)
            }
            fn now_ns(&self) -> u64 {
                self.inner.now_ns()
            }
        }
        let mut sys = VetoSystem { inner: FakeSystem::new(), vetoes: 0 };
        let mut tuner = ListTuner::new(&[(4, 2), (2, 2)]);
        let mut policy = AdaptiveMonitor::default();
        let sink = std::sync::Arc::new(pnstm::TestSink::default());
        let trace = TraceBus::new();
        trace.subscribe(sink.clone());
        let opts = TuneOptions {
            apply_attempts: 3,
            apply_backoff: Duration::ZERO,
            ..TuneOptions::default()
        };
        let outcome =
            Controller::tune_traced_with(&mut sys, &mut tuner, &mut policy, &trace, &opts);
        assert!(outcome.degraded, "a vetoed configuration degrades the session");
        assert_eq!(outcome.explored.len(), 1, "the vetoed config is never measured");
        assert_eq!(outcome.best, Config::new(2, 2), "best comes from what did run");
        assert_eq!(sys.vetoes, 3, "the veto was retried apply_attempts times");
        // (4,2) was fed back to the tuner as unusable so the search moved on.
        assert!(tuner.seen.contains(&(Config::new(4, 2), 0.0)));
        // The system ended up on the measured best, not the vetoed config.
        assert_eq!(sys.inner.period_ns, FakeSystem::period_for(Config::new(2, 2)));
        let events = sink.events();
        let degraded_applies: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ApplyDegraded { t, c, fb_t, fb_c, attempts } => {
                    Some((*t, *c, *fb_t, *fb_c, *attempts))
                }
                _ => None,
            })
            .collect();
        // One fallback: (4,2) failed with nothing known-good yet → (1,1).
        assert_eq!(degraded_applies, vec![(4, 2, 1, 1, 3)]);
        match events.last() {
            Some(TraceEvent::SessionEnd { degraded: true, fallback: false, .. }) => {}
            other => panic!("expected degraded SessionEnd, got {other:?}"),
        }
    }

    /// Deterministic SLO surface: throughput grows with `t` (period shrinks)
    /// but the tail latency grows quadratically in `t` — the classic
    /// saturation shape where the throughput-maximizing degree queues
    /// requests into a p99 no client would accept.
    struct FakeSloSystem {
        now: u64,
        cfg: Config,
    }

    impl FakeSloSystem {
        fn new() -> Self {
            Self { now: 0, cfg: Config::new(1, 1) }
        }
        fn period_for(cfg: Config) -> u64 {
            1_000_000 / cfg.t as u64
        }
        fn p99_for(cfg: Config) -> u64 {
            50_000 * (cfg.t * cfg.t) as u64
        }
    }

    impl TunableSystem for FakeSloSystem {
        fn apply(&mut self, cfg: Config) {
            self.cfg = cfg;
        }
        fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
            let period = Self::period_for(self.cfg);
            if period <= max_wait_ns {
                self.now += period;
                Some(self.now)
            } else {
                self.now += max_wait_ns;
                None
            }
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
    }

    impl SloTunableSystem for FakeSloSystem {
        fn begin_slo_window(&mut self) {}
        fn end_slo_window(&mut self) -> SloKpi {
            let goodput = 1e9 / Self::period_for(self.cfg) as f64;
            let p99 = Self::p99_for(self.cfg);
            SloKpi {
                goodput,
                offered: goodput as u64,
                completed: goodput as u64,
                rejected: 0,
                p50_ns: p99 / 4,
                p99_ns: p99,
                p999_ns: p99 * 2,
                window_ns: 1_000_000_000,
            }
        }
    }

    /// The SLO e2e: on the same workload surface, throughput-only tuning
    /// converges to a degree whose p99 violates the target, while SLO tuning
    /// converges to the highest-goodput degree that meets it.
    #[test]
    fn slo_tuning_meets_p99_target_the_throughput_kpi_violates() {
        const TARGET_NS: u64 = 1_000_000; // 1 ms p99 budget
        let ladder = [(1, 1), (2, 2), (4, 2), (8, 2)];

        // Throughput-only tuning is latency-blind: it picks t=8.
        let mut sys = FakeSloSystem::new();
        let mut policy = AdaptiveMonitor::default();
        let tp = Controller::tune(&mut sys, &mut ListTuner::new(&ladder), &mut policy);
        assert_eq!(tp.best, Config::new(8, 2), "throughput KPI maximizes raw commit rate");
        assert!(
            FakeSloSystem::p99_for(tp.best) > TARGET_NS,
            "the throughput-chosen degree must violate the p99 target for this test to bite"
        );

        // SLO tuning over the same ladder: t=8 is infeasible (p99 3.2 ms),
        // so the highest-goodput *feasible* degree t=4 (p99 0.8 ms) wins.
        let mut sys = FakeSloSystem::new();
        let mut policy = AdaptiveMonitor::default();
        let outcome =
            Controller::tune_slo(&mut sys, &mut ListTuner::new(&ladder), &mut policy, TARGET_NS);
        assert_eq!(outcome.best, Config::new(4, 2), "SLO tuning picks the feasible optimum");
        assert!(outcome.meets_target);
        assert_eq!(outcome.p99_target_ns, TARGET_NS);
        assert!(!outcome.degraded);
        assert_eq!(outcome.explored.len(), ladder.len());
        let (_, _, best_kpi) =
            outcome.explored.iter().find(|(c, _, _)| *c == outcome.best).unwrap();
        assert!(best_kpi.meets(TARGET_NS));
        assert_eq!(best_kpi.p99_ns, FakeSloSystem::p99_for(outcome.best));
        // The feasible winner's score is its goodput; the faster-but-late
        // t=8 config scored below it despite double the raw throughput.
        assert!((outcome.best_score - best_kpi.goodput).abs() < 1e-9);
        let (_, _, fast_kpi) =
            outcome.explored.iter().find(|(c, _, _)| *c == Config::new(8, 2)).unwrap();
        assert!(fast_kpi.goodput > best_kpi.goodput);
        assert!(fast_kpi.score(TARGET_NS) < best_kpi.score(TARGET_NS));
        // The session left the system parked on the SLO-feasible winner.
        assert_eq!(sys.cfg, outcome.best);
    }

    #[test]
    fn healthy_session_is_not_degraded() {
        let mut sys = FakeSystem::new();
        let mut tuner = ListTuner::new(&[(2, 2), (6, 2)]);
        let mut policy = AdaptiveMonitor::default();
        let outcome = Controller::tune(&mut sys, &mut tuner, &mut policy);
        assert!(!outcome.degraded);
    }

    #[test]
    fn timeout_path_produces_timed_out_measurement() {
        struct SilentSystem {
            now: u64,
        }
        impl TunableSystem for SilentSystem {
            fn apply(&mut self, _cfg: Config) {}
            fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
                self.now += max_wait_ns;
                None
            }
            fn now_ns(&self) -> u64 {
                self.now
            }
        }
        let mut sys = SilentSystem { now: 0 };
        let mut policy = AdaptiveMonitor::default();
        policy.set_reference_throughput(100.0); // 10ms timeout
        let m = Controller::measure(&mut sys, &mut policy);
        assert!(m.timed_out);
        assert_eq!(m.commits, 0);
    }
}
