//! The tuning controller: drives a [`Tuner`] against a [`TunableSystem`]
//! through a [`MonitorPolicy`], tying together the optimizer, the monitor and
//! the actuator (Fig. 2 of the paper).

use crate::kpi::Measurement;
use crate::monitor::{MonitorPolicy, Verdict};
use crate::optimizer::Tuner;
use crate::space::Config;
use pnstm::{TraceBus, TraceEvent};

/// A system whose parallelism degree can be tuned and whose top-level commit
/// events can be observed. Implemented by the `simtm` simulator wrapper and
/// by live `pnstm` workload drivers (see the `workloads` crate), and by
/// trace replayers.
pub trait TunableSystem {
    /// Enact configuration `cfg`.
    fn apply(&mut self, cfg: Config);

    /// Block (or advance virtual time) until the next top-level commit, at
    /// most `max_wait_ns`. Returns the commit's timestamp on the system
    /// clock, or `None` on timeout.
    fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64>;

    /// Current time on the system clock (ns).
    fn now_ns(&self) -> u64;

    /// Wait (or advance virtual time) until transactions admitted under the
    /// previous configuration have drained, so the next measurement window
    /// only observes the configuration in force. Default: no-op.
    fn quiesce(&mut self) {}
}

/// Result of a completed tuning session.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Every exploration in order: configuration and its measurement.
    pub explored: Vec<(Config, Measurement)>,
    /// The configuration the tuner settled on.
    pub best: Config,
    /// Its measured throughput.
    pub best_throughput: f64,
    /// System time consumed by the whole tuning session (ns).
    pub elapsed_ns: u64,
}

/// Outcome of a supervised (re-tuning) session.
#[derive(Debug, Clone)]
pub struct SupervisedOutcome {
    /// Every tuning session that ran, in order (a new one per detected
    /// workload change).
    pub sessions: Vec<TuningOutcome>,
    /// Supervision measurements taken between tuning sessions.
    pub supervision_windows: usize,
    /// How many workload changes the detector reported.
    pub changes_detected: usize,
}

/// Drives tuning sessions.
pub struct Controller;

impl Controller {
    /// Measure the system's current configuration under `policy`.
    pub fn measure(system: &mut dyn TunableSystem, policy: &mut dyn MonitorPolicy) -> Measurement {
        Self::measure_traced(system, policy, &TraceBus::default())
    }

    /// [`Controller::measure`], additionally emitting window open/sample/
    /// close events — including the policy's CV trajectory — on `trace`.
    pub fn measure_traced(
        system: &mut dyn TunableSystem,
        policy: &mut dyn MonitorPolicy,
        trace: &TraceBus,
    ) -> Measurement {
        let opened = system.now_ns();
        policy.begin_window(opened);
        trace.emit(TraceEvent::WindowOpen { at_ns: opened });
        let close = |m: Measurement, at_ns: u64, trace: &TraceBus| {
            trace.emit(TraceEvent::WindowClose {
                at_ns,
                commits: m.commits,
                window_ns: m.window_ns,
                throughput: m.throughput,
                timed_out: m.timed_out,
                cv: m.cv,
            });
            m
        };
        loop {
            match system.wait_commit(policy.poll_interval_ns()) {
                Some(ts) => {
                    let verdict = policy.on_commit(ts);
                    if trace.is_enabled() {
                        trace.emit(TraceEvent::WindowSample { at_ns: ts, cv: policy.current_cv() });
                    }
                    if let Verdict::Complete(m) = verdict {
                        return close(m, ts, trace);
                    }
                }
                None => {
                    let now = system.now_ns();
                    if let Verdict::Complete(m) = policy.on_idle(now) {
                        return close(m, now, trace);
                    }
                }
            }
        }
    }

    /// Run a full tuning session: propose → apply → measure → observe, until
    /// the tuner converges; then apply the best configuration.
    pub fn tune(
        system: &mut dyn TunableSystem,
        tuner: &mut dyn Tuner,
        policy: &mut dyn MonitorPolicy,
    ) -> TuningOutcome {
        Self::tune_traced(system, tuner, policy, &TraceBus::default())
    }

    /// [`Controller::tune`], additionally emitting session, window and
    /// optimizer events on `trace`. Pass the tuned STM's own bus
    /// (`stm.trace_bus().clone()`) to interleave control-plane events with
    /// the runtime's transaction/reconfiguration events in one stream.
    pub fn tune_traced(
        system: &mut dyn TunableSystem,
        tuner: &mut dyn Tuner,
        policy: &mut dyn MonitorPolicy,
        trace: &TraceBus,
    ) -> TuningOutcome {
        tuner.attach_trace(trace.clone());
        let started = system.now_ns();
        trace.emit(TraceEvent::SessionStart { at_ns: started });
        let mut explored = Vec::new();
        while let Some(cfg) = tuner.propose() {
            system.apply(cfg);
            system.quiesce();
            let m = Self::measure_traced(system, policy, trace);
            policy.measurement_taken(cfg, &m);
            tuner.observe_noisy(cfg, m.throughput, m.cv, m.timed_out);
            explored.push((cfg, m));
        }
        // A tuner can finish without a single observation (empty search
        // space, a zero-budget stop condition): fall back to the sequential
        // configuration instead of panicking mid-session.
        let (best, best_throughput, fallback) = match tuner.best() {
            Some((cfg, kpi)) => (cfg, kpi, false),
            None => (Config::new(1, 1), 0.0, true),
        };
        system.apply(best);
        trace.emit(TraceEvent::SessionEnd {
            at_ns: system.now_ns(),
            best_t: best.t as u32,
            best_c: best.c as u32,
            throughput: best_throughput,
            explored: explored.len() as u64,
            fallback,
        });
        TuningOutcome {
            explored,
            best,
            best_throughput,
            elapsed_ns: system.now_ns().saturating_sub(started),
        }
    }

    /// The §V "dynamic workloads" extension: tune, then supervise the chosen
    /// configuration with periodic measurements fed to a CUSUM change
    /// detector; when the detector fires, run a fresh tuning session.
    ///
    /// `make_tuner` builds a new optimizer per session (AutoPN keeps no
    /// cross-workload knowledge by design, §V-B). Supervision runs until
    /// `max_windows` measurements have been taken.
    pub fn tune_with_retuning(
        system: &mut dyn TunableSystem,
        make_tuner: &mut dyn FnMut() -> Box<dyn crate::optimizer::Tuner>,
        policy: &mut dyn MonitorPolicy,
        detector: &mut crate::change::CusumDetector,
        max_windows: usize,
    ) -> SupervisedOutcome {
        Self::tune_with_retuning_traced(
            system,
            make_tuner,
            policy,
            detector,
            max_windows,
            &TraceBus::default(),
        )
    }

    /// [`Controller::tune_with_retuning`], additionally emitting the per
    /// session trace plus a [`TraceEvent::ChangeDetected`] whenever the CUSUM
    /// detector triggers a re-tune.
    pub fn tune_with_retuning_traced(
        system: &mut dyn TunableSystem,
        make_tuner: &mut dyn FnMut() -> Box<dyn crate::optimizer::Tuner>,
        policy: &mut dyn MonitorPolicy,
        detector: &mut crate::change::CusumDetector,
        max_windows: usize,
        trace: &TraceBus,
    ) -> SupervisedOutcome {
        let mut sessions = Vec::new();
        let mut windows = 0usize;
        let mut changes = 0usize;
        'sessions: loop {
            let mut tuner = make_tuner();
            // A (suspected) new workload invalidates the 1/T(1,1) reference.
            policy.reset_reference();
            let outcome = Self::tune_traced(system, tuner.as_mut(), policy, trace);
            let best = outcome.best;
            sessions.push(outcome);
            detector.reset();
            while windows < max_windows {
                let m = Self::measure_traced(system, policy, trace);
                policy.measurement_taken(best, &m);
                windows += 1;
                if detector.observe(m.throughput) {
                    changes += 1;
                    trace.emit(TraceEvent::ChangeDetected { at_ns: system.now_ns() });
                    continue 'sessions;
                }
            }
            return SupervisedOutcome {
                sessions,
                supervision_windows: windows,
                changes_detected: changes,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::AdaptiveMonitor;
    use crate::optimizer::{AutoPn, AutoPnConfig};
    use crate::space::SearchSpace;

    /// A deterministic fake system: commits arrive with a period that
    /// depends on the configuration (best at (6,2)).
    struct FakeSystem {
        now: u64,
        period_ns: u64,
    }

    impl FakeSystem {
        fn new() -> Self {
            Self { now: 0, period_ns: 1_000_000 }
        }
        fn period_for(cfg: Config) -> u64 {
            let penalty =
                (cfg.t as f64 - 6.0).powi(2) * 40_000.0 + (cfg.c as f64 - 2.0).powi(2) * 90_000.0;
            (200_000.0 + penalty) as u64
        }
    }

    impl TunableSystem for FakeSystem {
        fn apply(&mut self, cfg: Config) {
            self.period_ns = Self::period_for(cfg);
        }
        fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
            if self.period_ns <= max_wait_ns {
                self.now += self.period_ns;
                Some(self.now)
            } else {
                self.now += max_wait_ns;
                None
            }
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
    }

    #[test]
    fn measure_returns_stable_throughput() {
        let mut sys = FakeSystem::new();
        sys.apply(Config::new(6, 2));
        let mut policy = AdaptiveMonitor::default();
        let m = Controller::measure(&mut sys, &mut policy);
        let want = 1e9 / FakeSystem::period_for(Config::new(6, 2)) as f64;
        assert!((m.throughput - want).abs() / want < 0.05, "tp {} want {}", m.throughput, want);
        assert!(!m.timed_out);
    }

    #[test]
    fn full_tuning_session_finds_good_config() {
        let mut sys = FakeSystem::new();
        let mut tuner = AutoPn::new(SearchSpace::new(16), AutoPnConfig::default());
        let mut policy = AdaptiveMonitor::default();
        let outcome = Controller::tune(&mut sys, &mut tuner, &mut policy);
        assert!(!outcome.explored.is_empty());
        let best = outcome.best;
        assert!(
            (best.t as i64 - 6).abs() <= 1 && (best.c as i64 - 2).abs() <= 1,
            "best {best} too far from (6,2)"
        );
        assert!(outcome.elapsed_ns > 0);
        // The system was left running the chosen configuration.
        assert_eq!(sys.period_ns, FakeSystem::period_for(best));
    }

    #[test]
    fn tune_with_empty_tuner_falls_back_to_sequential_config() {
        /// A tuner that never proposes and never has a best — e.g. an
        /// exhausted search space. `tune` must not panic; it must park the
        /// system on (1,1).
        struct EmptyTuner;
        impl Tuner for EmptyTuner {
            fn propose(&mut self) -> Option<Config> {
                None
            }
            fn observe(&mut self, _cfg: Config, _kpi: f64) {}
            fn best(&self) -> Option<(Config, f64)> {
                None
            }
            fn explored(&self) -> usize {
                0
            }
            fn name(&self) -> String {
                "empty".into()
            }
        }
        let mut sys = FakeSystem::new();
        let mut policy = AdaptiveMonitor::default();
        let sink = std::sync::Arc::new(pnstm::TestSink::default());
        let trace = TraceBus::new();
        trace.subscribe(sink.clone());
        let outcome = Controller::tune_traced(&mut sys, &mut EmptyTuner, &mut policy, &trace);
        assert_eq!(outcome.best, Config::new(1, 1));
        assert_eq!(outcome.best_throughput, 0.0);
        assert!(outcome.explored.is_empty());
        // The fallback was actually applied to the system.
        assert_eq!(sys.period_ns, FakeSystem::period_for(Config::new(1, 1)));
        // And the trace records it as a fallback session.
        let events = sink.events();
        assert!(matches!(events.first(), Some(TraceEvent::SessionStart { .. })));
        match events.last() {
            Some(TraceEvent::SessionEnd {
                best_t: 1,
                best_c: 1,
                fallback: true,
                explored: 0,
                ..
            }) => {}
            other => panic!("unexpected final event {other:?}"),
        }
    }

    #[test]
    fn traced_session_emits_well_ordered_window_events() {
        let mut sys = FakeSystem::new();
        let mut tuner = AutoPn::new(SearchSpace::new(16), AutoPnConfig::default());
        let mut policy = AdaptiveMonitor::default();
        let sink = std::sync::Arc::new(pnstm::TestSink::default());
        let trace = TraceBus::new();
        trace.subscribe(sink.clone());
        let outcome = Controller::tune_traced(&mut sys, &mut tuner, &mut policy, &trace);
        let events = sink.events();
        assert!(matches!(events.first(), Some(TraceEvent::SessionStart { .. })));
        assert!(matches!(events.last(), Some(TraceEvent::SessionEnd { fallback: false, .. })));
        // Windows are properly bracketed and counted: one open+close pair per
        // explored configuration, never nested.
        let mut open = false;
        let mut closes = 0usize;
        let mut proposals = 0usize;
        for ev in events.iter() {
            match ev {
                TraceEvent::WindowOpen { .. } => {
                    assert!(!open, "nested WindowOpen");
                    open = true;
                }
                TraceEvent::WindowClose { commits, throughput, timed_out, .. } => {
                    assert!(open, "WindowClose without WindowOpen");
                    open = false;
                    closes += 1;
                    // Slow configurations may be cut by the adaptive timeout
                    // before a commit lands; otherwise the window saw work.
                    assert!(*timed_out || (*commits > 0 && *throughput > 0.0));
                }
                TraceEvent::WindowSample { .. } => {
                    assert!(open, "WindowSample outside a window");
                }
                TraceEvent::Proposal { t, c, .. } => {
                    proposals += 1;
                    assert!(
                        (*t as u64) * (*c as u64) <= 16,
                        "proposal ({t},{c}) exceeds core budget"
                    );
                }
                _ => {}
            }
        }
        assert!(!open, "unclosed window at session end");
        assert_eq!(closes, outcome.explored.len());
        assert_eq!(proposals, outcome.explored.len());
    }

    #[test]
    fn timeout_path_produces_timed_out_measurement() {
        struct SilentSystem {
            now: u64,
        }
        impl TunableSystem for SilentSystem {
            fn apply(&mut self, _cfg: Config) {}
            fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
                self.now += max_wait_ns;
                None
            }
            fn now_ns(&self) -> u64 {
                self.now
            }
        }
        let mut sys = SilentSystem { now: 0 };
        let mut policy = AdaptiveMonitor::default();
        policy.set_reference_throughput(100.0); // 10ms timeout
        let m = Controller::measure(&mut sys, &mut policy);
        assert!(m.timed_out);
        assert_eq!(m.commits, 0);
    }
}
