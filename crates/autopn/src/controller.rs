//! The tuning controller: drives a [`Tuner`] against a [`TunableSystem`]
//! through a [`MonitorPolicy`], tying together the optimizer, the monitor and
//! the actuator (Fig. 2 of the paper).

use crate::kpi::Measurement;
use crate::monitor::{MonitorPolicy, Verdict};
use crate::optimizer::Tuner;
use crate::space::Config;

/// A system whose parallelism degree can be tuned and whose top-level commit
/// events can be observed. Implemented by the `simtm` simulator wrapper and
/// by live `pnstm` workload drivers (see the `workloads` crate), and by
/// trace replayers.
pub trait TunableSystem {
    /// Enact configuration `cfg`.
    fn apply(&mut self, cfg: Config);

    /// Block (or advance virtual time) until the next top-level commit, at
    /// most `max_wait_ns`. Returns the commit's timestamp on the system
    /// clock, or `None` on timeout.
    fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64>;

    /// Current time on the system clock (ns).
    fn now_ns(&self) -> u64;

    /// Wait (or advance virtual time) until transactions admitted under the
    /// previous configuration have drained, so the next measurement window
    /// only observes the configuration in force. Default: no-op.
    fn quiesce(&mut self) {}
}

/// Result of a completed tuning session.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Every exploration in order: configuration and its measurement.
    pub explored: Vec<(Config, Measurement)>,
    /// The configuration the tuner settled on.
    pub best: Config,
    /// Its measured throughput.
    pub best_throughput: f64,
    /// System time consumed by the whole tuning session (ns).
    pub elapsed_ns: u64,
}

/// Outcome of a supervised (re-tuning) session.
#[derive(Debug, Clone)]
pub struct SupervisedOutcome {
    /// Every tuning session that ran, in order (a new one per detected
    /// workload change).
    pub sessions: Vec<TuningOutcome>,
    /// Supervision measurements taken between tuning sessions.
    pub supervision_windows: usize,
    /// How many workload changes the detector reported.
    pub changes_detected: usize,
}

/// Drives tuning sessions.
pub struct Controller;

impl Controller {
    /// Measure the system's current configuration under `policy`.
    pub fn measure(system: &mut dyn TunableSystem, policy: &mut dyn MonitorPolicy) -> Measurement {
        policy.begin_window(system.now_ns());
        loop {
            match system.wait_commit(policy.poll_interval_ns()) {
                Some(ts) => {
                    if let Verdict::Complete(m) = policy.on_commit(ts) {
                        return m;
                    }
                }
                None => {
                    if let Verdict::Complete(m) = policy.on_idle(system.now_ns()) {
                        return m;
                    }
                }
            }
        }
    }

    /// Run a full tuning session: propose → apply → measure → observe, until
    /// the tuner converges; then apply the best configuration.
    pub fn tune(
        system: &mut dyn TunableSystem,
        tuner: &mut dyn Tuner,
        policy: &mut dyn MonitorPolicy,
    ) -> TuningOutcome {
        let started = system.now_ns();
        let mut explored = Vec::new();
        while let Some(cfg) = tuner.propose() {
            system.apply(cfg);
            system.quiesce();
            let m = Self::measure(system, policy);
            policy.measurement_taken(cfg, &m);
            tuner.observe_noisy(cfg, m.throughput, m.cv, m.timed_out);
            explored.push((cfg, m));
        }
        let (best, best_throughput) =
            tuner.best().expect("tuner explored at least one configuration");
        system.apply(best);
        TuningOutcome {
            explored,
            best,
            best_throughput,
            elapsed_ns: system.now_ns().saturating_sub(started),
        }
    }

    /// The §V "dynamic workloads" extension: tune, then supervise the chosen
    /// configuration with periodic measurements fed to a CUSUM change
    /// detector; when the detector fires, run a fresh tuning session.
    ///
    /// `make_tuner` builds a new optimizer per session (AutoPN keeps no
    /// cross-workload knowledge by design, §V-B). Supervision runs until
    /// `max_windows` measurements have been taken.
    pub fn tune_with_retuning(
        system: &mut dyn TunableSystem,
        make_tuner: &mut dyn FnMut() -> Box<dyn crate::optimizer::Tuner>,
        policy: &mut dyn MonitorPolicy,
        detector: &mut crate::change::CusumDetector,
        max_windows: usize,
    ) -> SupervisedOutcome {
        let mut sessions = Vec::new();
        let mut windows = 0usize;
        let mut changes = 0usize;
        'sessions: loop {
            let mut tuner = make_tuner();
            // A (suspected) new workload invalidates the 1/T(1,1) reference.
            policy.reset_reference();
            let outcome = Self::tune(system, tuner.as_mut(), policy);
            let best = outcome.best;
            sessions.push(outcome);
            detector.reset();
            while windows < max_windows {
                let m = Self::measure(system, policy);
                policy.measurement_taken(best, &m);
                windows += 1;
                if detector.observe(m.throughput) {
                    changes += 1;
                    continue 'sessions;
                }
            }
            return SupervisedOutcome {
                sessions,
                supervision_windows: windows,
                changes_detected: changes,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::AdaptiveMonitor;
    use crate::optimizer::{AutoPn, AutoPnConfig};
    use crate::space::SearchSpace;

    /// A deterministic fake system: commits arrive with a period that
    /// depends on the configuration (best at (6,2)).
    struct FakeSystem {
        now: u64,
        period_ns: u64,
    }

    impl FakeSystem {
        fn new() -> Self {
            Self { now: 0, period_ns: 1_000_000 }
        }
        fn period_for(cfg: Config) -> u64 {
            let penalty =
                (cfg.t as f64 - 6.0).powi(2) * 40_000.0 + (cfg.c as f64 - 2.0).powi(2) * 90_000.0;
            (200_000.0 + penalty) as u64
        }
    }

    impl TunableSystem for FakeSystem {
        fn apply(&mut self, cfg: Config) {
            self.period_ns = Self::period_for(cfg);
        }
        fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
            if self.period_ns <= max_wait_ns {
                self.now += self.period_ns;
                Some(self.now)
            } else {
                self.now += max_wait_ns;
                None
            }
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
    }

    #[test]
    fn measure_returns_stable_throughput() {
        let mut sys = FakeSystem::new();
        sys.apply(Config::new(6, 2));
        let mut policy = AdaptiveMonitor::default();
        let m = Controller::measure(&mut sys, &mut policy);
        let want = 1e9 / FakeSystem::period_for(Config::new(6, 2)) as f64;
        assert!((m.throughput - want).abs() / want < 0.05, "tp {} want {}", m.throughput, want);
        assert!(!m.timed_out);
    }

    #[test]
    fn full_tuning_session_finds_good_config() {
        let mut sys = FakeSystem::new();
        let mut tuner = AutoPn::new(SearchSpace::new(16), AutoPnConfig::default());
        let mut policy = AdaptiveMonitor::default();
        let outcome = Controller::tune(&mut sys, &mut tuner, &mut policy);
        assert!(!outcome.explored.is_empty());
        let best = outcome.best;
        assert!(
            (best.t as i64 - 6).abs() <= 1 && (best.c as i64 - 2).abs() <= 1,
            "best {best} too far from (6,2)"
        );
        assert!(outcome.elapsed_ns > 0);
        // The system was left running the chosen configuration.
        assert_eq!(sys.period_ns, FakeSystem::period_for(best));
    }

    #[test]
    fn timeout_path_produces_timed_out_measurement() {
        struct SilentSystem {
            now: u64,
        }
        impl TunableSystem for SilentSystem {
            fn apply(&mut self, _cfg: Config) {}
            fn wait_commit(&mut self, max_wait_ns: u64) -> Option<u64> {
                self.now += max_wait_ns;
                None
            }
            fn now_ns(&self) -> u64 {
                self.now
            }
        }
        let mut sys = SilentSystem { now: 0 };
        let mut policy = AdaptiveMonitor::default();
        policy.set_reference_throughput(100.0); // 10ms timeout
        let m = Controller::measure(&mut sys, &mut policy);
        assert!(m.timed_out);
        assert_eq!(m.commits, 0);
    }
}
