//! The AutoPN optimizer: biased initial sampling → SMBO/EI → hill-climbing
//! refinement, in ask–tell form.

use std::collections::{HashMap, VecDeque};

use crate::hillclimb::HillClimber;
use crate::sampling::InitialSampling;
use crate::smbo;
use crate::space::{Config, ConfigSpace};
use crate::stopping::StopCondition;

/// Common ask–tell interface implemented by AutoPN and by every baseline
/// optimizer: `propose()` the next configuration to measure, `observe()` its
/// KPI, until `propose()` returns `None`.
pub trait Tuner {
    /// Next configuration to explore; `None` once converged/stopped.
    fn propose(&mut self) -> Option<Config>;
    /// Report the measured KPI (higher is better) of a proposed config.
    fn observe(&mut self, cfg: Config, kpi: f64);
    /// Report a measurement together with its noise metadata (throughput CV
    /// at window close, and whether the window was cut by a timeout).
    /// Default: forwards to [`Tuner::observe`], ignoring the metadata —
    /// tuners that implement §VIII noise-aware modeling override this.
    fn observe_noisy(&mut self, cfg: Config, kpi: f64, cv: Option<f64>, timed_out: bool) {
        let _ = (cv, timed_out);
        self.observe(cfg, kpi);
    }
    /// Best configuration observed so far with its KPI.
    fn best(&self) -> Option<(Config, f64)>;
    /// Number of configurations explored so far.
    fn explored(&self) -> usize;
    /// Display name for reports.
    fn name(&self) -> String;
    /// Attach a trace bus the tuner should publish its decisions on
    /// (proposals with acquisition values, phase transitions). Default:
    /// ignored — baselines that don't trace need no changes.
    fn attach_trace(&mut self, trace: pnstm::TraceBus) {
        let _ = trace;
    }
    /// The typed configuration space this tuner searches, when it has one.
    /// Callers (the controller's trace plumbing, the axis registry) use it to
    /// decode a [`Config`]'s axis levels into named values. Default: `None` —
    /// baselines that only know `(t, c)` need no changes.
    fn config_space(&self) -> Option<&ConfigSpace> {
        None
    }
}

/// AutoPN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoPnConfig {
    /// Initial sampling strategy (default: the biased 9-point scheme).
    pub init: InitialSampling,
    /// SMBO stopping criterion (default: relative EI below 10%).
    pub stop: StopCondition,
    /// Whether to run the final hill-climbing refinement (default: yes;
    /// Fig. 5 also evaluates the variant without it).
    pub hill_climb: bool,
    /// Bagging ensemble size (default 10).
    pub ensemble_size: usize,
    /// Seed for the ensemble's bootstrap resampling.
    pub seed: u64,
    /// Acquisition function for the SMBO phase (default: EI, §V-B).
    pub acquisition: smbo::Acquisition,
    /// §VIII noise-aware modeling: weight training samples by measurement
    /// confidence (1/CV²-style). Default off — the paper's AutoPN feeds the
    /// model only measurements already deemed statistically meaningful.
    pub noise_aware: bool,
}

impl Default for AutoPnConfig {
    fn default() -> Self {
        Self {
            init: InitialSampling::default(),
            stop: StopCondition::default(),
            hill_climb: true,
            ensemble_size: 10,
            seed: 0xA07_0191,
            acquisition: smbo::Acquisition::ExpectedImprovement,
            noise_aware: false,
        }
    }
}

#[derive(Debug)]
enum Phase {
    InitialSampling,
    Smbo,
    HillClimb(HillClimber),
    Done,
}

/// The AutoPN self-tuning optimizer (§V).
pub struct AutoPn {
    space: ConfigSpace,
    cfg: AutoPnConfig,
    phase: Phase,
    init_queue: VecDeque<Config>,
    observations: Vec<(Config, f64)>,
    weights: Vec<f64>,
    known: HashMap<Config, f64>,
    history: Vec<f64>,
    smbo_rounds: u64,
    trace: pnstm::TraceBus,
}

impl AutoPn {
    /// Build a tuner over `space` — a bare [`SearchSpace`] for the paper's
    /// `(t, c)` problem, or a full [`ConfigSpace`] to co-tune discrete axes.
    pub fn new(space: impl Into<ConfigSpace>, cfg: AutoPnConfig) -> Self {
        let space = space.into();
        let init_queue = cfg.init.configs_nd(&space).into();
        Self {
            space,
            cfg,
            phase: Phase::InitialSampling,
            init_queue,
            observations: Vec::new(),
            weights: Vec::new(),
            known: HashMap::new(),
            history: Vec::new(),
            smbo_rounds: 0,
            trace: pnstm::TraceBus::default(),
        }
    }

    /// The configuration space this tuner optimizes over.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// Which phase the optimizer is in, as a label (introspection/plots).
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::InitialSampling => "initial-sampling",
            Phase::Smbo => "smbo",
            Phase::HillClimb(_) => "hill-climb",
            Phase::Done => "done",
        }
    }

    fn enter_refinement(&mut self) {
        if self.cfg.hill_climb {
            if let Some((best_cfg, best_val)) = self.best_known() {
                let hc =
                    HillClimber::new(self.space.clone(), best_cfg, best_val, self.known.clone());
                self.phase = Phase::HillClimb(hc);
                return;
            }
        }
        self.phase = Phase::Done;
    }

    fn record(&mut self, cfg: Config, kpi: f64, weight: f64) {
        // A throughput measurement can come back NaN/∞ from a degenerate
        // window (zero elapsed time, overflowed counter, a monitor bug). A
        // single such value would otherwise poison every downstream fold:
        // `f_best` becomes NaN, EI becomes NaN, and the tuner stops
        // proposing. Clamp at intake — treat the window as "no useful
        // signal" (kpi 0) with floor confidence, matching the
        // `weight_from_cv` lower bound.
        let (kpi, weight) = if kpi.is_finite() {
            (kpi, if weight.is_finite() { weight.max(0.0) } else { 0.05 })
        } else {
            (0.0, 0.05)
        };
        self.observations.push((cfg, kpi));
        self.weights.push(weight);
        self.known.insert(cfg, kpi);
        self.history.push(kpi);
        if let Phase::HillClimb(hc) = &mut self.phase {
            hc.observe(cfg, kpi);
        }
    }

    fn best_known(&self) -> Option<(Config, f64)> {
        self.known
            .iter()
            .map(|(&cfg, &v)| (cfg, v))
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
    }
}

impl AutoPn {
    /// The `propose` state machine; returns the proposal and, for SMBO
    /// proposals, the relative-EI acquisition value behind it.
    fn propose_inner(&mut self) -> Option<(Config, Option<f64>)> {
        loop {
            match &mut self.phase {
                Phase::InitialSampling => {
                    while let Some(cfg) = self.init_queue.pop_front() {
                        if !self.known.contains_key(&cfg) {
                            return Some((cfg, None));
                        }
                    }
                    self.phase = Phase::Smbo;
                }
                Phase::Smbo => {
                    self.smbo_rounds += 1;
                    let seed = self.cfg.seed.wrapping_add(self.smbo_rounds);
                    let proposal = smbo::propose_noise_aware(
                        &self.space,
                        &self.observations,
                        self.cfg.noise_aware.then_some(self.weights.as_slice()),
                        self.cfg.ensemble_size,
                        seed,
                        self.cfg.acquisition,
                    );
                    let rel_ei = proposal.as_ref().map(|p| p.relative_ei);
                    if self.cfg.stop.should_stop(&self.history, rel_ei) {
                        self.enter_refinement();
                        continue;
                    }
                    return proposal.map(|p| (p.config, Some(p.relative_ei)));
                }
                Phase::HillClimb(hc) => match hc.propose() {
                    Some(cfg) => return Some((cfg, None)),
                    None => self.phase = Phase::Done,
                },
                Phase::Done => return None,
            }
        }
    }
}

impl Tuner for AutoPn {
    fn propose(&mut self) -> Option<Config> {
        let phase_before = self.phase_name();
        let proposal = self.propose_inner();
        if self.trace.is_enabled() {
            let phase_after = self.phase_name();
            if phase_before != phase_after {
                self.trace.emit(pnstm::TraceEvent::OptimizerPhase {
                    from: phase_before,
                    to: phase_after,
                });
            }
            if let Some((cfg, relative_ei)) = proposal {
                self.trace.emit(pnstm::TraceEvent::Proposal {
                    t: cfg.t as u32,
                    c: cfg.c as u32,
                    relative_ei,
                    axes: self.space.axes_trace(cfg),
                });
            }
        }
        proposal.map(|(cfg, _)| cfg)
    }

    fn observe(&mut self, cfg: Config, kpi: f64) {
        self.record(cfg, kpi, 1.0);
    }

    fn observe_noisy(&mut self, cfg: Config, kpi: f64, cv: Option<f64>, timed_out: bool) {
        let weight = if self.cfg.noise_aware {
            crate::model::Sample::weight_from_cv(cv, timed_out)
        } else {
            1.0
        };
        self.record(cfg, kpi, weight);
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.best_known()
    }

    fn explored(&self) -> usize {
        self.observations.len()
    }

    fn name(&self) -> String {
        if self.cfg.hill_climb {
            "AutoPN".to_string()
        } else {
            "AutoPN-noHC".to_string()
        }
    }

    fn attach_trace(&mut self, trace: pnstm::TraceBus) {
        self.trace = trace;
    }

    fn config_space(&self) -> Option<&ConfigSpace> {
        Some(&self.space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::InitialSampling;
    use crate::space::SearchSpace;

    /// Drive a tuner against a deterministic objective until completion.
    fn run(tuner: &mut dyn Tuner, f: impl Fn(Config) -> f64, limit: usize) -> (Config, usize) {
        let mut n = 0;
        while let Some(cfg) = tuner.propose() {
            n += 1;
            assert!(n <= limit, "exceeded exploration limit {limit}");
            tuner.observe(cfg, f(cfg));
        }
        (tuner.best().expect("explored at least one config").0, n)
    }

    #[test]
    fn finds_interior_optimum_quickly() {
        let space = SearchSpace::new(48);
        let f = |cfg: Config| {
            1000.0 - 3.0 * (cfg.t as f64 - 20.0).powi(2) - 40.0 * (cfg.c as f64 - 2.0).powi(2)
        };
        let mut tuner = AutoPn::new(space.clone(), AutoPnConfig::default());
        let (best, explored) = run(&mut tuner, f, 198);
        let dfo = (f(Config::new(20, 2)) - f(best)) / f(Config::new(20, 2));
        assert!(dfo < 0.02, "best {best} is {dfo:.3} from optimum");
        assert!(
            explored < 60,
            "AutoPN must explore a small fraction of the 198-config space, used {explored}"
        );
    }

    #[test]
    fn initial_phase_is_biased_sample() {
        let space = SearchSpace::new(48);
        let mut tuner = AutoPn::new(space.clone(), AutoPnConfig::default());
        let expected = InitialSampling::Biased(9).configs(&space);
        for want in &expected {
            assert_eq!(tuner.phase_name(), "initial-sampling");
            let got = tuner.propose().unwrap();
            assert_eq!(got, *want);
            tuner.observe(got, 1.0 + got.t as f64);
        }
    }

    #[test]
    fn no_hill_climb_variant_stops_after_smbo() {
        let space = SearchSpace::new(24);
        let cfg = AutoPnConfig { hill_climb: false, ..AutoPnConfig::default() };
        let f = |c: Config| -((c.t as f64 - 6.0).powi(2)) - (c.c as f64 - 3.0).powi(2);
        let mut tuner = AutoPn::new(space, cfg);
        assert_eq!(tuner.name(), "AutoPN-noHC");
        let (_, _) = run(&mut tuner, f, 200);
        assert_eq!(tuner.phase_name(), "done");
    }

    #[test]
    fn hill_climb_refines_smbo_result() {
        // An objective with a gentle ridge: SMBO lands near the peak, the
        // climb must walk the remaining steps.
        let space = SearchSpace::new(48);
        let f = |c: Config| 500.0 - ((c.t as f64 - 11.0).abs() + 25.0 * (c.c as f64 - 3.0).abs());
        let with_hc = {
            let mut t = AutoPn::new(space.clone(), AutoPnConfig::default());
            let (best, _) = run(&mut t, f, 250);
            f(best)
        };
        let without_hc = {
            let mut t = AutoPn::new(
                space.clone(),
                AutoPnConfig { hill_climb: false, ..AutoPnConfig::default() },
            );
            let (best, _) = run(&mut t, f, 250);
            f(best)
        };
        assert!(with_hc >= without_hc, "refinement must not hurt: {with_hc} vs {without_hc}");
    }

    #[test]
    fn stubborn_explores_until_target() {
        let space = SearchSpace::new(16);
        let f = |c: Config| (c.t * c.c) as f64; // max 16
        let cfg = AutoPnConfig {
            stop: StopCondition::Stubborn { target: 16.0, tolerance: 0.0 },
            hill_climb: false,
            ..AutoPnConfig::default()
        };
        let mut tuner = AutoPn::new(space, cfg);
        let (best, _) = run(&mut tuner, f, 200);
        assert_eq!(f(best), 16.0);
    }

    #[test]
    fn never_proposes_duplicates() {
        let space = SearchSpace::new(24);
        let f = |c: Config| (c.t as f64).sqrt() + c.c as f64;
        let mut tuner = AutoPn::new(space, AutoPnConfig::default());
        let mut seen = std::collections::HashSet::new();
        while let Some(cfg) = tuner.propose() {
            assert!(seen.insert(cfg), "duplicate proposal {cfg}");
            tuner.observe(cfg, f(cfg));
            assert!(seen.len() <= 200);
        }
    }

    #[test]
    fn noise_aware_flag_gates_sample_weights() {
        let space = SearchSpace::new(8);
        let mut aware = AutoPn::new(
            space.clone(),
            AutoPnConfig { noise_aware: true, ..AutoPnConfig::default() },
        );
        let mut unaware = AutoPn::new(space, AutoPnConfig::default());
        for tuner in [&mut aware, &mut unaware] {
            let cfg = tuner.propose().unwrap();
            tuner.observe_noisy(cfg, 100.0, Some(0.5), false); // sloppy window
            let cfg = tuner.propose().unwrap();
            tuner.observe_noisy(cfg, 200.0, Some(0.02), false); // tight window
            let cfg = tuner.propose().unwrap();
            tuner.observe_noisy(cfg, 0.0, None, true); // timed out
        }
        assert!(aware.weights[0] < 0.1, "sloppy CV must be downweighted");
        assert!(aware.weights[1] > 5.0, "tight CV must be upweighted");
        assert_eq!(aware.weights[2], 0.25, "timeouts are low-information");
        assert!(unaware.weights.iter().all(|&w| w == 1.0), "flag off = paper behaviour");
    }

    #[test]
    fn nan_measurement_is_clamped_and_tuning_completes() {
        // A NaN throughput window (e.g. zero-length measurement) must not
        // wedge the tuner: the observation is clamped at intake and the
        // session still converges on the finite measurements.
        let space = SearchSpace::new(16);
        let f = |c: Config| (c.t * c.c) as f64;
        let mut tuner = AutoPn::new(space, AutoPnConfig::default());
        let mut n = 0;
        while let Some(cfg) = tuner.propose() {
            n += 1;
            assert!(n <= 200, "NaN observation wedged the tuner");
            // Poison every third window.
            let kpi = if n % 3 == 0 { f64::NAN } else { f(cfg) };
            tuner.observe_noisy(cfg, kpi, Some(f64::INFINITY), false);
        }
        let (best, kpi) = tuner.best().expect("tuner must finish with a best config");
        assert!(kpi.is_finite(), "best KPI must be finite, got {kpi}");
        assert!(f(best) > 0.0);
        assert!(tuner.observations.iter().all(|&(_, y)| y.is_finite()));
        assert!(tuner.weights.iter().all(|&w| w.is_finite() && w >= 0.0));
    }

    #[test]
    fn explored_counts_observations() {
        let space = SearchSpace::new(8);
        let mut tuner = AutoPn::new(space, AutoPnConfig::default());
        assert_eq!(tuner.explored(), 0);
        let c = tuner.propose().unwrap();
        tuner.observe(c, 1.0);
        assert_eq!(tuner.explored(), 1);
        assert_eq!(tuner.best(), Some((c, 1.0)));
    }
}
