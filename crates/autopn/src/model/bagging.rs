//! Bagging ensemble of M5 model trees.
//!
//! §V-B of the paper: *"AutoPN builds a bagging ensemble of k M5P-based
//! learners, each trained with a random subset (obtained via uniform sampling
//! with replacement) of the whole training set. μ and σ² are computed,
//! respectively, as the average and variance of the predictions of the
//! ensemble"* — with `k = 10` by default.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::m5::{M5Params, M5Tree};
use super::{Regressor, Sample};

/// A bagged ensemble of M5 trees supplying predictive mean and variance.
#[derive(Debug, Clone)]
pub struct BaggedM5 {
    learners: Vec<M5Tree>,
}

impl BaggedM5 {
    /// Default ensemble size used by AutoPN.
    pub const DEFAULT_LEARNERS: usize = 10;

    /// Train `k` learners on bootstrap resamples of `samples`.
    ///
    /// The first learner is trained on the full training set (so the
    /// ensemble mean is anchored on all observed data even when `samples`
    /// is tiny); the rest use bootstrap resamples.
    pub fn fit(samples: &[Sample], k: usize, seed: u64) -> Self {
        Self::fit_with(samples, k, seed, M5Params::default())
    }

    /// Train with explicit tree parameters.
    pub fn fit_with(samples: &[Sample], k: usize, seed: u64, params: M5Params) -> Self {
        let k = k.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut learners = Vec::with_capacity(k);
        learners.push(M5Tree::fit_with(samples, params));
        // Weighted bootstrap: confident samples are drawn proportionally
        // more often (§VIII noise-aware modeling; uniform when all weights
        // are equal).
        let cumulative: Vec<f64> = samples
            .iter()
            .scan(0.0, |acc, s| {
                *acc += s.w.max(0.0);
                Some(*acc)
            })
            .collect();
        let total_w = cumulative.last().copied().unwrap_or(0.0);
        for _ in 1..k {
            let boot: Vec<Sample> = if samples.is_empty() || total_w <= 0.0 {
                samples.to_vec()
            } else {
                (0..samples.len())
                    .map(|_| {
                        let r = rng.gen::<f64>() * total_w;
                        let idx = cumulative.partition_point(|&c| c < r).min(samples.len() - 1);
                        samples[idx].clone()
                    })
                    .collect()
            };
            learners.push(M5Tree::fit_with(&boot, params));
        }
        Self { learners }
    }

    /// Number of learners.
    pub fn len(&self) -> usize {
        self.learners.len()
    }

    pub fn is_empty(&self) -> bool {
        self.learners.is_empty()
    }

    /// Predictive mean and standard deviation at the encoded point `x`.
    pub fn predict_dist(&self, x: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.learners.iter().map(|m| m.predict(x)).collect();
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }
}

impl Regressor for BaggedM5 {
    fn predict(&self, x: &[f64]) -> f64 {
        self.predict_dist(x).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(f: impl Fn(f64, f64) -> f64) -> Vec<Sample> {
        let mut out = Vec::new();
        for t in 1..=8 {
            for c in 1..=8 {
                out.push(Sample::point(t as f64, c as f64, f(t as f64, c as f64)));
            }
        }
        out
    }

    #[test]
    fn ensemble_mean_tracks_function() {
        let samples = grid(|t, c| 100.0 + 2.0 * t - c);
        let ens = BaggedM5::fit(&samples, 10, 1);
        assert_eq!(ens.len(), 10);
        let (mu, _) = ens.predict_dist(&[4.0, 4.0]);
        assert!((mu - 104.0).abs() < 2.0, "mu = {mu}");
    }

    #[test]
    fn variance_zero_on_abundant_clean_data() {
        // All bootstrap fits of an exactly linear function are identical.
        let samples = grid(|t, c| t + c);
        let ens = BaggedM5::fit(&samples, 8, 2);
        let (_, sigma) = ens.predict_dist(&[4.0, 4.0]);
        assert!(sigma < 0.5, "sigma = {sigma}");
    }

    #[test]
    fn variance_positive_when_data_scarce_and_noisy() {
        // Few scattered points with a bumpy target: bootstrap resamples
        // disagree away from the data.
        let samples = vec![
            Sample::point(1.0, 1.0, 10.0),
            Sample::point(48.0, 1.0, 200.0),
            Sample::point(1.0, 48.0, 30.0),
            Sample::point(8.0, 6.0, 400.0),
            Sample::point(24.0, 2.0, 350.0),
        ];
        let ens = BaggedM5::fit(&samples, 10, 3);
        let (_, sigma) = ens.predict_dist(&[16.0, 3.0]);
        assert!(sigma > 0.0, "bootstrap diversity must produce variance");
    }

    #[test]
    fn deterministic_given_seed() {
        let samples = grid(|t, c| t * c);
        let a = BaggedM5::fit(&samples, 10, 42).predict_dist(&[5.0, 5.0]);
        let b = BaggedM5::fit(&samples, 10, 42).predict_dist(&[5.0, 5.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn k_is_clamped_to_one() {
        let samples = grid(|t, _| t);
        let ens = BaggedM5::fit(&samples, 0, 1);
        assert_eq!(ens.len(), 1);
        assert!(!ens.is_empty());
    }

    #[test]
    fn empty_training_set_predicts_zero() {
        let ens = BaggedM5::fit(&[], 5, 1);
        let (mu, sigma) = ens.predict_dist(&[3.0, 3.0]);
        assert_eq!(mu, 0.0);
        assert_eq!(sigma, 0.0);
    }
}
