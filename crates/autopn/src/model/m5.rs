//! The M5 model tree (Quinlan, 1992): a decision tree whose leaves hold
//! multivariate linear models, approximating arbitrary functions by
//! piece-wise linear surfaces. This is the lightweight regressor AutoPN
//! trains online (§V-B, "Model construction").
//!
//! The implementation follows the classic recipe over however many features
//! the training samples carry (2 in the paper's `(t, c)` setting; more when
//! discrete axes are folded into the encoding):
//!
//! * **Growth** — recursive binary splits chosen by maximum standard
//!   deviation reduction (SDR) over every feature; stop when a node is small
//!   or nearly pure.
//! * **Pruning** — a subtree is replaced by its node's linear model when the
//!   model's complexity-penalized error is no worse than the subtree's.
//! * **Smoothing** — predictions are blended with the linear models along
//!   the root path (`k = 15`), avoiding discontinuities at split boundaries.

use super::linear::LinearModel;
use super::{common_dim, std_dev, Regressor, Sample};

/// M5 hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct M5Params {
    /// Minimum samples in a node eligible for splitting.
    pub min_split: usize,
    /// Stop splitting when a node's standard deviation falls below this
    /// fraction of the root's.
    pub sd_fraction: f64,
    /// Smoothing constant `k` (classic value: 15).
    pub smoothing_k: f64,
    /// Complexity penalty factor per model parameter in pruning.
    pub pruning_factor: f64,
}

impl Default for M5Params {
    fn default() -> Self {
        Self { min_split: 4, sd_fraction: 0.05, smoothing_k: 15.0, pruning_factor: 1.0 }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        model: LinearModel,
    },
    Split {
        feature: usize,
        threshold: f64,
        model: LinearModel,
        n: usize,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained M5 model tree over an encoded configuration space.
#[derive(Debug, Clone)]
pub struct M5Tree {
    root: Node,
    params: M5Params,
}

/// Feature accessor tolerant of ragged sample dimensionality (absent
/// features read as 0, matching the linear model's convention).
fn feat(s: &Sample, i: usize) -> f64 {
    s.features().get(i).copied().unwrap_or(0.0)
}

impl M5Tree {
    /// Train on `samples` with default parameters.
    pub fn fit(samples: &[Sample]) -> Self {
        Self::fit_with(samples, M5Params::default())
    }

    /// Train with explicit parameters.
    pub fn fit_with(samples: &[Sample], params: M5Params) -> Self {
        let root_sd = std_dev(samples);
        let dim = common_dim(samples);
        let mut owned: Vec<Sample> = samples.to_vec();
        let mut root = grow(&mut owned, root_sd, dim, &params);
        prune(&mut root, samples, &params);
        Self { root, params }
    }

    /// Number of leaves (model complexity introspection).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Tree depth (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

impl Regressor for M5Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        // Walk to the leaf, then smooth back along the path.
        fn walk(node: &Node, x: &[f64], k: f64) -> f64 {
            match node {
                Node::Leaf { model } => model.predict(x),
                Node::Split { feature, threshold, model, n, left, right } => {
                    let xf = x.get(*feature).copied().unwrap_or(0.0);
                    let child = if xf <= *threshold { left } else { right };
                    let child_pred = walk(child, x, k);
                    // Quinlan smoothing: blend the child prediction with this
                    // node's linear model, weighted by the node's sample count.
                    let nf = *n as f64;
                    (nf * child_pred + k * model.predict(x)) / (nf + k)
                }
            }
        }
        walk(&self.root, x, self.params.smoothing_k)
    }
}

/// Recursive tree growth by maximum standard deviation reduction.
fn grow(samples: &mut [Sample], root_sd: f64, dim: usize, params: &M5Params) -> Node {
    let sd = std_dev(samples);
    // Absolute noise floor: targets that are constant up to floating-point
    // rounding must not be split (ulp-level "structure" produces degenerate
    // collinear leaves that extrapolate wildly).
    let y_scale = samples.iter().map(|s| s.y.abs()).sum::<f64>() / samples.len().max(1) as f64;
    let noise_floor = 1e-9 * (y_scale + 1.0);
    if samples.len() < params.min_split || sd <= params.sd_fraction * root_sd + noise_floor {
        return Node::Leaf { model: LinearModel::fit(samples) };
    }
    let Some((feature, threshold)) = best_split(samples, sd, dim) else {
        return Node::Leaf { model: LinearModel::fit(samples) };
    };
    let model = LinearModel::fit(samples);
    let n = samples.len();
    // Partition in place.
    samples.sort_by(|a, b| feat(a, feature).total_cmp(&feat(b, feature)));
    let split_at = samples.partition_point(|s| feat(s, feature) <= threshold);
    if split_at == 0 || split_at == samples.len() {
        return Node::Leaf { model };
    }
    let (l, r) = samples.split_at_mut(split_at);
    let left = grow(l, root_sd, dim, params);
    let right = grow(r, root_sd, dim, params);
    Node::Split { feature, threshold, model, n, left: Box::new(left), right: Box::new(right) }
}

/// Best (feature, threshold) by SDR; thresholds are midpoints between
/// consecutive distinct feature values.
fn best_split(samples: &[Sample], parent_sd: f64, dim: usize) -> Option<(usize, f64)> {
    let n = samples.len() as f64;
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sdr)
    let mut sorted = samples.to_vec();
    for feature in 0..dim {
        sorted.sort_by(|a, b| feat(a, feature).total_cmp(&feat(b, feature)));
        for i in 0..sorted.len() - 1 {
            let (x0, x1) = (feat(&sorted[i], feature), feat(&sorted[i + 1], feature));
            if x0 == x1 {
                continue;
            }
            let threshold = (x0 + x1) / 2.0;
            let (l, r) = sorted.split_at(i + 1);
            let sdr =
                parent_sd - (l.len() as f64 / n) * std_dev(l) - (r.len() as f64 / n) * std_dev(r);
            if best.as_ref().map(|&(_, _, b)| sdr > b).unwrap_or(true) {
                best = Some((feature, threshold, sdr));
            }
        }
    }
    best.filter(|&(_, _, sdr)| sdr > 0.0).map(|(f, t, _)| (f, t))
}

/// Bottom-up pruning: replace a subtree by its node's linear model when the
/// penalized model error is no worse than the subtree's penalized error.
fn prune(node: &mut Node, samples: &[Sample], params: &M5Params) {
    let (feature, threshold) = match node {
        Node::Leaf { .. } => return,
        Node::Split { feature, threshold, .. } => (*feature, *threshold),
    };
    let (l, r): (Vec<Sample>, Vec<Sample>) =
        samples.iter().cloned().partition(|s| feat(s, feature) <= threshold);
    if let Node::Split { left, right, model, .. } = node {
        prune(left, &l, params);
        prune(right, &r, params);
        let subtree_err =
            subtree_mae(left, &l) * l.len() as f64 + subtree_mae(right, &r) * r.len() as f64;
        let subtree_err = subtree_err / samples.len().max(1) as f64;
        let model_err = model.mae(samples);
        // Penalize the subtree by its parameter count, M5-style.
        let v_subtree = 3.0 * (count_leaves(left) + count_leaves(right)) as f64;
        let v_model = 3.0;
        let n = samples.len() as f64;
        let penalize = |err: f64, v: f64| {
            if n > v {
                err * (n + params.pruning_factor * v) / (n - v)
            } else {
                err * 10.0
            }
        };
        if penalize(model_err, v_model) <= penalize(subtree_err, v_subtree) {
            *node = Node::Leaf { model: model.clone() };
        }
    }
}

fn count_leaves(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 1,
        Node::Split { left, right, .. } => count_leaves(left) + count_leaves(right),
    }
}

fn subtree_mae(node: &Node, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let total: f64 = samples
        .iter()
        .map(|s| {
            let pred = raw_predict(node, s.features());
            (pred - s.y).abs()
        })
        .sum();
    total / samples.len() as f64
}

/// Unsmoothed prediction, used during pruning.
fn raw_predict(node: &Node, x: &[f64]) -> f64 {
    match node {
        Node::Leaf { model } => model.predict(x),
        Node::Split { feature, threshold, left, right, .. } => {
            let xf = x.get(*feature).copied().unwrap_or(0.0);
            if xf <= *threshold {
                raw_predict(left, x)
            } else {
                raw_predict(right, x)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(f: impl Fn(f64, f64) -> f64, tmax: usize, cmax: usize) -> Vec<Sample> {
        let mut out = Vec::new();
        for t in 1..=tmax {
            for c in 1..=cmax {
                out.push(Sample::point(t as f64, c as f64, f(t as f64, c as f64)));
            }
        }
        out
    }

    #[test]
    fn fits_linear_function_with_single_leaf_accuracy() {
        let samples = grid(|t, c| 5.0 + 3.0 * t - 2.0 * c, 8, 8);
        let tree = M5Tree::fit(&samples);
        for s in &samples {
            assert!(
                (tree.predict(s.features()) - s.y).abs() < 0.5,
                "bad fit at {:?}",
                s.features()
            );
        }
    }

    #[test]
    fn fits_piecewise_function_better_than_one_line() {
        // V-shaped in t: a single linear model cannot capture it.
        let f = |t: f64, _c: f64| (t - 8.0).abs();
        let samples = grid(f, 16, 2);
        let tree = M5Tree::fit(&samples);
        let lin = LinearModel::fit(&samples);
        let tree_err: f64 =
            samples.iter().map(|s| (tree.predict(s.features()) - s.y).abs()).sum::<f64>();
        let lin_err: f64 =
            samples.iter().map(|s| (lin.predict(s.features()) - s.y).abs()).sum::<f64>();
        assert!(tree_err < lin_err * 0.6, "tree {tree_err} should clearly beat line {lin_err}");
        assert!(tree.leaf_count() >= 2, "must have split at least once");
    }

    #[test]
    fn splits_on_a_categorical_one_hot_feature() {
        // Feature 2 is a one-hot indicator that shifts the surface by 100:
        // the tree must split on it (a single linear model also could, but
        // the split test exercises the >2-feature path end to end).
        let mut samples = Vec::new();
        for t in 1..=6 {
            for c in 1..=3 {
                for flag in 0..2 {
                    let x = vec![t as f64, c as f64, flag as f64];
                    let y = t as f64 + (t as f64 - 3.0).abs() * 10.0 + 100.0 * flag as f64;
                    samples.push(Sample::new(x, y));
                }
            }
        }
        let tree = M5Tree::fit(&samples);
        let off = tree.predict(&[4.0, 2.0, 0.0]);
        let on = tree.predict(&[4.0, 2.0, 1.0]);
        assert!((on - off - 100.0).abs() < 10.0, "one-hot shift not captured: {off} vs {on}");
    }

    #[test]
    fn handful_of_points_yields_single_leaf() {
        let samples = vec![
            Sample::point(1.0, 1.0, 10.0),
            Sample::point(48.0, 1.0, 20.0),
            Sample::point(1.0, 48.0, 5.0),
        ];
        let tree = M5Tree::fit(&samples);
        assert_eq!(tree.leaf_count(), 1);
        assert!(tree.predict(&[24.0, 24.0]).is_finite());
    }

    #[test]
    fn empty_training_predicts_zero() {
        let tree = M5Tree::fit(&[]);
        assert_eq!(tree.predict(&[3.0, 3.0]), 0.0);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let samples = grid(|_, _| 7.5, 6, 6);
        let tree = M5Tree::fit(&samples);
        assert_eq!(tree.leaf_count(), 1, "pure node must not split");
        assert!((tree.predict(&[3.0, 3.0]) - 7.5).abs() < 1e-5);
    }

    #[test]
    fn pruning_collapses_noise_splits() {
        // Nearly-linear data with minuscule wiggle: the pruned tree should be
        // dramatically simpler than the fully grown one.
        let samples = grid(|t, c| 2.0 * t + c + ((t * 7.0 + c * 3.0).sin() * 1e-6), 10, 10);
        let tree = M5Tree::fit(&samples);
        assert!(tree.leaf_count() <= 3, "leaves = {}", tree.leaf_count());
    }

    #[test]
    fn smoothing_limits_discontinuities() {
        let f = |t: f64, _c: f64| if t <= 8.0 { 0.0 } else { 100.0 };
        let samples = grid(f, 16, 1);
        let tree = M5Tree::fit(&samples);
        // Prediction just left and right of the split differs by less than
        // the raw step (smoothing pulls both towards the node model).
        let gap = (tree.predict(&[8.4, 1.0]) - tree.predict(&[8.6, 1.0])).abs();
        assert!(gap < 100.0, "smoothed gap {gap}");
    }

    #[test]
    fn depth_reflects_structure() {
        let samples = grid(|t, c| (t / 4.0).floor() * 10.0 + (c / 4.0).floor(), 16, 16);
        let tree = M5Tree::fit(&samples);
        assert!(tree.depth() >= 2);
    }
}
