//! Regression models: linear leaf models, the M5 model tree, and the bagging
//! ensemble that supplies SMBO's predictive mean and variance.

pub mod bagging;
pub mod linear;
pub mod m5;

pub use bagging::BaggedM5;
pub use linear::LinearModel;
pub use m5::M5Tree;

/// A training observation: features `(t, c)`, the measured KPI, and a
/// confidence weight.
///
/// The weight implements the paper's §VIII suggestion of feeding the
/// *noisiness* of each measurement (its coefficient of variation) into the
/// modeling phase: precise measurements get weight > 1, noisy or truncated
/// ones < 1. `Sample::new` uses weight 1 (the paper's baseline behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    pub t: f64,
    pub c: f64,
    pub y: f64,
    /// Relative confidence in `y` (1.0 = nominal).
    pub w: f64,
}

impl Sample {
    pub fn new(t: f64, c: f64, y: f64) -> Self {
        Self { t, c, y, w: 1.0 }
    }

    /// A sample with an explicit confidence weight (clamped to a sane
    /// positive range so one observation can neither vanish nor dominate).
    pub fn weighted(t: f64, c: f64, y: f64, w: f64) -> Self {
        Self { t, c, y, w: w.clamp(0.05, 20.0) }
    }

    /// Derive a confidence weight from a measurement's throughput CV:
    /// `w = (cv_ref / cv)²` with `cv_ref = 10%` (the monitor's stability
    /// threshold), so a window that stabilized exactly at the threshold gets
    /// weight 1. Timed-out windows (`cv = None`) are low-information.
    pub fn weight_from_cv(cv: Option<f64>, timed_out: bool) -> f64 {
        if timed_out {
            return 0.25;
        }
        match cv {
            Some(cv) if cv > 0.0 => (0.10 / cv.max(0.005)).powi(2).clamp(0.05, 20.0),
            _ => 1.0,
        }
    }

    /// Feature accessor by index (0 = `t`, 1 = `c`).
    pub fn feature(&self, i: usize) -> f64 {
        match i {
            0 => self.t,
            1 => self.c,
            _ => panic!("feature index {i} out of range (2 features)"),
        }
    }
}

/// Anything that predicts a KPI from a configuration.
pub trait Regressor {
    /// Predicted KPI at `(t, c)`.
    fn predict(&self, t: f64, c: f64) -> f64;
}

pub(crate) fn mean(ys: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for y in ys {
        sum += y;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

pub(crate) fn std_dev(samples: &[Sample]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples.iter().map(|s| s.y));
    let var = samples.iter().map(|s| (s.y - m).powi(2)).sum::<f64>() / samples.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_feature_access() {
        let s = Sample::new(3.0, 5.0, 7.0);
        assert_eq!(s.feature(0), 3.0);
        assert_eq!(s.feature(1), 5.0);
        assert_eq!(s.w, 1.0);
    }

    #[test]
    fn weighted_sample_clamps() {
        assert_eq!(Sample::weighted(1.0, 1.0, 1.0, 1e9).w, 20.0);
        assert_eq!(Sample::weighted(1.0, 1.0, 1.0, 0.0).w, 0.05);
    }

    #[test]
    fn weight_from_cv_semantics() {
        // Stabilized exactly at the 10% threshold → nominal weight.
        assert!((Sample::weight_from_cv(Some(0.10), false) - 1.0).abs() < 1e-12);
        // Tighter CV → more confident.
        assert!(Sample::weight_from_cv(Some(0.02), false) > 5.0);
        // Sloppier CV → less confident.
        assert!(Sample::weight_from_cv(Some(0.5), false) < 0.1);
        // Timeout-truncated windows are low-information.
        assert_eq!(Sample::weight_from_cv(Some(0.01), true), 0.25);
        assert_eq!(Sample::weight_from_cv(None, false), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_feature_index() {
        let _ = Sample::new(0.0, 0.0, 0.0).feature(2);
    }

    #[test]
    fn helpers() {
        assert_eq!(mean([].into_iter()), 0.0);
        assert_eq!(mean([2.0, 4.0].into_iter()), 3.0);
        let samples = vec![Sample::new(0.0, 0.0, 2.0), Sample::new(0.0, 0.0, 4.0)];
        assert!((std_dev(&samples) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&samples[..1]), 0.0);
    }
}
