//! Regression models: linear leaf models, the M5 model tree, and the bagging
//! ensemble that supplies SMBO's predictive mean and variance.
//!
//! The whole layer is natively N-dimensional: a [`Sample`] carries an
//! arbitrary-length feature vector (built by `ConfigSpace::encode`), and
//! every model fits/predicts over `dim()` features. In the legacy 2-D
//! `(t, c)` space the vector is exactly `[t, c]` and all arithmetic is
//! bit-identical to the pre-generalization pipeline (pinned by
//! `crate::legacy` and the legacy-projection proptest).

pub mod bagging;
pub mod linear;
pub mod m5;

pub use bagging::BaggedM5;
pub use linear::LinearModel;
pub use m5::M5Tree;

/// A training observation: a feature vector `x` (from the config space's
/// encoding), the measured KPI `y`, and a confidence weight.
///
/// The weight implements the paper's §VIII suggestion of feeding the
/// *noisiness* of each measurement (its coefficient of variation) into the
/// modeling phase: precise measurements get weight > 1, noisy or truncated
/// ones < 1. `Sample::new` uses weight 1 (the paper's baseline behaviour).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    x: Vec<f64>,
    pub y: f64,
    /// Relative confidence in `y` (1.0 = nominal).
    pub w: f64,
}

impl Sample {
    pub fn new(x: Vec<f64>, y: f64) -> Self {
        Self { x, y, w: 1.0 }
    }

    /// Legacy 2-feature convenience: the `(t, c)` point of the paper's
    /// original space.
    pub fn point(t: f64, c: f64, y: f64) -> Self {
        Self::new(vec![t, c], y)
    }

    /// A sample with an explicit confidence weight (clamped to a sane
    /// positive range so one observation can neither vanish nor dominate).
    pub fn weighted(x: Vec<f64>, y: f64, w: f64) -> Self {
        Self { x, y, w: w.clamp(0.05, 20.0) }
    }

    /// Derive a confidence weight from a measurement's throughput CV:
    /// `w = (cv_ref / cv)²` with `cv_ref = 10%` (the monitor's stability
    /// threshold), so a window that stabilized exactly at the threshold gets
    /// weight 1. Timed-out windows (`cv = None`) are low-information.
    pub fn weight_from_cv(cv: Option<f64>, timed_out: bool) -> f64 {
        if timed_out {
            return 0.25;
        }
        match cv {
            Some(cv) if cv > 0.0 => (0.10 / cv.max(0.005)).powi(2).clamp(0.05, 20.0),
            _ => 1.0,
        }
    }

    /// The feature vector. Callers index it only through `0..dim()` of the
    /// owning space, so an out-of-range access is impossible by
    /// construction (the old fixed-arity accessor hard-panicked instead).
    pub fn features(&self) -> &[f64] {
        &self.x
    }

    /// Feature dimensionality of this observation.
    pub fn dim(&self) -> usize {
        self.x.len()
    }
}

/// Anything that predicts a KPI from an encoded configuration point.
pub trait Regressor {
    /// Predicted KPI at feature vector `x`.
    fn predict(&self, x: &[f64]) -> f64;
}

pub(crate) fn mean(ys: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for y in ys {
        sum += y;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

pub(crate) fn std_dev(samples: &[Sample]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples.iter().map(|s| s.y));
    let var = samples.iter().map(|s| (s.y - m).powi(2)).sum::<f64>() / samples.len() as f64;
    var.sqrt()
}

/// The common feature dimensionality of a training set (0 when empty).
pub(crate) fn common_dim(samples: &[Sample]) -> usize {
    samples.iter().map(|s| s.dim()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_feature_access() {
        let s = Sample::point(3.0, 5.0, 7.0);
        assert_eq!(s.features(), &[3.0, 5.0]);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.w, 1.0);
        let nd = Sample::new(vec![1.0, 2.0, 0.0, 1.0, 6.0], 9.0);
        assert_eq!(nd.dim(), 5);
        assert_eq!(nd.features()[4], 6.0);
    }

    #[test]
    fn weighted_sample_clamps() {
        assert_eq!(Sample::weighted(vec![1.0, 1.0], 1.0, 1e9).w, 20.0);
        assert_eq!(Sample::weighted(vec![1.0, 1.0], 1.0, 0.0).w, 0.05);
    }

    #[test]
    fn weight_from_cv_semantics() {
        // Stabilized exactly at the 10% threshold → nominal weight.
        assert!((Sample::weight_from_cv(Some(0.10), false) - 1.0).abs() < 1e-12);
        // Tighter CV → more confident.
        assert!(Sample::weight_from_cv(Some(0.02), false) > 5.0);
        // Sloppier CV → less confident.
        assert!(Sample::weight_from_cv(Some(0.5), false) < 0.1);
        // Timeout-truncated windows are low-information.
        assert_eq!(Sample::weight_from_cv(Some(0.01), true), 0.25);
        assert_eq!(Sample::weight_from_cv(None, false), 1.0);
    }

    #[test]
    fn helpers() {
        assert_eq!(mean([].into_iter()), 0.0);
        assert_eq!(mean([2.0, 4.0].into_iter()), 3.0);
        let samples = vec![Sample::point(0.0, 0.0, 2.0), Sample::point(0.0, 0.0, 4.0)];
        assert!((std_dev(&samples) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&samples[..1]), 0.0);
        assert_eq!(common_dim(&samples), 2);
        assert_eq!(common_dim(&[]), 0);
    }
}
