//! Multivariate linear leaf models `y = b0 + Σ bⱼ·xⱼ`, fit by ridge-
//! regularized least squares over the normal equations.
//!
//! The model is dimension-generic: it fits however many features the
//! training samples carry (the config space's encoding width). At `d = 2`
//! (the legacy `[t, c]` encoding) the accumulation order, the ridge term and
//! the Gaussian elimination are arithmetic-identical to the original
//! two-feature implementation, which `crate::legacy` pins bit-for-bit.

use super::{common_dim, mean, Regressor, Sample};

/// A fitted linear model: `coef[0]` is the intercept, `coef[1 + j]` the
/// coefficient of feature `j`. A mean-only fallback stores just the
/// intercept.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    coef: Vec<f64>,
}

impl LinearModel {
    /// Build directly from coefficients (`[b0, b1, ..]`); mostly for tests
    /// and diagnostics.
    pub fn from_coef(coef: Vec<f64>) -> Self {
        Self { coef }
    }

    /// Intercept term.
    pub fn intercept(&self) -> f64 {
        self.coef.first().copied().unwrap_or(0.0)
    }

    /// Coefficient of feature `j` (0 when the model fell back to a mean).
    pub fn coef(&self, j: usize) -> f64 {
        self.coef.get(1 + j).copied().unwrap_or(0.0)
    }

    /// Fit by (weighted) least squares with a small ridge term for numerical
    /// stability. Sample weights implement the §VIII noise-aware modeling
    /// extension (weight 1 everywhere = ordinary least squares). Degenerate
    /// inputs (too few or collinear points) gracefully fall back toward the
    /// weighted-mean predictor.
    // Index loops mirror the Σ wxⱼxₖ normal-equation algebra; iterator
    // rewrites of the triangular fills obscure the symmetry being exploited.
    #[allow(clippy::needless_range_loop)]
    pub fn fit(samples: &[Sample]) -> Self {
        if samples.is_empty() {
            return Self { coef: vec![0.0] };
        }
        let d = common_dim(samples);
        let w_total: f64 = samples.iter().map(|s| s.w).sum();
        let y_mean = if w_total > 0.0 {
            samples.iter().map(|s| s.w * s.y).sum::<f64>() / w_total
        } else {
            mean(samples.iter().map(|s| s.y))
        };
        if samples.len() < d + 1 || d == 0 {
            return Self { coef: vec![y_mean] };
        }
        // Weighted normal equations A·b = v with A = XᵀWX + λI
        // (X columns: 1, x₀, x₁, …; W = diag(w)).
        let n = w_total;
        let mut sx = vec![0.0; d];
        let mut sxy = vec![0.0; d];
        let mut sxx = vec![vec![0.0; d]; d];
        let mut sy = 0.0;
        for s in samples {
            let w = s.w;
            let x = s.features();
            for j in 0..d {
                let xj = x.get(j).copied().unwrap_or(0.0);
                sx[j] += w * xj;
                sxy[j] += w * xj * s.y;
                for k in j..d {
                    sxx[j][k] += w * xj * x.get(k).copied().unwrap_or(0.0);
                }
            }
            sy += w * s.y;
        }
        for j in 0..d {
            for k in 0..j {
                sxx[j][k] = sxx[k][j];
            }
        }
        let trace: f64 = (0..d).map(|j| sxx[j][j]).sum();
        let lambda = 1e-8 * (trace + n).max(1.0);
        let mut a = vec![vec![0.0; d + 1]; d + 1];
        let mut v = vec![0.0; d + 1];
        a[0][0] = n + lambda;
        v[0] = sy;
        for j in 0..d {
            a[0][j + 1] = sx[j];
            a[j + 1][0] = sx[j];
            v[j + 1] = sxy[j];
            for k in 0..d {
                a[j + 1][k + 1] = sxx[j][k] + if j == k { lambda } else { 0.0 };
            }
        }
        match solve(a, v) {
            Some(coef) if coef.iter().all(|b| b.is_finite()) => Self { coef },
            _ => Self { coef: vec![y_mean] },
        }
    }

    /// Root-mean-square error on a sample set.
    pub fn rmse(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let sse: f64 = samples.iter().map(|s| (self.predict(s.features()) - s.y).powi(2)).sum();
        (sse / samples.len() as f64).sqrt()
    }

    /// Mean absolute error on a sample set.
    pub fn mae(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().map(|s| (self.predict(s.features()) - s.y).abs()).sum::<f64>()
            / samples.len() as f64
    }
}

impl Regressor for LinearModel {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut acc = self.intercept();
        for (j, b) in self.coef.iter().skip(1).enumerate() {
            acc += b * x.get(j).copied().unwrap_or(0.0);
        }
        acc
    }
}

/// Solve a dense linear system by Gaussian elimination with partial
/// pivoting. Returns `None` when the (ridge-regularized) matrix is still
/// effectively singular.
#[allow(clippy::needless_range_loop)] // index math mirrors the textbook algorithm
fn solve(mut a: Vec<Vec<f64>>, mut v: Vec<f64>) -> Option<Vec<f64>> {
    let m = a.len();
    for col in 0..m {
        // Pivot.
        let pivot = (col..m).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        v.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..m {
            let f = a[row][col] / a[col][col];
            for k in col..m {
                a[row][k] -= f * a[col][k];
            }
            v[row] -= f * v[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; m];
    for row in (0..m).rev() {
        let mut acc = v[row];
        for k in (row + 1)..m {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_samples(f: impl Fn(f64, f64) -> f64) -> Vec<Sample> {
        let mut out = Vec::new();
        for t in 1..=6 {
            for c in 1..=6 {
                out.push(Sample::point(t as f64, c as f64, f(t as f64, c as f64)));
            }
        }
        out
    }

    #[test]
    fn recovers_exact_linear_function() {
        let samples = grid_samples(|t, c| 3.0 + 2.0 * t - 5.0 * c);
        let m = LinearModel::fit(&samples);
        // Tolerances account for the ridge term's tiny bias.
        assert!((m.intercept() - 3.0).abs() < 1e-3, "b0 = {}", m.intercept());
        assert!((m.coef(0) - 2.0).abs() < 1e-4, "b1 = {}", m.coef(0));
        assert!((m.coef(1) + 5.0).abs() < 1e-4, "b2 = {}", m.coef(1));
        assert!(m.rmse(&samples) < 1e-3);
    }

    #[test]
    fn recovers_higher_dimensional_function() {
        // Four features (as a space with a one-hot axis would encode): the
        // generalized solver must recover all coefficients.
        let mut samples = Vec::new();
        for t in 1..=4 {
            for c in 1..=4 {
                for a in 0..2 {
                    for b in 0..2 {
                        let x = vec![t as f64, c as f64, a as f64, b as f64];
                        let y = 1.0 + 2.0 * x[0] - 3.0 * x[1] + 7.0 * x[2] - 0.5 * x[3];
                        samples.push(Sample::new(x, y));
                    }
                }
            }
        }
        let m = LinearModel::fit(&samples);
        assert!((m.intercept() - 1.0).abs() < 1e-3);
        assert!((m.coef(0) - 2.0).abs() < 1e-4);
        assert!((m.coef(1) + 3.0).abs() < 1e-4);
        assert!((m.coef(2) - 7.0).abs() < 1e-4);
        assert!((m.coef(3) + 0.5).abs() < 1e-4);
    }

    #[test]
    fn predict_extrapolates_linearly() {
        let samples = grid_samples(|t, c| 10.0 + t + c);
        let m = LinearModel::fit(&samples);
        assert!((m.predict(&[100.0, 50.0]) - 160.0).abs() < 1e-3);
    }

    #[test]
    fn empty_fit_is_zero() {
        let m = LinearModel::fit(&[]);
        assert_eq!(m.predict(&[5.0, 5.0]), 0.0);
        assert_eq!(m.rmse(&[]), 0.0);
        assert_eq!(m.mae(&[]), 0.0);
    }

    #[test]
    fn tiny_fit_falls_back_to_mean() {
        let samples = vec![Sample::point(1.0, 1.0, 10.0), Sample::point(2.0, 1.0, 20.0)];
        let m = LinearModel::fit(&samples);
        assert_eq!(m.coef(0), 0.0);
        assert_eq!(m.predict(&[9.0, 9.0]), 15.0);
    }

    #[test]
    fn underdetermined_high_dim_falls_back_to_mean() {
        // 3 samples, 4 features: fewer samples than parameters.
        let samples = vec![
            Sample::new(vec![1.0, 1.0, 0.0, 1.0], 10.0),
            Sample::new(vec![2.0, 1.0, 1.0, 0.0], 20.0),
            Sample::new(vec![3.0, 2.0, 0.0, 0.0], 30.0),
        ];
        let m = LinearModel::fit(&samples);
        assert_eq!(m.predict(&[9.0, 9.0, 1.0, 1.0]), 20.0);
    }

    #[test]
    fn collinear_inputs_do_not_explode() {
        // All points share t == c: the design matrix is singular; the ridge
        // or the fallback must keep predictions finite and sensible.
        let samples: Vec<Sample> =
            (1..=8).map(|i| Sample::point(i as f64, i as f64, 2.0 * i as f64)).collect();
        let m = LinearModel::fit(&samples);
        let p = m.predict(&[4.0, 4.0]);
        assert!(p.is_finite());
        assert!((p - 8.0).abs() < 0.5, "p = {p}");
    }

    #[test]
    fn rmse_and_mae_on_noisy_fit() {
        let samples = grid_samples(|t, c| t + c);
        let m = LinearModel::from_coef(vec![0.0, 1.0, 1.0]);
        assert_eq!(m.rmse(&samples), 0.0);
        let biased = LinearModel::from_coef(vec![1.0, 1.0, 1.0]);
        assert!((biased.rmse(&samples) - 1.0).abs() < 1e-12);
        assert!((biased.mae(&samples) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_fit_discounts_noisy_outlier() {
        // A clean linear trend plus one wild outlier: with a tiny weight the
        // outlier barely moves the fit; with weight 1 it visibly does.
        let mut clean = grid_samples(|t, c| 10.0 + 2.0 * t + c);
        let outlier_heavy = {
            let mut s = clean.clone();
            s.push(Sample::point(3.0, 3.0, 500.0));
            LinearModel::fit(&s)
        };
        clean.push(Sample::weighted(vec![3.0, 3.0], 500.0, 0.05));
        let outlier_light = LinearModel::fit(&clean);
        let truth = 10.0 + 2.0 * 3.0 + 3.0;
        let err_heavy = (outlier_heavy.predict(&[3.0, 3.0]) - truth).abs();
        let err_light = (outlier_light.predict(&[3.0, 3.0]) - truth).abs();
        assert!(
            err_light < err_heavy / 5.0,
            "downweighting must shrink the outlier's pull: {err_light} vs {err_heavy}"
        );
    }

    #[test]
    fn uniform_weights_match_unweighted() {
        let samples = grid_samples(|t, c| 5.0 - t + 2.0 * c);
        let reweighted: Vec<Sample> =
            samples.iter().map(|s| Sample::weighted(s.features().to_vec(), s.y, 3.0)).collect();
        let a = LinearModel::fit(&samples);
        let b = LinearModel::fit(&reweighted);
        assert!(
            (a.intercept() - b.intercept()).abs() < 1e-6 && (a.coef(0) - b.coef(0)).abs() < 1e-6
        );
    }

    #[test]
    fn solve_identity() {
        let x = solve(
            vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]],
            vec![4.0, 5.0, 6.0],
        )
        .unwrap();
        assert_eq!(x, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn solve_singular_returns_none() {
        assert!(solve(
            vec![vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0], vec![0.0, 0.0, 1.0]],
            vec![1.0, 2.0, 3.0]
        )
        .is_none());
    }
}
